"""Seed-deterministic adversarial matrix generators.

Every generator produces a *dirty* COO triple — duplicates, explicit
zeros, unsorted entry order — together with an independently built
dense oracle (``np.add.at`` accumulation of the raw triple, never
routed through the library's own canonicalization), so a bug in
:class:`~repro.formats.coo.COOMatrix` cannot hide itself from the
differential check.

All randomness derives from ``np.random.default_rng([seed, index])``
seed sequences, so a failing case is reproducible from its
``(seed, index)`` pair alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..formats.coo import COOMatrix

__all__ = ["FuzzCase", "MMCase", "generate_case", "generate_mm_case",
           "CASE_KINDS", "case_rng"]


@dataclass
class FuzzCase:
    """One generated differential-test input.

    ``rows/cols/vals`` are the raw (possibly duplicated, unsorted,
    zero-carrying) triple; ``dense`` is the independent oracle with
    duplicates accumulated.  ``symmetric`` reports whether the *summed*
    matrix is symmetric (formats requiring symmetry are only driven on
    symmetric cases — and are expected to *reject* the rest).
    """

    name: str
    seed: int
    index: int
    shape: tuple[int, int]
    rows: np.ndarray = field(repr=False)
    cols: np.ndarray = field(repr=False)
    vals: np.ndarray = field(repr=False)
    symmetric: bool = True

    @property
    def n(self) -> int:
        return self.shape[0]

    @property
    def dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.rows, self.cols), self.vals)
        return dense

    @property
    def coo(self) -> COOMatrix:
        """Canonical COO built through the library (the thing under test)."""
        return COOMatrix(self.shape, self.rows, self.cols, self.vals)

    @property
    def dirty_coo(self) -> COOMatrix:
        """Non-canonical COO (duplicates preserved)."""
        return COOMatrix(
            self.shape, self.rows, self.cols, self.vals,
            sum_duplicates=False,
        )


@dataclass
class MMCase:
    """One generated MatrixMarket text: either parses to ``dense`` or
    must raise (``expect_error=True``)."""

    name: str
    seed: int
    index: int
    text: str
    dense: Optional[np.ndarray]
    expect_error: bool


def case_rng(seed: int, index: int) -> np.random.Generator:
    """The case's deterministic RNG (seed-sequence on the pair)."""
    return np.random.default_rng([seed, index])


# ----------------------------------------------------------------------
# Symmetric triple builders (lower triangle + mirror, so the summed
# matrix is symmetric by construction even with duplicates)
# ----------------------------------------------------------------------
def _mirror(rows, cols, vals):
    """Expand lower-triangle entries to both triangles."""
    off = rows != cols
    return (
        np.concatenate([rows, cols[off]]),
        np.concatenate([cols, rows[off]]),
        np.concatenate([vals, vals[off]]),
    )


def _random_lower(rng, n: int, density: float):
    """Random strictly-lower + diagonal entries."""
    mask = np.tril(rng.random((n, n)) < density)
    r, c = np.nonzero(mask)
    v = rng.uniform(-2.0, 2.0, r.size)
    return r.astype(np.int64), c.astype(np.int64), v


def _shuffle(rng, rows, cols, vals):
    order = rng.permutation(rows.size)
    return rows[order], cols[order], vals[order]


def _gen_sym_random(rng, n):
    r, c, v = _random_lower(rng, n, float(rng.uniform(0.05, 0.6)))
    return _mirror(r, c, v)


def _gen_sym_duplicates(rng, n):
    """Duplicate coordinates (mirrored pairwise so symmetry survives
    the summation) — stresses canonicalization everywhere."""
    r, c, v = _random_lower(rng, n, 0.3)
    if r.size:
        take = rng.random(r.size) < 0.5
        # Split duplicated values so the *sum* stays the drawn value.
        dr, dc = r[take], c[take]
        dv = rng.uniform(-1.0, 1.0, dr.size)
        v = v.copy()
        v[take] -= dv
        r = np.concatenate([r, dr])
        c = np.concatenate([c, dc])
        v = np.concatenate([v, dv])
    return _mirror(r, c, v)


def _gen_sym_explicit_zeros(rng, n):
    """Exact-zero stored values mixed in."""
    r, c, v = _random_lower(rng, n, 0.3)
    if v.size:
        v[rng.random(v.size) < 0.3] = 0.0
    return _mirror(r, c, v)


def _gen_sym_empty_rows(rng, n):
    """Several completely empty rows/columns."""
    r, c, v = _random_lower(rng, n, 0.4)
    dead = rng.choice(n, size=max(1, n // 3), replace=False)
    keep = ~(np.isin(r, dead) | np.isin(c, dead))
    return _mirror(r[keep], c[keep], v[keep])


def _gen_sym_disconnected(rng, n):
    """Block-diagonal components plus isolated vertices."""
    r = np.zeros(0, dtype=np.int64)
    c = np.zeros(0, dtype=np.int64)
    v = np.zeros(0)
    start = 0
    while start < n:
        size = int(rng.integers(1, max(2, n // 2)))
        size = min(size, n - start)
        if rng.random() < 0.25:
            start += size  # isolated (all-zero) vertex block
            continue
        br, bc, bv = _random_lower(rng, size, 0.5)
        r = np.concatenate([r, br + start])
        c = np.concatenate([c, bc + start])
        v = np.concatenate([v, bv])
        start += size
    return _mirror(r, c, v)


def _gen_sym_single(rng, n):
    """1x1 or a single stored entry in an otherwise empty matrix."""
    if rng.random() < 0.5 or n == 1:
        return (np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.int64),
                rng.uniform(-2, 2, 1))
    i = int(rng.integers(0, n))
    j = int(rng.integers(0, i + 1))
    return _mirror(
        np.array([i], dtype=np.int64),
        np.array([j], dtype=np.int64),
        rng.uniform(-2, 2, 1),
    )


def _gen_sym_skew(rng, n):
    """Arrowhead: one dense row/column, everything else diagonal —
    extreme per-row work skew for the nnz partitioner."""
    hub = int(rng.integers(0, n))
    others = np.arange(n)
    r = np.concatenate([np.full(n, hub), others])
    c = np.concatenate([others, others])
    v = rng.uniform(-1.0, 1.0, 2 * n)
    lower_r = np.maximum(r, c)
    lower_c = np.minimum(r, c)
    return _mirror(lower_r.astype(np.int64), lower_c.astype(np.int64), v)


def _gen_sym_extreme_values(rng, n):
    """Magnitudes spanning ~1e-150 .. 1e150: exercises the ULP-aware
    tolerance instead of naive allclose."""
    r, c, v = _random_lower(rng, n, 0.3)
    if v.size:
        v *= 10.0 ** rng.integers(-150, 150, v.size)
    return _mirror(r, c, v)


def _gen_sym_banded_runs(rng, n):
    """Banded with contiguous runs (CSX substructure bait)."""
    band = int(rng.integers(1, max(2, n // 3)))
    rows_l = []
    cols_l = []
    for i in range(n):
        lo = max(0, i - band)
        js = np.arange(lo, i + 1)
        keep = rng.random(js.size) < 0.8
        rows_l.append(np.full(int(keep.sum()), i))
        cols_l.append(js[keep])
    r = np.concatenate(rows_l).astype(np.int64)
    c = np.concatenate(cols_l).astype(np.int64)
    v = rng.uniform(0.1, 1.0, r.size)
    return _mirror(r, c, v)


# ----------------------------------------------------------------------
# Unsymmetric builders
# ----------------------------------------------------------------------
def _gen_unsym_random(rng, n):
    mask = rng.random((n, n)) < float(rng.uniform(0.05, 0.5))
    r, c = np.nonzero(mask)
    return r.astype(np.int64), c.astype(np.int64), rng.uniform(-2, 2, r.size)


def _gen_near_symmetric(rng, n):
    """Symmetric except one perturbed (or one extra) off-diagonal
    entry — must NOT pass the symmetry validators."""
    r, c, v = _mirror(*_random_lower(rng, max(n, 2), 0.4))
    off = np.flatnonzero(r != c)
    if off.size and rng.random() < 0.5:
        i = int(rng.choice(off))
        v = v.copy()
        v[i] += 0.5 + rng.random()  # value asymmetry
    else:
        i = int(rng.integers(0, n - 1))
        r = np.concatenate([r, [i]])
        c = np.concatenate([c, [i + 1]])
        v = np.concatenate([v, [3.0 + rng.random()]])
        # remove the mirrored twin if present so the pattern is skewed
        twin = (r == i + 1) & (c == i)
        if twin.any():
            keep = ~twin
            r, c, v = r[keep], c[keep], v[keep]
    return r.astype(np.int64), c.astype(np.int64), v


_SYM_KINDS = {
    "sym_random": _gen_sym_random,
    "sym_duplicates": _gen_sym_duplicates,
    "sym_explicit_zeros": _gen_sym_explicit_zeros,
    "sym_empty_rows": _gen_sym_empty_rows,
    "sym_disconnected": _gen_sym_disconnected,
    "sym_single": _gen_sym_single,
    "sym_skew": _gen_sym_skew,
    "sym_extreme_values": _gen_sym_extreme_values,
    "sym_banded_runs": _gen_sym_banded_runs,
}

_UNSYM_KINDS = {
    "unsym_random": _gen_unsym_random,
    "near_symmetric": _gen_near_symmetric,
}

#: All generator kind names, in rotation order (symmetric kinds first
#: and more often — they drive the full format zoo).
CASE_KINDS = tuple(_SYM_KINDS) + tuple(_UNSYM_KINDS)


def generate_case(seed: int, index: int) -> FuzzCase:
    """Deterministically generate the ``index``-th case of a run."""
    rng = case_rng(seed, index)
    kind = CASE_KINDS[index % len(CASE_KINDS)]
    n = int(rng.integers(1, 25))
    if kind in _SYM_KINDS:
        r, c, v = _SYM_KINDS[kind](rng, n)
        symmetric = True
    else:
        n = max(n, 2)
        r, c, v = _UNSYM_KINDS[kind](rng, n)
        symmetric = False
    r, c, v = _shuffle(rng, r, c, v)
    return FuzzCase(
        name=kind, seed=seed, index=index, shape=(n, n),
        rows=r, cols=c, vals=v, symmetric=symmetric,
    )


# ----------------------------------------------------------------------
# Dirty MatrixMarket text
# ----------------------------------------------------------------------
def generate_mm_case(seed: int, index: int) -> MMCase:
    """A MatrixMarket text with one adversarial trait: whitespace
    comments, upper-triangle entries in a symmetric file, duplicate
    coordinates, wrong entry counts, junk tokens, out-of-range indices.

    ``expect_error=False`` cases must parse to exactly ``dense``;
    ``expect_error=True`` cases must raise a
    :class:`~repro.formats.validate.ValidationError`.
    """
    rng = case_rng(seed, 10_000_019 + index)
    n = int(rng.integers(1, 8))
    dense = np.zeros((n, n))
    mask = np.tril(rng.random((n, n)) < 0.5)
    r, c = np.nonzero(mask)
    v = np.round(rng.uniform(-2, 2, r.size), 3)
    dense[r, c] = v
    dense = dense + np.tril(dense, -1).T  # symmetric oracle

    trait = index % 6
    entries = [
        f"{i + 1} {j + 1} {float(val)!r}" for i, j, val in zip(r, c, v)
    ]
    header = "%%MatrixMarket matrix coordinate real symmetric"
    if trait == 0:
        # Comments with leading whitespace sprinkled through the body.
        body = []
        for e in entries:
            if rng.random() < 0.4:
                body.append("  % indented comment")
            body.append(e)
        lines = [header, f"{n} {n} {r.size}", *body]
        return MMCase("mm_ws_comments", seed, index,
                      "\n".join(lines) + "\n", dense, False)
    if trait == 1:
        # Some entries stored in the upper triangle (mirrored on read).
        flipped = [
            f"{j + 1} {i + 1} {float(val)!r}"
            if (i != j and rng.random() < 0.5)
            else f"{i + 1} {j + 1} {float(val)!r}"
            for i, j, val in zip(r, c, v)
        ]
        lines = [header, f"{n} {n} {r.size}", *flipped]
        return MMCase("mm_upper_entries", seed, index,
                      "\n".join(lines) + "\n", dense, False)
    if trait == 2:
        # A duplicated coordinate line: must be rejected.
        if not entries:
            entries = ["1 1 1.0"]
            dup = ["1 1 1.0"]
        else:
            dup = [entries[int(rng.integers(0, len(entries)))]]
        lines = [header, f"{n} {n} {len(entries) + 1}", *entries, *dup]
        return MMCase("mm_duplicate", seed, index,
                      "\n".join(lines) + "\n", None, True)
    if trait == 3:
        # Declared nnz disagrees with the body.
        lines = [header, f"{n} {n} {r.size + 2}", *entries]
        return MMCase("mm_bad_count", seed, index,
                      "\n".join(lines) + "\n", None, True)
    if trait == 4:
        # Junk token in one entry line.
        bad = entries + [f"{n} {n} zebra"]
        lines = [header, f"{n} {n} {len(bad)}", *bad]
        return MMCase("mm_junk_value", seed, index,
                      "\n".join(lines) + "\n", None, True)
    # trait == 5: out-of-range coordinate.
    bad = entries + [f"{n + 3} 1 1.0"]
    lines = [header, f"{n} {n} {len(bad)}", *bad]
    return MMCase("mm_oob_index", seed, index,
                  "\n".join(lines) + "\n", None, True)
