"""Differential fuzzing of the format × driver × kernel matrix.

``repro.fuzz`` generates seed-deterministic adversarial matrices
(duplicates, explicit zeros, empty rows, disconnected graphs, extreme
value skew, near-symmetric impostors, dirty MatrixMarket text), drives
every storage format through the serial kernels, the parallel drivers
and the bound operators, and cross-checks each result against a dense
NumPy oracle under ULP-aware tolerances.  Failures shrink to a minimal
reproducer emitted as a ready-to-paste regression test.

Entry points: :func:`run_fuzz` (library), ``repro fuzz`` (CLI).
"""

from .generators import (
    CASE_KINDS,
    FuzzCase,
    MMCase,
    case_rng,
    generate_case,
    generate_mm_case,
)
from .harness import (
    Combo,
    FuzzConfig,
    FuzzReport,
    Mismatch,
    all_combos,
    assert_combo,
    run_fuzz,
)
from .oracle import check_against_oracle, max_error_ratio, tolerance
from .shrink import emit_regression_test, shrink_case

__all__ = [
    "FuzzCase",
    "MMCase",
    "CASE_KINDS",
    "case_rng",
    "generate_case",
    "generate_mm_case",
    "Combo",
    "FuzzConfig",
    "FuzzReport",
    "Mismatch",
    "all_combos",
    "assert_combo",
    "run_fuzz",
    "tolerance",
    "max_error_ratio",
    "check_against_oracle",
    "shrink_case",
    "emit_regression_test",
]
