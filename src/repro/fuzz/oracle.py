"""Dense NumPy oracle with ULP-aware tolerances.

Every kernel under test computes ``y[i] = sum_j a_ij * x_j`` in *some*
summation order.  Two correct implementations may disagree by the
accumulated rounding of their orderings, which for a row with ``m``
terms is bounded by ``O(m) * eps * sum_j |a_ij * x_j|`` — a bound on
the **magnitude sum**, not on the (possibly cancelling) result.  A
fixed ``allclose(rtol=...)`` would either mask real bugs on
well-conditioned rows or false-positive on cancelling / extreme-value
rows; the per-element bound below does neither.
"""

from __future__ import annotations

import numpy as np

__all__ = ["tolerance", "max_error_ratio", "check_against_oracle"]

_EPS = float(np.finfo(np.float64).eps)

#: Safety factor over the analytic worst case: two orderings (2x), the
#: symmetric kernels' split direct/transposed accumulation, and the
#: reduction phase's extra adds.
_SAFETY = 8.0


def tolerance(dense: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Elementwise acceptance bound for ``A @ x`` against any correct
    summation order.

    ``x`` may be ``(n,)`` or ``(n, k)``; the bound has the product's
    shape.  Rows whose products are all exactly zero get a zero bound —
    every correct kernel returns exactly ``0.0`` there.
    """
    abs_a = np.abs(dense)
    mag = abs_a @ np.abs(x)
    terms = (dense != 0).sum(axis=1).astype(np.float64) + 4.0
    if x.ndim == 2:
        terms = terms[:, None]
    return _SAFETY * _EPS * terms * mag


def max_error_ratio(
    y: np.ndarray, ref: np.ndarray, tol: np.ndarray
) -> float:
    """``max |y - ref| / tol`` with 0/0 treated as in-tolerance.

    A ratio <= 1 is a pass; the magnitude beyond 1 tells how badly a
    mismatch exceeds the rounding budget (a real bug is typically
    orders of magnitude out).
    """
    err = np.abs(y - ref)
    if err.size == 0:
        return 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(err == 0, 0.0, err / tol)
    # err > 0 where tol == 0 divides to +inf: a hard mismatch.
    return float(np.nanmax(ratio)) if ratio.size else 0.0


def check_against_oracle(
    y: np.ndarray, dense: np.ndarray, x: np.ndarray
) -> tuple[bool, float]:
    """``(ok, worst_ratio)`` of a kernel result against the dense
    oracle under the ULP-aware bound."""
    ref = dense @ x
    if y.shape != ref.shape:
        return False, float("inf")
    if not np.isfinite(y).all():
        return False, float("inf")
    ratio = max_error_ratio(y, ref, tolerance(dense, x))
    return ratio <= 1.0, ratio
