"""Differential fuzzing harness: formats × drivers × ops vs the oracle.

Each generated :class:`~repro.fuzz.generators.FuzzCase` is driven
through a deterministic rotation of :class:`Combo` configurations —
every storage format, through the serial kernels, the parallel drivers
(:class:`~repro.parallel.spmv.ParallelSpMV` /
:class:`~repro.parallel.spmv.ParallelSymmetricSpMV` with all three
reductions) and the bound operators, for both SpM×V and SpM×M — and
each result is checked against the dense NumPy oracle under the
ULP-aware tolerance of :mod:`repro.fuzz.oracle`.

A mismatch is shrunk (:mod:`repro.fuzz.shrink`) to a minimal
reproducer and rendered as a ready-to-paste regression test.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..formats import (
    BCSRMatrix,
    COOMatrix,
    CSBMatrix,
    CSBSymMatrix,
    CSRMatrix,
    CSXMatrix,
    CSXSymMatrix,
    SSSMatrix,
    SymmetryError,
    ValidationError,
)
from ..parallel import (
    Executor,
    ParallelSpMV,
    ParallelSymmetricSpMV,
    partition_nnz_balanced,
)
from ..resilience import (
    BatchExecutionError,
    ChaosInjectedError,
    ChaosPlan,
    PoisonedOperatorError,
)
from .generators import FuzzCase, generate_case, generate_mm_case
from .oracle import check_against_oracle

__all__ = [
    "Combo",
    "FuzzConfig",
    "Mismatch",
    "FuzzReport",
    "all_combos",
    "run_fuzz",
    "assert_combo",
]

SYMMETRIC_FORMATS = ("sss", "csx-sym", "csb-sym")
GENERAL_FORMATS = ("coo", "csr", "bcsr", "csb", "csx")
GENERAL_DRIVER_FORMATS = ("csr", "csx")
REDUCTIONS = ("naive", "effective", "indexed", "coloring")
#: Symmetric formats with a recoverable lower-triangle CSR triple —
#: the only ones the conflict-free "coloring" reduction runs on.
COLORING_FORMATS = ("sss", "csx-sym")

#: Block size for the CSB formats (small, so tiny cases still tile).
CSB_BETA = 4


@dataclass(frozen=True)
class Combo:
    """One (format, driver, operation) configuration under test."""

    fmt: str
    driver: str  # "serial" | "parallel" | "bound"
    op: str  # "spmv" | "spmm"
    reduction: str = "indexed"
    p: int = 2
    k: int = 3

    def describe(self) -> str:
        bits = [self.fmt, self.driver, self.op]
        if self.driver != "serial":
            bits.append(f"p={self.p}")
            if self.fmt in SYMMETRIC_FORMATS:
                bits.append(self.reduction)
        if self.op == "spmm":
            bits.append(f"k={self.k}")
        return "/".join(bits)

    # ------------------------------------------------------------------
    def _partitions(self, coo: COOMatrix, matrix=None):
        parts = partition_nnz_balanced(coo.row_counts(), self.p)
        if self.fmt == "csb-sym" and matrix is not None:
            n_brows = -(-matrix.n_rows // matrix.beta)
            return matrix.block_row_partitions(min(self.p, n_brows))
        return parts

    def _build(self, coo: COOMatrix, executor: Optional[Executor] = None):
        """(matrix, apply_callable) for this combo."""
        if self.driver == "serial":
            builders = {
                "coo": lambda: coo,
                "csr": lambda: CSRMatrix.from_coo(coo),
                "sss": lambda: SSSMatrix.from_coo(coo),
                "bcsr": lambda: BCSRMatrix(coo, (2, 2)),
                "csb": lambda: CSBMatrix(coo, beta=CSB_BETA),
                "csb-sym": lambda: CSBSymMatrix(coo, beta=CSB_BETA),
                "csx": lambda: CSXMatrix(coo),
                "csx-sym": lambda: CSXSymMatrix(coo),
            }
            m = builders[self.fmt]()
            return m.spmv if self.op == "spmv" else m.spmm

        if self.fmt in SYMMETRIC_FORMATS:
            if self.fmt == "sss":
                m = SSSMatrix.from_coo(coo)
                parts = self._partitions(coo)
            elif self.fmt == "csx-sym":
                parts = self._partitions(coo)
                m = CSXSymMatrix(coo, partitions=parts)
            else:
                m = CSBSymMatrix(coo, beta=CSB_BETA)
                parts = self._partitions(coo, m)
            drv = ParallelSymmetricSpMV(
                m, parts, self.reduction, executor=executor
            )
        else:
            parts = self._partitions(coo)
            if self.fmt == "csr":
                m = CSRMatrix.from_coo(coo)
            else:
                m = CSXMatrix(coo, partitions=parts)
            drv = ParallelSpMV(m, parts, executor=executor)

        if self.driver == "parallel":
            return drv
        return drv.bind(None if self.op == "spmv" else self.k)

    def run(
        self,
        case: FuzzCase,
        chaos_plan: Optional[ChaosPlan] = None,
        executor_mode: Optional[str] = None,
    ) -> tuple[bool, str, float]:
        """Drive the combo on ``case``; ``(ok, failure_kind, ratio)``.

        ``failure_kind`` is ``""`` on success, ``"mismatch"`` on an
        oracle disagreement, or ``"exception:<Type>"`` when building or
        applying raised. A ``chaos_plan`` routes the parallel/bound
        drivers through ``Executor("chaos", plan=...)`` — injected
        faults then surface as the typed containment exceptions, which
        the harness classifies (serial combos ignore the plan: there is
        no batch to disrupt). ``executor_mode`` instead picks a plain
        backend ("threads"/"processes") for the parallel/bound drivers
        — the cross-backend rotation of the fuzz-smoke CI job; note the
        process backend only truly engages for bound combos.
        """
        executor = None
        if self.driver != "serial":
            if chaos_plan is not None:
                executor = Executor("chaos", plan=chaos_plan)
            elif executor_mode is not None:
                executor = Executor(executor_mode, max_workers=2)
        try:
            dense = case.dense
            apply = self._build(case.coo, executor)
            k = None if self.op == "spmv" else self.k
            x = _rhs(case, k)
            if self.driver == "bound":
                try:
                    # Two applications through the persistent workspace:
                    # the second catches stale-state zeroing bugs.
                    y0 = np.array(apply(_rhs(case, k, salt=1)))
                    ok0, r0 = check_against_oracle(
                        y0, dense, _rhs(case, k, salt=1)
                    )
                    y = np.array(apply(x))
                finally:
                    apply.close()
                if not ok0:
                    return False, "mismatch", r0
            else:
                y = apply(x)
            ok, ratio = check_against_oracle(y, dense, x)
            return (True, "", ratio) if ok else (False, "mismatch", ratio)
        except Exception as exc:  # noqa: BLE001 - harness boundary
            return False, f"exception:{type(exc).__name__}", float("inf")
        finally:
            if executor is not None:
                executor.close()


def _rhs(case: FuzzCase, k: Optional[int], salt: int = 0) -> np.ndarray:
    rng = np.random.default_rng([case.seed, case.index, 777 + salt])
    shape = (case.n,) if k is None else (case.n, k)
    return rng.standard_normal(shape)


def all_combos(k: int = 3) -> list[Combo]:
    """The full format × driver × (spmv, spmm) configuration matrix."""
    combos: list[Combo] = []
    for op in ("spmv", "spmm"):
        for fmt in GENERAL_FORMATS + SYMMETRIC_FORMATS:
            combos.append(Combo(fmt, "serial", op, k=k))
        for fmt in SYMMETRIC_FORMATS:
            for red in REDUCTIONS:
                if red == "coloring" and fmt not in COLORING_FORMATS:
                    continue
                combos.append(
                    Combo(fmt, "parallel", op, reduction=red, p=3, k=k)
                )
            combos.append(Combo(fmt, "bound", op, p=2, k=k))
        for fmt in GENERAL_DRIVER_FORMATS:
            combos.append(Combo(fmt, "parallel", op, p=3, k=k))
            combos.append(Combo(fmt, "bound", op, p=2, k=k))
    return combos


def _applicable(combo: Combo, case: FuzzCase) -> bool:
    if case.symmetric:
        return True
    return combo.fmt not in SYMMETRIC_FORMATS


# ----------------------------------------------------------------------
# Run orchestration
# ----------------------------------------------------------------------
@dataclass
class FuzzConfig:
    """Harness parameters (all deterministic given ``seed``)."""

    cases: int = 500
    seed: int = 0
    budget: Optional[float] = None  # wall-clock seconds, None = no cap
    k: int = 3
    stride: int = 4  # each case runs 1/stride of the combo matrix
    mm_every: int = 4  # dirty-MatrixMarket case every N matrix cases
    shrink: bool = True
    max_mismatches: int = 5
    #: Re-run every parallel/bound combo through a chaos executor with a
    #: rotated fault plan; injected faults must either be contained in
    #: the typed resilience exceptions or leave the output bit-correct.
    chaos: bool = False
    #: Under ``chaos``, every N-th symmetric case also runs the
    #: out-of-core rotation: the case is ingested to disk shards and
    #: applied through a :class:`~repro.ooc.ShardedOperator` whose
    #: reads suffer injected disk faults — the result must match the
    #: oracle (faults absorbed by retry/re-ingest) or fail with a typed
    #: ooc error, never silently corrupt. 0 disables.
    ooc_every: int = 8
    #: Executor backend for the parallel/bound combos ("threads" or
    #: "processes"; None keeps the drivers' default serial executor).
    executor_mode: Optional[str] = None


@dataclass
class Mismatch:
    """One verified oracle disagreement (or harness-level crash)."""

    case: FuzzCase
    combo: Combo
    kind: str
    ratio: float
    shrunk: Optional[FuzzCase] = None
    reproducer: str = ""

    def describe(self) -> str:
        size = self.case.rows.size
        extra = (
            f", shrunk to {self.shrunk.rows.size} entries"
            if self.shrunk is not None else ""
        )
        return (
            f"{self.combo.describe()} on case "
            f"{self.case.name}[seed={self.case.seed}, "
            f"index={self.case.index}] ({size} raw entries{extra}): "
            f"{self.kind}, error ratio {self.ratio:.3g}"
        )


@dataclass
class FuzzReport:
    """Aggregate outcome of one harness run."""

    config: FuzzConfig
    cases_run: int = 0
    mm_cases_run: int = 0
    checks_run: int = 0
    rejections_checked: int = 0
    coloring_checks: int = 0
    chaos_checks: int = 0
    chaos_contained: int = 0  # chaos runs stopped by a typed error
    ooc_checks: int = 0
    ooc_contained: int = 0  # ooc runs stopped by a typed ooc error
    combos_covered: set = field(default_factory=set)
    mismatches: list = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        chaos = (
            f", {self.chaos_checks} chaos checks "
            f"({self.chaos_contained} contained)"
            if self.chaos_checks else ""
        )
        if self.ooc_checks:
            chaos += (
                f", {self.ooc_checks} ooc checks "
                f"({self.ooc_contained} contained)"
            )
        lines = [
            f"fuzz: {self.cases_run} matrix cases + {self.mm_cases_run} "
            f"MatrixMarket cases, {self.checks_run} oracle checks, "
            f"{self.rejections_checked} rejection checks, "
            f"{self.coloring_checks} coloring checks"
            f"{chaos}, "
            f"{len(self.combos_covered)} combos covered, "
            f"{self.elapsed:.1f}s",
            f"seed {self.config.seed} -> "
            + ("PASS" if self.ok else f"{len(self.mismatches)} MISMATCH(ES)"),
        ]
        for m in self.mismatches:
            lines.append("  " + m.describe())
        return "\n".join(lines)


def _check_mm_case(mm) -> tuple[bool, str]:
    """Differential check of one dirty-MatrixMarket text."""
    import io as _io

    from ..matrices.mmio import read_matrix_market

    try:
        got = read_matrix_market(_io.StringIO(mm.text))
    except ValidationError:
        if mm.expect_error:
            return True, ""
        return False, "parse raised on well-formed text"
    except Exception as exc:  # noqa: BLE001
        return False, f"untyped parse error {type(exc).__name__}"
    if mm.expect_error:
        return False, "malformed text parsed silently"
    if not np.array_equal(got.to_dense(), mm.dense):
        return False, "parsed matrix differs from reference"
    return True, ""


def _check_symmetry_rejection(case: FuzzCase) -> list[tuple[Combo, str]]:
    """Symmetric-only builders must reject a near-symmetric matrix."""
    failures = []
    builders = {
        "sss": lambda c: SSSMatrix.from_coo(c),
        "csx-sym": lambda c: CSXSymMatrix(c),
        "csb-sym": lambda c: CSBSymMatrix(c, beta=CSB_BETA),
    }
    for fmt, build in builders.items():
        try:
            build(case.coo)
        except SymmetryError:
            continue
        except Exception as exc:  # noqa: BLE001
            failures.append(
                (Combo(fmt, "serial", "spmv"),
                 f"wrong-rejection:{type(exc).__name__}")
            )
            continue
        failures.append(
            (Combo(fmt, "serial", "spmv"), "accepted-asymmetric")
        )
    return failures


def _check_coloring(case: FuzzCase) -> list[tuple[Combo, str]]:
    """Distance-2 coloring of the case's SSS form must verify."""
    from ..parallel import distance2_coloring, verify_coloring

    combo = Combo("sss", "parallel", "spmv", reduction="coloring")
    try:
        sss = SSSMatrix.from_coo(case.coo)
        colors = distance2_coloring(sss)
        if not verify_coloring(sss, colors):
            return [(combo, "coloring-invalid")]
    except Exception as exc:  # noqa: BLE001 - harness boundary
        return [(combo, f"coloring-exception:{type(exc).__name__}")]
    return []


#: Exceptions that count as *contained* chaos outcomes: the executor,
#: bound operator, or injected fault itself surfaced through the typed
#: resilience taxonomy instead of corrupting the output.
_CONTAINED_ERRORS = frozenset(
    cls.__name__
    for cls in (BatchExecutionError, PoisonedOperatorError, ChaosInjectedError)
)

#: Typed out-of-core failures that count as contained outcomes of the
#: disk-fault rotation (see :class:`FuzzConfig.ooc_every`).
_OOC_CONTAINED_ERRORS = frozenset(
    ("ShardIOError", "ShardChecksumError", "CheckpointError")
)


def _check_ooc(case: FuzzCase, config: FuzzConfig, index: int):
    """Out-of-core disk-fault rotation for one symmetric case.

    Ingests the case to real on-disk shards in a temp dir, then applies
    a :class:`~repro.ooc.ShardedOperator` whose shard reads go through
    a ``p_io`` chaos plan. Returns ``(ok, kind, contained)``: the apply
    must be oracle-correct (faults absorbed by bounded retry and
    re-ingest) or stop with a typed ooc error — silent corruption and
    untyped escapes are mismatches. The fault rate alternates between a
    mostly-recoverable and a mostly-fatal regime so both the absorb and
    the escalate paths stay exercised.
    """
    import tempfile
    from pathlib import Path

    from ..ooc import ShardedOperator, ShardStore, ingest_matrix_market

    lower = case.coo.lower_triangle()
    with tempfile.TemporaryDirectory(prefix="fuzz-ooc-") as tmp:
        mm = Path(tmp) / "case.mtx"
        lines = [
            "%%MatrixMarket matrix coordinate real symmetric",
            f"{case.n} {case.n} {lower.nnz}",
        ]
        lines.extend(
            f"{int(r) + 1} {int(c) + 1} {float(v)!r}"
            for r, c, v in zip(lower.rows, lower.cols, lower.vals)
        )
        mm.write_text("\n".join(lines) + "\n")
        x = _rhs(case, None)
        try:
            ingest_matrix_market(
                mm, Path(tmp) / "shards",
                shard_nnz=max(2, lower.nnz // 3 + 1), chunk_nnz=16,
            )
            plan = ChaosPlan(
                seed=config.seed * 1_000_003 + index * 7_919,
                p_io=0.85 if (index // max(1, config.ooc_every)) % 2
                else 0.25,
                p_delay=0.0, reorder=False,
            )
            store = ShardStore(
                Path(tmp) / "shards", chaos=plan, max_retries=1
            )
            y = ShardedOperator(store, n_threads=2)(x)
        except Exception as exc:  # noqa: BLE001 - harness boundary
            name = type(exc).__name__
            if name in _OOC_CONTAINED_ERRORS:
                return True, "", True
            return False, f"ooc-exception:{name}", False
    ok, ratio = check_against_oracle(y, case.dense, x)
    return (ok, "" if ok else "ooc-mismatch", False)


def _chaos_plan(config: FuzzConfig, index: int, ci: int) -> ChaosPlan:
    """Rotated deterministic fault plan for one (case, combo) pair.

    Alternates exception-bearing and delay/reorder-only plans so both
    halves of the containment property get exercised: typed-error
    propagation on one half, bit-identical output under pure scheduling
    perturbation on the other.
    """
    return ChaosPlan(
        seed=config.seed * 1_000_003 + index * 101 + ci,
        p_raise=0.25 if (index + ci) % 2 == 0 else 0.0,
        p_delay=0.3,
        max_delay_ms=0.3,
        reorder=True,
    )


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Run the differential harness; deterministic given the config."""
    from .shrink import emit_regression_test, shrink_case

    report = FuzzReport(config=config)
    combos = all_combos(config.k)
    start = time.monotonic()
    mm_index = 0

    for index in range(config.cases):
        if config.budget is not None and (
            time.monotonic() - start > config.budget
        ):
            break
        case = generate_case(config.seed, index)

        # Library canonicalization vs the raw accumulation oracle.
        dense = case.dense
        report.checks_run += 1
        lib = case.coo.to_dense()
        absmag = np.zeros(case.shape)
        np.add.at(absmag, (case.rows, case.cols), np.abs(case.vals))
        tol = 16 * np.finfo(np.float64).eps * absmag
        if np.any(np.abs(lib - dense) > tol):
            report.mismatches.append(
                Mismatch(case, Combo("coo", "serial", "spmv"),
                         "canonicalization-mismatch", float("inf"))
            )

        # Dirty (duplicate-preserving) instance must agree symmetric-
        # verdict-wise with the oracle.
        report.checks_run += 1
        sym_oracle = bool(
            np.allclose(dense, dense.T, rtol=1e-6, atol=0.0)
        )
        if case.dirty_coo.is_symmetric(rtol=1e-6) != sym_oracle:
            report.mismatches.append(
                Mismatch(case, Combo("coo", "serial", "spmv"),
                         "symmetry-verdict-mismatch", float("inf"))
            )

        # Every symmetric draw must produce a *valid* distance-2
        # coloring — adversarial shapes (empty rows, disconnected
        # components, duplicate entries) included. Validity is checked
        # by the independent verifier, not trusted from the builder.
        if case.symmetric:
            report.checks_run += 1
            report.coloring_checks += 1
            for combo, kind in _check_coloring(case):
                report.mismatches.append(
                    Mismatch(case, combo, kind, float("inf"))
                )

        # Out-of-core rotation: real disk shards + injected io faults.
        if config.chaos and config.ooc_every and case.symmetric and (
            case.n >= 2 and case.coo.nnz > 0
            and index % config.ooc_every == 0
        ):
            report.checks_run += 1
            report.ooc_checks += 1
            ok_o, kind_o, contained = _check_ooc(case, config, index)
            if contained:
                report.ooc_contained += 1
            if not ok_o:
                report.mismatches.append(
                    Mismatch(case, Combo("sss", "parallel", "spmv"),
                             kind_o, float("inf"))
                )

        # A generator labelled "unsymmetric" can still draw a matrix
        # that happens to be symmetric (empty, single diagonal entry);
        # only genuinely asymmetric draws must be rejected.
        if not case.symmetric and not sym_oracle:
            report.rejections_checked += 3
            for combo, kind in _check_symmetry_rejection(case):
                report.mismatches.append(
                    Mismatch(case, combo, kind, float("inf"))
                )

        for ci, combo in enumerate(combos):
            if ci % config.stride != index % config.stride:
                continue
            if not _applicable(combo, case):
                continue
            ok, kind, ratio = combo.run(
                case, executor_mode=config.executor_mode
            )
            report.checks_run += 1
            report.combos_covered.add(combo.describe())
            if not ok:
                mis = Mismatch(case, combo, kind, ratio)
                if config.shrink:
                    mis.shrunk = shrink_case(case, combo, kind)
                    mis.reproducer = emit_regression_test(
                        mis.shrunk or case, combo, kind
                    )
                else:
                    mis.reproducer = emit_regression_test(case, combo, kind)
                report.mismatches.append(mis)

            # Containment property: the same combo under an injected
            # fault plan must either raise a typed resilience error or
            # produce oracle-correct output — never corrupt silently.
            if config.chaos and combo.driver != "serial" and ok:
                plan = _chaos_plan(config, index, ci)
                ok_c, kind_c, ratio_c = combo.run(case, chaos_plan=plan)
                report.checks_run += 1
                report.chaos_checks += 1
                if not ok_c and kind_c.split(":", 1)[-1] in _CONTAINED_ERRORS:
                    report.chaos_contained += 1
                    ok_c = True
                if not ok_c:
                    mis = Mismatch(case, combo, f"chaos:{kind_c}", ratio_c)
                    # ddmin shrinking replays without the chaos plan, so
                    # it cannot reproduce a chaos-only failure; emit a
                    # replay recipe instead of a shrunk reproducer.
                    mis.reproducer = (
                        f"# chaos replay: seed={config.seed} "
                        f"index={index} combo={combo.describe()} "
                        f"plan(seed={plan.seed}, p_raise={plan.p_raise}, "
                        f"p_delay={plan.p_delay}, "
                        f"max_delay_ms={plan.max_delay_ms})\n"
                        f"# rerun: repro fuzz --chaos "
                        f"--seed {config.seed} --cases {config.cases}\n"
                    )
                    report.mismatches.append(mis)
            if len(report.mismatches) >= config.max_mismatches:
                break
        if len(report.mismatches) >= config.max_mismatches:
            break

        # Interleave dirty MatrixMarket texts.
        if config.mm_every and index % config.mm_every == 0:
            mm = generate_mm_case(config.seed, mm_index)
            mm_index += 1
            report.mm_cases_run += 1
            report.checks_run += 1
            ok, why = _check_mm_case(mm)
            if not ok:
                mm_fail = FuzzCase(
                    name=mm.name, seed=mm.seed, index=mm.index,
                    shape=(0, 0),
                    rows=np.zeros(0, dtype=np.int64),
                    cols=np.zeros(0, dtype=np.int64),
                    vals=np.zeros(0), symmetric=True,
                )
                report.mismatches.append(
                    Mismatch(mm_fail, Combo("coo", "serial", "spmv"),
                             f"mmio:{why}", float("inf"))
                )
        report.cases_run += 1

    report.elapsed = time.monotonic() - start
    return report


# ----------------------------------------------------------------------
# Reproducer entry point (what the emitted regression tests call)
# ----------------------------------------------------------------------
def assert_combo(
    shape: tuple[int, int],
    rows,
    cols,
    vals,
    *,
    fmt: str,
    driver: str,
    op: str,
    reduction: str = "indexed",
    p: int = 2,
    k: int = 3,
    seed: int = 0,
    index: int = 0,
    symmetric: bool = True,
) -> None:
    """Re-run one (case, combo) pair and assert it matches the oracle.

    Emitted reproducers call this with literal arrays, so a fuzz
    failure can be pasted into the test suite verbatim.
    """
    case = FuzzCase(
        name="reproducer", seed=seed, index=index, shape=tuple(shape),
        rows=np.asarray(rows, dtype=np.int64),
        cols=np.asarray(cols, dtype=np.int64),
        vals=np.asarray(vals, dtype=np.float64),
        symmetric=symmetric,
    )
    combo = Combo(fmt, driver, op, reduction=reduction, p=p, k=k)
    ok, kind, ratio = combo.run(case)
    assert ok, (
        f"{combo.describe()} disagrees with the dense oracle "
        f"({kind}, error ratio {ratio:.3g})"
    )
