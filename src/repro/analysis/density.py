"""Effective-region density measurement (paper Fig. 4, Section III-C).

The density ``d`` of the local vectors' effective regions — the
fraction of entries in ``[0, start_i)`` a thread actually writes —
drives the working-set of the indexing scheme (eqs. 5-6). It falls as
threads are added (each partition's transposed writes concentrate near
its own boundary), which is why the indexed reduction stabilizes where
the other methods grow linearly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..formats.base import SymmetricFormat
from ..formats.coo import COOMatrix
from ..formats.sss import SSSMatrix
from ..parallel.partition import partition_nnz_balanced
from ..parallel.reduction import IndexedReduction

__all__ = ["DensityPoint", "effective_region_density", "density_sweep"]


@dataclass(frozen=True)
class DensityPoint:
    """Density of one (matrix, thread count) configuration."""

    matrix: str
    n_threads: int
    density: float
    index_pairs: int


def effective_region_density(
    matrix: SymmetricFormat, n_threads: int
) -> tuple[float, int]:
    """Measured effective-region density at ``n_threads`` threads.

    Partitions are nnz-balanced as in all the paper's experiments.
    Returns ``(density, index_pairs)``.
    """
    if isinstance(matrix, SSSMatrix):
        weights = matrix.expanded_row_nnz()
    else:
        weights = np.ones(matrix.n_rows)
    partitions = partition_nnz_balanced(weights, n_threads)
    red = IndexedReduction(matrix, partitions)
    return red.effective_density(), red.n_pairs


def density_sweep(
    matrices: Mapping[str, COOMatrix],
    thread_counts: Sequence[int],
) -> list[DensityPoint]:
    """Fig. 4's sweep: density per matrix per thread count.

    ``thread_counts`` may exceed physical machines — the figure goes to
    256 threads; density is a property of the partitioning alone.
    """
    points: list[DensityPoint] = []
    for name, coo in matrices.items():
        sss = SSSMatrix.from_coo(coo)
        for p in thread_counts:
            if p < 2:
                continue  # a single thread has no effective region
            d, pairs = effective_region_density(sss, p)
            points.append(DensityPoint(name, p, d, pairs))
    return points


def average_density(points: Iterable[DensityPoint]) -> dict[int, float]:
    """Suite-average density per thread count (the Fig. 4 curve)."""
    by_p: dict[int, list[float]] = {}
    for pt in points:
        by_p.setdefault(pt.n_threads, []).append(pt.density)
    return {p: float(np.mean(ds)) for p, ds in sorted(by_p.items())}
