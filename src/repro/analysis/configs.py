"""Configuration factory: build any of the four evaluated formats for a
given thread layout, mirroring the paper's measurement framework that
"interfaces with the storage format implementations through a
well-defined sparse matrix-vector multiplication interface" (§V-A).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..formats.csx import CSXMatrix, CSXSymMatrix, DetectionConfig
from ..formats.sss import SSSMatrix
from ..parallel.partition import partition_nnz_balanced

__all__ = ["FORMAT_NAMES", "build_format", "thread_partitions"]

FORMAT_NAMES = ("csr", "csx", "sss", "csx-sym")

AnyFormat = Union[CSRMatrix, CSXMatrix, SSSMatrix, CSXSymMatrix]


def thread_partitions(
    coo: COOMatrix, n_threads: int, symmetric: bool
) -> list[tuple[int, int]]:
    """nnz-balanced partitions for ``n_threads``.

    Symmetric kernels are balanced on the expanded row counts (their
    real per-row work); unsymmetric ones on stored rows.
    """
    weights = coo.row_counts()
    return partition_nnz_balanced(weights, n_threads)


def build_format(
    coo: COOMatrix,
    format_name: str,
    n_threads: int = 1,
    detection: Optional[DetectionConfig] = None,
) -> tuple[AnyFormat, list[tuple[int, int]]]:
    """Build ``format_name`` preprocessed for ``n_threads`` threads.

    Returns ``(matrix, partitions)`` — CSX formats bake the partitions
    in; CSR/SSS accept any partitioning at call time but the same one is
    returned for symmetric-experiment consistency.
    """
    symmetric = format_name in ("sss", "csx-sym")
    partitions = thread_partitions(coo, n_threads, symmetric)
    if format_name == "csr":
        return CSRMatrix.from_coo(coo), partitions
    if format_name == "sss":
        return SSSMatrix.from_coo(coo), partitions
    if format_name == "csx":
        return CSXMatrix(coo, partitions=partitions, config=detection), partitions
    if format_name == "csx-sym":
        return (
            CSXSymMatrix(coo, partitions=partitions, config=detection),
            partitions,
        )
    raise ValueError(
        f"unknown format {format_name!r}; choose from {FORMAT_NAMES}"
    )
