"""Measured-vs-modeled attribution: span timings joined to the model.

The paper's argument is a *phase breakdown* — multiplication time vs
reduction time vs synchronization (§V, Fig. 9/10) — and the machine
model (:mod:`repro.machine.perfmodel`) reproduces those breakdowns for
the paper's platforms. This module closes the loop: it joins the
tracer's measured ``spmv.mult`` / ``spmv.reduce`` span durations
against the corresponding :class:`~repro.machine.perfmodel
.PredictedTime` terms and reports per-phase divergence.

Two comparisons come out, deliberately separated:

* **Absolute ratio** (``measured_s / modeled_s`` per phase): the model
  predicts the *paper's* platforms, not the machine running the tests,
  so this ratio is expected to be far from 1 on the host — it is the
  machine-transfer factor, interesting mainly for its stability across
  configurations.
* **Phase-share divergence** (measured share of total minus modeled
  share of total, per phase): machine-transferable. If the model says
  the reduction is 30 % of the application and the host measures 60 %,
  the *structure* of the prediction is wrong no matter the clock —
  this is the number the paper's claims stand on.

The barrier term: conflict-free (coloring) executions pay their
rendezvous *inside* the stepped multiplication phase, so the measured
``spmv.mult`` span already contains the barrier waits and there is no
separate barrier span to join. The report therefore carries a
``barrier`` row with the modeled time and a measured value folded into
``mult`` (the mult row's modeled side includes ``t_barrier`` for the
share comparison, keeping both sides of the divergence structurally
aligned).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..machine.perfmodel import PredictedTime
from ..obs.tracer import Tracer, percentile

__all__ = [
    "PhaseAttribution",
    "AttributionReport",
    "attribute_spmv",
]


@dataclass
class PhaseAttribution:
    """One phase's measured-vs-modeled join."""

    phase: str
    #: Median measured seconds per application (NaN when the phase has
    #: no span of its own — the barrier, folded into ``mult``).
    measured_s: float
    modeled_s: float
    measured_share: float
    modeled_share: float

    @property
    def ratio(self) -> float:
        """measured / modeled (the machine-transfer factor)."""
        if self.modeled_s <= 0 or self.measured_s != self.measured_s:
            return float("nan")
        return self.measured_s / self.modeled_s

    @property
    def share_divergence(self) -> float:
        """measured share minus modeled share (machine-transferable)."""
        if self.measured_share != self.measured_share:
            return float("nan")
        return self.measured_share - self.modeled_share

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "measured_s": self.measured_s,
            "modeled_s": self.modeled_s,
            "measured_share": self.measured_share,
            "modeled_share": self.modeled_share,
            "ratio": self.ratio,
            "share_divergence": self.share_divergence,
        }


@dataclass
class AttributionReport:
    """Per-phase measured-vs-modeled divergence of one configuration."""

    label: str
    platform: str
    n_applications: int
    phases: list = field(default_factory=list)
    measured_total_s: float = 0.0
    modeled_total_s: float = 0.0

    @property
    def total_ratio(self) -> float:
        if self.modeled_total_s <= 0:
            return float("nan")
        return self.measured_total_s / self.modeled_total_s

    @property
    def max_share_divergence(self) -> float:
        """Largest absolute phase-share divergence — the one-number
        answer to "does the measured breakdown match the modeled
        one"."""
        divs = [
            abs(p.share_divergence)
            for p in self.phases
            if p.share_divergence == p.share_divergence
        ]
        return max(divs) if divs else float("nan")

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "platform": self.platform,
            "n_applications": self.n_applications,
            "measured_total_s": self.measured_total_s,
            "modeled_total_s": self.modeled_total_s,
            "total_ratio": self.total_ratio,
            "max_share_divergence": self.max_share_divergence,
            "phases": [p.to_dict() for p in self.phases],
        }

    def render(self) -> str:
        title = f"attribution: {self.label} vs {self.platform} model"
        lines = [title, "=" * len(title)]
        lines.append(
            f"{'phase':<10} {'measured ms':>12} {'modeled ms':>12} "
            f"{'ratio':>9} {'meas share':>11} {'model share':>12} "
            f"{'diverge':>8}"
        )

        def fmt(v, spec, absent="   (in mult)"):
            return format(v, spec) if v == v else absent

        for p in self.phases:
            lines.append(
                f"{p.phase:<10} {fmt(p.measured_s * 1e3, '>12.4f')} "
                f"{p.modeled_s * 1e3:>12.4f} {fmt(p.ratio, '>9.2f')} "
                f"{fmt(p.measured_share, '>11.1%')} "
                f"{p.modeled_share:>12.1%} "
                f"{fmt(p.share_divergence, '>+8.1%', absent='        ')}"
            )
        lines.append(
            f"{'total':<10} {self.measured_total_s * 1e3:>12.4f} "
            f"{self.modeled_total_s * 1e3:>12.4f} "
            f"{self.total_ratio:>9.2f}"
        )
        lines.append(
            f"max |share divergence|: {self.max_share_divergence:.1%} "
            f"over {self.n_applications} applications"
        )
        lines.append(
            "(ratio is the host-to-modeled-platform transfer factor; "
            "share divergence is the machine-independent check)"
        )
        return "\n".join(lines)


def _median_span_s(durs_ns: Optional[list]) -> float:
    if not durs_ns:
        return float("nan")
    return percentile(durs_ns, 50) / 1e9


def attribute_spmv(
    tracer: Tracer,
    predicted: PredictedTime,
    *,
    platform_name: str = "model",
    label: Optional[str] = None,
) -> AttributionReport:
    """Join a tracer's recorded span durations against one
    :class:`PredictedTime`.

    The tracer must have recorded at least one ``spmv.mult`` span (a
    traced driver or bound-operator application); ``spmv.reduce`` is
    optional (unsymmetric drivers and conflict-free executions have no
    reduction phase). Measured per-phase values are the *median* over
    all recorded applications — robust to first-call cache effects.
    """
    durs = tracer.span_durations_ns()
    mult_ns = durs.get("spmv.mult")
    if not mult_ns:
        raise ValueError(
            "tracer has no 'spmv.mult' spans; run a traced driver or "
            "bound-operator application first"
        )
    measured_mult = _median_span_s(mult_ns)
    reduce_ns = durs.get("spmv.reduce")
    measured_reduce = _median_span_s(reduce_ns) if reduce_ns else 0.0

    measured_total = measured_mult + measured_reduce
    # The measured mult span contains any barrier waits (stepped
    # execution synchronizes inside the phase), so the mult row's
    # modeled side carries t_barrier too — both sides of the share
    # comparison then partition the same total.
    modeled_mult = predicted.t_mult + predicted.t_barrier
    modeled_total = modeled_mult + predicted.t_reduce

    def share(x: float, total: float) -> float:
        return x / total if total > 0 else float("nan")

    phases = [
        PhaseAttribution(
            "mult",
            measured_mult,
            modeled_mult,
            share(measured_mult, measured_total),
            share(modeled_mult, modeled_total),
        ),
        PhaseAttribution(
            "reduce",
            measured_reduce,
            predicted.t_reduce,
            share(measured_reduce, measured_total),
            share(predicted.t_reduce, modeled_total),
        ),
    ]
    if predicted.t_barrier > 0:
        phases.append(
            PhaseAttribution(
                "barrier",
                float("nan"),  # folded into the measured mult span
                predicted.t_barrier,
                float("nan"),
                share(predicted.t_barrier, modeled_total),
            )
        )
    fmt_label = label or (
        f"{predicted.format_name}"
        + (f"/{predicted.reduction}" if predicted.reduction else "")
        + f" p={predicted.n_threads}"
    )
    return AttributionReport(
        label=fmt_label,
        platform=platform_name,
        n_applications=len(mult_ns),
        phases=phases,
        measured_total_s=measured_total,
        modeled_total_s=modeled_total,
    )
