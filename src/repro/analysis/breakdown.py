"""Execution-time breakdowns (paper Fig. 10 and Fig. 14).

Fig. 10: symmetric SpM×V time split into multiplication and reduction
per reduction method. Fig. 14: CG solver time split into SpM×V
multiplication, SpM×V reduction, vector operations and CSX
preprocessing after a fixed iteration count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..formats.csx.matrix import CSXMatrix
from ..formats.csx.sym import CSXSymMatrix
from ..formats.sss import SSSMatrix
from ..machine.costmodel import DEFAULT_COST_MODEL, CostModel
from ..machine.perfmodel import predict_spmv
from ..machine.platforms import Platform
from ..machine.roofline import PhaseLoad, phase_time
from .configs import build_format
from .preproc import preprocessing_cost

__all__ = [
    "SpmvBreakdown",
    "spmv_reduction_breakdown",
    "CGBreakdown",
    "cg_breakdown",
    "cg_vector_counts_per_iter",
]


@dataclass(frozen=True)
class SpmvBreakdown:
    """One bar of Fig. 10."""

    matrix: str
    method: str
    t_mult: float
    t_reduce: float

    @property
    def total(self) -> float:
        return self.t_mult + self.t_reduce

    @property
    def reduce_fraction(self) -> float:
        return self.t_reduce / self.total if self.total else 0.0


def spmv_reduction_breakdown(
    matrices: Mapping[str, COOMatrix],
    platform: Platform,
    n_threads: int,
    methods: Sequence[str] = ("naive", "effective", "indexed"),
    cost: CostModel = DEFAULT_COST_MODEL,
    machine_scale: float = 1.0,
) -> list[SpmvBreakdown]:
    """Fig. 10: SSS SpM×V phase times per reduction method."""
    out: list[SpmvBreakdown] = []
    for name, coo in matrices.items():
        sss, partitions = build_format(coo, "sss", n_threads)
        for method in methods:
            pt = predict_spmv(
                sss, partitions, platform, reduction=method, cost=cost,
                machine_scale=machine_scale,
            )
            out.append(SpmvBreakdown(name, method, pt.t_mult, pt.t_reduce))
    return out


# ----------------------------------------------------------------------
# CG breakdown (Fig. 14)
# ----------------------------------------------------------------------
def cg_vector_counts_per_iter(n: int) -> tuple[float, float]:
    """Closed-form flop and byte counts of the vector operations in one
    CG iteration (Alg. 1: two dots, two axpys, one xpay):

    * flops: ``10 n``
    * bytes: ``96 n`` (dot(r,r): 8n, dot(p,q): 16n, 2×axpy: 48n,
      xpay: 24n)

    Cross-checked against the instrumented solver in the tests.
    """
    return 10.0 * n, 96.0 * n


@dataclass(frozen=True)
class CGBreakdown:
    """One bar of Fig. 14."""

    matrix: str
    config: str  # "csr", "csx", "sss", "csx-sym"
    iterations: int
    t_spmv_mult: float
    t_spmv_reduce: float
    t_vector: float
    t_preproc: float

    @property
    def total(self) -> float:
        return (
            self.t_spmv_mult
            + self.t_spmv_reduce
            + self.t_vector
            + self.t_preproc
        )


def cg_breakdown(
    matrices: Mapping[str, COOMatrix],
    platform: Platform,
    n_threads: int,
    iterations: int = 2048,
    configs: Sequence[str] = ("csr", "csx", "sss", "csx-sym"),
    cost: CostModel = DEFAULT_COST_MODEL,
    machine_scale: float = 1.0,
) -> list[CGBreakdown]:
    """Fig. 14: CG execution-time breakdown per matrix and format.

    SpM×V phase times come from the machine model per iteration; vector
    operations use the closed-form per-iteration counts; CSX formats pay
    their preprocessing once up front (§V-E model).
    """
    out: list[CGBreakdown] = []
    for name, coo in matrices.items():
        n = coo.n_rows
        vec_flops, vec_bytes = cg_vector_counts_per_iter(n)
        # Vector ops parallelize perfectly; ~1 cycle per flop.
        vec_load = PhaseLoad(
            [vec_flops / n_threads] * n_threads, vec_bytes, vec_flops
        )
        t_vec_iter, _, _ = phase_time(vec_load, platform, n_threads)
        csr_ref: Optional[CSRMatrix] = None
        for config in configs:
            matrix, partitions = build_format(coo, config, n_threads)
            reduction = (
                "indexed"
                if isinstance(matrix, (SSSMatrix, CSXSymMatrix))
                else None
            )
            pt = predict_spmv(
                matrix, partitions, platform, reduction=reduction, cost=cost,
                machine_scale=machine_scale,
            )
            t_pre = 0.0
            if isinstance(matrix, (CSXMatrix, CSXSymMatrix)):
                if csr_ref is None:
                    csr_ref = CSRMatrix.from_coo(coo)
                t_pre = preprocessing_cost(
                    matrix, csr_ref, platform, n_threads, cost
                ).seconds
            out.append(
                CGBreakdown(
                    matrix=name,
                    config=config,
                    iterations=iterations,
                    t_spmv_mult=iterations * pt.t_mult,
                    t_spmv_reduce=iterations * pt.t_reduce,
                    t_vector=iterations * t_vec_iter,
                    t_preproc=t_pre,
                )
            )
    return out
