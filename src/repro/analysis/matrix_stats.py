"""Per-matrix structural statistics.

One place to compute the pattern features the experiments hinge on:
row-density distribution, bandwidth profile, symmetric-compression
potential, substructure content, and the cache-locality proxy that
separates the paper's corner cases from the regular matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..machine.cache import estimate_x_misses, reuse_window_lines
from ..reorder.bandwidth import bandwidth_stats

__all__ = ["MatrixStats", "compute_matrix_stats"]


@dataclass(frozen=True)
class MatrixStats:
    """Structural fingerprint of a sparse matrix.

    Attributes
    ----------
    n_rows, nnz : dimensions.
    nnz_per_row_mean / _max / _std : row-density distribution.
    bandwidth, avg_distance, normalized_bandwidth : see
        :class:`~repro.reorder.bandwidth.BandwidthStats`.
    symmetric : whether values are symmetric.
    diag_nnz : stored non-zero diagonal entries.
    unit_stride_fraction : fraction of stored entries whose left
        neighbour in the same row is exactly one column away — a cheap
        proxy for CSX's horizontal/block substructure potential.
    x_miss_rate : estimated cache misses per nnz of the ``x`` gather
        stream against a 4 MiB window — the corner-case discriminator.
    sss_compression : ``1 - S_SSS / S_CSR`` (0 for unsymmetric).
    """

    n_rows: int
    n_cols: int
    nnz: int
    nnz_per_row_mean: float
    nnz_per_row_max: int
    nnz_per_row_std: float
    bandwidth: int
    avg_distance: float
    normalized_bandwidth: float
    symmetric: bool
    diag_nnz: int
    unit_stride_fraction: float
    x_miss_rate: float
    sss_compression: float

    @property
    def density(self) -> float:
        total = self.n_rows * self.n_cols
        return self.nnz / total if total else 0.0


#: Cache window used by the locality proxy (≈ one socket's LLC share).
_PROXY_CACHE_BYTES = 4 * 1024 * 1024


def compute_matrix_stats(coo: COOMatrix) -> MatrixStats:
    """Compute the full fingerprint of ``coo``."""
    counts = coo.row_counts()
    bw = bandwidth_stats(coo) if coo.n_rows == coo.n_cols else None
    symmetric = coo.n_rows == coo.n_cols and coo.is_symmetric()

    # Unit-stride adjacency among stored entries (row-major canonical).
    if coo.nnz > 1:
        same_row = coo.rows[1:] == coo.rows[:-1]
        unit = (coo.cols[1:] - coo.cols[:-1]) == 1
        unit_fraction = float((same_row & unit).sum() / coo.nnz)
    else:
        unit_fraction = 0.0

    csr = CSRMatrix.from_coo(coo)
    window = reuse_window_lines(_PROXY_CACHE_BYTES)
    misses = estimate_x_misses(csr.colind, window)
    miss_rate = misses / coo.nnz if coo.nnz else 0.0

    if symmetric:
        diag = int(np.count_nonzero(coo.diagonal()))
        s_csr = csr.size_bytes()
        lower = coo.lower_triangle(strict=True).nnz
        s_sss = (
            8 * coo.n_rows + 12 * lower + 4 * (coo.n_rows + 1)
        )
        sss_cr = 1.0 - s_sss / s_csr if s_csr else 0.0
    else:
        diag = int(np.count_nonzero(coo.diagonal()))
        sss_cr = 0.0

    return MatrixStats(
        n_rows=coo.n_rows,
        n_cols=coo.n_cols,
        nnz=coo.nnz,
        nnz_per_row_mean=float(counts.mean()) if counts.size else 0.0,
        nnz_per_row_max=int(counts.max()) if counts.size else 0,
        nnz_per_row_std=float(counts.std()) if counts.size else 0.0,
        bandwidth=bw.bandwidth if bw else 0,
        avg_distance=bw.avg_distance if bw else 0.0,
        normalized_bandwidth=bw.normalized_bandwidth if bw else 0.0,
        symmetric=symmetric,
        diag_nnz=diag,
        unit_stride_fraction=unit_fraction,
        x_miss_rate=miss_rate,
        sss_compression=sss_cr,
    )
