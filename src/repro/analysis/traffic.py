"""Working-set equations of Section III and their measured counterparts.

The closed forms (paper eqs. 3-6)::

    ws_naive = 8 p N                       (eq. 3)
    ws_eff   = 4 (p-1) N                   (eq. 4)
    ws_idx   = 4 (p-1) N d + 4 (p-1) N d   (eq. 5)  ≈ 8 (p-1) N d (eq. 6)

are reproduced here both analytically and from the real reduction data
structures, and converted into the relative "workload overhead over the
serial SSS implementation" series of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..formats.coo import COOMatrix
from ..formats.sss import SSSMatrix
from ..parallel.partition import partition_nnz_balanced
from ..parallel.reduction import make_reduction

__all__ = [
    "ws_naive",
    "ws_effective",
    "ws_indexed",
    "OverheadPoint",
    "reduction_overhead_sweep",
]


def ws_naive(p: int, n: int) -> float:
    """Eq. (3): naive local-vectors working-set overhead in bytes."""
    return 8.0 * p * n


def ws_effective(p: int, n: int) -> float:
    """Eq. (4): effective-ranges working-set overhead in bytes."""
    return 4.0 * (p - 1) * n


def ws_indexed(p: int, n: int, d: float) -> float:
    """Eq. (5)/(6): indexing-scheme working-set overhead in bytes."""
    return 8.0 * (p - 1) * n * d


@dataclass(frozen=True)
class OverheadPoint:
    """Reduction working-set overhead of one configuration, relative to
    the serial SSS workload (matrix bytes + the two vectors)."""

    matrix: str
    method: str
    n_threads: int
    ws_bytes: float
    overhead_fraction: float


def _serial_sss_workload(sss: SSSMatrix) -> float:
    """Bytes the serial SSS SpM×V streams: the matrix plus x and y."""
    return float(sss.size_bytes() + 16 * sss.n_rows)


def reduction_overhead_sweep(
    matrices: Mapping[str, COOMatrix],
    thread_counts: Sequence[int],
    methods: Sequence[str] = ("naive", "effective", "indexed"),
) -> list[OverheadPoint]:
    """Fig. 5's data: measured reduction working set per method/thread
    count, as a fraction of the serial SSS workload."""
    points: list[OverheadPoint] = []
    for name, coo in matrices.items():
        sss = SSSMatrix.from_coo(coo)
        serial = _serial_sss_workload(sss)
        weights = sss.expanded_row_nnz()
        for p in thread_counts:
            partitions = partition_nnz_balanced(weights, p)
            for method in methods:
                red = make_reduction(method, sss, partitions)
                ws = red.footprint().ws_measured_bytes
                points.append(
                    OverheadPoint(name, method, p, ws, ws / serial)
                )
    return points


def average_overhead(
    points: Sequence[OverheadPoint],
) -> dict[str, dict[int, float]]:
    """Suite-average overhead fraction per method per thread count."""
    acc: dict[str, dict[int, list[float]]] = {}
    for pt in points:
        acc.setdefault(pt.method, {}).setdefault(pt.n_threads, []).append(
            pt.overhead_fraction
        )
    return {
        m: {p: float(np.mean(v)) for p, v in sorted(by_p.items())}
        for m, by_p in acc.items()
    }
