"""Working-set equations of Section III and their measured counterparts.

The closed forms (paper eqs. 3-6)::

    ws_naive = 8 p N                       (eq. 3)
    ws_eff   = 4 (p-1) N                   (eq. 4)
    ws_idx   = 4 (p-1) N d + 4 (p-1) N d   (eq. 5)  ≈ 8 (p-1) N d (eq. 6)

are reproduced here both analytically and from the real reduction data
structures, and converted into the relative "workload overhead over the
serial SSS implementation" series of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..formats.coo import COOMatrix
from ..formats.sss import SSSMatrix
from ..parallel.partition import partition_nnz_balanced
from ..parallel.reduction import make_reduction

__all__ = [
    "ws_naive",
    "ws_effective",
    "ws_indexed",
    "OverheadPoint",
    "reduction_overhead_sweep",
    "spmv_stream_bytes",
    "spmm_stream_bytes",
    "spmm_per_rhs_bytes",
    "spmm_amortization_factor",
    "SpmmTrafficPoint",
    "spmm_traffic_sweep",
]


def ws_naive(p: int, n: int) -> float:
    """Eq. (3): naive local-vectors working-set overhead in bytes."""
    return 8.0 * p * n


def ws_effective(p: int, n: int) -> float:
    """Eq. (4): effective-ranges working-set overhead in bytes."""
    return 4.0 * (p - 1) * n


def ws_indexed(p: int, n: int, d: float) -> float:
    """Eq. (5)/(6): indexing-scheme working-set overhead in bytes."""
    return 8.0 * (p - 1) * n * d


@dataclass(frozen=True)
class OverheadPoint:
    """Reduction working-set overhead of one configuration, relative to
    the serial SSS workload (matrix bytes + the two vectors)."""

    matrix: str
    method: str
    n_threads: int
    ws_bytes: float
    overhead_fraction: float


def _serial_sss_workload(sss: SSSMatrix) -> float:
    """Bytes the serial SSS SpM×V streams: the matrix plus x and y."""
    return float(sss.size_bytes() + 16 * sss.n_rows)


def reduction_overhead_sweep(
    matrices: Mapping[str, COOMatrix],
    thread_counts: Sequence[int],
    methods: Sequence[str] = ("naive", "effective", "indexed"),
) -> list[OverheadPoint]:
    """Fig. 5's data: measured reduction working set per method/thread
    count, as a fraction of the serial SSS workload."""
    points: list[OverheadPoint] = []
    for name, coo in matrices.items():
        sss = SSSMatrix.from_coo(coo)
        serial = _serial_sss_workload(sss)
        weights = sss.expanded_row_nnz()
        for p in thread_counts:
            partitions = partition_nnz_balanced(weights, p)
            for method in methods:
                red = make_reduction(method, sss, partitions)
                ws = red.footprint().ws_measured_bytes
                points.append(
                    OverheadPoint(name, method, p, ws, ws / serial)
                )
    return points


# ----------------------------------------------------------------------
# Multi-RHS (SpM×M) traffic amortization
# ----------------------------------------------------------------------
# SpM×V is bandwidth-bound: a pass streams the matrix bytes S plus the
# two vectors (8N each). A k-column SpM×M pass streams S once plus 8Nk
# per vector block, so the per-RHS traffic drops toward the 16N floor
# as k grows — the amortization lever the spmm kernels pull.


def spmv_stream_bytes(size_bytes: int, n_rows: int, n_cols: int) -> float:
    """Bytes one SpM×V pass streams: matrix + x read + y write."""
    return float(size_bytes + 8 * n_cols + 8 * n_rows)


def spmm_stream_bytes(
    size_bytes: int, n_rows: int, n_cols: int, k: int
) -> float:
    """Bytes one k-column SpM×M pass streams: matrix once + the
    ``(n, k)`` input/output blocks."""
    if k < 1:
        raise ValueError(f"need k >= 1, got {k}")
    return float(size_bytes + 8 * n_cols * k + 8 * n_rows * k)


def spmm_per_rhs_bytes(
    size_bytes: int, n_rows: int, n_cols: int, k: int
) -> float:
    """Modeled traffic per right-hand side of a k-column pass."""
    return spmm_stream_bytes(size_bytes, n_rows, n_cols, k) / k


def spmm_amortization_factor(
    size_bytes: int, n_rows: int, n_cols: int, k: int
) -> float:
    """Traffic of ``k`` independent SpM×V passes over one k-column
    SpM×M pass (→ ``k·S/(S+16Nk) + …``; upper-bounded by ``k``)."""
    single = spmv_stream_bytes(size_bytes, n_rows, n_cols)
    return k * single / spmm_stream_bytes(size_bytes, n_rows, n_cols, k)


@dataclass(frozen=True)
class SpmmTrafficPoint:
    """Modeled multi-RHS traffic of one (matrix, format, k) point."""

    matrix: str
    format_name: str
    k: int
    spmm_bytes: float
    per_rhs_bytes: float
    amortization: float


def spmm_traffic_sweep(
    matrices: Mapping[str, COOMatrix],
    ks: Sequence[int],
    format_names: Sequence[str] = ("csr", "sss"),
) -> list[SpmmTrafficPoint]:
    """Modeled per-RHS traffic across k for the benchmark's report.

    ``format_names`` ⊆ {"csr", "sss"} — the two closed-form sizes
    (eqs. 1-2); other formats report through their ``size_bytes()``
    directly in the benchmark.
    """
    from ..formats.csr import CSRMatrix

    points: list[SpmmTrafficPoint] = []
    for name, coo in matrices.items():
        for fmt in format_names:
            if fmt == "csr":
                size = CSRMatrix.from_coo(coo).size_bytes()
            elif fmt == "sss":
                size = SSSMatrix.from_coo(coo).size_bytes()
            else:
                raise ValueError(f"unknown format {fmt!r} for traffic sweep")
            for k in ks:
                points.append(
                    SpmmTrafficPoint(
                        name,
                        fmt,
                        int(k),
                        spmm_stream_bytes(size, coo.n_rows, coo.n_cols, k),
                        spmm_per_rhs_bytes(size, coo.n_rows, coo.n_cols, k),
                        spmm_amortization_factor(
                            size, coo.n_rows, coo.n_cols, k
                        ),
                    )
                )
    return points


def average_overhead(
    points: Sequence[OverheadPoint],
) -> dict[str, dict[int, float]]:
    """Suite-average overhead fraction per method per thread count."""
    acc: dict[str, dict[int, list[float]]] = {}
    for pt in points:
        acc.setdefault(pt.method, {}).setdefault(pt.n_threads, []).append(
            pt.overhead_fraction
        )
    return {
        m: {p: float(np.mean(v)) for p, v in sorted(by_p.items())}
        for m, by_p in acc.items()
    }
