"""Instrumentation and experiment-analysis layer.

Density measurements (Fig. 4), working-set accounting (Fig. 5),
execution breakdowns (Fig. 10, 14), the CSX preprocessing cost model
(§V-E), configuration factories and text renderers for the benchmark
harness.
"""

from .attribution import (
    AttributionReport,
    PhaseAttribution,
    attribute_spmv,
)
from .breakdown import (
    CGBreakdown,
    SpmvBreakdown,
    cg_breakdown,
    cg_vector_counts_per_iter,
    spmv_reduction_breakdown,
)
from .configs import FORMAT_NAMES, build_format, thread_partitions
from .matrix_stats import MatrixStats, compute_matrix_stats
from .density import (
    DensityPoint,
    average_density,
    density_sweep,
    effective_region_density,
)
from .preproc import PreprocCost, preprocessing_cost
from .report import render_series, render_stacked_bars, render_table
from .traffic import (
    OverheadPoint,
    SpmmTrafficPoint,
    average_overhead,
    reduction_overhead_sweep,
    spmm_amortization_factor,
    spmm_per_rhs_bytes,
    spmm_stream_bytes,
    spmm_traffic_sweep,
    spmv_stream_bytes,
    ws_effective,
    ws_indexed,
    ws_naive,
)

__all__ = [
    "AttributionReport",
    "PhaseAttribution",
    "attribute_spmv",
    "CGBreakdown",
    "SpmvBreakdown",
    "cg_breakdown",
    "cg_vector_counts_per_iter",
    "spmv_reduction_breakdown",
    "FORMAT_NAMES",
    "build_format",
    "thread_partitions",
    "DensityPoint",
    "average_density",
    "density_sweep",
    "effective_region_density",
    "PreprocCost",
    "preprocessing_cost",
    "render_series",
    "render_stacked_bars",
    "render_table",
    "OverheadPoint",
    "SpmmTrafficPoint",
    "average_overhead",
    "reduction_overhead_sweep",
    "spmv_stream_bytes",
    "spmm_stream_bytes",
    "spmm_per_rhs_bytes",
    "spmm_amortization_factor",
    "spmm_traffic_sweep",
    "ws_naive",
    "ws_effective",
    "ws_indexed",
    "MatrixStats",
    "compute_matrix_stats",
]
