"""Plain-text table and series renderers for the benchmark harness.

The benchmarks print the same rows/series the paper's tables and
figures report; these helpers keep the output format uniform.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = [
    "render_table",
    "render_series",
    "render_stacked_bars",
    "format_value",
]


def format_value(v: Any, floatfmt: str = "{:.3f}") -> str:
    if isinstance(v, float):
        return floatfmt.format(v)
    return str(v)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str = "",
    floatfmt: str = "{:.3f}",
) -> str:
    """Render an aligned monospace table."""
    cells = [[format_value(v, floatfmt) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_stacked_bars(
    rows: Sequence[tuple[str, Mapping[str, float]]],
    *,
    title: str = "",
    width: int = 50,
    symbols: str = "#=-.~+*",
) -> str:
    """Render stacked horizontal bars — the textual equivalent of the
    paper's breakdown figures (Fig. 10, Fig. 14).

    ``rows`` is a sequence of ``(label, {segment: value})``; all bars
    share one scale (the longest total spans ``width`` characters) and
    each segment gets one fill symbol, listed in the legend.
    """
    if not rows:
        return title
    segment_names: list[str] = []
    for _, segments in rows:
        for name in segments:
            if name not in segment_names:
                segment_names.append(name)
    symbol_of = {
        name: symbols[i % len(symbols)]
        for i, name in enumerate(segment_names)
    }
    max_total = max(
        sum(seg.values()) for _, seg in rows
    )
    if max_total <= 0:
        max_total = 1.0
    label_w = max(len(label) for label, _ in rows)
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{symbol_of[name]} {name}" for name in segment_names
    )
    lines.append(f"[{legend}]")
    for label, segments in rows:
        bar = ""
        for name in segment_names:
            value = segments.get(name, 0.0)
            n = int(round(width * value / max_total))
            bar += symbol_of[name] * n
        total = sum(segments.values())
        lines.append(f"{label.rjust(label_w)} |{bar} ({total:.3g})")
    return "\n".join(lines)


def render_series(
    x_label: str,
    columns: Mapping[str, Mapping[Any, float]],
    *,
    title: str = "",
    floatfmt: str = "{:.3f}",
) -> str:
    """Render aligned series (one x column, one column per series) —
    the textual equivalent of a line plot."""
    xs = sorted({x for col in columns.values() for x in col})
    headers = [x_label] + list(columns)
    rows = []
    for x in xs:
        row: list[Any] = [x]
        for name in columns:
            v = columns[name].get(x)
            row.append(v if v is not None else float("nan"))
        rows.append(row)
    return render_table(headers, rows, title=title, floatfmt=floatfmt)
