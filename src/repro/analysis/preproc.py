"""CSX preprocessing cost model (paper Section V-E).

The paper expresses CSX(-Sym) preprocessing cost in units of *serial
CSR SpM×V operations*: 49 on Dunnington (24 threads) and 94 on
Gainestown (16 threads) on average, rising to 59/115 for the RCM
reordered suite (whose serial SpM×V is faster, inflating the quotient).

We model preprocessing time as the detection scan work measured by
:class:`~repro.formats.csx.detect.DetectionReport`
(``elements_scanned`` across orientations, plus encoding passes) at the
platform's calibrated per-element preprocessing cost
(:attr:`~repro.machine.platforms.Platform.preproc_cycles_per_element`),
parallelized over the preprocessing threads, and divide by the modelled
serial CSR SpM×V time. The NUMA platform's higher §V-E quotient emerges
from its much faster serial SpM×V denominator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from ..formats.csr import CSRMatrix
from ..formats.csx.matrix import CSXMatrix
from ..formats.csx.sym import CSXSymMatrix
from ..machine.costmodel import DEFAULT_COST_MODEL, CostModel
from ..machine.perfmodel import predict_serial_csr
from ..machine.platforms import Platform

__all__ = ["PreprocCost", "preprocessing_cost"]


@dataclass(frozen=True)
class PreprocCost:
    """Preprocessing cost of one CSX build on one platform."""

    platform: str
    n_threads: int
    seconds: float
    serial_csr_spmv_seconds: float

    @property
    def csr_spmv_equivalents(self) -> float:
        """The paper's §V-E metric."""
        if self.serial_csr_spmv_seconds <= 0:
            return float("inf")
        return self.seconds / self.serial_csr_spmv_seconds


def preprocessing_cost(
    matrix: Union[CSXMatrix, CSXSymMatrix],
    csr: CSRMatrix,
    platform: Platform,
    n_threads: int,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> PreprocCost:
    """Model the preprocessing cost of an already-built CSX matrix.

    Parameters
    ----------
    matrix : the CSX/CSX-Sym instance (its detection reports carry the
        measured scan work).
    csr : the same matrix in CSR (the SpM×V-equivalents denominator).
    platform, n_threads : preprocessing configuration.
    """
    scanned = sum(r.elements_scanned for r in matrix.detection_reports())
    cycles = platform.preproc_cycles_per_element * scanned
    cores = platform.cores_used(min(n_threads, platform.n_threads))
    seconds = cycles / (cores * platform.clock_ghz * 1e9)
    serial = predict_serial_csr(csr, platform, cost=cost).total
    return PreprocCost(platform.name, n_threads, seconds, serial)
