"""Deterministic fault plans for the chaos executor backend.

The parallel drivers are data-race-free *by construction* — each task
writes disjoint array regions — so no amount of scheduling chaos may
change the numerics, and a task failure must surface as a typed error,
never as a silently wrong vector. Those two claims are only worth
stating if every failure path is actually reachable in tests. A
:class:`ChaosPlan` makes them reachable on demand: for each
``(batch, tid)`` coordinate it derives — purely from its seed — one of

* **nothing** (the task runs untouched),
* a **delay** (the task starts late, perturbing completion order),
* a **raise** (a :class:`~repro.resilience.errors.ChaosInjectedError`
  fires *instead of* the task body, so the task's output region stays
  unwritten — the worst case for a driver that would return early), or
* a **reordered submission** (batch-wide: tasks are handed to the pool
  in a shuffled order).

Determinism contract: the same ``(plan seed, batch, tid)`` triple
always produces the same fault, independent of process, platform and
hash randomization (only integer arithmetic feeds the PRNG). A failing
chaos run is therefore replayable from three integers.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Optional

from .errors import ChaosInjectedError

__all__ = ["FaultSpec", "ChaosPlan", "NO_FAULT", "IO_FAULT_KINDS"]

#: Mixing constants: distinct odd multipliers keep the per-coordinate
#: streams, the per-batch shuffle stream and the io-fault stream
#: independent.
_TASK_MIX = (1_000_003, 8_191)
_ORDER_MIX = 514_229
_IO_MIX = 28_657

#: Disk-fault kinds the out-of-core layer injects (see
#: :meth:`ChaosPlan.io_fault_for`): a failed ``read()`` (OSError), a
#: torn/truncated write discovered on the next read, and a flipped
#: byte that only the CRC32C check can catch.
IO_FAULT_KINDS = ("read_error", "torn_write", "checksum_flip")


@dataclass(frozen=True)
class FaultSpec:
    """One task's injected fault: ``action`` in {"none", "delay",
    "raise"}; ``delay_s`` applies to both "delay" (then run) and
    "raise" (delay, then fire)."""

    action: str = "none"
    delay_s: float = 0.0


NO_FAULT = FaultSpec()


class ChaosPlan:
    """Derives deterministic per-task faults from a seed.

    Parameters
    ----------
    seed : int
        Root of every derived fault; two plans with the same seed and
        knobs inject identical faults forever.
    p_raise, p_delay : float
        Per-task probabilities of an injected exception / delay
        (``p_raise + p_delay <= 1``; the remainder runs untouched).
    max_delay_ms : float
        Injected delays are uniform in ``(0, max_delay_ms]``.
    reorder : bool
        Shuffle the submission order of every batch.
    faults : mapping ``(batch, tid) -> FaultSpec``, optional
        Explicit overrides — tests use this to aim a single fault at an
        exact task; coordinates not present fall back to the seeded
        draw.
    p_io : float
        Per-``(index, attempt)`` probability of an injected disk fault
        in the out-of-core layer (see :meth:`io_fault_for`); the kind
        is drawn uniformly from :data:`IO_FAULT_KINDS`.
    io_faults : mapping ``(index, attempt) -> str``, optional
        Explicit io-fault overrides (a kind from
        :data:`IO_FAULT_KINDS`, or ``"none"``); tests use this to aim,
        e.g., a torn write at one exact checkpoint generation.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        p_raise: float = 0.0,
        p_delay: float = 0.25,
        max_delay_ms: float = 0.5,
        reorder: bool = True,
        faults: Optional[Mapping[tuple[int, int], FaultSpec]] = None,
        p_io: float = 0.0,
        io_faults: Optional[Mapping[tuple[int, int], str]] = None,
    ):
        if not (0.0 <= p_raise <= 1.0 and 0.0 <= p_delay <= 1.0):
            raise ValueError("fault probabilities must lie in [0, 1]")
        if p_raise + p_delay > 1.0:
            raise ValueError(
                f"p_raise + p_delay = {p_raise + p_delay} exceeds 1"
            )
        if max_delay_ms < 0:
            raise ValueError(f"max_delay_ms must be >= 0, got {max_delay_ms}")
        if not 0.0 <= p_io <= 1.0:
            raise ValueError(f"p_io must lie in [0, 1], got {p_io}")
        if io_faults:
            bad = {
                k for k in io_faults.values()
                if k not in IO_FAULT_KINDS and k != "none"
            }
            if bad:
                raise ValueError(
                    f"unknown io fault kind(s) {sorted(bad)}; expected "
                    f"one of {IO_FAULT_KINDS} or 'none'"
                )
        self.seed = int(seed)
        self.p_raise = float(p_raise)
        self.p_delay = float(p_delay)
        self.max_delay_ms = float(max_delay_ms)
        self.reorder = bool(reorder)
        self.faults = dict(faults) if faults else {}
        self.p_io = float(p_io)
        self.io_faults = dict(io_faults) if io_faults else {}

    @property
    def exception_free(self) -> bool:
        """True when this plan can only delay/reorder — the regime in
        which results must stay bit-identical to the serial backend."""
        return self.p_raise == 0.0 and not any(
            f.action == "raise" for f in self.faults.values()
        )

    # -- deterministic derivation ---------------------------------------
    def _rng(self, batch: int, tid: int) -> random.Random:
        # Integer-only mixing: stable across processes (str/bytes hash
        # randomization never enters).
        return random.Random(
            self.seed * _TASK_MIX[0] + batch * _TASK_MIX[1] + tid
        )

    def fault_for(self, batch: int, tid: int) -> FaultSpec:
        """The fault injected at ``(batch, tid)`` — pure function of
        the plan."""
        explicit = self.faults.get((batch, tid))
        if explicit is not None:
            return explicit
        rng = self._rng(batch, tid)
        u = rng.random()
        if u < self.p_raise:
            return FaultSpec("raise", rng.uniform(0.0, self.max_delay_ms) / 1e3)
        if u < self.p_raise + self.p_delay:
            return FaultSpec("delay", rng.uniform(0.0, self.max_delay_ms) / 1e3)
        return NO_FAULT

    def io_fault_for(self, index: int, attempt: int) -> str:
        """Disk fault injected at the ``attempt``-th access of stored
        object ``index`` (a shard number or checkpoint generation) —
        ``"none"`` or a kind from :data:`IO_FAULT_KINDS`, a pure
        function of the plan.

        Faults are keyed by *attempt* so transient failures exist by
        construction: a read that fails at attempt 0 may succeed at
        attempt 1, which is exactly what the bounded-retry containment
        must handle. A failing run replays from the three integers,
        same as the task faults.
        """
        explicit = self.io_faults.get((index, attempt))
        if explicit is not None:
            return explicit
        if self.p_io <= 0.0:
            return "none"
        rng = random.Random(
            self.seed * _TASK_MIX[0] + index * _IO_MIX + attempt
        )
        if rng.random() < self.p_io:
            return IO_FAULT_KINDS[rng.randrange(len(IO_FAULT_KINDS))]
        return "none"

    def submission_order(self, batch: int, n_tasks: int) -> list[int]:
        """Task submission permutation for one batch (identity when
        ``reorder`` is off)."""
        order = list(range(n_tasks))
        if self.reorder and n_tasks > 1:
            random.Random(self.seed * _TASK_MIX[0] + batch * _ORDER_MIX).shuffle(
                order
            )
        return order

    def wrap(
        self, batch: int, tid: int, task: Callable[[], None]
    ) -> Callable[[], None]:
        """The task with its ``(batch, tid)`` fault applied (the task
        itself when the draw is "none")."""
        fault = self.fault_for(batch, tid)
        if fault.action == "none":
            return task

        def chaotic() -> None:
            if fault.delay_s > 0:
                time.sleep(fault.delay_s)
            if fault.action == "raise":
                raise ChaosInjectedError(batch, tid)
            task()

        return chaotic

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ChaosPlan seed={self.seed} p_raise={self.p_raise} "
            f"p_delay={self.p_delay} max_delay_ms={self.max_delay_ms} "
            f"reorder={self.reorder} p_io={self.p_io} "
            f"overrides={len(self.faults)}+{len(self.io_faults)}io>"
        )
