"""Fault injection and failure containment for the execution stack.

PR 4's differential fuzzer hardened the library against adversarial
*inputs*; ``repro.resilience`` does the same for adversarial
*execution*. It owns two things:

* the **typed execution-failure taxonomy** (:mod:`.errors`):
  :class:`BatchExecutionError` (a task batch failed after full
  containment — every sibling awaited or cancelled),
  :class:`PoisonedOperatorError` / :class:`OperatorClosedError` (a
  bound operator applied from an unsafe state), all
  ``RuntimeError``-catchable, mirroring the ``ValidationError``
  convention of :mod:`repro.formats.validate`; and
* the **deterministic chaos plans** (:mod:`.chaos`): seed-derived
  per-``(batch, tid)`` exceptions, delays and submission reorders that
  ``Executor(mode="chaos", plan=...)`` injects, so every failure path
  is reachable from tests and from ``repro fuzz --chaos``.

The containment machinery itself lives where the state lives —
:mod:`repro.parallel.executor` (await/cancel + aggregation + serial
fallback), :mod:`repro.parallel.bound` (workspace poisoning and
recovery) and :mod:`repro.solvers` (breakdown diagnoses) — and records
``resilience.*`` warning counters through :mod:`repro.obs`. See
DESIGN.md §4f for the failure model.
"""

from .chaos import IO_FAULT_KINDS, NO_FAULT, ChaosPlan, FaultSpec
from .errors import (
    BatchExecutionError,
    ChaosInjectedError,
    ExecutionError,
    OperatorClosedError,
    PoisonedOperatorError,
    RemoteTaskError,
    TaskFailure,
    WorkerCrashError,
)

__all__ = [
    "ChaosPlan",
    "FaultSpec",
    "NO_FAULT",
    "IO_FAULT_KINDS",
    "ExecutionError",
    "TaskFailure",
    "BatchExecutionError",
    "PoisonedOperatorError",
    "OperatorClosedError",
    "ChaosInjectedError",
    "WorkerCrashError",
    "RemoteTaskError",
]
