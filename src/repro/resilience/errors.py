"""Typed failure taxonomy for the execution stack.

The input side of the library already fails with a machine-matchable
hierarchy (:mod:`repro.formats.validate`: everything is a
``ValidationError`` and stays ``ValueError``-catchable). This module is
the *execution*-side counterpart: faults that happen while a batch of
thread tasks is in flight, or that leave a persistent operator in a
state it must not silently compute from.

Following the same convention, every class here derives from
``RuntimeError`` so pre-existing ``except RuntimeError`` call sites
keep working, while tests and the fuzz harness can match the precise
taxon.

============================  =========================================
:class:`ExecutionError`       base class for execution-side failures
:class:`BatchExecutionError`  one or more tasks of a batch raised; all
                              sibling tasks were awaited/cancelled
                              before this was raised (containment)
:class:`TaskFailure`          per-task record inside a batch error
:class:`PoisonedOperatorError`  a bound operator was applied after a
                              failed/interrupted call without recovery
:class:`OperatorClosedError`  a bound operator was applied after
                              ``close()``
:class:`ChaosInjectedError`   the deterministic fault the chaos
                              executor injects
:class:`WorkerCrashError`     a process-pool worker died (e.g. killed)
                              while its batch was in flight
:class:`RemoteTaskError`      a worker-side exception that could not be
                              pickled back verbatim
============================  =========================================

Exceptions that cross a process boundary must survive a pickle
round-trip; classes with non-``(msg,)`` constructors therefore define
``__reduce__`` explicitly (the default reduction calls ``cls(str)``
and breaks on load).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = [
    "ExecutionError",
    "TaskFailure",
    "BatchExecutionError",
    "PoisonedOperatorError",
    "OperatorClosedError",
    "ChaosInjectedError",
    "WorkerCrashError",
    "RemoteTaskError",
]


class ExecutionError(RuntimeError):
    """Base class for execution-side (task/operator) failures."""


@dataclass(frozen=True)
class TaskFailure:
    """One task's exception inside a failed batch."""

    tid: int
    error: BaseException

    def describe(self) -> str:
        return f"task {self.tid}: {type(self.error).__name__}: {self.error}"


class BatchExecutionError(ExecutionError):
    """A task batch failed; every sibling was awaited or cancelled.

    Raised by :meth:`repro.parallel.executor.Executor.run_batch` after
    full containment: by the time this propagates, no task of the batch
    is still running (so no future can keep mutating shared output
    buffers behind the caller's back).

    Attributes
    ----------
    label : str
        The batch label (the tracer span name, e.g. ``"spmv.mult"``).
    batch : int
        The executor's batch sequence number — together with the chaos
        seed this pins the exact injected fault for replay.
    failures : list of TaskFailure
        Every task that raised, sorted by ``tid``.
    n_tasks, n_cancelled : int
        Batch size and how many queued tasks were cancelled unstarted.
    """

    def __init__(
        self,
        label: str,
        batch: int,
        failures: Sequence[TaskFailure],
        n_tasks: int = 0,
        n_cancelled: int = 0,
    ):
        self.label = label
        self.batch = batch
        self.failures = sorted(failures, key=lambda f: f.tid)
        self.n_tasks = n_tasks
        self.n_cancelled = n_cancelled
        detail = "; ".join(f.describe() for f in self.failures[:4])
        if len(self.failures) > 4:
            detail += f"; ... {len(self.failures) - 4} more"
        super().__init__(
            f"batch {label!r} #{batch}: {len(self.failures)}/{n_tasks} "
            f"task(s) failed ({n_cancelled} cancelled): {detail}"
        )

    @property
    def first(self) -> Optional[BaseException]:
        """The lowest-``tid`` task's exception (``None`` if empty)."""
        return self.failures[0].error if self.failures else None

    def __reduce__(self):
        return (
            type(self),
            (self.label, self.batch, self.failures,
             self.n_tasks, self.n_cancelled),
        )


class PoisonedOperatorError(ExecutionError):
    """A bound operator was applied after a failed call, with the
    ``on_poison="raise"`` policy: its workspaces may hold partial
    writes from the interrupted application and must be re-zeroed
    (``recover()``) before the operator computes again."""


class OperatorClosedError(ExecutionError):
    """A bound operator was applied after ``close()`` released its
    workspaces; bind a new one."""


class ChaosInjectedError(ExecutionError):
    """The deterministic fault the chaos executor raises in place of
    running a task (see :class:`repro.resilience.chaos.ChaosPlan`)."""

    def __init__(self, batch: int, tid: int):
        self.batch = batch
        self.tid = tid
        super().__init__(
            f"injected fault (batch={batch}, tid={tid})"
        )

    def __reduce__(self):
        return (type(self), (self.batch, self.tid))


class WorkerCrashError(ExecutionError):
    """A process-pool worker died while its tasks were in flight (its
    pipe hit EOF or broke mid-batch — e.g. the process was killed).
    Raised per assigned ``tid`` inside the aggregating
    :class:`BatchExecutionError`; the shared workspaces may hold the
    dead worker's partial writes, so the owning bound operator is
    poisoned exactly like any other batch failure."""

    def __init__(self, tid: int, pid: Optional[int] = None):
        self.tid = tid
        self.pid = pid
        where = f" (worker pid {pid})" if pid is not None else ""
        super().__init__(
            f"worker process died with task {tid} in flight{where}"
        )

    def __reduce__(self):
        return (type(self), (self.tid, self.pid))


class RemoteTaskError(ExecutionError):
    """Stand-in for a worker-side exception that does not survive a
    pickle round-trip; preserves the original type name, message and
    formatted traceback text."""

    def __init__(
        self, original_type: str, message: str, traceback_text: str = ""
    ):
        self.original_type = original_type
        self.message = message
        self.traceback_text = traceback_text
        super().__init__(f"{original_type}: {message}")

    def __reduce__(self):
        return (
            type(self),
            (self.original_type, self.message, self.traceback_text),
        )
