"""Multicore machine performance model.

Replaces the paper's hardware testbeds (Table II) with an explicit
roofline model driven by exactly measured per-thread traffic; see
DESIGN.md for the substitution rationale.
"""

from .cache import estimate_x_misses, reuse_window_lines, x_traffic_bytes
from .costmodel import DEFAULT_COST_MODEL, CostModel
from .numa import AllocationPolicy, effective_bandwidth, remote_access_factor
from .perfmodel import PredictedTime, gflops, predict_serial_csr, predict_spmv
from .platforms import DUNNINGTON, GAINESTOWN, PLATFORMS, Platform
from .roofline import PhaseLoad, phase_time

__all__ = [
    "Platform",
    "DUNNINGTON",
    "GAINESTOWN",
    "PLATFORMS",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "PredictedTime",
    "predict_spmv",
    "predict_serial_csr",
    "gflops",
    "PhaseLoad",
    "phase_time",
    "estimate_x_misses",
    "reuse_window_lines",
    "x_traffic_bytes",
    "AllocationPolicy",
    "effective_bandwidth",
    "remote_access_factor",
]
