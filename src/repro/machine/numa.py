"""NUMA memory-allocation policies (paper §V-A).

The paper's NUMA-aware implementations use *numactl* plus a "low-level
interleaved allocator" — because on a NUMA machine like Gainestown the
placement of the matrix pages decides how much aggregate bandwidth the
kernel can actually draw:

* ``FIRST_TOUCH_SERIAL`` — the matrix is built by the main thread, so
  first-touch places every page on socket 0; all remote sockets then
  stream through one memory controller (plus the interconnect penalty).
  The naive baseline the paper's allocator exists to avoid.
* ``INTERLEAVED`` — pages round-robin across sockets: every controller
  serves an equal share regardless of which thread asks. The paper's
  choice for shared data (the input vector).
* ``LOCAL`` — partition-aware placement: each thread's share of the
  matrix lives on its own socket; all accesses are local. Best case for
  the (thread-private) matrix arrays.

:func:`effective_bandwidth` turns a policy into the sustainable
aggregate bandwidth for ``p`` threads, which `predict_spmv`-style
consumers can use in place of the default (= ``LOCAL``/``INTERLEAVED``)
behaviour. SMP machines with a shared bus (Dunnington) are unaffected
by placement.
"""

from __future__ import annotations

import enum

from .platforms import Platform

__all__ = ["AllocationPolicy", "effective_bandwidth", "remote_access_factor"]


class AllocationPolicy(enum.Enum):
    """Where matrix/vector pages land on a NUMA machine."""

    FIRST_TOUCH_SERIAL = "first-touch-serial"
    INTERLEAVED = "interleaved"
    LOCAL = "local"


#: Bandwidth efficiency of a remote (cross-socket) stream relative to a
#: local one (QPI hop latency + contention on Nehalem-class machines).
REMOTE_EFFICIENCY = 0.7


def remote_access_factor(platform: Platform, p: int,
                         policy: AllocationPolicy) -> float:
    """Fraction-weighted efficiency of the memory streams under
    ``policy`` (1.0 = all local)."""
    if platform.bw_shared_across_sockets or platform.n_sockets == 1:
        return 1.0
    placement = platform.thread_placement(p)
    sockets_used = sum(1 for t in placement if t)
    if policy is AllocationPolicy.LOCAL:
        return 1.0
    if policy is AllocationPolicy.INTERLEAVED:
        # 1/sockets of every stream is local, the rest remote.
        local_share = 1.0 / platform.n_sockets
        return local_share + (1 - local_share) * REMOTE_EFFICIENCY
    if policy is AllocationPolicy.FIRST_TOUCH_SERIAL:
        # Threads on socket 0 are local; everyone else fully remote.
        local_threads = placement[0]
        share_local = local_threads / p
        return share_local + (1 - share_local) * REMOTE_EFFICIENCY
    raise ValueError(f"unknown policy {policy!r}")


def effective_bandwidth(
    platform: Platform, p: int, policy: AllocationPolicy
) -> float:
    """Sustainable aggregate bandwidth (GB/s) for ``p`` threads when the
    matrix pages are placed by ``policy``."""
    base = platform.bandwidth_gbps(p)
    if platform.bw_shared_across_sockets or platform.n_sockets == 1:
        return base
    factor = remote_access_factor(platform, p, policy)
    if policy is AllocationPolicy.FIRST_TOUCH_SERIAL:
        # All pages live on socket 0: its controller is the ceiling, no
        # matter how many threads stream.
        ceiling = platform.sustained_bw_gbps_per_socket
        return min(base, ceiling) * factor
    return base * factor
