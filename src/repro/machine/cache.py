"""Cache-aware input-vector traffic estimation.

The matrix and output vector of SpM×V are streamed (every byte crosses
the bus once), but traffic on the *input* vector ``x`` depends on the
sparsity pattern: banded matrices reuse cached lines, high-bandwidth
matrices scatter accesses across the vector and miss continually — the
mechanism behind the paper's four "corner case" matrices.

We estimate misses with the classical *reuse-window* approximation: an
access to a cache line hits iff the same line was touched within the
last ``W`` accesses, where ``W`` is the number of lines the available
cache can hold. This over-approximates LRU slightly (window counts all
accesses, not distinct lines) but is vectorizable and monotone in the
pattern's locality, which is what the who-wins comparisons need.
"""

from __future__ import annotations

import numpy as np

from .platforms import CACHE_LINE_BYTES

__all__ = ["estimate_x_misses", "x_traffic_bytes", "reuse_window_lines"]

#: Doubles per cache line.
_DOUBLES_PER_LINE = CACHE_LINE_BYTES // 8


def reuse_window_lines(cache_bytes: float, x_share: float = 0.5) -> int:
    """Cache capacity in lines granted to ``x``.

    The matrix stream continuously evicts; ``x_share`` is the fraction
    of the cache the input vector effectively retains (default half).
    """
    if cache_bytes <= 0:
        return 1
    return max(1, int(cache_bytes * x_share) // CACHE_LINE_BYTES)


def estimate_x_misses(columns: np.ndarray, window_lines: int) -> int:
    """Estimated cache misses for the access stream ``x[columns]``.

    Parameters
    ----------
    columns : int array
        Column indices in execution order (the partition's element
        stream).
    window_lines : int
        Reuse window ``W`` from :func:`reuse_window_lines`.

    Returns
    -------
    int
        Number of line fetches (first touches always miss).
    """
    if columns.size == 0:
        return 0
    lines = np.asarray(columns, dtype=np.int64) // _DOUBLES_PER_LINE
    # Consecutive duplicate accesses are trivial hits; compress them so
    # dense rows do not inflate the stream.
    keep = np.empty(lines.size, dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    stream = lines[keep]
    n = stream.size

    # Previous position of each line in the stream.
    order = np.argsort(stream, kind="stable")
    sorted_lines = stream[order]
    positions = np.arange(n, dtype=np.int64)[order]
    prev = np.full(n, -1, dtype=np.int64)
    same = sorted_lines[1:] == sorted_lines[:-1]
    prev_sorted = np.full(n, -1, dtype=np.int64)
    prev_sorted[1:][same] = positions[:-1][same]
    prev[positions] = prev_sorted

    first_touch = prev < 0
    distances = np.where(first_touch, np.iinfo(np.int64).max,
                         np.arange(n, dtype=np.int64) - prev)
    misses = int(np.count_nonzero(distances > window_lines))
    return misses


def x_traffic_bytes(columns: np.ndarray, cache_bytes: float,
                    x_share: float = 0.5) -> int:
    """Input-vector memory traffic for one element stream."""
    window = reuse_window_lines(cache_bytes, x_share)
    return estimate_x_misses(columns, window) * CACHE_LINE_BYTES
