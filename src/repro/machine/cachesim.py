"""Set-associative LRU cache simulator.

A slow-but-exact reference for the analytic reuse-window estimator in
:mod:`repro.machine.cache`: simulates an ``n_sets × associativity``
LRU cache over an access stream and reports exact miss counts. Used by
the validation tests (the estimator must order access patterns the same
way the simulator does) and available for spot-checking model traffic
on small streams.

The implementation is vectorized per *round*: accesses are processed in
chunks where each line appears at most once, which keeps the Python
interpreter out of the per-access path while preserving exact LRU
semantics within a set (ties across a chunk are broken by stream
order, matching sequential processing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .platforms import CACHE_LINE_BYTES

__all__ = ["CacheConfig", "CacheSim", "simulate_misses"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    associativity: int = 8
    line_bytes: int = CACHE_LINE_BYTES

    def __post_init__(self):
        if self.size_bytes <= 0 or self.associativity <= 0:
            raise ValueError("cache size and associativity must be positive")
        lines = self.size_bytes // self.line_bytes
        if lines == 0:
            raise ValueError("cache smaller than one line")
        if lines % self.associativity:
            raise ValueError(
                "line count must be a multiple of the associativity"
            )

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.associativity


class CacheSim:
    """Stateful LRU cache; feed it address streams, read back misses."""

    def __init__(self, config: CacheConfig):
        self.config = config
        n_sets, ways = config.n_sets, config.associativity
        # tags[set, way] = line id (-1 empty); age[set, way] = last use.
        self._tags = np.full((n_sets, ways), -1, dtype=np.int64)
        self._age = np.zeros((n_sets, ways), dtype=np.int64)
        self._clock = 0
        self.misses = 0
        self.accesses = 0

    def reset(self) -> None:
        self._tags.fill(-1)
        self._age.fill(0)
        self._clock = 0
        self.misses = 0
        self.accesses = 0

    def access_bytes(self, addresses: np.ndarray) -> int:
        """Access a stream of byte addresses; returns new misses."""
        lines = np.asarray(addresses, dtype=np.int64) // self.config.line_bytes
        return self.access_lines(lines)

    def access_lines(self, lines: np.ndarray) -> int:
        """Access a stream of line ids (exact sequential LRU)."""
        lines = np.asarray(lines, dtype=np.int64)
        before = self.misses
        n_sets = self.config.n_sets
        tags, age = self._tags, self._age
        for line in lines:
            self._clock += 1
            self.accesses += 1
            s = line % n_sets
            row = tags[s]
            hit = np.flatnonzero(row == line)
            if hit.size:
                age[s, hit[0]] = self._clock
                continue
            self.misses += 1
            victim = int(np.argmin(age[s]))
            tags[s, victim] = line
            age[s, victim] = self._clock
        return self.misses - before

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


def simulate_misses(
    columns: np.ndarray,
    cache_bytes: int,
    *,
    associativity: int = 8,
    element_bytes: int = 8,
) -> int:
    """Exact misses of the ``x[columns]`` gather stream through a fresh
    set-associative LRU cache — the reference the analytic
    reuse-window estimator is validated against."""
    config = CacheConfig(cache_bytes, associativity)
    sim = CacheSim(config)
    addresses = np.asarray(columns, dtype=np.int64) * element_bytes
    sim.access_bytes(addresses)
    return sim.misses
