"""Kernel cost constants for the performance model.

Per-element cycle costs approximate the instruction footprint of the
tight C/LLVM loops of the original implementation. They are *relative*
costs — the experiments compare formats and methods against each other,
so what matters is the ordering and rough magnitude: CSX substructure
elements are cheapest (no column-index load, unrolled), CSR elements
carry an index load, symmetric elements pay for the second (transposed)
update, and delta elements pay for the inline decode.

All constants live in one dataclass so the ablation benchmarks can vary
them and so calibration is explicit rather than buried in formulas.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the machine performance model."""

    # -- compute: cycles per processed element ---------------------------
    csr_cycles_per_nnz: float = 2.6
    csr_cycles_per_row: float = 6.0
    #: Two FMAs + an indirect read-modify-write per stored element: the
    #: store-to-load dependency chain makes this the most expensive
    #: element kind (calibrated against the paper's Gainestown ratios,
    #: where the symmetric kernels run near the compute ceiling).
    sss_cycles_per_lower: float = 9.5
    sss_cycles_per_diag: float = 1.5
    csx_cycles_per_sub_elem: float = 1.4
    csx_cycles_per_delta_elem: float = 2.8
    csx_cycles_per_unit: float = 7.0
    csx_sym_extra_cycles_per_elem: float = 6.5  # transposed update chain
    reduce_cycles_per_element: float = 2.0

    # -- memory: write-allocate factor for scattered stores --------------
    scatter_write_factor: float = 2.0  # fetch line + write it back

    # -- cache sharing ----------------------------------------------------
    #: Fraction of the available LLC the input vector retains.
    x_cache_share: float = 0.5
    #: Fraction retained by the scattered-output working set.
    y_cache_share: float = 0.25
    #: Floor on the x share under heavy reduction working-set pressure.
    min_x_share: float = 0.05

    def with_overrides(self, **kwargs) -> "CostModel":
        """A copy with selected constants replaced (ablation helper)."""
        return replace(self, **kwargs)


DEFAULT_COST_MODEL = CostModel()
