"""End-to-end SpM×V time prediction on the modelled platforms.

This module converts *exactly measured* per-thread work (bytes and
element counts read off the real data structures) into execution-time
predictions via the roofline model — the library's substitute for the
paper's hardware testbeds (see DESIGN.md). The prediction is split into
the multiplication and reduction phases so the breakdown figures
(Fig. 10, Fig. 14) can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from ..formats.base import INDEX_BYTES, VALUE_BYTES
from ..formats.csr import CSRMatrix
from ..formats.csx.matrix import CSXMatrix
from ..formats.csx.sym import CSXSymMatrix
from ..formats.sss import SSSMatrix
from ..parallel.partition import validate_partitions
from ..parallel.reduction import (
    ReductionFootprint,
    ReductionMethod,
    make_reduction,
)
from .cache import x_traffic_bytes
from .costmodel import DEFAULT_COST_MODEL, CostModel
from .platforms import CACHE_LINE_BYTES, Platform
from .roofline import PhaseLoad, phase_time

__all__ = [
    "PredictedTime",
    "predict_spmv",
    "predict_serial_csr",
    "gflops",
]

AnyMatrix = Union[CSRMatrix, SSSMatrix, CSXMatrix, CSXSymMatrix]


@dataclass
class PredictedTime:
    """Predicted execution time of one SpM×V configuration."""

    format_name: str
    reduction: Optional[str]
    n_threads: int
    t_mult: float
    t_reduce: float
    t_mult_compute: float
    t_mult_memory: float
    t_reduce_compute: float
    t_reduce_memory: float
    mult_bytes: float
    reduce_bytes: float
    flops: float
    footprint: Optional[ReductionFootprint] = None
    #: Barrier rendezvous time (conflict-free coloring only: one
    #: synchronization per barrier-separated schedule step, overlapping
    #: neither compute nor the memory stream).
    t_barrier: float = 0.0

    @property
    def total(self) -> float:
        return self.t_mult + self.t_reduce + self.t_barrier

    @property
    def gflops(self) -> float:
        return gflops(self.flops, self.total)

    def speedup_over(self, baseline: "PredictedTime") -> float:
        return baseline.total / self.total


def gflops(flops: float, seconds: float) -> float:
    """Gflop/s given a flop count and a duration."""
    return flops / seconds / 1e9 if seconds > 0 else float("inf")


# ----------------------------------------------------------------------
# Per-format, per-partition multiplication-phase work
# ----------------------------------------------------------------------
@dataclass
class _ThreadWork:
    cycles: float
    matrix_bytes: float
    y_bytes: float
    col_stream: np.ndarray  # x-access stream for the cache estimator
    scatter_stream: Optional[np.ndarray]  # scattered y writes (symmetric)
    flops: float


def _csr_thread_work(
    m: CSRMatrix, start: int, end: int, cost: CostModel
) -> _ThreadWork:
    lo, hi = int(m.rowptr[start]), int(m.rowptr[end])
    nnz = hi - lo
    rows = end - start
    return _ThreadWork(
        cycles=cost.csr_cycles_per_nnz * nnz + cost.csr_cycles_per_row * rows,
        matrix_bytes=(VALUE_BYTES + INDEX_BYTES) * nnz + INDEX_BYTES * rows,
        y_bytes=VALUE_BYTES * rows,
        col_stream=m.colind[lo:hi],
        scatter_stream=None,
        flops=2.0 * nnz,
    )


def _sss_thread_work(
    m: SSSMatrix, start: int, end: int, cost: CostModel
) -> _ThreadWork:
    lo, hi = int(m.rowptr[start]), int(m.rowptr[end])
    lower = hi - lo
    rows = end - start
    cols = m.colind[lo:hi]
    return _ThreadWork(
        cycles=cost.sss_cycles_per_lower * lower
        + cost.sss_cycles_per_diag * rows,
        matrix_bytes=(VALUE_BYTES + INDEX_BYTES) * lower
        + (VALUE_BYTES + INDEX_BYTES) * rows,  # dvalues + rowptr
        y_bytes=VALUE_BYTES * rows,
        col_stream=cols,
        scatter_stream=cols,  # transposed updates write y[c]
        flops=4.0 * lower + 2.0 * rows,
    )


def _csx_partition_work(
    m: CSXMatrix, index: int, cost: CostModel
) -> _ThreadWork:
    p = m.partitions[index]
    rows = p.row_end - p.row_start
    sub_elems = sum(u.length for u in p.units if not u.pattern.is_delta)
    delta_elems = sum(u.length for u in p.units if u.pattern.is_delta)
    col_stream = _units_column_stream(p.units)
    return _ThreadWork(
        cycles=cost.csx_cycles_per_sub_elem * sub_elems
        + cost.csx_cycles_per_delta_elem * delta_elems
        + cost.csx_cycles_per_unit * len(p.units),
        matrix_bytes=VALUE_BYTES * (sub_elems + delta_elems) + p.ctl_bytes(),
        y_bytes=VALUE_BYTES * rows,
        col_stream=col_stream,
        scatter_stream=None,
        flops=2.0 * (sub_elems + delta_elems),
    )


def _csx_sym_partition_work(
    m: CSXSymMatrix, index: int, cost: CostModel
) -> _ThreadWork:
    p = m.partitions[index]
    rows = p.row_end - p.row_start
    sub_elems = sum(u.length for u in p.units if not u.pattern.is_delta)
    delta_elems = sum(u.length for u in p.units if u.pattern.is_delta)
    elems = sub_elems + delta_elems
    col_stream = _units_column_stream(p.units)
    return _ThreadWork(
        cycles=cost.csx_cycles_per_sub_elem * sub_elems
        + cost.csx_cycles_per_delta_elem * delta_elems
        + cost.csx_cycles_per_unit * len(p.units)
        + cost.csx_sym_extra_cycles_per_elem * elems
        + cost.sss_cycles_per_diag * rows,
        matrix_bytes=VALUE_BYTES * elems
        + p.ctl_bytes()
        + VALUE_BYTES * rows,  # dvalues
        y_bytes=VALUE_BYTES * rows,
        col_stream=col_stream,
        scatter_stream=col_stream,  # transposed updates
        flops=4.0 * elems + 2.0 * rows,
    )


def _units_column_stream(units) -> np.ndarray:
    """Concatenated x-access columns in unit execution order."""
    from ..formats.csx.substructures import unit_coordinates

    if not units:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate([unit_coordinates(u)[1] for u in units])


def _thread_work(
    matrix: AnyMatrix,
    partitions: Sequence[tuple[int, int]],
    cost: CostModel,
) -> list[_ThreadWork]:
    if isinstance(matrix, CSXSymMatrix):
        want = matrix.partition_bounds
        if list(partitions) != want:
            raise ValueError("partitions do not match CSX-Sym preprocessing")
        return [
            _csx_sym_partition_work(matrix, i, cost)
            for i in range(len(partitions))
        ]
    if isinstance(matrix, CSXMatrix):
        want = [(p.row_start, p.row_end) for p in matrix.partitions]
        if list(partitions) != want:
            raise ValueError("partitions do not match CSX preprocessing")
        return [
            _csx_partition_work(matrix, i, cost)
            for i in range(len(partitions))
        ]
    if isinstance(matrix, SSSMatrix):
        return [
            _sss_thread_work(matrix, s, e, cost) for s, e in partitions
        ]
    if isinstance(matrix, CSRMatrix):
        return [
            _csr_thread_work(matrix, s, e, cost) for s, e in partitions
        ]
    raise TypeError(f"unsupported matrix type {type(matrix).__name__}")


# ----------------------------------------------------------------------
# Reduction-phase work
# ----------------------------------------------------------------------
def _reduction_load(
    fp: ReductionFootprint, cost: CostModel, p: int
) -> PhaseLoad:
    """Traffic and cycles of the reduction phase.

    Counts the element reads of the reduction, its output writes
    (write-allocate: fetch + write back, 16 bytes each), and the
    per-iteration re-initialization of the local vectors' touched range
    (also write-allocate) — all scale with the method's working set,
    which is the paper's central observation.
    """
    if fp.method == "indexed":
        init_elements = fp.index_pairs
    else:
        init_elements = fp.reduction_reads
    bytes_total = (
        8.0 * fp.reduction_reads
        + 16.0 * fp.reduction_writes
        + 16.0 * init_elements
    )
    cycles_total = cost.reduce_cycles_per_element * (
        fp.reduction_reads + fp.reduction_writes
    )
    per_thread = [cycles_total / p] * p
    return PhaseLoad(per_thread, bytes_total, float(fp.reduction_reads))


# ----------------------------------------------------------------------
# Public prediction API
# ----------------------------------------------------------------------
def predict_spmv(
    matrix: AnyMatrix,
    partitions: Sequence[tuple[int, int]],
    platform: Platform,
    reduction: Optional[Union[str, ReductionMethod]] = None,
    cost: CostModel = DEFAULT_COST_MODEL,
    machine_scale: float = 1.0,
) -> PredictedTime:
    """Predict one SpM×V execution.

    Parameters
    ----------
    matrix : CSR / SSS / CSX / CSX-Sym instance
    partitions : thread row partitions (one per modelled thread)
    platform : Platform
    reduction : reduction method (symmetric formats only); string name
        or prebuilt instance
    cost : CostModel
    machine_scale : float
        Scales the platform's cache capacity. The benchmark harness runs
        miniature matrices (``scale`` of the paper's sizes); passing the
        same factor here shrinks the cache identically, so capacity
        effects (input-vector locality, reduction working-set pressure)
        appear at the same *relative* sizes as on the real machines.
        Bandwidth and compute rates are unaffected (traffic and flops
        are per-element quantities).
    """
    validate_partitions(partitions, matrix.n_rows)
    p = len(partitions)
    if p > platform.n_threads:
        raise ValueError(
            f"{platform.name} has {platform.n_threads} hardware threads, "
            f"got {p} partitions"
        )
    symmetric = isinstance(matrix, (SSSMatrix, CSXSymMatrix))
    fp: Optional[ReductionFootprint] = None
    if symmetric:
        if reduction is None:
            reduction = "indexed"
        if isinstance(reduction, str):
            reduction = make_reduction(reduction, matrix, partitions)
        fp = reduction.footprint()
    elif reduction is not None and not isinstance(reduction, str):
        raise ValueError("reduction only applies to symmetric formats")

    works = _thread_work(matrix, partitions, cost)

    if machine_scale <= 0:
        raise ValueError("machine_scale must be positive")
    # Cache available per thread for x reuse, shrunk by the reduction
    # working set (the cache-interference effect of Fig. 10).
    llc = platform.llc_bytes_available(p) * machine_scale
    x_share = cost.x_cache_share
    if fp is not None and llc > 0:
        pressure = 1.0 - fp.ws_measured_bytes / llc
        x_share = max(cost.min_x_share, x_share * max(0.0, pressure))
    cache_per_thread = platform.cache_bytes_per_thread(p) * machine_scale

    cycles = []
    mult_bytes = 0.0
    flops = 0.0
    for w in works:
        cycles.append(w.cycles)
        mult_bytes += w.matrix_bytes + w.y_bytes
        mult_bytes += x_traffic_bytes(w.col_stream, cache_per_thread, x_share)
        if w.scatter_stream is not None and w.scatter_stream.size:
            misses_bytes = x_traffic_bytes(
                w.scatter_stream, cache_per_thread, cost.y_cache_share
            )
            mult_bytes += cost.scatter_write_factor * misses_bytes
        flops += w.flops

    mult_load = PhaseLoad(cycles, mult_bytes, flops)
    t_mult, t_mc, t_mm = phase_time(mult_load, platform, p)

    t_barrier = 0.0
    if fp is not None and getattr(reduction, "conflict_free", False):
        from ..parallel.coloring import BARRIER_CYCLES

        sched = reduction.schedule
        # Color-ordered execution fetches the matrix at row granularity
        # (scattered class rows waste partial cache lines) and pays one
        # rendezvous per barrier-separated step.
        row_waste = sched.n_nonempty_rows * CACHE_LINE_BYTES
        mult_bytes += row_waste
        mult_load = PhaseLoad(cycles, mult_bytes, flops)
        t_mult, t_mc, t_mm = phase_time(mult_load, platform, p)
        clock = platform.clock_ghz * 1e9
        t_barrier = sched.n_barriers * BARRIER_CYCLES * p ** 0.5 / clock

    if fp is not None:
        red_load = _reduction_load(fp, cost, p)
        t_red, t_rc, t_rm = phase_time(red_load, platform, p)
        reduce_bytes = red_load.bytes_total
        flops += red_load.flops_total
    else:
        t_red = t_rc = t_rm = 0.0
        reduce_bytes = 0.0

    return PredictedTime(
        format_name=matrix.format_name,
        reduction=fp.method if fp else None,
        n_threads=p,
        t_mult=t_mult,
        t_reduce=t_red,
        t_mult_compute=t_mc,
        t_mult_memory=t_mm,
        t_reduce_compute=t_rc,
        t_reduce_memory=t_rm,
        mult_bytes=mult_bytes,
        reduce_bytes=reduce_bytes,
        flops=flops,
        footprint=fp,
        t_barrier=t_barrier,
    )


def predict_serial_csr(
    csr: CSRMatrix,
    platform: Platform,
    cost: CostModel = DEFAULT_COST_MODEL,
    machine_scale: float = 1.0,
) -> PredictedTime:
    """Single-threaded CSR prediction — the speedup baseline."""
    return predict_spmv(
        csr, [(0, csr.n_rows)], platform, cost=cost,
        machine_scale=machine_scale,
    )
