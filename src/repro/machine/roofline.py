"""Roofline time composition.

Each SpM×V phase is characterized by per-thread compute cycles and
total memory traffic; its execution time is the slower of the compute
ceiling and the bandwidth ceiling — the standard roofline argument the
paper itself uses to reason about the kernel (flop:byte ratios,
Section I and III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .platforms import Platform

__all__ = ["PhaseLoad", "phase_time"]


@dataclass
class PhaseLoad:
    """Work of one phase across threads.

    Attributes
    ----------
    cycles_per_thread : list of per-thread compute cycles
    bytes_total : total memory traffic of the phase
    flops_total : floating point operations (for Gflop/s reporting)
    """

    cycles_per_thread: Sequence[float]
    bytes_total: float
    flops_total: float

    @property
    def max_cycles(self) -> float:
        return max(self.cycles_per_thread) if self.cycles_per_thread else 0.0


def smt_compute_factor(platform: Platform, p: int) -> float:
    """Compute-time inflation when SMT threads share physical cores.

    ``p`` threads on ``cores_used`` cores each progress at
    ``cores_used / p`` of a full core; the critical thread's cycles
    stretch accordingly.
    """
    cores = platform.cores_used(p)
    return p / cores if cores else 1.0


def phase_time(load: PhaseLoad, platform: Platform, p: int) -> tuple[float, float, float]:
    """``(time_seconds, t_compute, t_memory)`` for one phase.

    Compute time is the slowest thread's cycles at the platform clock
    (inflated under SMT sharing); memory time is total traffic over the
    aggregate sustainable bandwidth for ``p`` threads. The phase runs at
    the binding ceiling.
    """
    t_comp = (
        load.max_cycles * smt_compute_factor(platform, p)
        / (platform.clock_ghz * 1e9)
    )
    bw = platform.bandwidth_gbps(p) * 1e9
    t_mem = load.bytes_total / bw if bw > 0 else float("inf")
    return max(t_comp, t_mem), t_comp, t_mem
