"""Experimental platform descriptions (paper Table II).

The two testbeds of the paper are modelled with the parameters Table II
reports plus a small number of microarchitectural constants (per-thread
streaming limits, SpM×V loop costs) that are documented and calibrated
in :mod:`repro.machine.roofline`.

* **Dunnington** — quad-socket six-core Intel Xeon X7460 (24 cores).
  A front-side-bus SMP: all sockets share one memory path, sustained
  5.4 GB/s total (STREAM). The bandwidth-starved platform.
* **Gainestown** — dual-socket quad-core Intel Xeon W5580 (8 cores /
  16 SMT threads), Nehalem NUMA: each socket has its own controller at
  15.5 GB/s sustained. The bandwidth-rich platform.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Platform", "DUNNINGTON", "GAINESTOWN", "PLATFORMS"]

#: Cache line size (bytes) on both platforms.
CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class Platform:
    """A multicore machine for the performance model.

    Attributes beyond Table II:

    per_thread_bw_gbps
        Sustainable streaming bandwidth of a single thread (one core
        cannot saturate the memory system; this caps low-thread-count
        memory time). Calibrated so single-thread CSR SpM×V lands near
        the paper's serial baselines.
    smt
        Hardware threads per core. SMT threads share their core's
        compute throughput in the model.
    preproc_cycles_per_element
        Effective CSX preprocessing cost per (element, orientation)
        scan visit: statistics, sorting, greedy encoding, ctl
        serialization and kernel compilation amortized per element.
        Per-platform because this integer/branch-heavy work has very
        different IPC on the Core vs Nehalem microarchitectures;
        calibrated against §V-E (≈49 serial CSR SpM×V units on
        Dunnington, ≈94 on Gainestown).
    """

    name: str
    n_sockets: int
    cores_per_socket: int
    smt: int
    clock_ghz: float
    l1_kib: int
    l2_kib: int
    l2_shared_by: int
    l3_mib_per_socket: float
    sustained_bw_gbps_per_socket: float
    bw_shared_across_sockets: bool
    per_thread_bw_gbps: float
    preproc_cycles_per_element: float = 1800.0

    # ------------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        return self.n_sockets * self.cores_per_socket

    @property
    def n_threads(self) -> int:
        return self.n_cores * self.smt

    @property
    def total_bw_gbps(self) -> float:
        if self.bw_shared_across_sockets:
            return self.sustained_bw_gbps_per_socket
        return self.n_sockets * self.sustained_bw_gbps_per_socket

    @property
    def llc_total_bytes(self) -> int:
        return int(self.n_sockets * self.l3_mib_per_socket * 1024 * 1024)

    def thread_placement(self, p: int) -> list[int]:
        """Threads per socket when ``p`` threads are bound round-robin
        across sockets, filling physical cores before SMT siblings."""
        if not 1 <= p <= self.n_threads:
            raise ValueError(
                f"{self.name} supports 1..{self.n_threads} threads, got {p}"
            )
        per_socket = [0] * self.n_sockets
        for t in range(p):
            per_socket[t % self.n_sockets] += 1
        return per_socket

    def cores_used(self, p: int) -> int:
        """Physical cores actually computing with ``p`` threads."""
        placement = self.thread_placement(p)
        return sum(min(t, self.cores_per_socket) for t in placement)

    def bandwidth_gbps(self, p: int) -> float:
        """Aggregate sustainable memory bandwidth for ``p`` threads.

        Per socket: the socket's sustained limit, capped by what its
        threads can pull individually; shared-bus machines are capped
        globally instead.
        """
        placement = self.thread_placement(p)
        if self.bw_shared_across_sockets:
            return min(
                self.sustained_bw_gbps_per_socket,
                p * self.per_thread_bw_gbps,
            )
        total = 0.0
        for threads in placement:
            if threads:
                total += min(
                    self.sustained_bw_gbps_per_socket,
                    threads * self.per_thread_bw_gbps,
                )
        return total

    def llc_bytes_available(self, p: int) -> int:
        """Aggregate last-level cache reachable by ``p`` threads."""
        placement = self.thread_placement(p)
        sockets_used = sum(1 for t in placement if t)
        return int(sockets_used * self.l3_mib_per_socket * 1024 * 1024)

    def cache_bytes_per_thread(self, p: int) -> float:
        """Cache capacity one of ``p`` threads can keep hot: its share
        of the reachable LLC plus its private/shared L2 slice."""
        l2 = self.l2_kib * 1024 / self.l2_shared_by
        return self.llc_bytes_available(p) / p + l2


DUNNINGTON = Platform(
    name="Dunnington",
    n_sockets=4,
    cores_per_socket=6,
    smt=1,
    clock_ghz=2.66,
    l1_kib=32,
    l2_kib=3 * 1024,
    l2_shared_by=2,
    l3_mib_per_socket=16.0,
    sustained_bw_gbps_per_socket=5.4,  # STREAM, shared FSB
    bw_shared_across_sockets=True,
    # One Core-µarch thread on the FSB sustains well under the STREAM
    # figure for the irregular SpM×V access mix; calibrated so the CSR
    # scaling curve spans the ~4× range of the paper's Fig. 9.
    per_thread_bw_gbps=1.35,
    preproc_cycles_per_element=3600.0,
)

GAINESTOWN = Platform(
    name="Gainestown",
    n_sockets=2,
    cores_per_socket=4,
    smt=2,
    clock_ghz=3.20,
    l1_kib=32,
    l2_kib=256,
    l2_shared_by=1,
    l3_mib_per_socket=8.0,
    sustained_bw_gbps_per_socket=15.5,  # STREAM, per socket
    bw_shared_across_sockets=False,
    per_thread_bw_gbps=6.5,
    # Nehalem's OoO engine and on-die memory controller run the
    # sorting-dominated preprocessing far faster per element, but the
    # NUMA balancing pass (§V-E) adds work — the net lands at the
    # paper's 94-unit average.
    preproc_cycles_per_element=600.0,
)

PLATFORMS = {p.name.lower(): p for p in (DUNNINGTON, GAINESTOWN)}
