"""repro — reproduction of "Improving the Performance of the Symmetric
Sparse Matrix-Vector Multiplication in Multicore" (IPDPS Workshops 2013).

Subpackages
-----------
formats
    COO / CSR / SSS / CSX / CSX-Sym storage formats.
parallel
    Thread partitioning, the three local-vector reduction methods
    (naive, effective ranges, local-vectors indexing) and the
    multithreaded symmetric SpM×V orchestration.
machine
    Multicore performance model (platform specs, cache-aware traffic
    estimation, roofline timing) used to regenerate the paper's
    experiments; see DESIGN.md for the hardware substitution rationale.
analysis
    Working-set accounting, effective-region density, execution-time
    breakdowns, figure/table renderers.
reorder
    Cuthill-McKee / RCM bandwidth reduction.
solvers
    Non-preconditioned Conjugate Gradient with phase instrumentation.
matrices
    Synthetic matrix suite mirroring the paper's Table I, plus
    MatrixMarket I/O.
"""

__version__ = "1.0.0"

from . import formats

__all__ = ["formats", "__version__"]
