"""The 12-entry matrix suite mirroring the paper's Table I.

Each :class:`SuiteEntry` records the paper's metadata (rows, non-zeros,
problem class, reported compression ratios) and a generator that builds
a synthetic stand-in with matching pattern statistics at a configurable
``scale`` (fraction of the paper's row count — full-size matrices are
supported but slow in pure Python; the benchmarks default to miniatures
that preserve the per-matrix distinctions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..formats.coo import COOMatrix
from . import generators as gen

__all__ = ["SuiteEntry", "SUITE", "get_entry", "build_suite", "DEFAULT_SCALE"]

#: Default fraction of the paper's row counts used by tests/benchmarks.
DEFAULT_SCALE = 0.02


@dataclass(frozen=True)
class SuiteEntry:
    """One row of the paper's Table I plus its synthetic builder."""

    name: str
    paper_rows: int
    paper_nnz: int
    problem: str
    #: CSX-Sym compression ratio the paper reports (Table I).
    paper_cr_csx_sym: float
    #: Maximum symmetric compression ratio (Table I, "C.R. (Max.)").
    paper_cr_max: float
    #: One of the four high-bandwidth matrices where CSR wins (§V-B/C).
    corner_case: bool
    builder: Callable[[int, np.random.Generator], COOMatrix]

    @property
    def paper_nnz_per_row(self) -> float:
        return self.paper_nnz / self.paper_rows

    def build(
        self,
        scale: float = DEFAULT_SCALE,
        seed: Optional[int] = None,
    ) -> COOMatrix:
        """Generate the synthetic stand-in at ``scale`` of paper size."""
        if not 0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        n = max(64, int(round(self.paper_rows * scale)))
        rng = np.random.default_rng(
            seed if seed is not None else _stable_seed(self.name)
        )
        return self.builder(n, rng)


def _stable_seed(name: str) -> int:
    return sum(ord(c) * (i + 1) for i, c in enumerate(name)) % (2**31)


# ----------------------------------------------------------------------
# Builders — each mirrors one Table I matrix.
# ----------------------------------------------------------------------
def _parabolic_fem(n: int, rng) -> COOMatrix:
    # 2-D CFD discretization, 7 nnz/row, irregular native ordering with
    # very high bandwidth → 3-D 7-point grid, randomly permuted.
    nx = max(4, int(round(n ** (1 / 3))))
    ny = nx
    nz = max(1, n // (nx * ny))
    m = gen.grid_laplacian_3d(nx, ny, nz)
    return gen.permute_random(m, rng)


def _offshore(n: int, rng) -> COOMatrix:
    # 3-D electromagnetics mesh, ~16 nnz/row, scattered native order.
    m = gen.banded_random(n, nnz_per_row=16.3, band=max(8, n // 20), rng=rng)
    return gen.permute_random(m, rng)


def _consph(n: int, rng) -> COOMatrix:
    # FEM concentric spheres: dense rows (~72 nnz/row), contiguous runs.
    return gen.dense_clustered(
        n, nnz_per_row=72.0, band=max(64, n // 12), run_len=9, rng=rng
    )


def _bmw7st_1(n: int, rng) -> COOMatrix:
    # Structural, 3 dof/node, ~52 nnz/row.
    return gen.block_structural(
        max(2, n // 3), dof=3, nnz_per_row=51.9,
        band_nodes=max(4, n // 60), rng=rng,
    )


def _g3_circuit(n: int, rng) -> COOMatrix:
    # Circuit simulation: ~4.8 nnz/row; the native ordering scatters a
    # mostly-local connection structure (with a few genuinely global
    # nets), which is why RCM recovers most of the locality (§V-D).
    m = gen.circuit_like(
        n, nnz_per_row=4.8, long_range_fraction=0.02, rng=rng
    )
    return gen.permute_random(m, rng)


def _thermal2(n: int, rng) -> COOMatrix:
    # Unstructured thermal FEM: ~7 nnz/row, scattered native order.
    m = gen.banded_random(n, nnz_per_row=7.0, band=max(8, n // 24), rng=rng)
    return gen.permute_random(m, rng)


def _bmwcra_1(n: int, rng) -> COOMatrix:
    return gen.block_structural(
        max(2, n // 3), dof=3, nnz_per_row=71.5,
        band_nodes=max(4, n // 50), rng=rng,
    )


def _hood(n: int, rng) -> COOMatrix:
    return gen.block_structural(
        max(2, n // 3), dof=3, nnz_per_row=48.8,
        band_nodes=max(4, n // 60), rng=rng,
    )


def _crankseg_2(n: int, rng) -> COOMatrix:
    # Very dense structural rows (~222 nnz/row).
    return gen.dense_clustered(
        n, nnz_per_row=221.6, band=max(96, n // 8), run_len=12, rng=rng
    )


def _nd12k(n: int, rng) -> COOMatrix:
    # 2D/3D problem with extremely dense rows (~395 nnz/row).
    return gen.dense_clustered(
        n, nnz_per_row=395.0, band=max(128, n // 6), run_len=16, rng=rng
    )


def _inline_1(n: int, rng) -> COOMatrix:
    return gen.block_structural(
        max(2, n // 3), dof=3, nnz_per_row=73.1,
        band_nodes=max(4, n // 50), rng=rng,
    )


def _ldoor(n: int, rng) -> COOMatrix:
    return gen.block_structural(
        max(2, n // 3), dof=3, nnz_per_row=48.9,
        band_nodes=max(4, n // 60), rng=rng,
    )


SUITE: list[SuiteEntry] = [
    SuiteEntry("parabolic_fem", 525_825, 3_674_625, "C.F.D.",
               0.496, 0.636, True, _parabolic_fem),
    SuiteEntry("offshore", 259_789, 4_242_673, "E/M",
               0.561, 0.653, True, _offshore),
    SuiteEntry("consph", 83_334, 6_010_480, "F.E.M.",
               0.639, 0.664, False, _consph),
    SuiteEntry("bmw7st_1", 141_347, 7_339_667, "Structural",
               0.644, 0.662, False, _bmw7st_1),
    SuiteEntry("G3_circuit", 1_585_478, 7_660_826, "Circuit",
               0.602, 0.624, True, _g3_circuit),
    SuiteEntry("thermal2", 1_228_045, 8_580_313, "Thermal",
               0.534, 0.636, True, _thermal2),
    SuiteEntry("bmwcra_1", 148_770, 10_644_002, "Structural",
               0.651, 0.664, False, _bmwcra_1),
    SuiteEntry("hood", 220_542, 10_768_436, "Structural",
               0.644, 0.662, False, _hood),
    SuiteEntry("crankseg_2", 63_838, 14_148_858, "Structural",
               0.649, 0.666, False, _crankseg_2),
    SuiteEntry("nd12k", 36_000, 14_220_946, "2D/3D",
               0.649, 0.666, False, _nd12k),
    SuiteEntry("inline_1", 503_712, 36_816_342, "Structural",
               0.647, 0.664, False, _inline_1),
    SuiteEntry("ldoor", 952_203, 46_522_475, "Structural",
               0.645, 0.662, False, _ldoor),
]

_BY_NAME = {e.name: e for e in SUITE}


def get_entry(name: str) -> SuiteEntry:
    """Look a suite entry up by its Table I name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown suite matrix {name!r}; available: "
            f"{sorted(_BY_NAME)}"
        ) from None


def build_suite(
    scale: float = DEFAULT_SCALE,
    names: Optional[list[str]] = None,
    seed: Optional[int] = None,
) -> dict[str, COOMatrix]:
    """Build (a subset of) the suite at the given scale."""
    entries = SUITE if names is None else [get_entry(n) for n in names]
    return {e.name: e.build(scale=scale, seed=seed) for e in entries}
