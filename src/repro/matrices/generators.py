"""Synthetic symmetric sparse matrix generators.

The paper evaluates on 12 matrices from the University of Florida
collection (Table I). With no network access, each suite entry is
replaced by a generator that reproduces the *pattern statistics that
drive the experiments*: rows, non-zeros per row, bandwidth profile
(banded vs. scattered), substructure content (dense blocks, contiguous
runs) and positive definiteness. See DESIGN.md's substitution table.

All generators return an expanded symmetric :class:`COOMatrix` made
positive definite by diagonal dominance, with deterministic output for
a given seed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..formats.coo import COOMatrix

__all__ = [
    "grid_laplacian_2d",
    "grid_laplacian_3d",
    "banded_random",
    "block_structural",
    "dense_clustered",
    "circuit_like",
    "rmat",
    "permute_random",
    "make_spd",
]


def _symmetric_from_lower(
    n: int,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
) -> COOMatrix:
    """Expand strictly-lower entries into a full SPD matrix.

    Duplicate coordinates are summed by the COO constructor; the
    diagonal is set afterwards by :func:`make_spd`.
    """
    keep = (rows > cols) & (cols >= 0) & (rows < n)
    rows, cols, vals = rows[keep], cols[keep], vals[keep]
    lower = COOMatrix((n, n), rows, cols, vals)
    full = COOMatrix(
        (n, n),
        np.concatenate([lower.rows, lower.cols]),
        np.concatenate([lower.cols, lower.rows]),
        np.concatenate([lower.vals, lower.vals]),
        sum_duplicates=False,
    )
    return make_spd(full)


def make_spd(coo: COOMatrix) -> COOMatrix:
    """Return a copy with the diagonal replaced by ``1 + Σ|row|``.

    Strict diagonal dominance with positive diagonal ⇒ symmetric
    positive definite (Gershgorin), which the CG experiments require.
    """
    n = coo.n_rows
    off = coo.rows != coo.cols
    rows, cols, vals = coo.rows[off], coo.cols[off], coo.vals[off]
    row_sums = np.zeros(n, dtype=np.float64)
    np.add.at(row_sums, rows, np.abs(vals))
    diag = 1.0 + row_sums
    return COOMatrix(
        (n, n),
        np.concatenate([rows, np.arange(n, dtype=np.int32)]),
        np.concatenate([cols, np.arange(n, dtype=np.int32)]),
        np.concatenate([vals, diag]),
        sum_duplicates=False,
    )


# ----------------------------------------------------------------------
# Structured meshes
# ----------------------------------------------------------------------
def grid_laplacian_2d(nx: int, ny: int, stencil: int = 5) -> COOMatrix:
    """5- or 9-point Laplacian on an ``nx × ny`` grid (row-major nodes).

    Banded: bandwidth ``≈ nx``. ≈ ``stencil`` non-zeros per row.
    """
    if stencil not in (5, 9):
        raise ValueError("stencil must be 5 or 9")
    n = nx * ny
    idx = np.arange(n, dtype=np.int64)
    gx = idx % nx
    gy = idx // nx
    rows_list, cols_list = [], []

    def connect(mask: np.ndarray, offset: int) -> None:
        src = idx[mask]
        rows_list.append(src)
        cols_list.append(src - offset)

    connect(gx > 0, 1)  # west
    connect(gy > 0, nx)  # south
    if stencil == 9:
        connect((gx > 0) & (gy > 0), nx + 1)  # south-west
        connect((gx < nx - 1) & (gy > 0), nx - 1)  # south-east
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    vals = -np.ones(rows.size, dtype=np.float64)
    return _symmetric_from_lower(n, rows, cols, vals)


def grid_laplacian_3d(nx: int, ny: int, nz: int) -> COOMatrix:
    """7-point Laplacian on an ``nx × ny × nz`` grid.

    ≈ 7 non-zeros per row with three band distances (1, nx, nx·ny) —
    the pattern family of *parabolic_fem* / *thermal2*.
    """
    n = nx * ny * nz
    idx = np.arange(n, dtype=np.int64)
    gx = idx % nx
    gy = (idx // nx) % ny
    gz = idx // (nx * ny)
    rows_list, cols_list = [], []
    for mask, off in (
        (gx > 0, 1),
        (gy > 0, nx),
        (gz > 0, nx * ny),
    ):
        src = idx[mask]
        rows_list.append(src)
        cols_list.append(src - off)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    vals = -np.ones(rows.size, dtype=np.float64)
    return _symmetric_from_lower(n, rows, cols, vals)


# ----------------------------------------------------------------------
# Randomized families
# ----------------------------------------------------------------------
def banded_random(
    n: int,
    nnz_per_row: float,
    band: int,
    rng: np.random.Generator,
) -> COOMatrix:
    """Random symmetric matrix with entries inside a band.

    ``nnz_per_row`` counts the expanded matrix including the diagonal;
    ``(nnz_per_row - 1) / 2`` strictly-lower entries per row are drawn
    uniformly within ``band`` of the diagonal (offshore / thermal-style
    unstructured meshes after a bandwidth-reducing ordering).
    """
    k = max(1, int(round((nnz_per_row - 1) / 2)))
    band = max(1, min(band, n - 1))
    rows = np.repeat(np.arange(n, dtype=np.int64), k)
    offsets = rng.integers(1, band + 1, size=rows.size)
    cols = rows - offsets
    vals = rng.uniform(0.1, 1.0, size=rows.size)
    return _symmetric_from_lower(n, rows, cols, vals)


def block_structural(
    n_nodes: int,
    dof: int,
    nnz_per_row: float,
    band_nodes: int,
    rng: np.random.Generator,
) -> COOMatrix:
    """FEM structural matrix: banded node graph with dense ``dof×dof``
    coupling blocks (the bmw*/hood/inline/ldoor family, dof = 3).

    Every node edge expands into a fully dense block, so the matrix is
    rich in the 2-D block substructures CSX detects. With ``e`` lower
    node edges per node, the expanded matrix has
    ``2·dof·e + dof`` non-zeros per row; ``e`` is derived from the
    requested ``nnz_per_row``.
    """
    if dof < 1:
        raise ValueError("dof must be >= 1")
    k = max(1, int(round((nnz_per_row - dof) / (2 * dof))))
    band_nodes = max(1, min(band_nodes, n_nodes - 1))
    src = np.repeat(np.arange(n_nodes, dtype=np.int64), k)
    offsets = rng.integers(1, band_nodes + 1, size=src.size)
    dst = src - offsets
    keep = dst >= 0
    src, dst = src[keep], dst[keep]
    # Deduplicate node edges so blocks do not overlap.
    keys = src * n_nodes + dst
    keys = np.unique(keys)
    src = keys // n_nodes
    dst = keys % n_nodes

    # Off-diagonal blocks: dense dof×dof at (src, dst) — strictly lower
    # because dst < src.
    a = np.repeat(np.arange(dof, dtype=np.int64), dof)
    b = np.tile(np.arange(dof, dtype=np.int64), dof)
    rows = (src[:, None] * dof + a[None, :]).ravel()
    cols = (dst[:, None] * dof + b[None, :]).ravel()
    # Node-diagonal blocks: strictly-lower part of each dof×dof block.
    da, db = np.tril_indices(dof, k=-1)
    nodes = np.arange(n_nodes, dtype=np.int64)
    rows_d = (nodes[:, None] * dof + da[None, :]).ravel()
    cols_d = (nodes[:, None] * dof + db[None, :]).ravel()

    all_rows = np.concatenate([rows, rows_d])
    all_cols = np.concatenate([cols, cols_d])
    vals = rng.uniform(0.1, 1.0, size=all_rows.size)
    return _symmetric_from_lower(n_nodes * dof, all_rows, all_cols, vals)


def dense_clustered(
    n: int,
    nnz_per_row: float,
    band: int,
    run_len: int,
    rng: np.random.Generator,
) -> COOMatrix:
    """Rows dominated by contiguous column runs (consph / crankseg /
    nd12k family: very dense rows, long horizontal unit-stride runs).

    Each row receives ``≈ nnz_per_row / (2·run_len)`` runs of
    ``run_len`` consecutive columns placed within ``band`` of the
    diagonal.
    """
    run_len = max(2, run_len)
    runs_per_row = max(1, int(round((nnz_per_row - 1) / (2 * run_len))))
    band = max(run_len + 1, min(band, n - 1))
    rows = np.repeat(np.arange(n, dtype=np.int64), runs_per_row)
    start_off = rng.integers(run_len, band + 1, size=rows.size)
    starts = rows - start_off
    rows = np.repeat(rows, run_len)
    cols = np.repeat(starts, run_len) + np.tile(
        np.arange(run_len, dtype=np.int64), starts.size
    )
    vals = rng.uniform(0.1, 1.0, size=rows.size)
    return _symmetric_from_lower(n, rows, cols, vals)


def circuit_like(
    n: int,
    nnz_per_row: float,
    long_range_fraction: float,
    rng: np.random.Generator,
) -> COOMatrix:
    """Circuit-simulation matrix (*G3_circuit* family): very sparse,
    chain-like local structure plus a fraction of unbounded long-range
    connections that give the matrix its large bandwidth.
    """
    k = max(1, int(round((nnz_per_row - 1) / 2)))
    # Local: chain neighbours.
    rows_local = np.repeat(np.arange(1, n, dtype=np.int64), 1)
    cols_local = rows_local - 1
    # Extra edges: short with prob (1 - long_range_fraction), long else.
    n_extra = max(0, (k - 1) * n)
    if n_extra:
        src = rng.integers(1, n, size=n_extra)
        is_long = rng.random(n_extra) < long_range_fraction
        short_off = rng.integers(1, np.minimum(src, 64) + 1)
        long_target = (rng.random(n_extra) * src).astype(np.int64)
        dst = np.where(is_long, long_target, src - short_off)
        rows = np.concatenate([rows_local, src])
        cols = np.concatenate([cols_local, dst])
    else:
        rows, cols = rows_local, cols_local
    vals = rng.uniform(0.1, 1.0, size=rows.size)
    return _symmetric_from_lower(n, rows, cols, vals)


def rmat(
    scale: int,
    edge_factor: float,
    rng: np.random.Generator,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> COOMatrix:
    """Symmetric R-MAT (Kronecker) matrix: ``2**scale`` rows with
    ``edge_factor`` edges per row.

    The scale-free pattern family the CSB evaluation uses; a stress
    test for every method here (power-law row degrees defeat block
    detection, load balancing *and* locality at once).

    ``(a, b, c)`` are the standard R-MAT quadrant probabilities
    (``d = 1 - a - b - c``).
    """
    if scale < 1 or scale > 24:
        raise ValueError("scale must be in [1, 24]")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must be a distribution")
    n = 1 << scale
    n_edges = int(edge_factor * n)
    rows = np.zeros(n_edges, dtype=np.int64)
    cols = np.zeros(n_edges, dtype=np.int64)
    for bit in range(scale - 1, -1, -1):
        r = rng.random(n_edges)
        south = (r >= a + b) & (r < a + b + c) | (r >= a + b + c)
        east = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        rows |= south.astype(np.int64) << bit
        cols |= east.astype(np.int64) << bit
    # Symmetrize: keep as lower triangle (swap where needed), drop
    # self-loops.
    swap = cols > rows
    rows2 = np.where(swap, cols, rows)
    cols2 = np.where(swap, rows, cols)
    keep = rows2 != cols2
    vals = rng.uniform(0.1, 1.0, size=n_edges)
    return _symmetric_from_lower(n, rows2[keep], cols2[keep], vals[keep])


def permute_random(coo: COOMatrix, rng: np.random.Generator) -> COOMatrix:
    """Apply a random symmetric permutation.

    Destroys banded locality — simulating the high-bandwidth native
    orderings of the paper's four corner-case matrices, which RCM
    reordering (Section V-D) subsequently repairs.
    """
    perm = rng.permutation(coo.n_rows)
    return coo.permute_symmetric(perm)
