"""Matrix suite (Table I stand-ins), generators and MatrixMarket I/O."""

from .generators import (
    banded_random,
    block_structural,
    circuit_like,
    dense_clustered,
    grid_laplacian_2d,
    grid_laplacian_3d,
    make_spd,
    permute_random,
    rmat,
)
from .mmio import read_matrix_market, write_matrix_market
from .suite import DEFAULT_SCALE, SUITE, SuiteEntry, build_suite, get_entry

__all__ = [
    "SUITE",
    "SuiteEntry",
    "build_suite",
    "get_entry",
    "DEFAULT_SCALE",
    "grid_laplacian_2d",
    "grid_laplacian_3d",
    "banded_random",
    "block_structural",
    "dense_clustered",
    "circuit_like",
    "rmat",
    "permute_random",
    "make_spd",
    "read_matrix_market",
    "write_matrix_market",
]
