"""Minimal MatrixMarket coordinate I/O.

Supports the subset the experiments need: ``matrix coordinate real``
with ``general`` or ``symmetric`` qualifiers. Symmetric files store the
lower triangle (MatrixMarket convention) and are expanded on read, so a
round trip through :func:`write_matrix_market` /
:func:`read_matrix_market` is exact for our symmetric suite.

Reading is *hardened*: malformed text raises a typed error from the
:mod:`repro.formats.validate` taxonomy instead of silently producing a
wrong matrix — duplicate coordinates raise
:class:`~repro.formats.validate.CanonicalityError` (a duplicate in a
symmetric file would otherwise be double-counted by the expansion),
and entries above the diagonal of a symmetric file are mirrored into
the lower triangle (or rejected with
:class:`~repro.formats.validate.TriangleConventionError` under
``upper="error"``) rather than being expanded as if they were lower
entries.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Union

import numpy as np

from ..formats.coo import COOMatrix
from ..formats.validate import (
    BoundsError,
    CanonicalityError,
    ParseError,
    SymmetryError,
    TriangleConventionError,
    check_finite,
)

__all__ = ["read_matrix_market", "write_matrix_market"]

_HEADER = "%%MatrixMarket matrix coordinate real"


def write_matrix_market(
    path: Union[str, Path, io.TextIOBase],
    coo: COOMatrix,
    *,
    symmetric: bool = False,
) -> None:
    """Write a COO matrix in MatrixMarket coordinate format.

    With ``symmetric=True`` the matrix must be symmetric and only the
    lower triangle (diagonal included) is stored.
    """
    if symmetric:
        if not coo.is_symmetric():
            raise SymmetryError("matrix is not symmetric")
        out = coo.lower_triangle(strict=False)
    else:
        out = coo.canonicalize()
    qualifier = "symmetric" if symmetric else "general"
    lines = [f"{_HEADER} {qualifier}\n"]
    lines.append(f"{coo.n_rows} {coo.n_cols} {out.nnz}\n")
    for r, c, v in zip(out.rows, out.cols, out.vals):
        lines.append(f"{r + 1} {c + 1} {float(v)!r}\n")
    data = "".join(lines)
    if isinstance(path, (str, Path)):
        Path(path).write_text(data)
    else:
        path.write(data)


def _parse_entries(entries: list[str]) -> np.ndarray:
    """Parse coordinate lines into an ``(nnz, 3)`` float array, raising
    :class:`ParseError` with the offending line on malformed input."""
    tokens = [ln.split() for ln in entries]
    for ln, toks in zip(entries, tokens):
        if len(toks) != 3:
            raise ParseError(f"malformed entry line: {ln!r}")
    try:
        return np.array(tokens, dtype=np.float64)
    except ValueError:
        for ln, toks in zip(entries, tokens):
            try:
                [float(t) for t in toks]
            except ValueError:
                raise ParseError(f"malformed entry line: {ln!r}") from None
        raise  # pragma: no cover - unreachable


def read_matrix_market(
    path: Union[str, Path, io.TextIOBase], *, upper: str = "mirror"
) -> COOMatrix:
    """Read a MatrixMarket coordinate file into a COO matrix.

    Symmetric files are expanded to both triangles.  Per the
    MatrixMarket convention a symmetric file must store the *lower*
    triangle only; entries above the diagonal are handled per
    ``upper``:

    * ``"mirror"`` (default): transposed into the lower triangle before
      expansion (tolerates upper-triangle producers);
    * ``"error"``: raise
      :class:`~repro.formats.validate.TriangleConventionError`.

    Duplicate coordinates (in either qualifier, and including a
    symmetric file storing both ``(i, j)`` and ``(j, i)``) raise
    :class:`~repro.formats.validate.CanonicalityError` — summing or
    double-expanding them silently would corrupt the matrix.
    """
    if upper not in ("mirror", "error"):
        raise ValueError(f"upper must be 'mirror' or 'error', got {upper!r}")
    if isinstance(path, (str, Path)):
        text = Path(path).read_text()
    else:
        text = path.read()
    lines = text.splitlines()
    if not lines:
        raise ParseError("empty MatrixMarket file")
    header = lines[0].strip().lower()
    if not header.startswith("%%matrixmarket matrix coordinate real"):
        raise ParseError(f"unsupported MatrixMarket header: {lines[0]!r}")
    symmetric = header.endswith("symmetric")
    if not (symmetric or header.endswith("general")):
        raise ParseError(f"unsupported qualifier in header: {lines[0]!r}")

    # Comment lines may carry leading whitespace; strip before testing.
    body = [
        ln for ln in lines[1:]
        if ln.strip() and not ln.lstrip().startswith("%")
    ]
    if not body:
        raise ParseError("missing size line")
    dims = body[0].split()
    if len(dims) != 3:
        raise ParseError(f"malformed size line: {body[0]!r}")
    try:
        n_rows, n_cols, nnz = (int(t) for t in dims)
    except ValueError:
        raise ParseError(f"malformed size line: {body[0]!r}") from None
    if n_rows < 0 or n_cols < 0 or nnz < 0:
        raise ParseError(f"negative dimensions in size line: {body[0]!r}")
    if symmetric and n_rows != n_cols:
        raise ParseError(
            f"symmetric qualifier on a non-square {n_rows}x{n_cols} matrix"
        )
    entries = body[1:]
    if len(entries) != nnz:
        raise ParseError(
            f"expected {nnz} entries, found {len(entries)}"
        )
    if nnz:
        data = _parse_entries(entries)
        rows = data[:, 0]
        cols = data[:, 1]
        if np.any(rows != np.floor(rows)) or np.any(cols != np.floor(cols)):
            raise ParseError("non-integer coordinates in entry lines")
        if rows.min() < 1 or cols.min() < 1:
            raise BoundsError("MatrixMarket coordinates are 1-based")
        if rows.max() > n_rows or cols.max() > n_cols:
            raise BoundsError(
                f"entry coordinates exceed declared shape "
                f"({n_rows}, {n_cols})"
            )
        rows = rows.astype(np.int64) - 1
        cols = cols.astype(np.int64) - 1
        vals = data[:, 2]
        check_finite(vals, "MatrixMarket values")
    else:
        rows = cols = np.zeros(0, dtype=np.int64)
        vals = np.zeros(0)

    if symmetric and nnz:
        above = cols > rows
        if np.any(above):
            if upper == "error":
                i = int(np.flatnonzero(above)[0])
                raise TriangleConventionError(
                    "symmetric file stores entry "
                    f"({int(rows[i]) + 1}, {int(cols[i]) + 1}) above the "
                    "diagonal; MatrixMarket symmetric files are "
                    "lower-triangle only"
                )
            rows[above], cols[above] = (
                cols[above].copy(), rows[above].copy()
            )

    # A repeated coordinate would be summed (general) or double-counted
    # by the symmetric expansion; per the MM spec entries are unique.
    keys = rows * max(1, n_cols) + cols
    uniq, counts = np.unique(keys, return_counts=True)
    if uniq.size != keys.size:
        r, c = divmod(int(uniq[counts > 1][0]), max(1, n_cols))
        raise CanonicalityError(
            f"duplicate coordinate ({r + 1}, {c + 1}) in MatrixMarket "
            "file" + (" after lower-triangle canonicalization"
                      if symmetric else "")
        )

    if symmetric and nnz:
        off = rows != cols
        rows, cols, vals = (
            np.concatenate([rows, cols[off]]),
            np.concatenate([cols, rows[off]]),
            np.concatenate([vals, vals[off]]),
        )
    return COOMatrix((n_rows, n_cols), rows, cols, vals, sum_duplicates=False)
