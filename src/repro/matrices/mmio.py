"""Minimal MatrixMarket coordinate I/O.

Supports the subset the experiments need: ``matrix coordinate real``
with ``general`` or ``symmetric`` qualifiers. Symmetric files store the
lower triangle (MatrixMarket convention) and are expanded on read, so a
round trip through :func:`write_matrix_market` /
:func:`read_matrix_market` is exact for our symmetric suite.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Union

import numpy as np

from ..formats.coo import COOMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]

_HEADER = "%%MatrixMarket matrix coordinate real"


def write_matrix_market(
    path: Union[str, Path, io.TextIOBase],
    coo: COOMatrix,
    *,
    symmetric: bool = False,
) -> None:
    """Write a COO matrix in MatrixMarket coordinate format.

    With ``symmetric=True`` the matrix must be symmetric and only the
    lower triangle (diagonal included) is stored.
    """
    if symmetric:
        if not coo.is_symmetric():
            raise ValueError("matrix is not symmetric")
        out = coo.lower_triangle(strict=False)
    else:
        out = coo
    qualifier = "symmetric" if symmetric else "general"
    lines = [f"{_HEADER} {qualifier}\n"]
    lines.append(f"{coo.n_rows} {coo.n_cols} {out.nnz}\n")
    for r, c, v in zip(out.rows, out.cols, out.vals):
        lines.append(f"{r + 1} {c + 1} {float(v)!r}\n")
    data = "".join(lines)
    if isinstance(path, (str, Path)):
        Path(path).write_text(data)
    else:
        path.write(data)


def read_matrix_market(path: Union[str, Path, io.TextIOBase]) -> COOMatrix:
    """Read a MatrixMarket coordinate file into a COO matrix.

    Symmetric files are expanded to both triangles.
    """
    if isinstance(path, (str, Path)):
        text = Path(path).read_text()
    else:
        text = path.read()
    lines = text.splitlines()
    if not lines:
        raise ValueError("empty MatrixMarket file")
    header = lines[0].strip().lower()
    if not header.startswith("%%matrixmarket matrix coordinate real"):
        raise ValueError(f"unsupported MatrixMarket header: {lines[0]!r}")
    symmetric = header.endswith("symmetric")
    if not (symmetric or header.endswith("general")):
        raise ValueError(f"unsupported qualifier in header: {lines[0]!r}")

    body = [ln for ln in lines[1:] if ln.strip() and not ln.startswith("%")]
    if not body:
        raise ValueError("missing size line")
    dims = body[0].split()
    if len(dims) != 3:
        raise ValueError(f"malformed size line: {body[0]!r}")
    n_rows, n_cols, nnz = (int(t) for t in dims)
    entries = body[1:]
    if len(entries) != nnz:
        raise ValueError(
            f"expected {nnz} entries, found {len(entries)}"
        )
    if nnz:
        data = np.array(
            [ln.split() for ln in entries], dtype=np.float64
        )
        rows = data[:, 0].astype(np.int64) - 1
        cols = data[:, 1].astype(np.int64) - 1
        vals = data[:, 2]
    else:
        rows = cols = np.zeros(0, dtype=np.int64)
        vals = np.zeros(0)

    if symmetric and nnz:
        off = rows != cols
        rows, cols, vals = (
            np.concatenate([rows, cols[off]]),
            np.concatenate([cols, rows[off]]),
            np.concatenate([vals, vals[off]]),
        )
    return COOMatrix((n_rows, n_cols), rows, cols, vals, sum_duplicates=False)
