"""Minimal MatrixMarket coordinate I/O.

Supports the subset the experiments need: ``matrix coordinate real``
with ``general`` or ``symmetric`` qualifiers. Symmetric files store the
lower triangle (MatrixMarket convention) and are expanded on read, so a
round trip through :func:`write_matrix_market` /
:func:`read_matrix_market` is exact for our symmetric suite.

Reading is *hardened*: malformed text raises a typed error from the
:mod:`repro.formats.validate` taxonomy instead of silently producing a
wrong matrix — duplicate coordinates raise
:class:`~repro.formats.validate.CanonicalityError` (a duplicate in a
symmetric file would otherwise be double-counted by the expansion),
and entries above the diagonal of a symmetric file are mirrored into
the lower triangle (or rejected with
:class:`~repro.formats.validate.TriangleConventionError` under
``upper="error"``) rather than being expanded as if they were lower
entries.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Union

import numpy as np

from ..formats.coo import COOMatrix
from ..formats.validate import (
    BoundsError,
    CanonicalityError,
    ParseError,
    SymmetryError,
    TriangleConventionError,
    check_finite,
)

__all__ = [
    "MMHeader",
    "iter_coordinates",
    "read_matrix_market",
    "write_matrix_market",
]

_HEADER = "%%MatrixMarket matrix coordinate real"


@dataclass(frozen=True)
class MMHeader:
    """Parsed MatrixMarket banner + size line (stored-entry count:
    symmetric files declare the lower triangle only)."""

    n_rows: int
    n_cols: int
    nnz: int
    symmetric: bool


def _parse_banner(line: str) -> bool:
    """Validate the banner line; returns the ``symmetric`` flag."""
    header = line.strip().lower()
    if not header.startswith("%%matrixmarket matrix coordinate real"):
        raise ParseError(f"unsupported MatrixMarket header: {line!r}")
    symmetric = header.endswith("symmetric")
    if not (symmetric or header.endswith("general")):
        raise ParseError(f"unsupported qualifier in header: {line!r}")
    return symmetric


def _parse_size_line(line: str, symmetric: bool) -> tuple[int, int, int]:
    dims = line.split()
    if len(dims) != 3:
        raise ParseError(f"malformed size line: {line!r}")
    try:
        n_rows, n_cols, nnz = (int(t) for t in dims)
    except ValueError:
        raise ParseError(f"malformed size line: {line!r}") from None
    if n_rows < 0 or n_cols < 0 or nnz < 0:
        raise ParseError(f"negative dimensions in size line: {line!r}")
    if symmetric and n_rows != n_cols:
        raise ParseError(
            f"symmetric qualifier on a non-square {n_rows}x{n_cols} matrix"
        )
    return n_rows, n_cols, nnz


def write_matrix_market(
    path: Union[str, Path, io.TextIOBase],
    coo: COOMatrix,
    *,
    symmetric: bool = False,
) -> None:
    """Write a COO matrix in MatrixMarket coordinate format.

    With ``symmetric=True`` the matrix must be symmetric and only the
    lower triangle (diagonal included) is stored.
    """
    if symmetric:
        if not coo.is_symmetric():
            raise SymmetryError("matrix is not symmetric")
        out = coo.lower_triangle(strict=False)
    else:
        out = coo.canonicalize()
    qualifier = "symmetric" if symmetric else "general"
    lines = [f"{_HEADER} {qualifier}\n"]
    lines.append(f"{coo.n_rows} {coo.n_cols} {out.nnz}\n")
    for r, c, v in zip(out.rows, out.cols, out.vals):
        lines.append(f"{r + 1} {c + 1} {float(v)!r}\n")
    data = "".join(lines)
    if isinstance(path, (str, Path)):
        Path(path).write_text(data)
    else:
        path.write(data)


def _parse_entries(entries: list[str]) -> np.ndarray:
    """Parse coordinate lines into an ``(nnz, 3)`` float array, raising
    :class:`ParseError` with the offending line on malformed input."""
    tokens = [ln.split() for ln in entries]
    for ln, toks in zip(entries, tokens):
        if len(toks) != 3:
            raise ParseError(f"malformed entry line: {ln!r}")
    try:
        return np.array(tokens, dtype=np.float64)
    except ValueError:
        for ln, toks in zip(entries, tokens):
            try:
                [float(t) for t in toks]
            except ValueError:
                raise ParseError(f"malformed entry line: {ln!r}") from None
        raise  # pragma: no cover - unreachable


def _validate_entries(
    data: np.ndarray, n_rows: int, n_cols: int, symmetric: bool, upper: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared entry hardening: integer/1-based/bounds/finiteness checks
    on a parsed ``(m, 3)`` block, 0-based conversion, and the symmetric
    upper-triangle policy (mirror or reject). Used by both the whole-
    file reader and the chunked iterator, so both fail identically on
    the same malformed input."""
    rows = data[:, 0]
    cols = data[:, 1]
    if np.any(rows != np.floor(rows)) or np.any(cols != np.floor(cols)):
        raise ParseError("non-integer coordinates in entry lines")
    if rows.min() < 1 or cols.min() < 1:
        raise BoundsError("MatrixMarket coordinates are 1-based")
    if rows.max() > n_rows or cols.max() > n_cols:
        raise BoundsError(
            f"entry coordinates exceed declared shape "
            f"({n_rows}, {n_cols})"
        )
    rows = rows.astype(np.int64) - 1
    cols = cols.astype(np.int64) - 1
    vals = data[:, 2]
    check_finite(vals, "MatrixMarket values")

    if symmetric:
        above = cols > rows
        if np.any(above):
            if upper == "error":
                i = int(np.flatnonzero(above)[0])
                raise TriangleConventionError(
                    "symmetric file stores entry "
                    f"({int(rows[i]) + 1}, {int(cols[i]) + 1}) above the "
                    "diagonal; MatrixMarket symmetric files are "
                    "lower-triangle only"
                )
            rows[above], cols[above] = (
                cols[above].copy(), rows[above].copy()
            )
    return rows, cols, vals


def read_matrix_market(
    path: Union[str, Path, io.TextIOBase], *, upper: str = "mirror"
) -> COOMatrix:
    """Read a MatrixMarket coordinate file into a COO matrix.

    Symmetric files are expanded to both triangles.  Per the
    MatrixMarket convention a symmetric file must store the *lower*
    triangle only; entries above the diagonal are handled per
    ``upper``:

    * ``"mirror"`` (default): transposed into the lower triangle before
      expansion (tolerates upper-triangle producers);
    * ``"error"``: raise
      :class:`~repro.formats.validate.TriangleConventionError`.

    Duplicate coordinates (in either qualifier, and including a
    symmetric file storing both ``(i, j)`` and ``(j, i)``) raise
    :class:`~repro.formats.validate.CanonicalityError` — summing or
    double-expanding them silently would corrupt the matrix.
    """
    if upper not in ("mirror", "error"):
        raise ValueError(f"upper must be 'mirror' or 'error', got {upper!r}")
    if isinstance(path, (str, Path)):
        text = Path(path).read_text()
    else:
        text = path.read()
    lines = text.splitlines()
    if not lines:
        raise ParseError("empty MatrixMarket file")
    symmetric = _parse_banner(lines[0])

    # Comment lines may carry leading whitespace; strip before testing.
    body = [
        ln for ln in lines[1:]
        if ln.strip() and not ln.lstrip().startswith("%")
    ]
    if not body:
        raise ParseError("missing size line")
    n_rows, n_cols, nnz = _parse_size_line(body[0], symmetric)
    entries = body[1:]
    if len(entries) != nnz:
        raise ParseError(
            f"expected {nnz} entries, found {len(entries)}"
        )
    if nnz:
        rows, cols, vals = _validate_entries(
            _parse_entries(entries), n_rows, n_cols, symmetric, upper
        )
    else:
        rows = cols = np.zeros(0, dtype=np.int64)
        vals = np.zeros(0)

    # A repeated coordinate would be summed (general) or double-counted
    # by the symmetric expansion; per the MM spec entries are unique.
    keys = rows * max(1, n_cols) + cols
    uniq, counts = np.unique(keys, return_counts=True)
    if uniq.size != keys.size:
        r, c = divmod(int(uniq[counts > 1][0]), max(1, n_cols))
        raise CanonicalityError(
            f"duplicate coordinate ({r + 1}, {c + 1}) in MatrixMarket "
            "file" + (" after lower-triangle canonicalization"
                      if symmetric else "")
        )

    if symmetric and nnz:
        off = rows != cols
        rows, cols, vals = (
            np.concatenate([rows, cols[off]]),
            np.concatenate([cols, rows[off]]),
            np.concatenate([vals, vals[off]]),
        )
    return COOMatrix((n_rows, n_cols), rows, cols, vals, sum_duplicates=False)


def read_header(path: Union[str, Path]) -> MMHeader:
    """Parse only the banner and size line of a MatrixMarket file."""
    header, chunks = iter_coordinates(path, chunk_nnz=1)
    chunks.close()
    return header


def iter_coordinates(
    path: Union[str, Path, io.TextIOBase],
    chunk_nnz: int = 65536,
    *,
    upper: str = "mirror",
) -> tuple[MMHeader, Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]]:
    """Stream a MatrixMarket coordinate file in bounded-memory chunks.

    Returns ``(header, chunks)`` where ``chunks`` yields
    ``(rows, cols, vals)`` blocks of at most ``chunk_nnz`` *stored*
    entries — 0-based int64 coordinates and float64 values, in file
    order. Peak memory is O(``chunk_nnz``), never O(nnz): this is the
    ingest path for matrices larger than RAM
    (:mod:`repro.ooc.shards`).

    Every hardening check of :func:`read_matrix_market` that can be
    applied without global state runs per chunk through the same
    helpers (malformed lines, non-integer/out-of-bounds coordinates,
    non-finite values, the symmetric ``upper`` policy), and the entry
    *count* is validated against the size line when the file ends.
    Symmetric files are **not** expanded — chunks stay canonicalized
    lower-triangle, exactly what the shard builder wants. The one
    whole-file check that cannot stream is duplicate-coordinate
    detection; consumers that need it re-check canonicality on their
    bounded working set (ingest does, per shard — duplicates share a
    coordinate, hence a shard).

    The banner and size line are consumed eagerly (malformed headers
    raise here, not at first iteration); entry parsing is lazy.
    Closing the generator (or exhausting it) closes the file when this
    function opened it.
    """
    if upper not in ("mirror", "error"):
        raise ValueError(f"upper must be 'mirror' or 'error', got {upper!r}")
    if chunk_nnz < 1:
        raise ValueError(f"chunk_nnz must be >= 1, got {chunk_nnz}")
    if isinstance(path, (str, Path)):
        fh = open(path, "r")
        owns = True
    else:
        fh, owns = path, False
    try:
        banner = fh.readline()
        if not banner:
            raise ParseError("empty MatrixMarket file")
        symmetric = _parse_banner(banner.rstrip("\n"))
        size_line = None
        while size_line is None:
            ln = fh.readline()
            if not ln:
                raise ParseError("missing size line")
            if ln.strip() and not ln.lstrip().startswith("%"):
                size_line = ln.rstrip("\n")
        n_rows, n_cols, nnz = _parse_size_line(size_line, symmetric)
    except BaseException:
        if owns:
            fh.close()
        raise
    header = MMHeader(n_rows, n_cols, nnz, symmetric)

    def chunks() -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray]]:
        try:
            seen = 0
            block: list[str] = []
            for ln in fh:
                if not ln.strip() or ln.lstrip().startswith("%"):
                    continue
                block.append(ln.rstrip("\n"))
                if seen + len(block) > nnz:
                    raise ParseError(
                        f"expected {nnz} entries, found more than {nnz}"
                    )
                if len(block) == chunk_nnz:
                    seen += len(block)
                    out = _validate_entries(
                        _parse_entries(block), n_rows, n_cols,
                        symmetric, upper,
                    )
                    block = []
                    yield out
            if block:
                seen += len(block)
                yield _validate_entries(
                    _parse_entries(block), n_rows, n_cols,
                    symmetric, upper,
                )
            if seen != nnz:
                raise ParseError(f"expected {nnz} entries, found {seen}")
        finally:
            if owns:
                fh.close()

    return header, chunks()
