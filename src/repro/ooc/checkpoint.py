"""Durable, multi-generation solver checkpoints.

A :class:`CheckpointStore` persists flat ``{name: scalar | ndarray}``
state dicts (the shape :meth:`repro.solvers.cg.CGState.to_dict`
produces) with the atomicity protocol every durable artifact of the
out-of-core layer uses — serialize, write to a temp file, ``fsync``,
``os.replace``, fsync the directory — so a crash at any instant leaves
either the previous generation or the new one on disk, never a hybrid.

File format (``ckpt_<generation>.bin``)::

    8 B   magic b"RPROCKPT"
    8 B   <q> header length H
    H B   JSON header: schema, scalars, array names/dtypes/shapes
    ...   array bytes, in header order, C-contiguous
    4 B   <I> CRC32C of everything above

Recovery is a generation walk: :meth:`latest` tries generations newest
first, and a generation whose bytes fail the magic/length/CRC check
(torn write, bit rot, or an injected
:class:`~repro.resilience.chaos.ChaosPlan` ``io`` fault) is skipped
with an ``ooc.checkpoint_fallbacks`` count — the previous generation
answers instead. Only when *no* generation survives does resume
degrade to a fresh start (``latest() -> None``); the store never
returns bytes it could not verify. ``keep >= 2`` generations are
retained precisely so one torn newest write cannot erase all recovery
points.
"""

from __future__ import annotations

import json
import os
import re
import struct
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..obs.tracer import active as _active_tracer, warn as _obs_warn
from ..resilience.chaos import ChaosPlan
from .checksum import crc32c
from .errors import CheckpointError
from .shards import _atomic_write

__all__ = ["CheckpointStore"]

MAGIC = b"RPROCKPT"
SCHEMA = "repro-ooc-checkpoint-v1"
_LEN = struct.Struct("<q")
_CRC = struct.Struct("<I")
_NAME = re.compile(r"^ckpt_(\d{8})\.bin$")


def _pack_state(state: dict) -> bytes:
    scalars = {}
    arrays: list[tuple[str, np.ndarray]] = []
    for name, value in state.items():
        if isinstance(value, np.ndarray):
            arrays.append((name, np.ascontiguousarray(value)))
        else:
            scalars[name] = value
    header = {
        "schema": SCHEMA,
        "scalars": scalars,
        "arrays": [
            {"name": n, "dtype": str(a.dtype), "shape": list(a.shape)}
            for n, a in arrays
        ],
    }
    hb = json.dumps(header, sort_keys=True).encode()
    body = b"".join(
        [MAGIC, _LEN.pack(len(hb)), hb] + [a.tobytes() for _, a in arrays]
    )
    return body + _CRC.pack(crc32c(body))


def _unpack_state(payload: bytes, what: str) -> dict:
    if len(payload) < len(MAGIC) + _LEN.size + _CRC.size:
        raise CheckpointError(f"{what}: truncated ({len(payload)} bytes)")
    if payload[: len(MAGIC)] != MAGIC:
        raise CheckpointError(f"{what}: bad magic")
    body, crc_bytes = payload[: -_CRC.size], payload[-_CRC.size:]
    crc = crc32c(body)
    (expected,) = _CRC.unpack(crc_bytes)
    if crc != expected:
        raise CheckpointError(
            f"{what}: CRC32C {crc:#010x} != recorded {expected:#010x}"
        )
    (hlen,) = _LEN.unpack_from(body, len(MAGIC))
    off = len(MAGIC) + _LEN.size
    try:
        header = json.loads(body[off: off + hlen])
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"{what}: unreadable header: {exc}")
    if header.get("schema") != SCHEMA:
        raise CheckpointError(
            f"{what}: schema {header.get('schema')!r} != {SCHEMA!r}"
        )
    off += hlen
    state = dict(header["scalars"])
    for spec in header["arrays"]:
        dtype = np.dtype(spec["dtype"])
        shape = tuple(spec["shape"])
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        arr = np.frombuffer(body, dtype=dtype, count=count, offset=off)
        off += dtype.itemsize * count
        # Copy: solvers mutate resumed vectors in place.
        state[spec["name"]] = arr.reshape(shape).copy()
    if off != len(body):
        raise CheckpointError(f"{what}: {len(body) - off} trailing bytes")
    return state


class CheckpointStore:
    """Numbered checkpoint generations in one directory.

    Parameters
    ----------
    directory : created if missing.
    keep : int
        Newest generations retained after each :meth:`save` (>= 1;
        default 2 so a torn newest write still leaves a fallback).
    chaos : optional ChaosPlan
        Injected ``io`` faults, keyed by ``(generation, attempt)``:
        ``torn_write``/``checksum_flip`` corrupt the bytes a save makes
        durable (attempt key 0); ``read_error`` fails one read attempt.
    max_retries : int
        Extra read attempts per generation before falling back to the
        previous one.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        keep: int = 2,
        chaos: Optional[ChaosPlan] = None,
        max_retries: int = 1,
    ):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = int(keep)
        self.chaos = chaos
        self.max_retries = int(max_retries)

    def _path(self, generation: int) -> Path:
        return self.directory / f"ckpt_{generation:08d}.bin"

    def generations(self) -> list[int]:
        """Existing generation numbers, ascending."""
        gens = []
        for entry in self.directory.iterdir():
            m = _NAME.match(entry.name)
            if m:
                gens.append(int(m.group(1)))
        return sorted(gens)

    # -- write ----------------------------------------------------------
    def save(self, generation: int, state: dict) -> Path:
        """Persist one generation atomically, then prune to ``keep``."""
        if generation < 0:
            raise ValueError(f"generation must be >= 0, got {generation}")
        tracer = _active_tracer()
        with tracer.span("ooc.checkpoint_save", generation=generation):
            payload = _pack_state(state)
            fault = (
                self.chaos.io_fault_for(generation, 0)
                if self.chaos is not None
                else "none"
            )
            if fault == "torn_write":
                payload = payload[: max(1, len(payload) // 2)]
            elif fault == "checksum_flip" and payload:
                mid = len(payload) // 2
                payload = (
                    payload[:mid]
                    + bytes([payload[mid] ^ 0x40])
                    + payload[mid + 1:]
                )
            path = self._path(generation)
            _atomic_write(path, payload)
            for old in self.generations()[: -self.keep]:
                try:
                    self._path(old).unlink()
                except OSError:  # pragma: no cover - benign race
                    pass
            if tracer.enabled:
                tracer.count("ooc.checkpoints_written")
                tracer.metrics.counter("ooc.checkpoint_bytes").inc(
                    len(payload)
                )
        return path

    # -- read -----------------------------------------------------------
    def _load_once(self, generation: int, attempt: int) -> dict:
        fault = (
            self.chaos.io_fault_for(generation, attempt)
            if self.chaos is not None
            else "none"
        )
        if fault == "read_error":
            raise OSError(
                f"injected read error (checkpoint {generation})"
            )
        payload = self._path(generation).read_bytes()
        if fault == "torn_write":
            payload = payload[: len(payload) // 2]
        elif fault == "checksum_flip" and payload:
            mid = len(payload) // 2
            payload = (
                payload[:mid]
                + bytes([payload[mid] ^ 0x40])
                + payload[mid + 1:]
            )
        return _unpack_state(payload, f"checkpoint {generation}")

    def load(self, generation: int) -> dict:
        """One generation's verified state; :class:`CheckpointError`
        after bounded retries."""
        last: Optional[BaseException] = None
        for attempt in range(self.max_retries + 1):
            try:
                return self._load_once(generation, attempt)
            except (OSError, CheckpointError) as exc:
                last = exc
        if isinstance(last, CheckpointError):
            raise last
        raise CheckpointError(
            f"checkpoint {generation} unreadable: "
            f"{type(last).__name__}: {last}"
        )

    def latest(self) -> Optional[tuple[int, dict]]:
        """Newest verifiable ``(generation, state)``; unreadable
        generations fall back to older ones; ``None`` when nothing
        survives (resume then degrades to a fresh start)."""
        tracer = _active_tracer()
        for generation in reversed(self.generations()):
            try:
                return generation, self.load(generation)
            except CheckpointError:
                _obs_warn("ooc.checkpoint_fallback")
                if tracer.enabled:
                    tracer.count("ooc.checkpoint_fallbacks")
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CheckpointStore {self.directory} keep={self.keep} "
            f"generations={self.generations()}>"
        )
