"""Out-of-core sharded SpMV/CG with durable checkpoints.

The layer that lets every in-core building block — SSS partition
kernels, local-vector reductions, executor backends, the CG/PCG
recurrences — run against a matrix that never fits in memory:

* :mod:`repro.ooc.shards` — streaming MatrixMarket ingest into
  CRC32C-checksummed row-range shard files under a fingerprinted
  manifest, and the fault-contained :class:`ShardStore` read path
  (bounded retry → re-ingest → typed :class:`ShardIOError`);
* :mod:`repro.ooc.operator` — :class:`ShardedOperator`, shard-at-a-
  time symmetric SpMV/SpMM under an explicit memory budget with a
  pinned-LRU of resident shards;
* :mod:`repro.ooc.checkpoint` — :class:`CheckpointStore`, atomic
  multi-generation solver state with CRC-verified recovery;
* :mod:`repro.ooc.cg` — :func:`checkpointed_cg`, the crash-safe
  resumable solve gluing the three together.
"""

from .checkpoint import CheckpointStore
from .checksum import crc32c
from .cg import OOCSolveResult, checkpointed_cg
from .errors import (
    CheckpointError,
    ManifestError,
    MemoryBudgetError,
    ShardChecksumError,
    ShardIOError,
)
from .operator import ShardedOperator, parse_memory_budget
from .shards import ShardData, ShardInfo, ShardStore, ingest_matrix_market

__all__ = [
    "CheckpointError",
    "CheckpointStore",
    "ManifestError",
    "MemoryBudgetError",
    "OOCSolveResult",
    "ShardChecksumError",
    "ShardData",
    "ShardInfo",
    "ShardIOError",
    "ShardStore",
    "ShardedOperator",
    "checkpointed_cg",
    "crc32c",
    "ingest_matrix_market",
    "parse_memory_budget",
]
