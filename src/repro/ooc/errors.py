"""Typed failures of the out-of-core layer.

Follows the two established conventions: *input*-shaped problems (a
malformed manifest, a shard set that does not match its source, an
impossible memory budget) derive from
:class:`~repro.formats.validate.ValidationError` and stay
``ValueError``-catchable; *execution*-shaped problems (a shard read
that keeps failing after bounded retries, a checkpoint store with no
recoverable generation) derive from
:class:`~repro.resilience.errors.ExecutionError` and stay
``RuntimeError``-catchable.  The fuzz harness classifies the execution
taxa as *contained* chaos outcomes: an injected ``io`` fault must
surface as one of these, never as silently wrong bytes.
"""

from __future__ import annotations

from typing import Optional

from ..formats.validate import ValidationError
from ..resilience.errors import ExecutionError

__all__ = [
    "ManifestError",
    "MemoryBudgetError",
    "ShardChecksumError",
    "ShardIOError",
    "CheckpointError",
]


class ManifestError(ValidationError):
    """The shard manifest is missing, malformed, the wrong schema
    version, or inconsistent with the shard files it describes."""


class MemoryBudgetError(ValidationError):
    """The configured memory budget cannot hold even one shard; the
    shard set must be re-ingested with smaller shards (or the budget
    raised)."""


class ShardChecksumError(ExecutionError):
    """A shard file's bytes do not match the manifest (wrong length or
    CRC32C mismatch) — torn write, bit rot, or an injected
    ``checksum_flip`` fault. Retried internally; escalates to
    :class:`ShardIOError` when retries and re-ingest are exhausted."""

    def __init__(self, index: int, detail: str):
        self.index = index
        self.detail = detail
        super().__init__(f"shard {index}: {detail}")

    def __reduce__(self):
        return (type(self), (self.index, self.detail))


class ShardIOError(ExecutionError):
    """Loading one shard failed permanently: every bounded retry (and,
    when a source is on record, the re-ingest fallback) was exhausted.
    Carries the last underlying cause."""

    def __init__(self, index: int, attempts: int,
                 cause: Optional[BaseException] = None):
        self.index = index
        self.attempts = attempts
        self.cause = cause
        why = f": {type(cause).__name__}: {cause}" if cause else ""
        super().__init__(
            f"shard {index} unreadable after {attempts} attempt(s){why}"
        )

    def __reduce__(self):
        # The cause may be unpicklable; keep the typed envelope.
        return (type(self), (self.index, self.attempts, None))


class CheckpointError(ExecutionError):
    """No checkpoint generation in the store could be read back
    validly (or a write failed unrecoverably)."""
