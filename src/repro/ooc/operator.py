"""Shard-at-a-time symmetric SpMV/SpMM under an explicit memory budget.

A :class:`ShardedOperator` applies a matrix that never fits in memory
by streaming its row-range shards (:mod:`repro.ooc.shards`) through a
small pinned-LRU of resident shards. Each resident shard is wrapped in
a global-shape :class:`~repro.formats.sss.SSSMatrix` — the diagonal
and row-pointer arrays are full length with only the shard's row range
populated (an O(N) per-shard index overhead, documented and excluded
from the *payload* budget, which counts the bytes the manifest records
per shard file) — and driven by the existing
:class:`~repro.parallel.spmv.ParallelSymmetricSpMV`: same partition
kernels, same local-vector reductions, same
:class:`~repro.parallel.executor.Executor` backends as the in-core
path. Off-shard transposed contributions (columns left of the shard's
row range) land in the reduction's local vectors exactly as they do
for an in-core thread partition.

Determinism: ``y`` accumulates shard results in fixed ascending shard
order, and each per-shard driver is built with a fixed partition
layout, so two applies of the same store with the same configuration
are bit-identical — including an apply that reloaded every shard from
disk against one that had them all cached. That is the property the
checkpoint/resume solver relies on.

Counters (under the active tracer, when enabled): ``ooc.shards_loaded``
and ``ooc.shard_hits`` split cold and warm shard accesses,
``ooc.shard_evictions`` counts budget-forced drops, and the
``ooc.resident_bytes`` / ``ooc.resident_bytes_peak`` gauges expose the
payload residency the smoke test asserts against the budget.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Sequence, Union

import numpy as np

from ..formats.sss import SSSMatrix
from ..obs.tracer import active as _active_tracer
from ..parallel.executor import Executor
from ..parallel.partition import partition_nnz_balanced
from ..parallel.spmv import ParallelSymmetricSpMV
from .errors import MemoryBudgetError
from .shards import ShardData, ShardStore

__all__ = ["ShardedOperator", "parse_memory_budget"]

_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_memory_budget(text: Union[str, int, None]) -> Optional[int]:
    """``"64K"``/``"8M"``/``"1G"``/``"123"`` -> bytes (``None`` passes
    through: unlimited)."""
    if text is None or isinstance(text, int):
        return text
    s = str(text).strip().lower()
    if not s:
        raise ValueError("empty memory budget")
    scale = 1
    if s[-1] in _SUFFIXES:
        scale = _SUFFIXES[s[-1]]
        s = s[:-1]
    try:
        value = int(s)
    except ValueError:
        raise ValueError(f"unparseable memory budget {text!r}") from None
    if value <= 0:
        raise ValueError(f"memory budget must be positive, got {text!r}")
    return value * scale


class _Resident:
    """One cached shard: its driver and its budget-accounted bytes."""

    __slots__ = ("driver", "n_bytes")

    def __init__(self, driver: ParallelSymmetricSpMV, n_bytes: int):
        self.driver = driver
        self.n_bytes = n_bytes


class ShardedOperator:
    """``y = A @ x`` (or ``A @ X`` for a block of right-hand sides)
    over an ingested shard set, shard at a time.

    Parameters
    ----------
    store : ShardStore
        Verified shard access (carries the chaos plan and retry
        policy).
    memory_budget : int or str, optional
        Maximum resident shard-payload bytes (``"8M"``-style suffixes
        accepted). ``None`` keeps every shard resident after first
        touch. A budget smaller than the largest single shard is
        rejected up front with :class:`MemoryBudgetError` — no
        configuration can satisfy it.
    n_threads : int
        Partitions per shard for the parallel driver.
    reduction : str
        Reduction method for the per-shard symmetric driver.
    executor : Executor, optional
        Shared by every per-shard driver (serial default).
    """

    def __init__(
        self,
        store: ShardStore,
        *,
        memory_budget: Union[int, str, None] = None,
        n_threads: int = 1,
        reduction: str = "indexed",
        executor: Optional[Executor] = None,
    ):
        if store.n_rows != store.n_cols:
            raise MemoryBudgetError(
                f"sharded operator requires a square symmetric matrix, "
                f"got shape {store.shape}"
            )
        self.store = store
        self.memory_budget = parse_memory_budget(memory_budget)
        self.n_threads = int(n_threads)
        if self.n_threads < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads}")
        self.reduction = reduction
        self.executor = executor or Executor("serial")
        largest = max(
            (info.n_bytes for info in store.shards), default=0
        )
        if self.memory_budget is not None and largest > self.memory_budget:
            raise MemoryBudgetError(
                f"memory budget {self.memory_budget} B cannot hold the "
                f"largest shard ({largest} B); re-ingest with smaller "
                f"shards or raise the budget"
            )
        self._resident: "OrderedDict[int, _Resident]" = OrderedDict()
        self.resident_bytes = 0
        self.peak_resident_bytes = 0

    # -- shard cache ----------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.store.shape

    @property
    def n_rows(self) -> int:
        return self.store.n_rows

    def _build_driver(self, data: ShardData) -> ParallelSymmetricSpMV:
        """Wrap one shard in a global-shape SSS matrix + parallel
        driver. Rows outside the shard's range carry no entries; the
        partitions cover [0, N) with the shard's rows split
        nnz-balanced across ``n_threads`` and (possibly empty) edge
        partitions for the rest."""
        n = self.store.n_rows
        s, e = data.row_start, data.row_end
        dvalues = np.zeros(n, dtype=np.float64)
        dvalues[s:e] = data.dvalues
        rowptr = np.zeros(n + 1, dtype=np.int64)
        rowptr[s: e + 1] = data.rowptr
        rowptr[e + 1:] = data.rowptr[-1]
        matrix = SSSMatrix(
            (n, n), dvalues, rowptr, data.colind, data.values
        )
        weights = np.diff(data.rowptr) + 1
        cuts = partition_nnz_balanced(weights, self.n_threads)
        partitions: list[tuple[int, int]] = []
        if s > 0:
            partitions.append((0, s))
        partitions.extend((s + ls, s + le) for ls, le in cuts)
        if e < n:
            partitions.append((e, n))
        return ParallelSymmetricSpMV(
            matrix, partitions, self.reduction, executor=self.executor
        )

    def _evict_until(self, incoming: int, pinned: Optional[int]) -> None:
        if self.memory_budget is None:
            return
        tracer = _active_tracer()
        while (
            self.resident_bytes + incoming > self.memory_budget
            and self._resident
        ):
            # LRU order; never evict the pinned (in-use) shard.
            victim = next(
                (i for i in self._resident if i != pinned), None
            )
            if victim is None:
                break
            entry = self._resident.pop(victim)
            self.resident_bytes -= entry.n_bytes
            if tracer.enabled:
                tracer.count("ooc.shard_evictions")

    def _driver(self, index: int) -> ParallelSymmetricSpMV:
        tracer = _active_tracer()
        entry = self._resident.get(index)
        if entry is not None:
            self._resident.move_to_end(index)
            if tracer.enabled:
                tracer.count("ooc.shard_hits")
            return entry.driver
        info = self.store.shards[index]
        self._evict_until(info.n_bytes, pinned=None)
        data = self.store.load(index)
        entry = _Resident(self._build_driver(data), data.n_bytes)
        self._resident[index] = entry
        self.resident_bytes += entry.n_bytes
        self.peak_resident_bytes = max(
            self.peak_resident_bytes, self.resident_bytes
        )
        if tracer.enabled:
            tracer.count("ooc.shards_loaded")
            tracer.metrics.gauge("ooc.resident_bytes").set(
                self.resident_bytes
            )
            tracer.metrics.gauge("ooc.resident_bytes_peak").set(
                self.peak_resident_bytes
            )
        return entry.driver

    # -- application ----------------------------------------------------
    def __call__(
        self, x: np.ndarray, y: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """``y = A @ x`` streamed over shards in ascending order.

        ``x`` may be ``(n,)`` or ``(n, k)``; the per-shard drivers run
        the matching SpMV/SpMM partition kernels.
        """
        x = np.ascontiguousarray(
            x, dtype=np.float64
        )
        if x.shape[0] != self.store.n_cols:
            raise ValueError(
                f"x has leading dimension {x.shape[0]}, matrix has "
                f"{self.store.n_cols} columns"
            )
        tracer = _active_tracer()
        total = np.zeros_like(x) if y is None else y
        if total.shape != x.shape:
            raise ValueError(
                f"y has shape {total.shape}, expected {x.shape}"
            )
        total[...] = 0.0
        with tracer.span("ooc.apply", shards=self.store.n_shards):
            for index in range(self.store.n_shards):
                driver = self._driver(index)
                # Fixed ascending accumulation order: bit-identical
                # across cache states and repeat applies.
                total += driver(x)
        if tracer.enabled:
            tracer.count("ooc.applies")
        return total

    def diagonal(self) -> np.ndarray:
        """Assembled main diagonal (for Jacobi preconditioning); goes
        through the verified, fault-contained store reads."""
        return self.store.diagonal()

    def close(self) -> None:
        """Drop every resident shard."""
        self._resident.clear()
        self.resident_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        budget = (
            "unbounded" if self.memory_budget is None
            else f"{self.memory_budget}B"
        )
        return (
            f"<ShardedOperator n={self.store.n_rows} "
            f"shards={self.store.n_shards} budget={budget} "
            f"resident={self.resident_bytes}B>"
        )
