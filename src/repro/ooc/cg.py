"""Checkpointable out-of-core CG/PCG: sharded operator + durable state.

:func:`checkpointed_cg` wires three pieces that are each independently
tested — the :class:`~repro.ooc.operator.ShardedOperator` (bounded
resident matrix bytes), the existing CG/PCG recurrences with their
``checkpoint``/``resume_from`` hooks, and the
:class:`~repro.ooc.checkpoint.CheckpointStore` (atomic generations,
CRC-verified recovery) — into one crash-safe solve:

* every ``checkpoint_every`` iterations the full recurrence state is
  made durable under generation = iteration number;
* ``resume=True`` restarts from the newest *verifiable* generation
  (falling back over torn/corrupt ones) and continues bit-identically
  — same iterates, same final iteration count — as the uninterrupted
  solve; with no usable generation it degrades to a fresh start, so
  a process killed before its first checkpoint just runs again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..obs.tracer import active as _active_tracer
from ..solvers.cg import CGResult, CGState, conjugate_gradient
from ..solvers.pcg import (
    jacobi_preconditioner,
    preconditioned_conjugate_gradient,
)
from .checkpoint import CheckpointStore

__all__ = ["OOCSolveResult", "checkpointed_cg"]


@dataclass
class OOCSolveResult:
    """A solve's :class:`CGResult` plus its recovery provenance."""

    result: CGResult
    #: Generation (iteration number) the solve resumed from; ``None``
    #: for a fresh start (no store, resume off, or nothing durable).
    resumed_from: Optional[int]


def checkpointed_cg(
    operator,
    b: np.ndarray,
    *,
    tol: float = 1e-8,
    max_iter: Optional[int] = None,
    store: Optional[CheckpointStore] = None,
    checkpoint_every: int = 10,
    resume: bool = False,
    precond: str = "none",
) -> OOCSolveResult:
    """Solve ``A x = b`` with durable, resumable CG.

    Parameters
    ----------
    operator : callable ``y = A(x)``
        Typically a :class:`~repro.ooc.operator.ShardedOperator`; for
        ``precond="jacobi"`` it must also expose ``diagonal()``.
    store : CheckpointStore, optional
        Without one the solve runs unprotected (no persistence).
    checkpoint_every : int
        Iterations between durable snapshots (>= 1 when a store is
        given).
    resume : bool
        Restart from ``store.latest()`` when it yields a verifiable
        state; the state's solver tag must match ``precond`` (a
        ``"cg"`` state cannot seed a Jacobi solve).
    precond : ``"none"`` or ``"jacobi"``.
    """
    if precond not in ("none", "jacobi"):
        raise ValueError(f"unknown preconditioner {precond!r}")
    if store is not None and checkpoint_every < 1:
        raise ValueError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    tracer = _active_tracer()

    resume_state: Optional[CGState] = None
    resumed_from: Optional[int] = None
    if resume and store is not None:
        found = store.latest()
        if found is not None:
            resumed_from, state_dict = found
            resume_state = CGState.from_dict(state_dict)
            tracer.event(
                "ooc.resume", generation=resumed_from,
                solver=resume_state.solver,
            )
            if tracer.enabled:
                tracer.count("ooc.resumes")

    checkpoint_cb = None
    if store is not None:
        def checkpoint_cb(state: CGState) -> None:
            store.save(state.iteration, state.to_dict())

    if precond == "jacobi":
        result = preconditioned_conjugate_gradient(
            operator, b, jacobi_preconditioner(operator.diagonal()),
            tol=tol, max_iter=max_iter,
            checkpoint=checkpoint_cb, checkpoint_every=checkpoint_every,
            resume_from=resume_state,
        )
    else:
        result = conjugate_gradient(
            operator, b,
            tol=tol, max_iter=max_iter,
            checkpoint=checkpoint_cb, checkpoint_every=checkpoint_every,
            resume_from=resume_state,
        )
    return OOCSolveResult(result, resumed_from)
