"""Durable row-range shards: streaming ingest and verified loads.

The out-of-core pipeline never materializes a full coordinate list.
:func:`ingest_matrix_market` makes three bounded-memory passes over a
*symmetric* MatrixMarket file (via
:func:`repro.matrices.mmio.iter_coordinates`):

1. **count** — per-row stored-entry counts (O(N) ints), from which
   nnz-balanced row-range shard bounds are cut with the same
   :func:`~repro.parallel.partition.partition_nnz_balanced` the thread
   partitioner uses;
2. **spill** — each chunk's entries are routed to per-shard append-only
   spill files (raw ``(row, col, value)`` records, counted into the
   ``ooc.bytes_spilled`` tracer counter);
3. **finalize** — one shard at a time: sort, reject duplicate
   coordinates (the whole-file canonicality check of
   :func:`~repro.matrices.mmio.read_matrix_market`, reconstructed
   per shard — duplicates share a coordinate, hence a shard), split
   diagonal vs strictly-lower, and write the shard binary atomically
   (write-temp + fsync + rename) with its CRC32C recorded in the
   manifest.

Because shards are finalized in row order and canonical inside, the
:class:`~repro.serve.registry.StreamingCOOFingerprint` fed shard by
shard equals ``matrix_fingerprint`` of the in-memory canonical lower
triangle — the manifest's ``fingerprint`` ties the shard set to its
source matrix with the serving registry's content-addressing scheme.

Shard binary layout (all little-endian)::

    8 B   magic  b"RPROSHRD"
    32 B  header <4q>: row_start, row_end, nnz_lower, n_cols
    dvalues  float64[row_end - row_start]   dense diagonal slice
    rowptr   int64 [row_end - row_start + 1]  local CSR (rowptr[0]=0)
    colind   int32 [nnz_lower]              strictly-lower columns
    values   float64[nnz_lower]

:class:`ShardStore` is the read side: every load verifies length and
CRC32C against the manifest, retries transient faults (including the
injected ``io`` chaos kinds of
:class:`~repro.resilience.chaos.ChaosPlan`) with bounded backoff, and
falls back to re-ingesting the shard from the recorded source when the
bytes on disk are durably corrupt. Exhausting all of that raises a
typed :class:`~repro.ooc.errors.ShardIOError` — never silently wrong
bytes.
"""

from __future__ import annotations

import json
import math
import os
import struct
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Union

import numpy as np

from ..formats.validate import CanonicalityError
from ..matrices.mmio import iter_coordinates
from ..obs.tracer import active as _active_tracer, warn as _obs_warn
from ..parallel.partition import partition_nnz_balanced
from ..resilience.chaos import ChaosPlan
from ..serve.registry import StreamingCOOFingerprint
from .checksum import crc32c
from .errors import ManifestError, ShardChecksumError, ShardIOError

__all__ = [
    "ShardInfo",
    "ShardData",
    "ShardStore",
    "ingest_matrix_market",
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
]

MAGIC = b"RPROSHRD"
MANIFEST_NAME = "manifest.json"
MANIFEST_SCHEMA = "repro-ooc-manifest-v1"
_HDR = struct.Struct("<4q")
_SPILL_DTYPE = np.dtype([("r", "<i8"), ("c", "<i8"), ("v", "<f8")])

#: Default stored entries per shard when the caller gives no target.
DEFAULT_SHARD_NNZ = 1 << 18


@dataclass(frozen=True)
class ShardInfo:
    """One manifest entry: where a shard lives and what its bytes
    must hash to."""

    index: int
    file: str
    row_start: int
    row_end: int
    nnz: int  # strictly-lower stored entries
    n_bytes: int
    crc32c: int


@dataclass
class ShardData:
    """One shard's verified arrays (local CSR of the strictly-lower
    triangle plus the dense diagonal slice)."""

    row_start: int
    row_end: int
    dvalues: np.ndarray
    rowptr: np.ndarray
    colind: np.ndarray
    values: np.ndarray
    n_bytes: int


def _atomic_write(path: Path, payload: bytes) -> None:
    """Write-temp + fsync + rename: a reader never observes a partial
    file under ``path`` — it sees the old bytes or the new bytes."""
    tmp = path.parent / (path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    try:  # directory fsync: make the rename itself durable (POSIX)
        dfd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dfd)
        finally:
            os.close(dfd)
    except OSError:  # pragma: no cover - platform-dependent
        pass


def _build_payload(
    row_start: int,
    row_end: int,
    n_cols: int,
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
) -> bytes:
    """Serialize one shard from its canonical (sorted, duplicate-free)
    stored entries, which must all satisfy ``row_start <= r < row_end``
    and ``c <= r``."""
    n_local = row_end - row_start
    diag = rows == cols
    dvalues = np.zeros(n_local, dtype=np.float64)
    dvalues[rows[diag] - row_start] = vals[diag]
    lr = rows[~diag] - row_start
    lc = cols[~diag]
    lv = vals[~diag]
    counts = np.bincount(lr, minlength=n_local)
    rowptr = np.zeros(n_local + 1, dtype=np.int64)
    np.cumsum(counts, out=rowptr[1:])
    return b"".join(
        (
            MAGIC,
            _HDR.pack(row_start, row_end, int(lv.size), n_cols),
            dvalues.tobytes(),
            rowptr.tobytes(),
            lc.astype(np.int32).tobytes(),
            lv.astype(np.float64).tobytes(),
        )
    )


def _parse_payload(payload: bytes, info: ShardInfo) -> ShardData:
    """Deserialize verified shard bytes (CRC already checked)."""
    if payload[: len(MAGIC)] != MAGIC:
        raise ShardChecksumError(info.index, "bad magic")
    row_start, row_end, nnz, _n_cols = _HDR.unpack_from(payload, len(MAGIC))
    if (row_start, row_end, nnz) != (info.row_start, info.row_end, info.nnz):
        raise ShardChecksumError(
            info.index,
            f"header ({row_start}, {row_end}, {nnz}) does not match the "
            f"manifest ({info.row_start}, {info.row_end}, {info.nnz})",
        )
    n_local = row_end - row_start
    off = len(MAGIC) + _HDR.size

    def take(dtype: np.dtype, count: int) -> np.ndarray:
        nonlocal off
        arr = np.frombuffer(payload, dtype=dtype, count=count, offset=off)
        off += dtype.itemsize * count
        return arr

    dvalues = take(np.dtype("<f8"), n_local)
    rowptr = take(np.dtype("<i8"), n_local + 1)
    colind = take(np.dtype("<i4"), nnz)
    values = take(np.dtype("<f8"), nnz)
    if off != len(payload):
        raise ShardChecksumError(
            info.index, f"{len(payload) - off} trailing bytes"
        )
    return ShardData(
        row_start, row_end, dvalues, rowptr, colind, values, len(payload)
    )


def _canonicalize_shard(
    rows: np.ndarray, cols: np.ndarray, vals: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Row-major sort + duplicate rejection for one shard's entries."""
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    if rows.size > 1:
        same = (np.diff(rows) == 0) & (np.diff(cols) == 0)
        if np.any(same):
            i = int(np.flatnonzero(same)[0])
            raise CanonicalityError(
                f"duplicate coordinate ({int(rows[i]) + 1}, "
                f"{int(cols[i]) + 1}) in MatrixMarket file after "
                "lower-triangle canonicalization"
            )
    return rows, cols, vals


def ingest_matrix_market(
    source: Union[str, Path],
    out_dir: Union[str, Path],
    *,
    shard_nnz: Optional[int] = None,
    n_shards: Optional[int] = None,
    chunk_nnz: int = 65536,
) -> "ShardStore":
    """Shard a symmetric MatrixMarket file to ``out_dir`` in bounded
    memory; returns the opened :class:`ShardStore`.

    ``shard_nnz`` targets stored entries per shard (ignored when an
    explicit ``n_shards`` is given). Peak memory is
    O(``chunk_nnz`` + N + largest shard), never O(nnz).
    """
    source = Path(source)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    tracer = _active_tracer()
    with tracer.span("ooc.ingest"):
        header, chunks = iter_coordinates(source, chunk_nnz)
        if not header.symmetric:
            chunks.close()
            raise ManifestError(
                "out-of-core ingest requires the 'symmetric' MatrixMarket "
                "qualifier: row-range shards store the canonical lower "
                "triangle, which a general file does not declare"
            )
        n = header.n_rows

        # Pass 1 — per-row stored-entry counts.
        row_counts = np.zeros(n, dtype=np.int64)
        for rows, _cols, _vals in chunks:
            row_counts += np.bincount(rows, minlength=n)
        total = int(row_counts.sum())

        if n_shards is None:
            target = shard_nnz if shard_nnz is not None else DEFAULT_SHARD_NNZ
            if target < 1:
                raise ValueError(f"shard_nnz must be >= 1, got {target}")
            n_shards = max(1, math.ceil(total / target))
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        n_shards = min(n_shards, max(1, n))
        # Weight = stored entries + 1 diagonal slot per row, matching
        # what the shard file actually stores.
        ranges = partition_nnz_balanced(row_counts + 1, n_shards)
        row_starts = np.asarray([s for s, _ in ranges], dtype=np.int64)

        # Pass 2 — spill entries to per-shard append files.
        spill_paths = [
            out / f"shard_{i:04d}.spill" for i in range(n_shards)
        ]
        handles = [open(p, "wb") for p in spill_paths]
        spilled = 0
        try:
            _header2, chunks2 = iter_coordinates(source, chunk_nnz)
            for rows, cols, vals in chunks2:
                which = np.searchsorted(row_starts, rows, side="right") - 1
                for s in np.unique(which):
                    mask = which == s
                    block = np.empty(int(mask.sum()), dtype=_SPILL_DTYPE)
                    block["r"] = rows[mask]
                    block["c"] = cols[mask]
                    block["v"] = vals[mask]
                    handles[s].write(block.tobytes())
                    spilled += block.nbytes
        finally:
            for fh in handles:
                fh.close()
        if tracer.enabled:
            tracer.count("ooc.bytes_spilled", spilled)

        # Pass 3 — finalize one shard at a time.
        fp = StreamingCOOFingerprint((header.n_rows, header.n_cols))
        entries = []
        for i, (s, e) in enumerate(ranges):
            raw = np.fromfile(spill_paths[i], dtype=_SPILL_DTYPE)
            rows, cols, vals = _canonicalize_shard(
                raw["r"], raw["c"], raw["v"]
            )
            fp.update(rows, cols, vals)
            payload = _build_payload(s, e, header.n_cols, rows, cols, vals)
            name = f"shard_{i:04d}.bin"
            _atomic_write(out / name, payload)
            spill_paths[i].unlink()
            entries.append(
                {
                    "file": name,
                    "row_start": int(s),
                    "row_end": int(e),
                    "nnz": int(np.count_nonzero(rows != cols)),
                    "n_bytes": len(payload),
                    "crc32c": crc32c(payload),
                }
            )
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "fingerprint": fp.hexdigest(),
            "n_rows": header.n_rows,
            "n_cols": header.n_cols,
            "nnz_stored": total,
            "source": {
                "path": str(source),
                "format": "matrix-market",
                "chunk_nnz": int(chunk_nnz),
            },
            "shards": entries,
        }
        _atomic_write(
            out / MANIFEST_NAME,
            json.dumps(manifest, indent=1).encode(),
        )
        if tracer.enabled:
            tracer.count("ooc.shards_written", n_shards)
    return ShardStore(out)


class ShardStore:
    """Verified, fault-contained read access to one ingested shard set.

    Parameters
    ----------
    directory : the shard directory (must hold a valid manifest).
    chaos : optional :class:`~repro.resilience.chaos.ChaosPlan`
        whose ``io`` faults are injected into every read attempt,
        keyed by ``(shard index, attempt)``.
    max_retries : int
        Additional read attempts after the first failure (bounded
        retry); each failure counts ``ooc.retries``.
    retry_backoff_s : float
        Base sleep before retry ``k`` (exponential: ``base * 2**k``);
        0 disables sleeping (tests).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        chaos: Optional[ChaosPlan] = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.0,
    ):
        self.directory = Path(directory)
        self.chaos = chaos
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        path = self.directory / MANIFEST_NAME
        try:
            manifest = json.loads(path.read_text())
        except FileNotFoundError:
            raise ManifestError(f"no shard manifest at {path}") from None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ManifestError(f"unreadable shard manifest {path}: {exc}")
        if not isinstance(manifest, dict) or (
            manifest.get("schema") != MANIFEST_SCHEMA
        ):
            raise ManifestError(
                f"manifest {path} has schema "
                f"{manifest.get('schema')!r}, expected {MANIFEST_SCHEMA!r}"
            )
        try:
            self.n_rows = int(manifest["n_rows"])
            self.n_cols = int(manifest["n_cols"])
            self.nnz_stored = int(manifest["nnz_stored"])
            self.fingerprint = str(manifest["fingerprint"])
            self.source = dict(manifest["source"])
            self.shards = [
                ShardInfo(
                    index=i,
                    file=str(entry["file"]),
                    row_start=int(entry["row_start"]),
                    row_end=int(entry["row_end"]),
                    nnz=int(entry["nnz"]),
                    n_bytes=int(entry["n_bytes"]),
                    crc32c=int(entry["crc32c"]),
                )
                for i, entry in enumerate(manifest["shards"])
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(f"malformed manifest {path}: {exc!r}")
        prev = 0
        for info in self.shards:
            if info.row_start != prev or info.row_end < info.row_start:
                raise ManifestError(
                    f"manifest shards do not tile the row range: shard "
                    f"{info.index} covers [{info.row_start}, "
                    f"{info.row_end}) after row {prev}"
                )
            prev = info.row_end
        if prev != self.n_rows:
            raise ManifestError(
                f"manifest shards cover rows [0, {prev}) of {self.n_rows}"
            )
        self.manifest = manifest

    # -- accounting -----------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    def total_payload_bytes(self) -> int:
        """Sum of every shard file's size — the matrix bytes a fully
        in-core load would keep resident."""
        return sum(info.n_bytes for info in self.shards)

    # -- verified reads -------------------------------------------------
    def _read_once(self, info: ShardInfo, attempt: int) -> ShardData:
        fault = (
            self.chaos.io_fault_for(info.index, attempt)
            if self.chaos is not None
            else "none"
        )
        if fault == "read_error":
            raise OSError(f"injected read error (shard {info.index})")
        payload = (self.directory / info.file).read_bytes()
        if fault == "torn_write":
            payload = payload[: len(payload) // 2]
        elif fault == "checksum_flip" and payload:
            mid = len(payload) // 2
            payload = (
                payload[:mid]
                + bytes([payload[mid] ^ 0x40])
                + payload[mid + 1:]
            )
        if len(payload) != info.n_bytes:
            raise ShardChecksumError(
                info.index,
                f"file is {len(payload)} bytes, manifest says "
                f"{info.n_bytes} (torn write?)",
            )
        crc = crc32c(payload)
        if crc != info.crc32c:
            raise ShardChecksumError(
                info.index,
                f"CRC32C {crc:#010x} != manifest {info.crc32c:#010x}",
            )
        return _parse_payload(payload, info)

    def load(self, index: int) -> ShardData:
        """Load one shard, verified; transient faults are retried with
        backoff, durable corruption triggers a re-ingest from source,
        and exhausting both raises :class:`ShardIOError`."""
        info = self.shards[index]
        tracer = _active_tracer()
        last: Optional[BaseException] = None
        attempts = 0
        with tracer.span("ooc.shard_load", shard=index):
            for attempt in range(self.max_retries + 1):
                attempts += 1
                try:
                    return self._read_once(info, attempt)
                except (OSError, ShardChecksumError) as exc:
                    last = exc
                    _obs_warn("ooc.shard_read_fault")
                    if tracer.enabled:
                        tracer.count("ooc.retries")
                    if self.retry_backoff_s > 0 and (
                        attempt < self.max_retries
                    ):
                        time.sleep(self.retry_backoff_s * (2 ** attempt))
            # Retries exhausted. If the bytes on disk are durably bad
            # (not an injected transient), rebuild them from source.
            try:
                self.reingest(index)
                attempts += 1
                return self._read_once(info, self.max_retries + 1)
            except (OSError, ShardChecksumError, ManifestError) as exc:
                last = exc
        raise ShardIOError(index, attempts, last)

    def reingest(self, index: int) -> None:
        """Rebuild one shard's file from the recorded source matrix.

        The rebuilt bytes must reproduce the manifest CRC exactly —
        ingest is deterministic — so a source file that drifted since
        ingest is detected as :class:`ManifestError` instead of
        silently replacing the shard with a different matrix.
        """
        info = self.shards[index]
        source = Path(self.source["path"])
        tracer = _active_tracer()
        with tracer.span("ooc.reingest", shard=index):
            header, chunks = iter_coordinates(
                source, int(self.source.get("chunk_nnz", 65536))
            )
            if (header.n_rows, header.n_cols) != self.shape or (
                not header.symmetric
            ):
                chunks.close()
                raise ManifestError(
                    f"source {source} no longer matches the manifest "
                    f"(shape/qualifier changed)"
                )
            parts_r, parts_c, parts_v = [], [], []
            for rows, cols, vals in chunks:
                mask = (rows >= info.row_start) & (rows < info.row_end)
                if np.any(mask):
                    parts_r.append(rows[mask])
                    parts_c.append(cols[mask])
                    parts_v.append(vals[mask])
            rows = np.concatenate(parts_r) if parts_r else np.zeros(0, np.int64)
            cols = np.concatenate(parts_c) if parts_c else np.zeros(0, np.int64)
            vals = np.concatenate(parts_v) if parts_v else np.zeros(0)
            rows, cols, vals = _canonicalize_shard(rows, cols, vals)
            payload = _build_payload(
                info.row_start, info.row_end, self.n_cols, rows, cols, vals
            )
            if len(payload) != info.n_bytes or crc32c(payload) != info.crc32c:
                raise ManifestError(
                    f"re-ingested shard {index} from {source} does not "
                    "reproduce the manifest checksum; the source matrix "
                    "changed since ingest"
                )
            _atomic_write(self.directory / info.file, payload)
            _obs_warn("ooc.shard_reingested")
            if tracer.enabled:
                tracer.count("ooc.reingests")

    def iter_shards(self) -> Iterator[ShardData]:
        """Verified shards in row order (each loaded on demand)."""
        for index in range(self.n_shards):
            yield self.load(index)

    def diagonal(self) -> np.ndarray:
        """Assembled dense main diagonal (O(shard) transient memory) —
        what the Jacobi preconditioner of an out-of-core PCG needs."""
        d = np.zeros(self.n_rows, dtype=np.float64)
        for data in self.iter_shards():
            d[data.row_start: data.row_end] = data.dvalues
        return d

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ShardStore {self.directory} n={self.n_rows} "
            f"shards={self.n_shards} fp={self.fingerprint}>"
        )
