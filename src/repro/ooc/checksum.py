"""CRC32C (Castagnoli) for shard and checkpoint integrity.

The out-of-core layer stores matrix shards and solver checkpoints as
binary files that must survive torn writes, bit rot and the injected
``io`` chaos faults. Every payload carries a CRC32C — the Castagnoli
polynomial (0x1EDC6F41, reflected 0x82F63B78), the same checksum
iSCSI, ext4 metadata and most storage systems use — so a corrupt or
truncated file is *detected* on read instead of silently feeding wrong
bytes into a solve.

The implementation is pure Python (the container has no ``crc32c``
wheel): a slicing-by-8 table walk that processes eight bytes per loop
iteration. That is ample for the shard sizes the tests and the smoke
benchmark use; the algorithm, not the throughput, is the contract.
"""

from __future__ import annotations

import struct
from typing import Optional

__all__ = ["crc32c"]

_POLY = 0x82F63B78  # reflected Castagnoli polynomial
_TABLES: Optional[list[list[int]]] = None


def _tables() -> list[list[int]]:
    """Lazily built slicing-by-8 lookup tables (8 x 256 words)."""
    global _TABLES
    if _TABLES is None:
        tab = [[0] * 256 for _ in range(8)]
        for i in range(256):
            crc = i
            for _ in range(8):
                crc = (crc >> 1) ^ (_POLY if crc & 1 else 0)
            tab[0][i] = crc
        for i in range(256):
            crc = tab[0][i]
            for t in range(1, 8):
                crc = (crc >> 8) ^ tab[0][crc & 0xFF]
                tab[t][i] = crc
        _TABLES = tab
    return _TABLES


def crc32c(data, crc: int = 0) -> int:
    """CRC32C of ``data`` (bytes-like), continuing from ``crc``.

    ``crc32c(b) == crc32c(b[k:], crc32c(b[:k]))`` for any split, so
    callers can stream large payloads chunk by chunk.
    """
    tab = _tables()
    t0, t1, t2, t3, t4, t5, t6, t7 = tab
    crc = (crc ^ 0xFFFFFFFF) & 0xFFFFFFFF
    mv = memoryview(data).cast("B")
    n = len(mv)
    end8 = n - (n % 8)
    if end8:
        for (word,) in struct.iter_unpack("<Q", mv[:end8]):
            word ^= crc
            crc = (
                t7[word & 0xFF]
                ^ t6[(word >> 8) & 0xFF]
                ^ t5[(word >> 16) & 0xFF]
                ^ t4[(word >> 24) & 0xFF]
                ^ t3[(word >> 32) & 0xFF]
                ^ t2[(word >> 40) & 0xFF]
                ^ t1[(word >> 48) & 0xFF]
                ^ t0[(word >> 56) & 0xFF]
            )
    for b in mv[end8:]:
        crc = (crc >> 8) ^ t0[(crc ^ b) & 0xFF]
    return crc ^ 0xFFFFFFFF
