"""The three local-vector reduction methods of Section III.

Multithreaded symmetric SpM×V writes transposed contributions into
per-thread local vectors; the methods differ in how much of those
vectors the final reduction phase must touch:

* :class:`NaiveReduction` — every thread owns a full-length local
  vector, all of it reduced (Fig. 3b, eq. 3: ``ws = 8pN``).
* :class:`EffectiveRangesReduction` — Batista et al.'s scheme: thread
  ``i`` writes rows ``[start_i, end_i)`` straight into the output and
  only the *effective region* ``[0, start_i)`` of its local vector is
  reduced (Fig. 3c, eq. 4: ``ws ≈ 4(p-1)N``).
* :class:`IndexedReduction` — the paper's contribution: a ``(vid, idx)``
  index enumerates the non-zero local-vector elements so the reduction
  touches only genuinely conflicting entries (Fig. 3d, eqs. 5-6:
  ``ws ≈ 8(p-1)N·d`` with ``d`` the effective-region density).

All methods are observationally equivalent (same final output vector);
property tests assert this. Each also exposes its working-set footprint,
both the closed-form paper equation and the exact measured counterpart,
which the machine model converts into reduction-phase time.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..formats.base import SymmetricFormat

__all__ = [
    "ReductionMethod",
    "NaiveReduction",
    "EffectiveRangesReduction",
    "IndexedReduction",
    "ColoringReduction",
    "ReductionFootprint",
    "REDUCTION_METHODS",
    "make_reduction",
]

#: Bytes per double-precision vector element.
_F8 = 8
#: Bytes per (vid, idx) index pair — the paper uses 4 + 4 (Section III-C).
INDEX_PAIR_BYTES = 8


@dataclass
class ReductionFootprint:
    """Memory footprint of one reduction configuration.

    ``ws_model_bytes`` is the paper's closed-form equation;
    ``ws_measured_bytes`` is computed from the actual data structures.
    ``reduction_reads/writes`` count the vector elements the reduction
    phase itself streams (inputs to the machine model).
    """

    method: str
    n_threads: int
    n_rows: int
    ws_model_bytes: float
    ws_measured_bytes: float
    reduction_reads: int
    reduction_writes: int
    index_pairs: int = 0
    effective_density: float = float("nan")
    #: Right-hand sides per matrix pass (k of the SpM×M generalization:
    #: local buffers become (p, N, k); the float terms of eqs. 3-6 scale
    #: by k while the (vid, idx) index is shared by all k columns).
    n_rhs: int = 1


class ReductionMethod(abc.ABC):
    """A local-vectors strategy bound to one (matrix, partitions) pair."""

    name: str = "abstract"

    #: True for strategies that eliminate write conflicts by *scheduling*
    #: (color classes with barriers, direct output writes) instead of by
    #: local vectors. Drivers and bound operators branch on this: the
    #: multiplication phase runs the strategy's barrier-stepped schedule
    #: and the reduction phase disappears.
    conflict_free: bool = False

    def __init__(
        self,
        matrix: SymmetricFormat,
        partitions: Sequence[tuple[int, int]],
    ):
        self.matrix = matrix
        self.partitions = [(int(s), int(e)) for s, e in partitions]
        self.n_threads = len(self.partitions)
        self.n_rows = matrix.n_rows
        self._prepare()

    def _prepare(self) -> None:
        """Hook for per-method preprocessing (index construction)."""

    def _local_shape(self, k: Optional[int]) -> tuple[int, ...]:
        """Local-buffer shape: ``(N,)`` for the 1-D SpM×V case
        (``k is None``), or ``(N, k)`` for a k-column SpM×M pass —
        including ``k = 1``, so a 2-D pass always sees 2-D buffers. The
        ``(vid, idx)`` structure is unchanged — indices select rows of
        the buffer."""
        if k is None:
            return (self.n_rows,)
        if k < 1:
            raise ValueError(f"need at least one right-hand side, got k={k}")
        return (self.n_rows, k)

    # -- multiplication-phase wiring -----------------------------------
    @abc.abstractmethod
    def allocate_locals(
        self, k: Optional[int] = None
    ) -> list[Optional[np.ndarray]]:
        """One local buffer per thread (``None`` where a thread writes
        directly and needs no local vector). ``k = None`` allocates the
        1-D SpM×V vectors; an integer ``k`` allocates ``(N, k)``
        buffers for a multi-RHS pass."""

    @abc.abstractmethod
    def thread_targets(
        self, tid: int, y: np.ndarray, locals_: list[Optional[np.ndarray]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(y_direct, y_local)`` for thread ``tid``'s
        :meth:`~repro.formats.base.SymmetricFormat.spmv_partition` call."""

    def zero_locals(self, locals_: list[Optional[np.ndarray]]) -> None:
        """Reset persistent local buffers in place between bound
        iterations.

        Only the regions the multiplication phase writes (and the
        reduction reads) need zeroing, so each method clears exactly its
        own effective region — the amortized counterpart of re-allocating
        fresh buffers every call. Default: full-length clear (naive).
        """
        for buf in locals_:
            if buf is not None:
                buf[...] = 0.0

    def zeroed_elements(self, k: Optional[int] = None) -> int:
        """Local-buffer elements :meth:`zero_locals` clears per call —
        the workspace-zero volume a bound operator's tracer counter
        reports. Default matches the full-length clear (naive)."""
        per_buf = self.n_rows * (k or 1)
        return sum(1 for s, _ in self.partitions if self._has_local(s)) \
            * per_buf

    def _has_local(self, start: int) -> bool:
        """Whether a partition starting at ``start`` owns a local
        buffer (naive: always; effective/indexed: only when the
        effective region is non-empty)."""
        return True

    # -- reduction phase ------------------------------------------------
    @abc.abstractmethod
    def reduce(
        self, y: np.ndarray, locals_: list[Optional[np.ndarray]]
    ) -> None:
        """Fold the local buffers into ``y``. Works identically for 1-D
        vectors and ``(N, k)`` blocks: every operation indexes axis 0."""

    @abc.abstractmethod
    def footprint(self, k: int = 1) -> ReductionFootprint:
        """Working-set accounting for this configuration with ``k``
        right-hand sides per pass (``k = 1`` is the paper's case)."""

    # -- parallel reduction structure ------------------------------------
    def reduction_splits(self, n_chunks: int) -> list[tuple[int, int]]:
        """Row ranges assigned to each reducer thread.

        Default: equal row split of the output vector (Alg. 3 lines
        12-16). The indexing method overrides this to split its sorted
        index stream instead.
        """
        bounds = np.linspace(0, self.n_rows, n_chunks + 1).round().astype(int)
        return [(int(bounds[i]), int(bounds[i + 1])) for i in range(n_chunks)]


class NaiveReduction(ReductionMethod):
    """Full-length local vector per thread, full-range reduction."""

    name = "naive"

    def allocate_locals(
        self, k: Optional[int] = None
    ) -> list[Optional[np.ndarray]]:
        return [
            np.zeros(self._local_shape(k), dtype=np.float64)
            for _ in range(self.n_threads)
        ]

    def thread_targets(self, tid, y, locals_):
        # Everything — own rows included — goes to the local vector.
        buf = locals_[tid]
        return buf, buf

    def reduce(self, y, locals_):
        for buf in locals_:
            y += buf

    def footprint(self, k: int = 1) -> ReductionFootprint:
        p, n = self.n_threads, self.n_rows
        ws = float(_F8 * p * n * k)  # eq. (3), ×k columns
        return ReductionFootprint(
            method=self.name,
            n_threads=p,
            n_rows=n,
            ws_model_bytes=ws,
            ws_measured_bytes=ws,
            reduction_reads=p * n * k,
            reduction_writes=n * k,
            n_rhs=k,
        )


class EffectiveRangesReduction(ReductionMethod):
    """Local writes only below ``start_i``; direct writes elsewhere."""

    name = "effective"

    def allocate_locals(
        self, k: Optional[int] = None
    ) -> list[Optional[np.ndarray]]:
        # Thread 0 has an empty effective region: no local vector.
        # Buffers are full-length for indexing simplicity; only
        # [0, start_i) is ever touched, and only that range is counted.
        out: list[Optional[np.ndarray]] = []
        shape = self._local_shape(k)
        for start, _ in self.partitions:
            out.append(
                np.zeros(shape, dtype=np.float64) if start > 0 else None
            )
        return out

    def thread_targets(self, tid, y, locals_):
        local = locals_[tid]
        return y, (local if local is not None else y)

    def zero_locals(self, locals_: list[Optional[np.ndarray]]) -> None:
        # Writes only ever land in [0, start_i) — clear just that.
        for (start, _), buf in zip(self.partitions, locals_):
            if buf is not None and start > 0:
                buf[:start] = 0.0

    def zeroed_elements(self, k: Optional[int] = None) -> int:
        return sum(start for start, _ in self.partitions) * (k or 1)

    def _has_local(self, start: int) -> bool:
        return start > 0

    def reduce(self, y, locals_):
        for (start, _), buf in zip(self.partitions, locals_):
            if buf is not None and start > 0:
                y[:start] += buf[:start]

    def footprint(self, k: int = 1) -> ReductionFootprint:
        p, n = self.n_threads, self.n_rows
        sum_starts = sum(start for start, _ in self.partitions)
        ws_measured = float(_F8 * sum_starts * k)
        ws_model = 4.0 * (p - 1) * n * k  # eq. (4), ×k columns
        return ReductionFootprint(
            method=self.name,
            n_threads=p,
            n_rows=n,
            ws_model_bytes=ws_model,
            ws_measured_bytes=ws_measured,
            reduction_reads=sum_starts * k,
            reduction_writes=n * k,
            n_rhs=k,
        )


class IndexedReduction(ReductionMethod):
    """The paper's local-vectors indexing scheme (Section III-C).

    At preparation time the conflicting output rows of every partition
    are enumerated into ``(vid, idx)`` pairs sorted by ``idx`` — this is
    the index whose size (``INDEX_PAIR_BYTES`` each) plus touched local
    elements constitute eq. (5). The reduction visits only those pairs.
    """

    name = "indexed"

    def _prepare(self) -> None:
        vids: list[np.ndarray] = []
        idxs: list[np.ndarray] = []
        self._per_thread_conflicts: list[np.ndarray] = []
        for tid, (start, end) in enumerate(self.partitions):
            conflicts = self.matrix.partition_conflict_rows(start, end)
            self._per_thread_conflicts.append(conflicts)
            if conflicts.size:
                vids.append(np.full(conflicts.size, tid, dtype=np.int32))
                idxs.append(conflicts.astype(np.int32))
        if idxs:
            vid = np.concatenate(vids)
            idx = np.concatenate(idxs)
            order = np.argsort(idx, kind="stable")
            self.index_vid = vid[order]
            self.index_idx = idx[order]
        else:
            self.index_vid = np.zeros(0, dtype=np.int32)
            self.index_idx = np.zeros(0, dtype=np.int32)

    @property
    def n_pairs(self) -> int:
        return int(self.index_idx.size)

    def allocate_locals(
        self, k: Optional[int] = None
    ) -> list[Optional[np.ndarray]]:
        out: list[Optional[np.ndarray]] = []
        shape = self._local_shape(k)
        for start, _ in self.partitions:
            out.append(
                np.zeros(shape, dtype=np.float64) if start > 0 else None
            )
        return out

    def thread_targets(self, tid, y, locals_):
        local = locals_[tid]
        return y, (local if local is not None else y)

    def zero_locals(self, locals_: list[Optional[np.ndarray]]) -> None:
        # The index enumerates every row the multiplication phase can
        # write (= every row the reduction reads), so clearing just the
        # conflicting rows restores a pristine local vector.
        for conflicts, buf in zip(self._per_thread_conflicts, locals_):
            if buf is not None and conflicts.size:
                buf[conflicts] = 0.0

    def zeroed_elements(self, k: Optional[int] = None) -> int:
        return self.n_pairs * (k or 1)

    def _has_local(self, start: int) -> bool:
        return start > 0

    def reduce(self, y, locals_):
        # Grouped by vid (addition commutes, result identical to pair
        # order); each group is one vectorized gather-accumulate.
        for tid, conflicts in enumerate(self._per_thread_conflicts):
            if conflicts.size:
                buf = locals_[tid]
                y[conflicts] += buf[conflicts]

    def reduction_splits(self, n_chunks: int) -> list[tuple[int, int]]:
        """Split the sorted index into ``n_chunks`` contiguous slices
        such that no ``idx`` value is shared between two slices (the
        independence restriction of Section III-C)."""
        m = self.n_pairs
        if m == 0:
            return [(0, 0)] * n_chunks
        targets = (m * np.arange(1, n_chunks)) // n_chunks
        cuts = []
        for t in targets:
            c = int(t)
            # Move the cut forward until the idx value changes.
            while 0 < c < m and self.index_idx[c] == self.index_idx[c - 1]:
                c += 1
            cuts.append(c)
        bounds = [0] + cuts + [m]
        bounds = list(np.maximum.accumulate(bounds))
        return [(bounds[i], bounds[i + 1]) for i in range(n_chunks)]

    def effective_density(self) -> float:
        """Measured density ``d`` of the effective regions: indexed
        pairs over total effective-region length (Fig. 4's metric)."""
        sum_starts = sum(start for start, _ in self.partitions)
        if sum_starts == 0:
            return 0.0
        return self.n_pairs / sum_starts

    def footprint(self, k: int = 1) -> ReductionFootprint:
        p, n = self.n_threads, self.n_rows
        d = self.effective_density()
        # eq. (5): touched local elements (×k columns) + the index
        # itself — the (vid, idx) pairs are shared by all k columns.
        ws_model = (
            4.0 * (p - 1) * n * d * k
            + INDEX_PAIR_BYTES * (p - 1) * n * d / 2
        )
        ws_measured = float(
            _F8 * self.n_pairs * k + INDEX_PAIR_BYTES * self.n_pairs
        )
        return ReductionFootprint(
            method=self.name,
            n_threads=p,
            n_rows=n,
            ws_model_bytes=ws_model,
            ws_measured_bytes=ws_measured,
            reduction_reads=(1 + k) * self.n_pairs,  # pair + k elements
            reduction_writes=self.n_pairs * k,
            index_pairs=self.n_pairs,
            effective_density=d,
            n_rhs=k,
        )


class ColoringReduction(ReductionMethod):
    """Conflict-free scheduling in a reduction method's clothes (the
    RACE direction named by ROADMAP item 3).

    A distance-2 coloring guarantees that rows of one color class write
    disjoint output elements, so every thread writes ``y`` directly and
    there is *nothing to reduce*: no local vectors are allocated
    (``allocate_locals`` returns all ``None``), :meth:`zero_locals` and
    :meth:`reduce` are no-ops, and the footprint reports zero
    reduction-phase traffic. What replaces them is the precompiled
    :class:`~repro.parallel.coloring.ColoringSchedule` — color classes
    split into nnz-balanced row batches, executed class-at-a-time with a
    barrier between classes — which drivers and bound operators detect
    via :attr:`conflict_free` and run through
    :func:`~repro.parallel.coloring.run_colored_steps`.

    The cost moves from reduction traffic to barriers and a scattered
    (color-ordered) matrix stream; the machine model accounts both
    (:func:`repro.machine.predict_spmv` adds a ``t_barrier`` term).
    """

    name = "coloring"
    conflict_free = True

    def _prepare(self) -> None:
        from .coloring import build_coloring_schedule  # lazy: avoids cycle

        # Raises ColoringUnsupportedError (a ValueError) for formats
        # without a lower-triangle CSR view (e.g. CSB-Sym).
        self.schedule = build_coloring_schedule(self.matrix, self.n_threads)

    def allocate_locals(
        self, k: Optional[int] = None
    ) -> list[Optional[np.ndarray]]:
        self._local_shape(k)  # validate k
        return [None] * self.n_threads

    def thread_targets(self, tid, y, locals_):
        # Unused in the conflict-free path (the schedule's tasks write y
        # directly), but keep the contract total: direct everywhere.
        return y, y

    def zero_locals(self, locals_: list[Optional[np.ndarray]]) -> None:
        pass

    def zeroed_elements(self, k: Optional[int] = None) -> int:
        return 0

    def _has_local(self, start: int) -> bool:
        return False

    def reduce(self, y, locals_):
        pass

    def reduction_splits(self, n_chunks: int) -> list[tuple[int, int]]:
        # No reduction phase to split.
        return [(0, 0)] * n_chunks

    def footprint(self, k: int = 1) -> ReductionFootprint:
        return ReductionFootprint(
            method=self.name,
            n_threads=self.n_threads,
            n_rows=self.n_rows,
            ws_model_bytes=0.0,
            ws_measured_bytes=0.0,
            reduction_reads=0,
            reduction_writes=0,
            n_rhs=k,
        )

    @property
    def schedule_bytes(self) -> int:
        """Precomputed schedule footprint (not reduction working set —
        it streams in place of the CSR structure during multiply)."""
        return self.schedule.index_bytes


REDUCTION_METHODS = {
    cls.name: cls
    for cls in (
        NaiveReduction,
        EffectiveRangesReduction,
        IndexedReduction,
        ColoringReduction,
    )
}


def make_reduction(
    name: str,
    matrix: SymmetricFormat,
    partitions: Sequence[tuple[int, int]],
) -> ReductionMethod:
    """Factory: ``name`` in {"naive", "effective", "indexed",
    "coloring"}."""
    try:
        cls = REDUCTION_METHODS[name]
    except KeyError:
        raise ValueError(
            f"unknown reduction method {name!r}; "
            f"choose from {sorted(REDUCTION_METHODS)}"
        ) from None
    return cls(matrix, partitions)
