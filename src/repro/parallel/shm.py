"""Shared-memory arenas for the process-pool executor backend.

The process backend ships *data*, not arrays: at bind time the matrix
arrays, the input/output vectors and the per-thread local reduction
buffers are placed into ``multiprocessing.shared_memory`` segments, and
per-call messages carry only task descriptors (batch number, thread
ids). Workers attach once at pool spin-up and reconstruct zero-copy
NumPy views over the segments.

Two segments exist per bound operator:

* the **data arena** — the pickled driver state ``(matrix, partitions,
  reduction)`` with every NumPy payload extracted out-of-band via
  pickle protocol 5 and packed, 64-byte aligned, into the segment.
  Workers rebuild the objects with ``pickle.loads(payload,
  buffers=...)`` so the reconstructed index/value arrays *view* the
  shared pages instead of copying them;
* the **workspace arena** — the ``y`` output, the staged ``x`` input
  and the non-``None`` local reduction buffers, referenced by
  ``(offset, shape)`` so parent and workers address the same memory.

Lifecycle notes (CPython 3.11 semantics this module works around):

* ``SharedMemory.close()`` raises ``BufferError`` while NumPy views of
  the segment are alive. The owner therefore **unlinks first** (frees
  the name and the resource-tracker entry) and then attempts the
  close, swallowing ``BufferError`` — the OS releases the pages when
  the last mapping dies.
* Attaching registers the segment with the ``resource_tracker`` even
  for non-owners (no ``track=`` parameter before 3.13). Pool workers
  must **not** unregister after attaching: children of *every* start
  method — fork by inheritance, spawn/forkserver through the tracker
  fd in their preparation data — talk to the parent's tracker, where
  registration is an idempotent set-add. A worker-side unregister
  removes the shared entry, so the parent's eventual unlink-time
  unregister hits a ``KeyError`` inside the tracker process.
  ``attach(untrack=True)`` exists only for a genuinely unrelated
  process (own tracker), which would otherwise unlink the segment at
  its exit while the owner still uses it.

Every arena registers a ``weakref.finalize`` backstop, so a bound
operator that is garbage-collected without ``close()`` still releases
its segments (and the leak remains observable through the existing
``bound_operator.unclosed_gc`` warning counter). :func:`live_segments`
exposes the names this process currently owns or has attached — the
lifecycle tests assert it is empty after teardown.
"""

from __future__ import annotations

import pickle
import weakref
from functools import lru_cache
from typing import Sequence

import numpy as np

__all__ = [
    "SharedArena",
    "aligned_nbytes",
    "live_segments",
    "pack_to_arena",
    "shared_memory_available",
    "unpack_from_arena",
]

#: Cache-line alignment of every carved allocation (avoids false
#: sharing between the per-thread buffers of adjacent offsets).
_ALIGN = 64

#: Segment names this process currently holds open (owner or attached).
_LIVE: set = set()


@lru_cache(maxsize=1)
def shared_memory_available() -> bool:
    """Probe once whether POSIX/Windows shared memory actually works
    here (import success is not enough: /dev/shm may be unmounted or
    sealed in a sandbox)."""
    try:
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(create=True, size=64)
        try:
            seg.buf[0] = 1
        finally:
            seg.unlink()
            seg.close()
        return True
    except Exception:  # pragma: no cover - environment-specific
        return False


def live_segments() -> list:
    """Names of shared-memory segments this process holds open right
    now. The lifecycle regression tests assert this drains to empty
    after ``close()`` (and after finalizer-driven cleanup)."""
    return sorted(_LIVE)


def aligned_nbytes(shape: Sequence[int], dtype=np.float64) -> int:
    """Byte length of one allocation, rounded up to the arena
    alignment."""
    nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


def _release(shm, owner: bool, name: str) -> None:
    """Idempotent segment teardown shared by ``close()`` and the GC
    finalizer."""
    _LIVE.discard(name)
    if owner:
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
    try:
        shm.close()
    except BufferError:
        # NumPy views of the segment are still exported (the caller may
        # hold the result array). The name and tracker entry are
        # already released by unlink; the OS frees the pages when the
        # last mapping dies with those views. SharedMemory.__del__
        # would retry close() and raise the same BufferError as an
        # unraisable at GC/interpreter exit — neutralize the retry.
        shm.close = lambda: None


class SharedArena:
    """One shared-memory segment with sequential aligned carving.

    Create as owner with a byte capacity, or ``attach()`` to an
    existing segment by name from a worker process. ``alloc`` carves
    zero-initialized arrays (fresh segments are zero pages); ``view``
    re-materializes an array from an ``(offset, shape)`` reference in
    another process.
    """

    def __init__(self, capacity: int):
        from multiprocessing import shared_memory

        self._shm = shared_memory.SharedMemory(
            create=True, size=max(int(capacity), _ALIGN)
        )
        self.owner = True
        self._cursor = 0
        _LIVE.add(self._shm.name)
        self._finalizer = weakref.finalize(
            self, _release, self._shm, True, self._shm.name
        )

    @classmethod
    def attach(cls, name: str, *, untrack: bool = False) -> "SharedArena":
        """Worker-side attach. Leave ``untrack`` False in pool workers
        (they share the owner's resource tracker, whatever the start
        method); pass True only from an unrelated process with its own
        tracker — see the module docstring."""
        from multiprocessing import shared_memory

        self = cls.__new__(cls)
        self._shm = shared_memory.SharedMemory(name=name)
        self.owner = False
        self._cursor = 0
        if untrack:
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(self._shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker variants
                pass
        _LIVE.add(name)
        self._finalizer = weakref.finalize(
            self, _release, self._shm, False, name
        )
        return self

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return self._shm.size

    def alloc(
        self, shape: Sequence[int], dtype=np.float64
    ) -> tuple[np.ndarray, int]:
        """Carve the next aligned region; returns ``(array, offset)``."""
        offset = self._cursor
        nbytes = aligned_nbytes(shape, dtype)
        if offset + nbytes > self._shm.size:
            raise ValueError(
                f"arena overflow: need {offset + nbytes} B of "
                f"{self._shm.size} B"
            )
        self._cursor += nbytes
        return self.view(offset, shape, dtype), offset

    def view(
        self, offset: int, shape: Sequence[int], dtype=np.float64
    ) -> np.ndarray:
        """Array viewing the segment at ``offset`` (any process)."""
        count = int(np.prod(shape, dtype=np.int64))
        return np.frombuffer(
            self._shm.buf, dtype=dtype, count=count, offset=offset
        ).reshape(tuple(shape))

    def close(self) -> None:
        """Owner: unlink + close (BufferError-tolerant). Attached:
        close only. Idempotent."""
        if self._finalizer.detach() is not None:
            _release(self._shm, self.owner, self._shm.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        role = "owner" if self.owner else "attached"
        return f"<SharedArena {self.name} {role} {self._shm.size}B>"


# ----------------------------------------------------------------------
# Protocol-5 out-of-band packing of driver state
# ----------------------------------------------------------------------
def pack_to_arena(obj) -> tuple[bytes, list, "SharedArena"]:
    """Pickle ``obj`` with its array payloads extracted out-of-band and
    packed into a fresh arena.

    Returns ``(payload, table, arena)`` where ``payload`` is the
    in-band pickle stream and ``table`` lists ``(offset, nbytes)`` per
    out-of-band buffer, in pickling order — exactly what
    :func:`unpack_from_arena` consumes on the worker side.
    """
    buffers: list = []
    payload = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    raws = [buf.raw() for buf in buffers]
    capacity = sum(aligned_nbytes((raw.nbytes,), np.uint8) for raw in raws)
    arena = SharedArena(capacity)
    table = []
    for raw in raws:
        dest, offset = arena.alloc((raw.nbytes,), np.uint8)
        if raw.nbytes:
            dest[...] = np.frombuffer(raw, dtype=np.uint8)
        table.append((offset, raw.nbytes))
    return payload, table, arena


def unpack_from_arena(arena: SharedArena, payload: bytes, table: Sequence):
    """Rebuild the object packed by :func:`pack_to_arena`, with every
    out-of-band array viewing the arena's pages (zero copy)."""
    buffers = [
        memoryview(arena._shm.buf)[offset:offset + nbytes]
        for offset, nbytes in table
    ]
    return pickle.loads(payload, buffers=buffers)


def workspace_capacity(
    shapes: Sequence[tuple[Sequence[int], "np.dtype"]]
) -> int:
    """Total arena bytes for a list of ``(shape, dtype)`` workspaces."""
    return sum(aligned_nbytes(shape, dtype) for shape, dtype in shapes)


def start_method() -> str:
    """The process start method the pool will use: ``fork`` where the
    platform offers it (cheap spin-up, inherited tracker), else
    ``spawn``; overridable with ``REPRO_PROCESS_START``."""
    import multiprocessing
    import os

    override = os.environ.get("REPRO_PROCESS_START", "").strip()
    methods = multiprocessing.get_all_start_methods()
    if override:
        if override not in methods:
            raise ValueError(
                f"REPRO_PROCESS_START={override!r} not in {methods}"
            )
        return override
    return "fork" if "fork" in methods else "spawn"
