"""Bound operators: persistent SpM×V / SpM×M execution plans.

Iterative solvers apply the same operator hundreds of times (CG,
Fig. 14), yet the plain drivers pay avoidable per-call overhead every
time: task closures are rebuilt, ``(p, N[, k])`` local buffers and the
output vector are re-allocated, and the lazy scatter compilations of
the formats may land inside the first timed iteration. This module is
the repo's OSKI-style answer (Akbudak et al.; RACE's precomputed
execution schedules): ``driver.bind(k)`` performs all of that work
*once* and returns a :class:`BoundOperator` whose ``__call__`` only
zeroes workspaces in place and runs the precompiled tasks.

Binding is signature-specific: ``k=None`` binds the 1-D SpM×V path,
an integer ``k`` binds the ``(N, k)`` multi-RHS path. The returned
array is the operator's private workspace — valid until the next call;
copy it (or pass ``out=``) to keep a result.
"""

from __future__ import annotations

import threading
import warnings
from time import perf_counter_ns
from typing import Optional

import numpy as np

from ..obs.tracer import active as _active_tracer, warn as _obs_warn
from ..resilience.errors import OperatorClosedError, PoisonedOperatorError
from .spmv import _record_traffic

__all__ = [
    "BoundOperator",
    "BoundSymmetricSpMV",
    "BoundSpMV",
    "compile_symmetric_tasks",
    "compile_unsymmetric_tasks",
]

_POISON_POLICIES = ("recover", "raise")


def compile_symmetric_tasks(
    matrix, reduction, partitions, k: Optional[int], y, locals_, get_x
) -> list:
    """Per-thread multiplication closures for the two-phase symmetric
    driver. Shared by the parent's bound operator and the process-pool
    workers (which call it against their own zero-copy views of the
    same shared-memory workspaces), so both sides execute the one task
    definition. ``get_x`` defers the input read to call time.

    For a conflict-free (coloring) reduction this returns the schedule's
    *steps* — a list of barrier-separated task lists — instead of a flat
    list; the bound operator runs them step-at-a-time and the process
    workers flatten them step-major so global task ids index the same
    closures on both sides."""
    if getattr(reduction, "conflict_free", False):
        from .coloring import compile_colored_steps

        return compile_colored_steps(reduction.schedule, y, get_x, k)
    multi = k is not None
    tasks = []
    for tid, (start, end) in enumerate(partitions):
        y_direct, y_local = reduction.thread_targets(tid, y, locals_)
        kernel = matrix.spmm_partition if multi else matrix.spmv_partition

        def task(kernel=kernel, y_direct=y_direct, y_local=y_local,
                 start=start, end=end) -> None:
            kernel(get_x(), y_direct, y_local, start, end)

        tasks.append(task)
    return tasks


def compile_unsymmetric_tasks(
    matrix, partitions, k: Optional[int], y, get_x
) -> list:
    """Per-thread closures for the row-partitioned unsymmetric driver,
    matching the unbound dispatch: CSX partitions execute by index,
    CSR by row range. Shared with the process-pool workers like
    :func:`compile_symmetric_tasks`."""
    multi = k is not None
    tasks = []
    if hasattr(matrix, "spmv_partition_only"):
        for tid in range(len(partitions)):
            kernel = (
                matrix.spmm_partition_only
                if multi
                else matrix.spmv_partition_only
            )

            def task(kernel=kernel, tid=tid) -> None:
                kernel(get_x(), y, tid)

            tasks.append(task)
    else:
        for start, end in partitions:
            kernel = matrix.spmm_rows if multi else matrix.spmv_rows

            def task(kernel=kernel, start=start, end=end) -> None:
                kernel(get_x(), y, start, end)

            tasks.append(task)
    return tasks


class BoundOperator:
    """Reusable execution plan for repeated ``y = A @ x`` products.

    Created through ``ParallelSymmetricSpMV.bind`` / ``ParallelSpMV
    .bind`` — not directly. At bind time the operator

    (a) precompiles the per-thread task list (closures are built once,
        reading the input slot set by each call),
    (b) allocates persistent output/local workspaces that are zeroed in
        place instead of re-allocated per call, and
    (c) eagerly compiles the format's lazy scatter/split caches
        (window-restricted scatters, flattened ``k``-RHS indices) so
        the first timed iteration is not a compilation run.

    Concurrency: the operator owns *one* set of persistent workspaces,
    so applications are inherently non-reentrant — two interleaved
    applies would zero and accumulate into the same ``y``/locals and
    both return corrupt numerics. ``__call__`` therefore serializes
    under an internal lock (chosen over a typed ``OperatorBusyError``:
    blocking preserves the drop-in callable contract — every caller
    still gets the bit-identical result it would have gotten alone,
    just later — whereas a busy error would force retry loops into
    every solver). ``recover()`` and ``close()`` take the same lock, so
    neither can tear workspaces out from under an in-flight apply. The
    returned workspace view is only guaranteed until the next apply
    from *any* thread — concurrent callers must pass ``out=`` (or copy
    under their own coordination) to keep a result.

    Parameters
    ----------
    driver : ParallelSymmetricSpMV or ParallelSpMV
    k : int, optional
        Right-hand sides per application; ``None`` binds the 1-D
        SpM×V signature.
    on_poison : {"recover", "raise"}
        What a call after a failed/interrupted application does. A
        fault mid-apply marks the operator *poisoned* (its workspaces
        may hold partial writes). ``"recover"`` (default) fully
        re-zeroes every workspace and proceeds, counting the event on
        the ``resilience.operator_recovered`` warning counter;
        ``"raise"`` fails with a typed
        :class:`~repro.resilience.errors.PoisonedOperatorError` until
        :meth:`recover` is called explicitly. Either way ``apply``
        never returns a partially-written ``y``.
    """

    def __init__(
        self, driver, k: Optional[int] = None, on_poison: str = "recover"
    ):
        if k is not None:
            k = int(k)
            if k < 1:
                raise ValueError(
                    f"need at least one right-hand side, got k={k}"
                )
        if on_poison not in _POISON_POLICIES:
            raise ValueError(
                f"on_poison must be one of {_POISON_POLICIES}, "
                f"got {on_poison!r}"
            )
        self.driver = driver
        self.k = k
        self.on_poison = on_poison
        self.n_calls = 0
        self._closed = False
        self._poisoned = False
        # Serializes apply/recover/close: one set of persistent
        # workspaces means applications are non-reentrant by design
        # (see the class docstring for the lock-vs-busy-error choice).
        self._apply_lock = threading.Lock()
        m = driver.matrix
        shape = (m.n_rows,) if k is None else (m.n_rows, k)
        self._y = np.zeros(shape, dtype=np.float64)
        self._x: Optional[np.ndarray] = None
        self._x_shape = (m.n_cols,) if k is None else (m.n_cols, k)
        self._x_staged: Optional[np.ndarray] = None
        self._remote = None
        self._arenas: list = []
        tracer = _active_tracer()
        with tracer.span("bind", k=k, threads=driver.n_threads):
            with tracer.span("bind.precompile"):
                self._precompile()
            with tracer.span("bind.workspaces"):
                self._allocate_workspaces()
            if getattr(driver.executor, "mode", None) == "processes":
                with tracer.span("bind.processes"):
                    self._setup_process_backend()
            with tracer.span("bind.tasks"):
                self._tasks = self._build_tasks()
        # Elements _zero_workspaces clears per call (constant once
        # bound) — reported through the "bound.zeroed_elements" counter.
        self._zero_volume = int(self._y.size) + self._locals_zero_volume()

    def _locals_zero_volume(self) -> int:
        """Local-workspace elements zeroed per call (0 when the driver
        has no local buffers)."""
        return 0

    # -- bind-time hooks (overridden per driver kind) -------------------
    def _precompile(self) -> None:
        """Eagerly build the format's lazy execution caches."""

    def _allocate_workspaces(self) -> None:
        """Allocate any persistent buffers beyond the output."""

    def _build_tasks(self) -> list:
        """One precompiled closure per thread; each reads ``self._x``."""
        raise NotImplementedError

    def _setup_process_backend(self) -> None:
        """Migrate the workspaces into shared memory and spin up the
        long-lived worker pool (``processes`` executor only).

        Two arenas per operator: a *data* arena holding the pickled
        driver state with its array buffers carved out-of-band
        (protocol 5 — workers reconstruct the matrix zero-copy), and a
        *workspace* arena holding ``y``, the staged input slot and the
        reduction's local buffers. The parent's ``self._y`` /
        ``self._locals`` are re-pointed at arena views, so the existing
        zero/reduce/recover machinery — and the serial fallback, which
        runs the parent-side closures — operate on the very memory the
        workers write.
        """
        from . import shm as _shm
        from .procpool import ProcessPool, WorkerSpec

        driver = self.driver
        executor = driver.executor
        reduction = getattr(driver, "reduction", None)
        payload, table, data = _shm.pack_to_arena(
            (driver.matrix, tuple(driver.partitions), reduction)
        )
        self._arenas.append(data)

        locals_ = getattr(self, "_locals", None)
        shapes = [(self._y.shape, np.float64), (self._x_shape, np.float64)]
        if locals_:
            shapes.extend(
                (buf.shape, np.float64) for buf in locals_ if buf is not None
            )
        ws = _shm.SharedArena(_shm.workspace_capacity(shapes))
        self._arenas.append(ws)

        new_y, y_off = ws.alloc(self._y.shape)
        self._y = new_y
        self._x_staged, x_off = ws.alloc(self._x_shape)
        locals_refs: list = []
        if locals_ is not None:
            for i, buf in enumerate(locals_):
                if buf is None:
                    locals_refs.append(None)
                else:
                    arr, off = ws.alloc(buf.shape)
                    locals_[i] = arr
                    locals_refs.append((off, tuple(buf.shape)))

        spec = WorkerSpec(
            kind="sym" if reduction is not None else "unsym",
            payload=payload,
            table=table,
            data_name=data.name,
            ws_name=ws.name,
            x_ref=(x_off, tuple(self._x_shape)),
            y_ref=(y_off, tuple(self._y.shape)),
            locals_refs=locals_refs,
            k=self.k,
            plan=executor.plan,
        )
        n_workers = driver.n_threads
        if executor.max_workers is not None:
            n_workers = min(n_workers, executor.max_workers)
        self._remote = ProcessPool(spec, n_workers)

    def _stage_input(self, x: np.ndarray) -> np.ndarray:
        """Copy the call's input into the shared staging slot (process
        backend) so the workers see it; identity otherwise."""
        if self._x_staged is not None:
            if x is not self._x_staged:
                np.copyto(self._x_staged, x)
            return self._x_staged
        return x

    def _zero_workspaces(self) -> None:
        self._y[...] = 0.0

    def _run_mult(self, label: Optional[str] = None) -> None:
        """Execute the precompiled multiplication phase. Default: one
        batch over ``self._tasks``; the colored symmetric path overrides
        this with barrier-stepped execution."""
        self.driver.executor.run_batch(
            self._tasks, label=label, reset=self._zero_workspaces,
            remote=self._remote,
        )

    def _finish(self) -> None:
        """Post-multiplication phase (the symmetric reduction)."""

    # -- public surface -------------------------------------------------
    @property
    def matrix(self):
        return self.driver.matrix

    @property
    def n_threads(self) -> int:
        return self.driver.n_threads

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def poisoned(self) -> bool:
        """True after a failed/interrupted application until the next
        recovery (automatic under ``on_poison="recover"``, explicit via
        :meth:`recover` otherwise)."""
        return self._poisoned

    def recover(self) -> None:
        """Clear the poisoned state: every workspace — output and
        locals — is re-zeroed *in full* (not just the per-call
        effective windows, which assume the previous call completed
        cleanly). Counted on ``resilience.operator_recovered``. No-op
        on a healthy operator."""
        with self._apply_lock:
            self._recover_locked()

    def _recover_locked(self) -> None:
        """Recovery body; the caller holds ``_apply_lock``."""
        if self._closed:
            raise OperatorClosedError(
                "operator is closed; bind() a new one"
            )
        if not self._poisoned:
            return
        _obs_warn("resilience.operator_recovered")
        self._full_rezero()
        self._poisoned = False

    def _full_rezero(self) -> None:
        """Unconditional full-extent workspace clear (recovery path;
        the per-call :meth:`_zero_workspaces` may be window-restricted)."""
        self._y[...] = 0.0

    def bind(self, k: Optional[int] = None, on_poison: Optional[str] = None):
        """Idempotent re-bind: returns ``self`` when the signature
        already matches, else binds the underlying driver afresh (so a
        bound operator can be passed anywhere a driver is expected)."""
        if (
            k == self.k
            and not self._closed
            and on_poison in (None, self.on_poison)
        ):
            return self
        return self.driver.bind(k, on_poison=on_poison or self.on_poison)

    def _expected_x_shape(self) -> tuple[int, ...]:
        return self._x_shape

    def __call__(
        self, x: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Compute ``A @ x`` into the persistent workspace.

        Returns the workspace (overwritten by the next call) unless
        ``out`` is given, in which case the result is copied there.

        Raises :class:`OperatorClosedError` after ``close()``, and —
        under ``on_poison="raise"`` — :class:`PoisonedOperatorError`
        after a failed application; see :meth:`recover`.

        Concurrent calls serialize on the operator's internal lock
        (workspaces are shared; see the class docstring) — each caller
        gets the exact result it would have gotten alone.
        """
        with self._apply_lock:
            if self._closed:
                raise OperatorClosedError(
                    "operator is closed; bind() a new one"
                )
            if self._poisoned:
                if self.on_poison == "raise":
                    raise PoisonedOperatorError(
                        "operator poisoned by a failed apply; call "
                        "recover() or bind with on_poison='recover'"
                    )
                self._recover_locked()
            x = np.asarray(x, dtype=np.float64)
            if x.shape != self._x_shape:
                raise ValueError(
                    f"x has shape {x.shape}, expected {self._x_shape} for "
                    f"an operator bound with k={self.k}"
                )
            if x is self._y:
                # Power-iteration style y = op(op(x)) must not zero its
                # own input when the caller feeds the workspace back in.
                x = x.copy()
            tracer = _active_tracer()
            if tracer.enabled:
                return self._apply_traced(tracer, x, out)
            return self._apply(x, out)

    def _apply(
        self, x: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """The uninstrumented hot path (input already validated).
        ``__call__`` dispatches here when no tracer is active; the
        overhead benchmark times this directly as the zero-
        instrumentation control for the disabled-tracer overhead."""
        self._zero_workspaces()
        self._x = self._stage_input(x)
        try:
            self._run_mult()
            self._finish()
        except BaseException:
            # Workspaces may be partially written; never let the next
            # call's window-restricted zeroing compute on top of them.
            self._poison()
            raise
        finally:
            self._x = None
        self.n_calls += 1
        if out is not None:
            np.copyto(out, self._y)
            return out
        return self._y

    def _metric_labels(self) -> dict:
        """(format, reduction, backend) identity of this operator —
        the label set its streaming histograms are keyed by."""
        reduction = getattr(self.driver, "reduction", None)
        return {
            "format": self.driver.matrix.format_name,
            "reduction": getattr(reduction, "name", "none"),
            "backend": self.driver.executor.mode,
        }

    def _apply_traced(
        self, tracer, x: np.ndarray, out: Optional[np.ndarray]
    ) -> np.ndarray:
        """The same application wrapped in phase spans and counters.
        Phase names match the unbound driver ("spmv.mult" /
        "spmv.reduce") so summaries aggregate across both paths.
        Additionally streams per-application latency and modeled
        traffic into the ``op.apply_ns`` / ``op.traffic_bytes``
        histograms, keyed by (format, reduction, backend)."""
        t0 = perf_counter_ns()
        with tracer.span("bound.apply", k=self.k):
            with tracer.span("bound.zero"):
                self._zero_workspaces()
            tracer.count("bound.zeroed_elements", self._zero_volume)
            self._x = self._stage_input(x)
            try:
                with tracer.span("spmv.mult"):
                    self._run_mult(label="spmv.mult.task")
                with tracer.span("spmv.reduce"):
                    self._finish()
            except BaseException as exc:
                tracer.event(
                    "bound.poisoned", error=type(exc).__name__
                )
                self._poison()
                raise
            finally:
                self._x = None
            tracer.count("bound.calls")
            _, stream_bytes = _record_traffic(
                tracer, self.driver.matrix, self.k,
                getattr(self.driver, "reduction", None),
            )
        labels = self._metric_labels()
        tracer.metrics.histogram("op.apply_ns", **labels).record(
            perf_counter_ns() - t0
        )
        tracer.metrics.histogram("op.traffic_bytes", **labels).record(
            stream_bytes
        )
        self.n_calls += 1
        if out is not None:
            np.copyto(out, self._y)
            return out
        return self._y

    def _poison(self) -> None:
        """Mark the operator's workspaces as possibly holding partial
        writes (failed or interrupted application)."""
        if not self._poisoned:
            self._poisoned = True
            _obs_warn("resilience.operator_poisoned")

    def close(self) -> None:
        """Release the workspaces and the format's lazy execution
        caches (``clear_caches``). Idempotent; the operator cannot be
        called afterwards. Note the format caches are shared with other
        operators bound to the same matrix — they rebuild on demand.
        Waits for any in-flight apply (same lock), so teardown never
        pulls workspaces out from under a running application."""
        with self._apply_lock:
            if self._closed:
                return
            self._closed = True
            self._tasks = []
            self._y = None
            self._x_staged = None
            with _active_tracer().span("bound.close"):
                # Pool before arenas: workers must have detached (or
                # been terminated) before the owner unlinks the
                # segments.
                if self._remote is not None:
                    self._remote.close()
                    self._remote = None
                for arena in self._arenas:
                    arena.close()
                self._arenas = []
                self.driver.matrix.clear_caches()

    def __enter__(self) -> "BoundOperator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        # A bound operator owns workspaces and pinned format caches;
        # relying on GC to release them is a leak pattern. Count it
        # (obs warning counter, visible in every trace export) and
        # raise the standard ResourceWarning.
        try:
            if not self._closed:
                _obs_warn("bound_operator.unclosed_gc")
                warnings.warn(
                    f"{type(self).__name__} garbage-collected without "
                    "close(); use close() or a with-block",
                    ResourceWarning,
                    stacklevel=2,
                )
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else f"calls={self.n_calls}"
        return (
            f"<{type(self).__name__} k={self.k} "
            f"threads={self.driver.n_threads} {state}>"
        )


class BoundSymmetricSpMV(BoundOperator):
    """Bound two-phase symmetric driver: persistent ``(p, N[, k])``
    local vectors, precompiled local/direct splits, in-place
    effective-region zeroing, and the configured reduction.

    With the ``"coloring"`` strategy the bound shape changes: no local
    vectors exist (``allocate_locals`` is all ``None``, the zero volume
    is just ``y``), the color-class schedule — built once at reduction
    construction — has its per-``k`` scatter indices precompiled at bind
    time, and the multiplication phase runs the schedule's steps with a
    barrier per step instead of one flat batch."""

    @property
    def _conflict_free(self) -> bool:
        return getattr(self.driver.reduction, "conflict_free", False)

    def _precompile(self) -> None:
        if self._conflict_free:
            # The partition kernels never run; compile the schedule's
            # multi-RHS flat indices instead.
            self.driver.reduction.schedule.precompile(self.k)
            return
        for start, end in self.driver.partitions:
            self.driver.matrix.precompile_partition(start, end, self.k)

    def _allocate_workspaces(self) -> None:
        self._locals = self.driver.reduction.allocate_locals(self.k)

    def _locals_zero_volume(self) -> int:
        return int(self.driver.reduction.zeroed_elements(self.k))

    def _build_tasks(self) -> list:
        return compile_symmetric_tasks(
            self.driver.matrix, self.driver.reduction,
            self.driver.partitions, self.k, self._y, self._locals,
            lambda: self._x,
        )

    def _run_mult(self, label: Optional[str] = None) -> None:
        if not self._conflict_free:
            super()._run_mult(label)
            return
        from .coloring import run_colored_steps

        run_colored_steps(
            self.driver.executor, self._tasks, label=label,
            zero=self._zero_workspaces, remote=self._remote,
        )

    def _zero_workspaces(self) -> None:
        self._y[...] = 0.0
        self.driver.reduction.zero_locals(self._locals)

    def _full_rezero(self) -> None:
        # Recovery cannot trust the window-restricted zeroing: clear
        # the local buffers over their full extent.
        self._y[...] = 0.0
        for buf in self._locals:
            if buf is not None:
                buf[...] = 0.0

    def _finish(self) -> None:
        self.driver.reduction.reduce(self._y, self._locals)

    def close(self) -> None:
        if not self._closed:
            self._locals = []
        super().close()

    def footprint(self, k: int = 1):
        """Working-set accounting of the bound reduction."""
        return self.driver.reduction.footprint(k)


class BoundSpMV(BoundOperator):
    """Bound row-partitioned unsymmetric driver (CSR / CSX): no
    reduction phase, rows are thread-exclusive."""

    def _precompile(self) -> None:
        self.driver.matrix.precompile(self.k)

    def _build_tasks(self) -> list:
        return compile_unsymmetric_tasks(
            self.driver.matrix, self.driver.partitions, self.k,
            self._y, lambda: self._x,
        )
