"""Long-lived worker processes over shared-memory workspaces.

:class:`ProcessPool` is the execution half of the ``processes``
backend: a fixed set of daemon workers, one duplex pipe each, spawned
once per bound operator. Every worker attaches the operator's two
shared-memory arenas (:mod:`repro.parallel.shm`), reconstructs the
driver state zero-copy, precompiles its task closures — and then the
per-call protocol is descriptors only::

    parent -> worker   ("run", batch, [tid, ...], collect)
    worker -> parent   ("done", batch, [(tid, pid, dur_ns, err), ...],
                        counters | None, metrics_snapshot | None)

``collect`` mirrors the parent's tracer enablement: when set, the
worker runs the batch under its own (process-local) enabled tracer and
ships back the *deltas* — the tracer counters the kernels bumped and a
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` of any streaming
metrics — then clears its tracer. The parent folds the counters into
its active tracer and merges the metrics snapshot (histogram merge is
associative, so worker/batch arrival order does not matter): a
``"processes"`` run reports the same counter and metric names as
``threads``/``serial``. With tracing disabled nothing is collected and
the reply carries ``None``s.

Failure containment mirrors the thread executor: the parent collects a
reply from **every** worker it dispatched to before raising, so by the
time a :class:`~repro.resilience.errors.BatchExecutionError`
propagates, no worker is still writing the shared workspaces. A dead
worker (EOF/broken pipe) is recorded as one
:class:`~repro.resilience.errors.WorkerCrashError` per assigned task
and respawned lazily before the next batch (counted on the
``resilience.worker_respawn`` warning counter).

Chaos composes: a :class:`~repro.resilience.chaos.ChaosPlan` in the
:class:`WorkerSpec` is applied *worker-side* (raise/delay faults; the
plan's integer-arithmetic derivation is process-independent), while
the parent perturbs dispatch order from the same plan.
"""

from __future__ import annotations

import os
import pickle
import threading
import traceback
import weakref
from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Optional, Sequence

from ..obs.tracer import (
    Tracer,
    active as _active_tracer,
    set_active as _set_active,
    warn as _obs_warn,
)
from ..resilience.chaos import ChaosPlan
from ..resilience.errors import (
    BatchExecutionError,
    RemoteTaskError,
    TaskFailure,
    WorkerCrashError,
)
from . import shm as _shm

__all__ = ["WorkerSpec", "ProcessPool"]

#: Seconds a worker gets to exit after a "stop" message before being
#: terminated outright.
_JOIN_TIMEOUT = 2.0


@dataclass
class WorkerSpec:
    """Everything a worker needs to rebuild its task list — all
    picklable, no arrays (those live in the named arenas).

    ``kind`` selects the compile path: ``"sym"`` (two-phase symmetric
    driver, with reduction and local buffers) or ``"unsym"`` (row-
    partitioned CSR/CSX driver). Workspace references are ``(offset,
    shape)`` pairs into the workspace arena; ``locals_refs`` holds
    ``None`` where a thread writes directly and owns no local buffer.
    ``untrack`` stays False for pool workers — they share the parent's
    resource tracker regardless of start method (see
    :mod:`repro.parallel.shm`).
    """

    kind: str
    payload: bytes
    table: list
    data_name: str
    ws_name: str
    x_ref: tuple
    y_ref: tuple
    locals_refs: list = field(default_factory=list)
    k: Optional[int] = None
    plan: Optional[ChaosPlan] = None
    untrack: bool = False


def _portable_exc(exc: BaseException) -> BaseException:
    """The exception itself when it survives a pickle round-trip, else
    a :class:`RemoteTaskError` carrying its type, message and
    traceback text."""
    try:
        clone = pickle.loads(pickle.dumps(exc))
        if type(clone) is type(exc):
            return exc
    except Exception:
        pass
    return RemoteTaskError(
        type(exc).__name__,
        str(exc),
        "".join(traceback.format_exception(exc)),
    )


def _build_tasks(spec: WorkerSpec, ws: "_shm.SharedArena", x, y) -> list:
    """Worker-side task compilation through the same compile functions
    the parent's bound operator uses — one code path, two processes."""
    from .bound import compile_symmetric_tasks, compile_unsymmetric_tasks

    data = _shm.SharedArena.attach(spec.data_name, untrack=spec.untrack)
    matrix, partitions, reduction = _shm.unpack_from_arena(
        data, spec.payload, spec.table
    )
    if spec.kind == "sym":
        locals_ = [
            ws.view(*ref) if ref is not None else None
            for ref in spec.locals_refs
        ]
        if getattr(reduction, "conflict_free", False):
            # The color-class schedule rode into the data arena with the
            # reduction; its tasks replace the partition kernels. The
            # parent dispatches *global* (step-major) task ids, so the
            # barrier-separated steps flatten into one indexable list.
            reduction.schedule.precompile(spec.k)
            steps = compile_symmetric_tasks(
                matrix, reduction, partitions, spec.k, y, locals_,
                lambda: x,
            )
            tasks = [task for step in steps for task in step]
        else:
            for start, end in partitions:
                matrix.precompile_partition(start, end, spec.k)
            tasks = compile_symmetric_tasks(
                matrix, reduction, partitions, spec.k, y, locals_, lambda: x
            )
    else:
        if hasattr(matrix, "precompile"):
            matrix.precompile(spec.k)
        tasks = compile_unsymmetric_tasks(
            matrix, partitions, spec.k, y, lambda: x
        )
    return tasks, data


def _worker_main(conn, spec: WorkerSpec) -> None:
    """Worker entry point: attach arenas once, then serve batches until
    "stop" or EOF (parent death)."""
    pid = os.getpid()
    data = ws = None
    tasks = x = y = None
    wtracer = None
    try:
        try:
            ws = _shm.SharedArena.attach(spec.ws_name, untrack=spec.untrack)
            x = ws.view(*spec.x_ref)
            y = ws.view(*spec.y_ref)
            tasks, data = _build_tasks(spec, ws, x, y)
        except BaseException as exc:  # noqa: BLE001 - reported to parent
            try:
                conn.send(("init_error", pid, _portable_exc(exc)))
            except Exception:
                pass
            return
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "stop":
                break
            _, batch, tids, collect = msg
            prev_tracer = None
            if collect:
                # Process-local collection tracer, created on first
                # collecting batch and reused (cleared per batch).
                if wtracer is None:
                    wtracer = Tracer()
                prev_tracer = _set_active(wtracer)
            results = []
            try:
                for tid in tids:
                    task = tasks[tid]
                    if spec.plan is not None:
                        task = spec.plan.wrap(batch, tid, task)
                    err = None
                    t0 = perf_counter_ns()
                    try:
                        task()
                    except BaseException as exc:  # noqa: BLE001
                        err = _portable_exc(exc)
                    finally:
                        # Loop locals outlive the loop; a lingering
                        # closure reference would pin the arena views
                        # at teardown.
                        task = None
                    results.append(
                        (tid, pid, perf_counter_ns() - t0, err)
                    )
            finally:
                if collect:
                    _set_active(prev_tracer)
            if collect:
                counters = wtracer.counters()
                msnap = wtracer.metrics.snapshot()
                wtracer.clear()
            else:
                counters = msnap = None
            try:
                conn.send(("done", batch, results, counters, msnap))
            except (BrokenPipeError, OSError):
                break
    finally:
        # Detach-only close: the parent owns (and unlinks) the arenas.
        # The task closures (and through them the zero-copy matrix
        # reconstruction) hold views into the arena buffers — drop them
        # and collect first, so detaching does not leave an exported-
        # pointer mmap for the interpreter-exit __del__ to trip over.
        tasks = x = y = None
        import gc

        gc.collect()
        for arena in (data, ws):
            if arena is not None:
                arena.close()
        try:
            conn.close()
        except Exception:
            pass


def _shutdown(procs: list, conns: list) -> None:
    """Best-effort pool teardown (close path and GC finalizer)."""
    for conn in conns:
        if conn is None:
            continue
        try:
            conn.send(("stop",))
        except Exception:
            pass
    for proc in procs:
        if proc is None:
            continue
        proc.join(timeout=_JOIN_TIMEOUT)
        if proc.is_alive():  # pragma: no cover - stuck worker
            proc.terminate()
            proc.join(timeout=_JOIN_TIMEOUT)
    for conn in conns:
        if conn is None:
            continue
        try:
            conn.close()
        except Exception:
            pass
    procs.clear()
    conns.clear()


class ProcessPool:
    """Fixed-size pool of long-lived workers bound to one operator.

    Parameters
    ----------
    spec : WorkerSpec
        Shipped to every worker at spin-up (arenas are attached once).
    n_workers : int
        Worker processes; tasks are assigned round-robin by
        ``tid % n_workers``.
    """

    def __init__(self, spec: WorkerSpec, n_workers: int):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        import multiprocessing

        self.spec = spec
        self.n_workers = n_workers
        self.start_method = _shm.start_method()
        self._ctx = multiprocessing.get_context(self.start_method)
        self._procs: list = [None] * n_workers
        self._conns: list = [None] * n_workers
        self._closed = False
        # One batch in flight at a time: the per-worker pipes carry a
        # strict request-reply protocol, so interleaved run() calls
        # from two threads would cross-read each other's replies.
        self._dispatch_lock = threading.Lock()
        for w in range(n_workers):
            self._spawn(w)
        self._finalizer = weakref.finalize(
            self, _shutdown, self._procs, self._conns
        )

    def _spawn(self, w: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.spec),
            daemon=True,
            name=f"repro-worker-{w}",
        )
        proc.start()
        # The parent's copy of the child end must die here: worker
        # death is detected as EOF on the pipe, which needs the worker
        # to be the *only* holder of its end.
        child_conn.close()
        self._procs[w] = proc
        self._conns[w] = parent_conn

    def worker_pids(self) -> list:
        return [p.pid for p in self._procs if p is not None]

    def _mark_dead(self, w: int) -> Optional[int]:
        proc = self._procs[w]
        pid = proc.pid if proc is not None else None
        if self._conns[w] is not None:
            try:
                self._conns[w].close()
            except Exception:
                pass
        if proc is not None:
            proc.join(timeout=_JOIN_TIMEOUT)
        self._procs[w] = None
        self._conns[w] = None
        return pid

    def _ensure_workers(self) -> None:
        """Respawn any dead worker before dispatching a batch (lazy
        recovery after a crash; counted per respawn)."""
        for w in range(self.n_workers):
            proc = self._procs[w]
            if proc is not None and proc.is_alive():
                continue
            if proc is not None:
                self._mark_dead(w)
            _obs_warn("resilience.worker_respawn")
            self._spawn(w)

    def run(
        self,
        batch: int,
        n_tasks: int,
        order: Sequence[int],
        label: str = "task",
    ) -> None:
        """Dispatch one batch and wait for every worker's reply.

        Raises :class:`BatchExecutionError` aggregating worker-side
        task failures and :class:`WorkerCrashError` records for tasks
        assigned to a worker that died mid-batch. By construction the
        call only returns or raises after all surviving workers have
        replied — nothing is still writing the shared workspaces.

        Serialized on an internal lock (the pipes speak strict
        request-reply; defense in depth under the bound operator's own
        apply serialization).
        """
        with self._dispatch_lock:
            self._run_locked(batch, n_tasks, order, label)

    def _run_locked(
        self,
        batch: int,
        n_tasks: int,
        order: Sequence[int],
        label: str = "task",
    ) -> None:
        if self._closed:
            raise RuntimeError("process pool is closed")
        self._ensure_workers()
        tracer = _active_tracer()
        collect = tracer.enabled
        assigned: dict[int, list[int]] = {}
        for tid in order:
            assigned.setdefault(tid % self.n_workers, []).append(tid)
        failures: list[TaskFailure] = []
        sent: dict[int, list[int]] = {}
        for w, tids in assigned.items():
            try:
                self._conns[w].send(("run", batch, tids, collect))
                sent[w] = tids
            except (BrokenPipeError, OSError):
                pid = self._mark_dead(w)
                failures.extend(
                    TaskFailure(tid, WorkerCrashError(tid, pid))
                    for tid in tids
                )
        for w, tids in sent.items():
            try:
                msg = self._conns[w].recv()
            except (EOFError, OSError):
                pid = self._mark_dead(w)
                failures.extend(
                    TaskFailure(tid, WorkerCrashError(tid, pid))
                    for tid in tids
                )
                continue
            if msg[0] != "done":
                # Worker failed to attach/compile; it already exited.
                _, pid, err = msg
                self._mark_dead(w)
                failures.extend(TaskFailure(tid, err) for tid in tids)
                continue
            _, _, results, counters, msnap = msg
            for tid, pid, dur_ns, err in results:
                if tracer.enabled:
                    tracer.record_span(label, dur_ns, tid=tid, pid=pid)
                    tracer.metrics.histogram(
                        "task.latency_ns", label=label,
                        backend="processes",
                    ).record(dur_ns)
                if err is not None:
                    failures.append(TaskFailure(tid, err))
            # Fold the worker's per-batch deltas into the parent: the
            # counters kernels bumped worker-side (they would otherwise
            # vanish — only spans are re-emitted above) and any
            # streaming metrics recorded in the worker.
            if tracer.enabled and counters:
                for cname, value in counters.items():
                    tracer.count(cname, value)
            if tracer.enabled and msnap:
                tracer.metrics.merge_snapshot(msnap)
        if failures:
            _obs_warn("resilience.batch_failure")
            raise BatchExecutionError(
                label, batch, failures, n_tasks=n_tasks
            )

    def close(self) -> None:
        """Stop and join every worker; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._finalizer.detach() is not None:
            _shutdown(self._procs, self._conns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        alive = sum(
            1 for p in self._procs if p is not None and p.is_alive()
        )
        return (
            f"<ProcessPool {alive}/{self.n_workers} workers "
            f"({self.start_method})>"
        )
