"""Multithreaded symmetric CSB SpM×V following Buluç et al. [27].

Each thread owns a range of block rows. Direct row writes and *near*
transposed writes (within the three innermost block diagonals) go to
the shared vector / per-thread local buffers; transposed writes from
farther blocks use atomic updates on the shared output. The reduction
phase is therefore bounded (three vector additions per thread), but the
atomic count grows with the matrix bandwidth — the trade-off the paper
contrasts its indexing scheme against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..formats.csb import CSBSymMatrix
from ..machine.platforms import Platform
from ..machine.roofline import smt_compute_factor
from .executor import Executor
from .partition import validate_partitions

__all__ = ["ParallelCSBSymSpMV", "predict_csb_sym_time"]


@dataclass
class CSBRunStats:
    """Instrumentation of one parallel CSB-Sym execution."""

    atomic_updates: int
    buffered_updates: int
    n_threads: int


class ParallelCSBSymSpMV:
    """[27]'s two-phase kernel bound to one (matrix, partitions) pair."""

    def __init__(
        self,
        matrix: CSBSymMatrix,
        partitions: Optional[Sequence[tuple[int, int]]] = None,
        n_threads: int = 1,
        executor: Optional[Executor] = None,
    ):
        self.matrix = matrix
        if partitions is None:
            partitions = matrix.block_row_partitions(n_threads)
        validate_partitions(partitions, matrix.n_rows)
        self.partitions = [(int(s), int(e)) for s, e in partitions]
        self.executor = executor or Executor("serial")
        self.last_stats: Optional[CSBRunStats] = None

    @property
    def n_threads(self) -> int:
        return len(self.partitions)

    def __call__(
        self, x: np.ndarray, y: Optional[np.ndarray] = None
    ) -> np.ndarray:
        m = self.matrix
        x = np.asarray(x, dtype=np.float64)
        if y is None:
            y = np.zeros(m.n_rows, dtype=np.float64)
        else:
            y[:] = 0.0

        n_bands = m.NEAR_DIAGONALS + 1
        buffers = [
            np.zeros((n_bands, m.n_rows), dtype=np.float64)
            for _ in self.partitions
        ]
        atomics = [0] * self.n_threads

        def make_task(tid: int):
            start, end = self.partitions[tid]

            def task() -> None:
                atomics[tid] = m.spmv_partition_csb(
                    x, y, buffers[tid], start, end
                )

            return task

        self.executor.run_batch(
            [make_task(t) for t in range(self.n_threads)]
        )
        buffered = 0
        for buf in buffers:
            for band in buf:
                y += band
            buffered += int(np.count_nonzero(buf))
        self.last_stats = CSBRunStats(
            atomic_updates=sum(atomics),
            buffered_updates=buffered,
            n_threads=self.n_threads,
        )
        return y


def predict_csb_sym_time(
    matrix: CSBSymMatrix,
    partitions: Sequence[tuple[int, int]],
    platform: Platform,
    *,
    atomic_cycles: float = 40.0,
    cycles_per_element: float = 9.5,
    machine_scale: float = 1.0,
) -> float:
    """Roofline time for the CSB-Sym kernel.

    Accounts the same traffic classes as
    :func:`repro.machine.perfmodel.predict_spmv` — matrix stream,
    cache-modelled input-vector gathers, scattered transposed writes —
    plus [27]'s specific costs: an ``atomic_cycles`` serialized update
    and a cache-line transfer per far-block transposed element, and the
    fixed three-buffer reduction.
    """
    from ..machine.cache import x_traffic_bytes
    from ..machine.costmodel import DEFAULT_COST_MODEL as COST

    p = len(partitions)
    clock = platform.clock_ghz * 1e9
    smt = smt_compute_factor(platform, p)
    atomic = matrix.count_atomic_updates(partitions)
    elems = matrix.stored_entries
    compute = cycles_per_element * elems / p + atomic_cycles * atomic / p
    t_compute = compute * smt / clock

    # x gathers and transposed scatter, on the block-major stream.
    if matrix.blocks:
        col_stream = np.concatenate(
            [
                blk.bcol * matrix.beta + blk.lcols.astype(np.int64)
                for blk in matrix.blocks
            ]
        )
    else:
        col_stream = np.zeros(0, dtype=np.int64)
    cache = platform.cache_bytes_per_thread(p) * machine_scale
    x_bytes = x_traffic_bytes(col_stream, cache, COST.x_cache_share)
    scatter_bytes = COST.scatter_write_factor * x_traffic_bytes(
        col_stream, cache, COST.y_cache_share
    )

    n_bands = matrix.NEAR_DIAGONALS + 1
    reduce_bytes = 8.0 * n_bands * matrix.n_rows * min(p, 3)
    bw = platform.bandwidth_gbps(p) * 1e9
    t_memory = (
        matrix.size_bytes() + x_bytes + scatter_bytes + reduce_bytes
        + 8.0 * matrix.n_rows
    ) / bw
    # Atomics also serialize on the bus: count their line transfers.
    t_atomic_mem = atomic * 64.0 / bw
    return max(t_compute, t_memory + t_atomic_mem)
