"""Task execution backends (thread pools and process pools).

The library needs to run "one task per thread" twice per SpM×V (the
multiplication phase and the reduction phase). Four backends exist:

* ``serial`` (default) — tasks run sequentially in deterministic order.
  Correctness and the traffic instrumentation are identical to a
  parallel run (the algorithms are data-race-free by construction);
  this is the reproducible backend the experiments use, with timing
  supplied by the machine model (see DESIGN.md's hardware substitution).
* ``threads`` — a real ``ThreadPoolExecutor``. NumPy releases the GIL
  inside its kernels, so this demonstrates genuine concurrency, but
  wall-clock scaling on the host says nothing about the paper's
  platforms and is only used by the sanity benchmarks.
* ``processes`` — GIL-free true parallelism over
  ``multiprocessing.shared_memory`` workspaces. The backend only
  engages through a *bound* operator (whose ``bind`` builds the
  segments and the long-lived worker pool; see DESIGN.md §4g): plain
  closures cannot cross a process boundary, so an unbound driver on
  this executor degrades to the thread pool with a one-time
  ``executor.processes_inline`` warning. A ``plan=`` composes chaos
  injection with the process backend — dispatch order is perturbed in
  the parent, raise/delay faults fire inside the workers.
* ``chaos`` — the ``threads`` backend with a deterministic
  :class:`~repro.resilience.chaos.ChaosPlan` injecting per-task
  exceptions, delays and submission reorders, so every failure path of
  the containment machinery is reachable in tests and from
  ``repro fuzz --chaos``.

Failure containment (all parallel backends): when any task raises,
``run_batch`` first awaits or cancels **every** sibling future — so no
task can keep mutating shared output buffers after the call returns —
then raises one :class:`~repro.resilience.errors.BatchExecutionError`
aggregating every task's exception with its ``tid`` and the batch
label. An optional ``fallback="serial"`` mode degrades gracefully: the
failed batch is retried once serially (after the caller-supplied
``reset`` re-zeroes any partially-written workspaces), counted on the
``resilience.serial_fallback`` warning counter.
"""

from __future__ import annotations

import threading
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from time import perf_counter_ns
from typing import Callable, Optional, Sequence

from ..obs.tracer import active as _active_tracer, warn as _obs_warn
from ..resilience.chaos import ChaosPlan
from ..resilience.errors import BatchExecutionError, TaskFailure
from .shm import shared_memory_available as _shm_available

__all__ = ["Executor"]

_MODES = ("serial", "threads", "processes", "chaos")

#: Modes that accept a ``plan=`` (fault injection / scheduling chaos).
_PLAN_MODES = ("chaos", "processes")


class Executor:
    """Runs a batch of thread tasks with a chosen backend.

    Parameters
    ----------
    mode : {"serial", "threads", "processes", "chaos"}
    max_workers : int, optional
        Worker count for the pooled backends (defaults to the task
        count of each batch).
    plan : ChaosPlan, optional
        Fault plan for the ``chaos`` backend (default: a delay/reorder
        only ``ChaosPlan(seed=0)`` — scheduling chaos, no exceptions)
        or the ``processes`` backend (default: no plan; when given,
        raise/delay faults fire inside the workers and the dispatch
        order is perturbed in the parent). Rejected for other modes.
    fallback : {None, "serial"}
        ``"serial"`` retries a failed batch once, serially, after
        re-zeroing workspaces through the caller's ``reset`` hook.

    Construction is fail-fast: an unknown mode, an unusable backend
    (``processes`` without working shared memory) or a misplaced
    ``plan=`` raises a typed ``ValueError`` here, not at the first
    ``run_batch``.
    """

    def __init__(
        self,
        mode: str = "serial",
        max_workers: Optional[int] = None,
        *,
        plan: Optional[ChaosPlan] = None,
        fallback: Optional[str] = None,
    ):
        if mode not in _MODES:
            raise ValueError(
                f"unknown executor mode {mode!r}; choose from {_MODES}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if plan is not None and mode not in _PLAN_MODES:
            raise ValueError(
                f"plan= is only meaningful with mode in {_PLAN_MODES}"
            )
        if fallback not in (None, "serial"):
            raise ValueError(f"unknown fallback {fallback!r}")
        if mode == "processes" and not _shm_available():
            raise ValueError(
                "executor mode 'processes' needs working "
                "multiprocessing.shared_memory, which this platform "
                "does not provide; use 'threads' or 'serial'"
            )
        self.mode = mode
        self.max_workers = max_workers
        if mode == "chaos":
            self.plan = plan if plan is not None else ChaosPlan(0)
        else:
            self.plan = plan  # processes: optional; others: None
        self.fallback = fallback
        self.n_batches = 0
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_size = 0
        self._warned_inline = False
        # Guards the batch-id counter and the pool lifecycle. Two
        # concurrent run_batch callers must never observe the same batch
        # id (it seeds chaos-plan fault derivation and trace/metric
        # attribution), and a caller must never submit to a pool another
        # caller is concurrently replacing through _ensure_pool.
        self._lock = threading.Lock()

    def run_batch(
        self,
        tasks: Sequence[Callable[[], None]],
        label: Optional[str] = None,
        reset: Optional[Callable[[], None]] = None,
        remote=None,
        tid_base: int = 0,
    ) -> Optional[int]:
        """Execute all tasks; returns when every task has finished.

        Returns the unique batch id assigned to this execution (``None``
        for an empty task list). Ids are allocated under the executor
        lock, so concurrent callers observe distinct, gap-free ids.

        Tasks must be mutually data-race-free (they are: each writes
        disjoint array regions or thread-private buffers).

        When a tracer is active, each task runs inside a span named
        ``label`` (default ``"task"``) with its batch index as the
        ``tid`` attribute — recorded on the executing thread, so the
        Chrome export shows the real per-thread timeline; a task that
        raises additionally records a ``task.error`` instant event.
        Per-task and whole-batch durations additionally stream into the
        tracer's ``task.latency_ns`` / ``batch.latency_ns`` histograms,
        labelled with the batch label and the executor mode.
        The process backend records the equivalent spans from worker-
        reported durations, attributed with the worker ``pid``.

        ``remote`` is the ``processes`` dispatch handle — a
        :class:`~repro.parallel.procpool.ProcessPool` a bound operator
        passes in, whose workers execute the *shared-memory* mirror of
        ``tasks`` by index. ``tasks`` itself stays authoritative for
        the serial fallback path, which runs the parent-side closures
        over the very same shared arrays. A ``processes`` executor
        called without ``remote`` (an unbound driver) degrades to the
        thread pool and counts ``executor.processes_inline`` once.

        On failure every sibling future is awaited or cancelled first,
        then a single :class:`BatchExecutionError` aggregates all task
        exceptions — by the time it propagates, nothing from this batch
        is still writing. ``reset`` is only invoked before the
        ``fallback="serial"`` retry, to restore partially-written
        workspaces to their pre-batch state.

        ``tid_base`` offsets the task ids this batch reports (trace
        spans, chaos-plan derivation, remote dispatch). The colored
        schedule issues one ``run_batch`` per barrier-separated step and
        passes the cumulative task offset, so a process pool indexes the
        workers' *flat* step-major task list and chaos faults stay
        deterministic per global task, not per step-local position.
        """
        if not tasks:
            return None
        tasks = list(tasks)
        tracer = _active_tracer()
        name = label or "task"
        with self._lock:
            batch = self.n_batches
            self.n_batches += 1

        t0 = perf_counter_ns() if tracer.enabled else 0

        def record_batch() -> None:
            if tracer.enabled:
                tracer.metrics.histogram(
                    "batch.latency_ns", label=name, backend=self.mode
                ).record(perf_counter_ns() - t0)

        def instrumented(task_list):
            if not tracer.enabled:
                return task_list
            return [
                self._traced(tracer, name, tid_base + i, task, self.mode)
                for i, task in enumerate(task_list)
            ]

        if self.mode == "serial":
            for task in instrumented(tasks):
                task()
            record_batch()
            return batch

        if self.mode == "chaos":
            exec_tasks = [
                self.plan.wrap(batch, tid_base + i, task)
                for i, task in enumerate(tasks)
            ]
            order = self.plan.submission_order(batch, len(tasks))
        elif self.plan is not None:  # processes + chaos plan
            exec_tasks = tasks
            order = self.plan.submission_order(batch, len(tasks))
        else:
            exec_tasks = tasks
            order = list(range(len(tasks)))

        try:
            if self.mode == "processes" and remote is not None:
                remote.run(
                    batch,
                    len(tasks),
                    [tid_base + i for i in order],
                    label=name,
                )
            else:
                if self.mode == "processes" and not self._warned_inline:
                    # Closures cannot cross a process boundary; only
                    # bound operators carry the shared-memory state the
                    # workers need. Degrade loudly, once.
                    self._warned_inline = True
                    _obs_warn("executor.processes_inline")
                self._run_pooled(
                    instrumented(exec_tasks), order, name, batch
                )
        except BatchExecutionError:
            if self.fallback != "serial":
                raise
            # Graceful degradation: one warning-counted serial retry of
            # the *original* tasks (no chaos wrapping — an injected
            # fault is a backend property, not a task property).
            _obs_warn("resilience.serial_fallback")
            if tracer.enabled:
                tracer.event("batch.fallback", label=name, batch=batch)
            if reset is not None:
                reset()
            tid = 0
            try:
                for tid, task in enumerate(instrumented(tasks)):
                    task()
            except BaseException as exc:
                raise BatchExecutionError(
                    name, batch, [TaskFailure(tid_base + tid, exc)],
                    n_tasks=len(tasks),
                ) from exc
        record_batch()
        return batch

    @staticmethod
    def _traced(tracer, name: str, tid: int, task, mode: str):
        def run() -> None:
            start = perf_counter_ns()
            with tracer.span(name, tid=tid):
                try:
                    task()
                except BaseException as exc:
                    tracer.event(
                        "task.error", tid=tid, error=type(exc).__name__
                    )
                    raise
            # Resolved here, on the executing thread, so the histogram
            # lands in that thread's shard (no cross-thread mutation).
            tracer.metrics.histogram(
                "task.latency_ns", label=name, backend=mode
            ).record(perf_counter_ns() - start)

        return run

    def _run_pooled(
        self, exec_tasks: list, order: list, name: str, batch: int
    ) -> None:
        # Acquire-and-submit atomically: _ensure_pool may replace the
        # pool (growth shuts the old one down), and a concurrent caller
        # submitting to the replaced pool would hit "cannot schedule new
        # futures after shutdown". Only submission is serialized; the
        # wait below runs lock-free.
        with self._lock:
            pool = self._ensure_pool(len(exec_tasks))
            futures = {pool.submit(exec_tasks[i]): i for i in order}
        done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
        if not any(f.exception() is not None for f in done):
            return
        # Containment: a failure must not leave siblings running —
        # cancel whatever has not started, then await the rest, so no
        # future is still mutating shared output when we raise.
        for f in not_done:
            f.cancel()
        if not_done:
            wait(not_done)
        failures = []
        n_cancelled = 0
        for f, tid in futures.items():
            if f.cancelled():
                n_cancelled += 1
                continue
            exc = f.exception()
            if exc is not None:
                failures.append(TaskFailure(tid, exc))
        _obs_warn("resilience.batch_failure")
        raise BatchExecutionError(
            name, batch, failures,
            n_tasks=len(exec_tasks), n_cancelled=n_cancelled,
        )

    def _ensure_pool(self, n_tasks: int) -> ThreadPoolExecutor:
        """Pool sized for the *current* batch: with no explicit
        ``max_workers`` the pool grows when a later batch brings more
        tasks than any earlier one (a pool sized by the first batch
        would silently serialize the excess tasks forever).

        Callers must hold ``self._lock``: growth replaces the pool, and
        the acquire-submit window of every concurrent batch has to see a
        consistent pool reference."""
        want = self.max_workers if self.max_workers is not None else n_tasks
        if self._pool is not None and want > self._pool_size:
            # wait=True: every worker of the replaced pool has exited
            # before the grown pool takes over — no orphaned threads
            # holding references to earlier batches' buffers.
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            self._pool_size = want
            self._pool = ThreadPoolExecutor(max_workers=want)
        return self._pool

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
            self._pool_size = 0
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
