"""Thread-task execution backends.

The library needs to run "one task per thread" twice per SpM×V (the
multiplication phase and the reduction phase). Two backends exist:

* ``serial`` (default) — tasks run sequentially in deterministic order.
  Correctness and the traffic instrumentation are identical to a
  parallel run (the algorithms are data-race-free by construction);
  this is the reproducible backend the experiments use, with timing
  supplied by the machine model (see DESIGN.md's hardware substitution).
* ``threads`` — a real ``ThreadPoolExecutor``. NumPy releases the GIL
  inside its kernels, so this demonstrates genuine concurrency, but
  wall-clock scaling on the host says nothing about the paper's
  platforms and is only used by the sanity benchmarks.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional, Sequence

from ..obs.tracer import active as _active_tracer

__all__ = ["Executor"]


class Executor:
    """Runs a batch of thread tasks with a chosen backend.

    Parameters
    ----------
    mode : {"serial", "threads"}
    max_workers : int, optional
        Worker count for the ``threads`` backend (defaults to the task
        count of each batch).
    """

    def __init__(self, mode: str = "serial", max_workers: Optional[int] = None):
        if mode not in ("serial", "threads"):
            raise ValueError(f"unknown executor mode {mode!r}")
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.mode = mode
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_size = 0

    def run_batch(
        self,
        tasks: Sequence[Callable[[], None]],
        label: Optional[str] = None,
    ) -> None:
        """Execute all tasks; returns when every task has finished.

        Tasks must be mutually data-race-free (they are: each writes
        disjoint array regions or thread-private buffers).

        When a tracer is active, each task runs inside a span named
        ``label`` (default ``"task"``) with its batch index as the
        ``tid`` attribute — recorded on the executing thread, so the
        Chrome export shows the real per-thread timeline.
        """
        if not tasks:
            return
        tracer = _active_tracer()
        if tracer.enabled:
            name = label or "task"

            def _traced(task, i):
                def run() -> None:
                    with tracer.span(name, tid=i):
                        task()

                return run

            tasks = [_traced(task, i) for i, task in enumerate(tasks)]
        if self.mode == "serial":
            for task in tasks:
                task()
            return
        pool = self._ensure_pool(len(tasks))
        futures = [pool.submit(task) for task in tasks]
        for f in futures:
            f.result()  # propagate exceptions

    def _ensure_pool(self, n_tasks: int) -> ThreadPoolExecutor:
        """Pool sized for the *current* batch: with no explicit
        ``max_workers`` the pool grows when a later batch brings more
        tasks than any earlier one (a pool sized by the first batch
        would silently serialize the excess tasks forever)."""
        want = self.max_workers if self.max_workers is not None else n_tasks
        if self._pool is not None and want > self._pool_size:
            self._pool.shutdown()
            self._pool = None
        if self._pool is None:
            self._pool_size = want
            self._pool = ThreadPoolExecutor(max_workers=want)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_size = 0

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
