"""Thread partitioning, local-vector reduction methods and the
multithreaded SpM×V orchestration of Section III."""

from ..resilience import (
    BatchExecutionError,
    ChaosPlan,
    OperatorClosedError,
    PoisonedOperatorError,
    RemoteTaskError,
    WorkerCrashError,
)
from .bound import BoundOperator, BoundSpMV, BoundSymmetricSpMV
from .coloring import (
    ColoredSymmetricSpMV,
    ColoringSchedule,
    ColoringUnsupportedError,
    build_coloring_schedule,
    coloring_stats,
    distance2_coloring,
    predict_colored_time,
    verify_coloring,
)
from .csb_spmv import ParallelCSBSymSpMV, predict_csb_sym_time
from .executor import Executor
from .partition import (
    partition_nnz_balanced,
    partition_rows_equal,
    validate_partitions,
)
from .reduction import (
    REDUCTION_METHODS,
    ColoringReduction,
    EffectiveRangesReduction,
    IndexedReduction,
    NaiveReduction,
    ReductionFootprint,
    ReductionMethod,
    make_reduction,
)
from .shm import live_segments, shared_memory_available
from .spmv import ParallelSpMV, ParallelSymmetricSpMV

__all__ = [
    "Executor",
    "ChaosPlan",
    "BatchExecutionError",
    "PoisonedOperatorError",
    "OperatorClosedError",
    "WorkerCrashError",
    "RemoteTaskError",
    "live_segments",
    "shared_memory_available",
    "partition_nnz_balanced",
    "partition_rows_equal",
    "validate_partitions",
    "REDUCTION_METHODS",
    "NaiveReduction",
    "EffectiveRangesReduction",
    "IndexedReduction",
    "ColoringReduction",
    "ReductionMethod",
    "ReductionFootprint",
    "make_reduction",
    "ParallelSpMV",
    "ParallelSymmetricSpMV",
    "BoundOperator",
    "BoundSymmetricSpMV",
    "BoundSpMV",
    "ColoredSymmetricSpMV",
    "ColoringSchedule",
    "ColoringUnsupportedError",
    "build_coloring_schedule",
    "distance2_coloring",
    "verify_coloring",
    "coloring_stats",
    "predict_colored_time",
    "ParallelCSBSymSpMV",
    "predict_csb_sym_time",
]
