"""Row-wise thread partitioning (paper Fig. 3a).

The matrix is split row-wise, either into equal row counts or — the
scheme all the paper's experiments use — into partitions with an
approximately equal number of non-zero elements, so the multiplication
work is balanced.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..formats.validate import PartitionError, ShapeError, check_partitions

__all__ = [
    "partition_rows_equal",
    "partition_nnz_balanced",
    "partition_bounds_to_starts",
    "validate_partitions",
]


def partition_rows_equal(n_rows: int, n_threads: int) -> list[tuple[int, int]]:
    """Split ``[0, n_rows)`` into ``n_threads`` near-equal row ranges."""
    if n_threads < 1:
        raise PartitionError("need at least one thread")
    if n_rows < 0:
        raise PartitionError("negative row count")
    bounds = np.linspace(0, n_rows, n_threads + 1).round().astype(np.int64)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(n_threads)]


def partition_nnz_balanced(
    row_weights: np.ndarray, n_threads: int
) -> list[tuple[int, int]]:
    """Split rows so each partition carries ≈ equal total weight.

    ``row_weights`` is typically the per-row non-zero count of the
    *expanded* matrix (so symmetric formats balance their real work,
    including transposed contributions).

    Each split point is placed at the ``k/p`` quantile of the
    cumulative weight, choosing between the two candidate cuts around
    the crossing row by whichever prefix weight lands *closer* to the
    quantile.  When the cumulative weight hits a quantile exactly, the
    cut therefore falls exactly on it (the prefix carries precisely
    ``k/p`` of the total).  The previous ``searchsorted + 1`` rule
    always assigned the crossing row to the left partition, overloading
    it whenever excluding a heavy crossing row balances better.
    Partitions may be empty for very skewed matrices, which downstream
    code must tolerate.
    """
    if n_threads < 1:
        raise PartitionError("need at least one thread")
    weights = np.asarray(row_weights, dtype=np.float64)
    if weights.ndim != 1:
        raise ShapeError("row_weights must be 1-D")
    if weights.size and weights.min() < 0:
        raise PartitionError("row weights must be non-negative")
    n_rows = weights.size
    if n_rows == 0:
        return [(0, 0)] * n_threads
    cum = np.cumsum(weights)
    total = cum[-1]
    if total == 0:
        return partition_rows_equal(n_rows, n_threads)
    targets = total * np.arange(1, n_threads) / n_threads
    idx = np.minimum(
        np.searchsorted(cum, targets, side="left"), n_rows - 1
    )
    # Candidate cuts: idx (crossing row goes right, prefix = cum[idx-1])
    # vs idx + 1 (crossing row goes left, prefix = cum[idx]).
    prev = np.where(idx > 0, cum[idx - 1], 0.0)
    include = np.abs(cum[idx] - targets) <= np.abs(prev - targets)
    cuts = idx + include
    bounds = np.concatenate(([0], np.minimum(cuts, n_rows), [n_rows]))
    bounds = np.maximum.accumulate(bounds)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(n_threads)]


def partition_bounds_to_starts(
    partitions: Sequence[tuple[int, int]]
) -> np.ndarray:
    """The ``start[i]`` array of Alg. 3 from partition bounds."""
    return np.asarray([s for s, _ in partitions], dtype=np.int64)


def validate_partitions(
    partitions: Sequence[tuple[int, int]], n_rows: int
) -> None:
    """Raise :class:`~repro.formats.validate.PartitionError` unless the
    partitions tile ``[0, n_rows)`` contiguously."""
    check_partitions(partitions, n_rows)
