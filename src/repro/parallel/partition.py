"""Row-wise thread partitioning (paper Fig. 3a).

The matrix is split row-wise, either into equal row counts or — the
scheme all the paper's experiments use — into partitions with an
approximately equal number of non-zero elements, so the multiplication
work is balanced.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "partition_rows_equal",
    "partition_nnz_balanced",
    "partition_bounds_to_starts",
    "validate_partitions",
]


def partition_rows_equal(n_rows: int, n_threads: int) -> list[tuple[int, int]]:
    """Split ``[0, n_rows)`` into ``n_threads`` near-equal row ranges."""
    if n_threads < 1:
        raise ValueError("need at least one thread")
    if n_rows < 0:
        raise ValueError("negative row count")
    bounds = np.linspace(0, n_rows, n_threads + 1).round().astype(np.int64)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(n_threads)]


def partition_nnz_balanced(
    row_weights: np.ndarray, n_threads: int
) -> list[tuple[int, int]]:
    """Split rows so each partition carries ≈ equal total weight.

    ``row_weights`` is typically the per-row non-zero count of the
    *expanded* matrix (so symmetric formats balance their real work,
    including transposed contributions).

    The split points are the positions where the cumulative weight
    crosses each ``k/p`` quantile; partitions may be empty for very
    skewed matrices, which downstream code must tolerate.
    """
    if n_threads < 1:
        raise ValueError("need at least one thread")
    weights = np.asarray(row_weights, dtype=np.float64)
    if weights.ndim != 1:
        raise ValueError("row_weights must be 1-D")
    if weights.size and weights.min() < 0:
        raise ValueError("row weights must be non-negative")
    n_rows = weights.size
    if n_rows == 0:
        return [(0, 0)] * n_threads
    cum = np.cumsum(weights)
    total = cum[-1]
    if total == 0:
        return partition_rows_equal(n_rows, n_threads)
    targets = total * np.arange(1, n_threads) / n_threads
    cuts = np.searchsorted(cum, targets, side="left") + 1
    bounds = np.concatenate(([0], np.minimum(cuts, n_rows), [n_rows]))
    bounds = np.maximum.accumulate(bounds)
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(n_threads)]


def partition_bounds_to_starts(
    partitions: Sequence[tuple[int, int]]
) -> np.ndarray:
    """The ``start[i]`` array of Alg. 3 from partition bounds."""
    return np.asarray([s for s, _ in partitions], dtype=np.int64)


def validate_partitions(
    partitions: Sequence[tuple[int, int]], n_rows: int
) -> None:
    """Raise unless the partitions tile ``[0, n_rows)`` contiguously."""
    prev = 0
    for start, end in partitions:
        if start != prev:
            raise ValueError(
                f"partition gap/overlap at row {prev}: got start {start}"
            )
        if end < start:
            raise ValueError(f"negative partition ({start}, {end})")
        prev = end
    if prev != n_rows:
        raise ValueError(
            f"partitions end at {prev}, expected n_rows = {n_rows}"
        )
