"""Conflict-free (colored) symmetric SpM×V scheduling.

Batista et al. (and the RACE paper in PAPERS.md) avoid the reduction
phase entirely: rows are colored so that no two rows of the same color
write a common output element, and the kernel processes one color class
at a time — each class fully parallel with *direct* output writes,
classes separated by barriers.

A thread processing row ``r`` writes ``y[r]`` and ``y[c]`` for every
stored lower element ``(r, c)``; two rows conflict iff their write sets
intersect, i.e. iff they are within distance 2 in the symmetrized
adjacency graph. This module provides

- :func:`distance2_coloring` — degree-ordered (largest-first) greedy
  coloring with a vectorized neighbor-color scan,
- :func:`verify_coloring` — fast bincount-keyed validity check,
- :class:`ColoringSchedule` / :func:`build_coloring_schedule` — the
  two-level execution plan behind the ``"coloring"`` reduction strategy
  (color classes → nnz-balanced row batches, barrier between classes),
- :func:`compile_colored_steps` / :func:`run_colored_steps` — task
  compilation and barrier-stepped execution shared by the drivers, the
  bound operators and the process-pool workers,
- the original :class:`ColoredSymmetricSpMV` prototype and the
  :func:`predict_colored_time` roofline account.

The paper's observation — "the geometry of the graphs limits the
potential of this approach" — falls out naturally: the number of colors
grows with the squared degree, so dense matrices serialize into many
barrier-separated steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..formats.sss import SSSMatrix
from ..machine.platforms import Platform
from ..machine.roofline import smt_compute_factor
from .partition import partition_nnz_balanced

__all__ = [
    "distance2_coloring",
    "verify_coloring",
    "ColoringUnsupportedError",
    "ColoringSchedule",
    "build_coloring_schedule",
    "compile_colored_steps",
    "run_colored_steps",
    "ColoredSymmetricSpMV",
    "coloring_stats",
    "predict_colored_time",
    "BARRIER_CYCLES",
    "MIN_PARALLEL_CLASS_WORK",
]

#: Modeled cost of one barrier rendezvous (cycles); tens of microseconds
#: for a 24-thread pthread barrier on the paper's 2008-era SMPs.
BARRIER_CYCLES = 20_000.0

#: Color classes whose total balanced weight (diagonal + two updates per
#: stored element) falls below this are not worth fanning out: they run
#: as a single task, and consecutive such classes merge into one serial
#: step so tiny tail classes do not each pay a barrier.
MIN_PARALLEL_CLASS_WORK = 2048

#: Key spaces (``n_rows * n_colors``) up to this use the O(nnz) bincount
#: verifier; larger ones fall back to the sort-based check.
_FAST_VERIFY_KEYSPACE = 1 << 26


class ColoringUnsupportedError(ValueError):
    """The format exposes no lower-triangle CSR view to schedule from."""


def _lower_triple_of(
    matrix,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(dvalues, rowptr, colind, values)`` of the stored strictly-lower
    triangle in canonical dtypes, via the format's ``lower_triple()``
    contract (see :class:`repro.formats.base.SymmetricFormat`)."""
    getter = getattr(matrix, "lower_triple", None)
    triple = getter() if getter is not None else None
    if triple is None:
        raise ColoringUnsupportedError(
            f"{type(matrix).__name__} exposes no lower-triangle CSR view; "
            "the coloring strategy supports SSS and CSX-Sym"
        )
    dvalues, rowptr, colind, values = triple
    return (
        np.asarray(dvalues, dtype=np.float64),
        np.asarray(rowptr, dtype=np.int64),
        np.asarray(colind, dtype=np.int64),
        np.asarray(values, dtype=np.float64),
    )


def _adjacency_csr(
    n: int, rows: np.ndarray, cols: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Symmetrized adjacency (indptr, indices) from the stored lower
    triangle's coordinates, self-loops excluded."""
    src = np.concatenate([rows, cols])
    dst = np.concatenate([cols, rows])
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
    return indptr, dst


def _span_gather(
    starts: np.ndarray, lens: np.ndarray, total: int
) -> np.ndarray:
    """Concatenated ``[arange(s, s+l) for s, l in zip(starts, lens)]``
    without a Python loop (the multi-arange trick)."""
    offsets = np.cumsum(lens) - lens
    return np.arange(total, dtype=np.int64) + np.repeat(
        starts - offsets, lens
    )


def distance2_coloring(matrix) -> np.ndarray:
    """Degree-ordered greedy distance-2 coloring of the row-conflict
    graph.

    Rows are visited largest-degree-first (ties broken by row index, so
    the result is deterministic) and each row takes the smallest color
    absent from its distance-2 neighborhood, found with a vectorized
    gather over the neighbors' adjacency spans instead of the former
    per-neighbor Python slicing. Accepts any symmetric format exposing
    ``lower_triple()`` (SSS, CSX-Sym).

    Returns an int array ``color[row]`` guaranteeing that any two rows
    within distance 2 of each other (sharing an output write) receive
    different colors.
    """
    _, rowptr, colind, _ = _lower_triple_of(matrix)
    n = rowptr.size - 1
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(rowptr))
    indptr, indices = _adjacency_csr(n, rows, colind)
    degrees = np.diff(indptr)
    visit = np.argsort(-degrees, kind="stable")
    colors = np.full(n, -1, dtype=np.int64)
    for r in visit:
        lo, hi = indptr[r], indptr[r + 1]
        if hi == lo:
            colors[r] = 0  # isolated row: only writes y[r]
            continue
        neigh = indices[lo:hi]
        starts = indptr[neigh]
        lens = indptr[neigh + 1] - starts
        total = int(lens.sum())
        d2 = indices[_span_gather(starts, lens, total)]
        used = np.concatenate([colors[neigh], colors[d2]])
        used = used[used >= 0]
        if used.size == 0:
            colors[r] = 0
            continue
        # Smallest absent color via a boolean occupancy scan.
        mark = np.zeros(int(used.max()) + 2, dtype=bool)
        mark[used] = True
        colors[r] = int(np.flatnonzero(~mark)[0])
    return colors


def _write_pairs(
    n: int, rowptr: np.ndarray, colind: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(writer, target) pairs of every output write: row ``r`` writes
    ``y[r]`` (diagonal) and ``y[c]`` for each stored lower ``(r, c)``;
    symmetrized so the check is conservative for both halves."""
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(rowptr))
    diag = np.arange(n, dtype=np.int64)
    writer = np.concatenate([rows, colind, diag])
    target = np.concatenate([colind, rows, diag])
    return writer, target


def verify_coloring(matrix, colors: np.ndarray) -> bool:
    """True iff no two same-colored rows share an output write.

    Fast path: every (writer, target) pair is distinct in a canonical
    lower triangle, so bucketing writes by ``target * n_colors + color``
    and finding any bucket with two entries proves two *different*
    writers of one element share a color. The sort-based exact check
    runs only when the bincount screen finds a candidate bucket (or the
    key space is too large to bucket).
    """
    _, rowptr, colind, _ = _lower_triple_of(matrix)
    n = rowptr.size - 1
    colors = np.asarray(colors, dtype=np.int64)
    if colors.shape != (n,):
        raise ValueError("colors must assign one color per row")
    if n == 0:
        return True
    if colors.size and colors.min() < 0:
        return False
    writer, target = _write_pairs(n, rowptr, colind)
    n_colors = int(colors.max()) + 1
    if n * n_colors <= _FAST_VERIFY_KEYSPACE:
        key = target * n_colors + colors[writer]
        if not np.any(np.bincount(key, minlength=n * n_colors) > 1):
            return True
    # Exact check: same target + same color + different writer.
    wc = colors[writer]
    order = np.lexsort((wc, target))
    t_sorted = target[order]
    w_sorted = writer[order]
    c_sorted = wc[order]
    same = (t_sorted[1:] == t_sorted[:-1]) & (c_sorted[1:] == c_sorted[:-1])
    conflict = same & (w_sorted[1:] != w_sorted[:-1])
    return not bool(np.any(conflict))


# ---------------------------------------------------------------------------
# The two-level conflict-free schedule (the "coloring" reduction strategy)
# ---------------------------------------------------------------------------


class _ClassSegment:
    """Precompiled arrays for one contiguous row batch of one color
    class: the rows, their diagonal values, and the gathered stored
    elements (value, column, expanded row, batch-local row).

    Within one color class every output target — the batch rows *and*
    the transposed columns — is written by exactly one stored element
    group, so the apply kernels below use plain fancy-index updates with
    no atomics and no duplicate-index hazard.
    """

    __slots__ = ("rows", "diag", "cols", "vals", "erows", "local_rows", "_flat")

    #: Cached flattened multi-RHS indices per k (bounded; a schedule is
    #: typically applied at one or two k values).
    _FLAT_MAX = 4

    def __init__(self, rows, diag, cols, vals, erows, local_rows):
        self.rows = rows
        self.diag = diag
        self.cols = cols
        self.vals = vals
        self.erows = erows
        self.local_rows = local_rows
        self._flat: dict[int, np.ndarray] = {}

    def __getstate__(self):
        return (
            self.rows, self.diag, self.cols,
            self.vals, self.erows, self.local_rows,
        )

    def __setstate__(self, state):
        (
            self.rows, self.diag, self.cols,
            self.vals, self.erows, self.local_rows,
        ) = state
        self._flat = {}

    def flat_index(self, k: int) -> np.ndarray:
        """Flattened ``(element, k)`` bincount keys for the multi-RHS
        row-segment sums (compiled on first use per ``k``)."""
        flat = self._flat.get(k)
        if flat is None:
            if len(self._flat) >= self._FLAT_MAX:
                self._flat.clear()
            flat = (
                self.local_rows[:, None] * k
                + np.arange(k, dtype=np.int64)
            ).ravel()
            self._flat[k] = flat
        return flat

    @property
    def index_bytes(self) -> int:
        """Schedule footprint of this batch (excluding flat caches)."""
        return (
            self.rows.nbytes + self.diag.nbytes + self.cols.nbytes
            + self.vals.nbytes + self.erows.nbytes + self.local_rows.nbytes
        )


def _make_segment(rows_sel, dvalues, rowptr, colind, values):
    rows_sel = np.ascontiguousarray(rows_sel, dtype=np.int64)
    lo = rowptr[rows_sel]
    lens = rowptr[rows_sel + 1] - lo
    total = int(lens.sum())
    if total:
        idx = _span_gather(lo, lens, total)
        cols = colind[idx]
        vals = values[idx]
        erows = np.repeat(rows_sel, lens)
        local_rows = np.repeat(
            np.arange(rows_sel.size, dtype=np.int64), lens
        )
    else:
        cols = np.zeros(0, dtype=np.int64)
        vals = np.zeros(0, dtype=np.float64)
        erows = cols
        local_rows = cols
    return _ClassSegment(
        rows_sel, dvalues[rows_sel], cols, vals, erows, local_rows
    )


def _apply_segment(seg: _ClassSegment, x: np.ndarray, y: np.ndarray) -> None:
    """1-RHS batch kernel: direct writes only (no local vector)."""
    rows = seg.rows
    if seg.vals.size:
        acc = np.bincount(
            seg.local_rows,
            weights=seg.vals * x[seg.cols],
            minlength=rows.size,
        )
        y[rows] += seg.diag * x[rows] + acc
        # Transposed half: columns are unique within the color class.
        y[seg.cols] += seg.vals * x[seg.erows]
    else:
        y[rows] += seg.diag * x[rows]


def _apply_segment_k(
    seg: _ClassSegment, X: np.ndarray, Y: np.ndarray, k: int
) -> None:
    """Multi-RHS batch kernel: one structure traversal for all ``k``."""
    rows = seg.rows
    if seg.vals.size:
        prod = seg.vals[:, None] * X[seg.cols]
        acc = np.bincount(
            seg.flat_index(k),
            weights=prod.ravel(),
            minlength=rows.size * k,
        ).reshape(rows.size, k)
        Y[rows] += seg.diag[:, None] * X[rows] + acc
        Y[seg.cols] += seg.vals[:, None] * X[seg.erows]
    else:
        Y[rows] += seg.diag[:, None] * X[rows]


@dataclass
class ColoringSchedule:
    """Two-level conflict-free execution plan.

    ``steps`` is a list of barrier-separated steps; each step is a list
    of independent tasks (run concurrently); each task is a list of
    :class:`_ClassSegment` batches executed in order. A parallel color
    class contributes one step with up to ``n_slots`` nnz-balanced
    single-segment tasks; consecutive small classes merge into one
    single-task step whose segments preserve class order (column
    uniqueness holds only *within* a class, so merged classes stay
    separate segments).

    Determinism: batch membership and within-batch element order are
    fixed here at build time, every output element is written by exactly
    one task per step, and steps are barrier-ordered — so results are
    bit-identical no matter how an executor schedules the tasks.
    """

    n_rows: int
    n_colors: int
    colors: np.ndarray
    steps: list = field(repr=False)
    n_nonempty_rows: int = 0

    @property
    def n_barriers(self) -> int:
        """Synchronization points per apply (one per step)."""
        return len(self.steps)

    @property
    def n_batches(self) -> int:
        return sum(len(step) for step in self.steps)

    @property
    def index_bytes(self) -> int:
        """Precomputed schedule bytes (the strategy's memory cost)."""
        return sum(
            seg.index_bytes
            for step in self.steps
            for task in step
            for seg in task
        )

    def precompile(self, k: Optional[int]) -> None:
        """Eagerly build the per-``k`` flat scatter indices (bind time
        instead of first apply)."""
        if k is None:
            return
        for step in self.steps:
            for task in step:
                for seg in task:
                    seg.flat_index(k)


def build_coloring_schedule(
    matrix,
    n_slots: int,
    *,
    colors: Optional[np.ndarray] = None,
    min_parallel_work: int = MIN_PARALLEL_CLASS_WORK,
) -> ColoringSchedule:
    """Compile the conflict-free schedule: distance-2 coloring → per
    class, ``partition_nnz_balanced`` row batches over ``n_slots``
    (weight = 1 diagonal + 2 updates per stored element) → small-class
    merging into serial steps.
    """
    dvalues, rowptr, colind, values = _lower_triple_of(matrix)
    n = rowptr.size - 1
    if colors is None:
        colors = distance2_coloring(matrix)
    colors = np.asarray(colors, dtype=np.int64)
    if colors.shape != (n,):
        raise ValueError("colors must assign one color per row")
    n_slots = max(1, int(n_slots))
    lens = np.diff(rowptr)
    weights = 1 + 2 * lens
    n_colors = int(colors.max()) + 1 if n else 0
    order = np.argsort(colors, kind="stable")  # (color, row) ascending
    counts = np.bincount(colors, minlength=n_colors) if n else np.zeros(0, int)
    offsets = np.zeros(n_colors + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])

    steps: list = []
    serial_run: list = []  # accumulated segments of consecutive small classes
    for c in range(n_colors):
        class_rows = order[offsets[c]: offsets[c + 1]]
        w = weights[class_rows]
        if n_slots > 1 and int(w.sum()) >= min_parallel_work:
            if serial_run:
                steps.append([serial_run])
                serial_run = []
            tasks = [
                [_make_segment(class_rows[s:e], dvalues, rowptr, colind, values)]
                for s, e in partition_nnz_balanced(
                    w, min(n_slots, class_rows.size)
                )
                if e > s
            ]
            steps.append(tasks)
        else:
            serial_run.append(
                _make_segment(class_rows, dvalues, rowptr, colind, values)
            )
    if serial_run:
        steps.append([serial_run])
    return ColoringSchedule(
        n_rows=n,
        n_colors=n_colors,
        colors=colors,
        steps=steps,
        n_nonempty_rows=int(np.count_nonzero(lens)),
    )


def compile_colored_steps(
    schedule: ColoringSchedule,
    y: np.ndarray,
    get_x: Callable[[], np.ndarray],
    k: Optional[int] = None,
) -> list:
    """Bind the schedule to concrete operands: a list of steps, each a
    list of zero-argument task callables writing ``y`` directly.

    ``get_x`` is resolved per call so bound operators can stage the
    input after compilation. ``k=None`` compiles the 1-RHS kernels."""
    steps_out = []
    for step in schedule.steps:
        tasks = []
        for segments in step:
            if k is None:
                def task(_segs=tuple(segments)):
                    x = get_x()
                    for seg in _segs:
                        _apply_segment(seg, x, y)
            else:
                def task(_segs=tuple(segments), _k=int(k)):
                    X = get_x()
                    for seg in _segs:
                        _apply_segment_k(seg, X, y, _k)
            tasks.append(task)
        steps_out.append(tasks)
    return steps_out


def run_colored_steps(
    executor,
    steps: list,
    *,
    label: Optional[str] = None,
    zero: Optional[Callable[[], None]] = None,
    remote=None,
) -> None:
    """Execute compiled colored steps: one ``run_batch`` per step (the
    inter-class barrier — both the thread pool and the process pool
    return only after every task of the batch completed).

    The per-step reset hook re-zeroes the workspaces *and replays every
    completed earlier step serially* before the executor's
    ``fallback="serial"`` retry reruns the failed step — a plain re-zero
    would wipe the earlier classes' contributions.
    """
    done: list = []
    tid_base = 0
    for tasks in steps:
        def step_reset(_done=tuple(done)):
            if zero is not None:
                zero()
            for t in _done:
                t()
        executor.run_batch(
            tasks,
            label=label,
            reset=step_reset,
            remote=remote,
            tid_base=tid_base,
        )
        done.extend(tasks)
        tid_base += len(tasks)


# ---------------------------------------------------------------------------
# Coloring structure statistics + the original prototype kernel
# ---------------------------------------------------------------------------


@dataclass
class ColoringStats:
    """Structure of one coloring (the method's scalability limiter)."""

    n_colors: int
    largest_class: int
    smallest_class: int
    mean_class: float

    @property
    def parallelism_bound(self) -> float:
        """Average rows concurrently processable (upper bound)."""
        return self.mean_class


def coloring_stats(colors: np.ndarray) -> ColoringStats:
    counts = np.bincount(colors)
    return ColoringStats(
        n_colors=int(counts.size),
        largest_class=int(counts.max()),
        smallest_class=int(counts.min()),
        mean_class=float(counts.mean()),
    )


class ColoredSymmetricSpMV:
    """Barrier-per-color symmetric SpM×V kernel (serial prototype).

    All rows of one color are processed (vectorized) with direct writes
    to the shared output vector — provably race-free by the coloring —
    then a barrier, then the next color. The production path is the
    ``"coloring"`` reduction strategy (see
    :class:`repro.parallel.reduction.ColoringReduction`), which batches
    classes over threads/processes; this class remains the minimal
    reference implementation.
    """

    def __init__(self, sss: SSSMatrix, colors: Optional[np.ndarray] = None):
        self.sss = sss
        self.colors = (
            colors if colors is not None else distance2_coloring(sss)
        )
        if self.colors.shape != (sss.n_rows,):
            raise ValueError("colors must assign one color per row")
        order = np.argsort(self.colors, kind="stable")
        counts = np.bincount(self.colors)
        self.class_offsets = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=self.class_offsets[1:])
        self.rows_by_color = order

    @property
    def n_colors(self) -> int:
        return int(self.class_offsets.size - 1)

    def __call__(
        self, x: np.ndarray, y: Optional[np.ndarray] = None
    ) -> np.ndarray:
        sss = self.sss
        x = np.asarray(x, dtype=np.float64)
        if y is None:
            y = np.zeros(sss.n_rows, dtype=np.float64)
        else:
            y[:] = 0.0
        rowptr, colind, values = sss.rowptr, sss.colind, sss.values
        for k in range(self.n_colors):
            rows = self.rows_by_color[
                self.class_offsets[k] : self.class_offsets[k + 1]
            ]
            y[rows] += sss.dvalues[rows] * x[rows]
            # Gather the class's stored elements.
            lo = rowptr[rows]
            hi = rowptr[rows + 1]
            lens = (hi - lo).astype(np.int64)
            if lens.sum() == 0:
                continue
            idx = np.concatenate(
                [np.arange(a, b, dtype=np.int64) for a, b in zip(lo, hi)]
            )
            erows = np.repeat(rows, lens)
            c = colind[idx].astype(np.int64)
            v = values[idx]
            np.add.at(y, erows, v * x[c])
            np.add.at(y, c, v * x[erows])
        return y


def predict_colored_time(
    sss: SSSMatrix,
    colors: np.ndarray,
    platform: Platform,
    n_threads: int,
    *,
    barrier_cycles: float = BARRIER_CYCLES,
    cycles_per_element: float = 9.5,
    machine_scale: float = 1.0,
) -> float:
    """Roofline-style time for the colored kernel.

    Accounts the same traffic classes as
    :func:`repro.machine.perfmodel.predict_spmv`, but on the *color
    ordered* element stream: rows of one class are scattered across the
    matrix, so the matrix arrays are fetched at row granularity (partial
    cache lines wasted on short rows) and the input-vector gathers lose
    row-to-row locality. Classes are separated by barriers whose cost
    grows with the thread count. This combination — not any single
    term — is what keeps the method behind the local-vectors approach.
    """
    from ..machine.cache import x_traffic_bytes
    from ..machine.costmodel import DEFAULT_COST_MODEL as COST
    from ..machine.platforms import CACHE_LINE_BYTES

    counts = np.bincount(colors)
    rowptr = sss.rowptr
    lens = np.diff(rowptr).astype(np.int64)
    class_elems = np.zeros(counts.size, dtype=np.float64)
    np.add.at(class_elems, colors, lens)
    clock = platform.clock_ghz * 1e9
    smt = smt_compute_factor(platform, n_threads)
    t_compute = 0.0
    for k in range(counts.size):
        work = cycles_per_element * class_elems[k] + 2.0 * counts[k]
        t_compute += work * smt / (n_threads * clock)
    # Barriers are serialization points: they overlap with neither the
    # compute nor the memory stream (a 24-thread pthread barrier on a
    # 2008-era SMP costs tens of microseconds).
    t_barriers = (
        counts.size * barrier_cycles * n_threads ** 0.5 / clock
    )

    # Color-ordered element stream for the cache model.
    order = np.argsort(colors, kind="stable")
    if sss.colind.size:
        col_stream = np.concatenate(
            [
                sss.colind[rowptr[r] : rowptr[r + 1]].astype(np.int64)
                for r in order
                if rowptr[r + 1] > rowptr[r]
            ]
        )
    else:
        col_stream = np.zeros(0, dtype=np.int64)
    cache = platform.cache_bytes_per_thread(n_threads) * machine_scale
    x_bytes = x_traffic_bytes(col_stream, cache, COST.x_cache_share)
    scatter_bytes = COST.scatter_write_factor * x_traffic_bytes(
        col_stream, cache, COST.y_cache_share
    )
    # Row-granular matrix fetches: short scattered rows waste partial
    # lines of the values/colind arrays (half a line per row per array
    # on average).
    n_nonempty = int(np.count_nonzero(lens))
    row_waste = n_nonempty * CACHE_LINE_BYTES
    bw = platform.bandwidth_gbps(n_threads) * 1e9
    t_memory = (
        sss.size_bytes() + row_waste + x_bytes + scatter_bytes
        + 8.0 * sss.n_rows
    ) / bw
    return max(t_compute, t_memory) + t_barriers
