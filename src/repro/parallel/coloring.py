"""The "colorful" conflict-free symmetric SpM×V (related work, §VI).

Batista et al. avoid the reduction phase entirely: rows are colored so
that no two rows of the same color write a common output element, and
the kernel processes one color class at a time — each class fully
parallel with *direct* output writes, classes separated by barriers.

A thread processing row ``r`` writes ``y[r]`` and ``y[c]`` for every
stored lower element ``(r, c)``; two rows conflict iff their write sets
intersect, i.e. iff they are within distance 2 in the adjacency graph.
We implement a greedy distance-2 coloring (optionally via networkx for
cross-checking) and the color-class execution schedule.

The paper's observation — "the geometry of the graphs limits the
potential of this approach" — falls out naturally: the number of colors
grows with the squared degree, so dense matrices serialize into many
barrier-separated steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..formats.sss import SSSMatrix
from ..machine.platforms import Platform
from ..machine.roofline import smt_compute_factor

__all__ = [
    "distance2_coloring",
    "ColoredSymmetricSpMV",
    "coloring_stats",
    "predict_colored_time",
]


def _adjacency_csr(sss: SSSMatrix) -> tuple[np.ndarray, np.ndarray]:
    """Symmetrized adjacency (indptr, indices) from the stored lower
    triangle, self-loops excluded."""
    n = sss.n_rows
    rows = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(sss.rowptr)
    )
    cols = sss.colind.astype(np.int64)
    src = np.concatenate([rows, cols])
    dst = np.concatenate([cols, rows])
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
    return indptr, dst


def distance2_coloring(sss: SSSMatrix) -> np.ndarray:
    """Greedy distance-2 coloring of the row-conflict graph.

    Returns an int array ``color[row]``. Guarantees that any two rows
    within distance 2 of each other (sharing an output write) receive
    different colors.
    """
    n = sss.n_rows
    indptr, indices = _adjacency_csr(sss)
    colors = np.full(n, -1, dtype=np.int64)
    for r in range(n):
        neigh = indices[indptr[r] : indptr[r + 1]]
        if neigh.size:
            # Distance-2 neighbourhood: neighbours + their neighbours.
            spans = [
                indices[indptr[v] : indptr[v + 1]] for v in neigh
            ]
            d2 = np.concatenate([neigh] + spans)
        else:
            d2 = neigh
        used = colors[d2]
        used = used[used >= 0]
        if used.size == 0:
            colors[r] = 0
            continue
        used_set = np.unique(used)
        # First gap in the used color sequence.
        candidate = np.flatnonzero(
            used_set != np.arange(used_set.size)
        )
        colors[r] = (
            int(candidate[0]) if candidate.size else int(used_set.size)
        )
    return colors


def verify_coloring(sss: SSSMatrix, colors: np.ndarray) -> bool:
    """True iff no two same-colored rows share an output write."""
    n = sss.n_rows
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(sss.rowptr))
    cols = sss.colind.astype(np.int64)
    # Writers of each output element: row r writes y[r] and y[c].
    writer = np.concatenate([rows, cols, np.arange(n, dtype=np.int64)])
    target = np.concatenate([cols, rows, np.arange(n, dtype=np.int64)])
    order = np.lexsort((colors[writer], target))
    t_sorted = target[order]
    w_sorted = writer[order]
    c_sorted = colors[writer][order]
    same = (t_sorted[1:] == t_sorted[:-1]) & (
        c_sorted[1:] == c_sorted[:-1]
    )
    conflict = same & (w_sorted[1:] != w_sorted[:-1])
    return not bool(np.any(conflict))


@dataclass
class ColoringStats:
    """Structure of one coloring (the method's scalability limiter)."""

    n_colors: int
    largest_class: int
    smallest_class: int
    mean_class: float

    @property
    def parallelism_bound(self) -> float:
        """Average rows concurrently processable (upper bound)."""
        return self.mean_class


def coloring_stats(colors: np.ndarray) -> ColoringStats:
    counts = np.bincount(colors)
    return ColoringStats(
        n_colors=int(counts.size),
        largest_class=int(counts.max()),
        smallest_class=int(counts.min()),
        mean_class=float(counts.mean()),
    )


class ColoredSymmetricSpMV:
    """Barrier-per-color symmetric SpM×V kernel.

    All rows of one color are processed (vectorized) with direct writes
    to the shared output vector — provably race-free by the coloring —
    then a barrier, then the next color.
    """

    def __init__(self, sss: SSSMatrix, colors: Optional[np.ndarray] = None):
        self.sss = sss
        self.colors = (
            colors if colors is not None else distance2_coloring(sss)
        )
        if self.colors.shape != (sss.n_rows,):
            raise ValueError("colors must assign one color per row")
        order = np.argsort(self.colors, kind="stable")
        counts = np.bincount(self.colors)
        self.class_offsets = np.zeros(counts.size + 1, dtype=np.int64)
        np.cumsum(counts, out=self.class_offsets[1:])
        self.rows_by_color = order

    @property
    def n_colors(self) -> int:
        return int(self.class_offsets.size - 1)

    def __call__(
        self, x: np.ndarray, y: Optional[np.ndarray] = None
    ) -> np.ndarray:
        sss = self.sss
        x = np.asarray(x, dtype=np.float64)
        if y is None:
            y = np.zeros(sss.n_rows, dtype=np.float64)
        else:
            y[:] = 0.0
        rowptr, colind, values = sss.rowptr, sss.colind, sss.values
        for k in range(self.n_colors):
            rows = self.rows_by_color[
                self.class_offsets[k] : self.class_offsets[k + 1]
            ]
            y[rows] += sss.dvalues[rows] * x[rows]
            # Gather the class's stored elements.
            lo = rowptr[rows]
            hi = rowptr[rows + 1]
            lens = (hi - lo).astype(np.int64)
            if lens.sum() == 0:
                continue
            idx = np.concatenate(
                [np.arange(a, b, dtype=np.int64) for a, b in zip(lo, hi)]
            )
            erows = np.repeat(rows, lens)
            c = colind[idx].astype(np.int64)
            v = values[idx]
            np.add.at(y, erows, v * x[c])
            np.add.at(y, c, v * x[erows])
        return y


def predict_colored_time(
    sss: SSSMatrix,
    colors: np.ndarray,
    platform: Platform,
    n_threads: int,
    *,
    barrier_cycles: float = 20_000.0,
    cycles_per_element: float = 9.5,
    machine_scale: float = 1.0,
) -> float:
    """Roofline-style time for the colored kernel.

    Accounts the same traffic classes as
    :func:`repro.machine.perfmodel.predict_spmv`, but on the *color
    ordered* element stream: rows of one class are scattered across the
    matrix, so the matrix arrays are fetched at row granularity (partial
    cache lines wasted on short rows) and the input-vector gathers lose
    row-to-row locality. Classes are separated by barriers whose cost
    grows with the thread count. This combination — not any single
    term — is what keeps the method behind the local-vectors approach.
    """
    from ..machine.cache import x_traffic_bytes
    from ..machine.costmodel import DEFAULT_COST_MODEL as COST
    from ..machine.platforms import CACHE_LINE_BYTES

    counts = np.bincount(colors)
    rowptr = sss.rowptr
    lens = np.diff(rowptr).astype(np.int64)
    class_elems = np.zeros(counts.size, dtype=np.float64)
    np.add.at(class_elems, colors, lens)
    clock = platform.clock_ghz * 1e9
    smt = smt_compute_factor(platform, n_threads)
    t_compute = 0.0
    for k in range(counts.size):
        work = cycles_per_element * class_elems[k] + 2.0 * counts[k]
        t_compute += work * smt / (n_threads * clock)
    # Barriers are serialization points: they overlap with neither the
    # compute nor the memory stream (a 24-thread pthread barrier on a
    # 2008-era SMP costs tens of microseconds).
    t_barriers = (
        counts.size * barrier_cycles * n_threads ** 0.5 / clock
    )

    # Color-ordered element stream for the cache model.
    order = np.argsort(colors, kind="stable")
    if sss.colind.size:
        col_stream = np.concatenate(
            [
                sss.colind[rowptr[r] : rowptr[r + 1]].astype(np.int64)
                for r in order
                if rowptr[r + 1] > rowptr[r]
            ]
        )
    else:
        col_stream = np.zeros(0, dtype=np.int64)
    cache = platform.cache_bytes_per_thread(n_threads) * machine_scale
    x_bytes = x_traffic_bytes(col_stream, cache, COST.x_cache_share)
    scatter_bytes = COST.scatter_write_factor * x_traffic_bytes(
        col_stream, cache, COST.y_cache_share
    )
    # Row-granular matrix fetches: short scattered rows waste partial
    # lines of the values/colind arrays (half a line per row per array
    # on average).
    n_nonempty = int(np.count_nonzero(lens))
    row_waste = n_nonempty * CACHE_LINE_BYTES
    bw = platform.bandwidth_gbps(n_threads) * 1e9
    t_memory = (
        sss.size_bytes() + row_waste + x_bytes + scatter_bytes
        + 8.0 * sss.n_rows
    ) / bw
    return max(t_compute, t_memory) + t_barriers
