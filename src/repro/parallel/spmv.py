"""Multithreaded SpM×V orchestration (paper Alg. 3 and Section III).

:class:`ParallelSymmetricSpMV` wires a symmetric format (SSS or
CSX-Sym), a thread partitioning and a reduction method into the
two-phase kernel: per-thread multiplication into direct/local targets,
then the reduction of local vectors into the output.

:class:`ParallelSpMV` is the unsymmetric counterpart (CSR / CSX): rows
are independent, so there is no reduction phase at all.

Both drivers execute through an :class:`~repro.parallel.executor
.Executor`. The ``processes`` backend only engages through
``driver.bind(...)`` — binding migrates the workspaces into shared
memory and spins up the worker pool; a plain ``driver(x)`` call on a
``processes`` executor runs its per-call closures on the thread pool
instead (with a one-time ``executor.processes_inline`` warning), since
closures cannot cross a process boundary.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..formats.base import SymmetricFormat
from ..formats.csr import CSRMatrix
from ..formats.csx.matrix import CSXMatrix
from ..formats.validate import check_driver_x, prepare_driver_y
from ..obs.tracer import Tracer, active as _active_tracer
from .executor import Executor
from .partition import validate_partitions
from .reduction import ReductionFootprint, ReductionMethod, make_reduction

__all__ = ["ParallelSymmetricSpMV", "ParallelSpMV"]


def _record_traffic(
    tracer: Tracer, matrix, k: Optional[int], reduction=None
) -> tuple[int, int]:
    """Model-relevant traffic counters for one driver application:
    matrix/stream bytes from the :mod:`repro.analysis.traffic` model and
    (for symmetric drivers) the reduction rows actually touched vs the
    full effective-ranges budget ``N·(p-1)``. Only called when a tracer
    is enabled, so the analysis import stays off the cold-start path
    (and avoids a module-level cycle: analysis imports parallel).
    Returns ``(matrix_bytes, stream_bytes)`` so callers can feed the
    same numbers into streaming metrics without recomputation."""
    from ..analysis.traffic import spmm_stream_bytes, spmv_stream_bytes

    size = matrix.size_bytes()
    if k is None:
        stream = spmv_stream_bytes(size, matrix.n_rows, matrix.n_cols)
    else:
        stream = spmm_stream_bytes(size, matrix.n_rows, matrix.n_cols, k)
    tracer.count("traffic.matrix_bytes", size)
    tracer.count("traffic.stream_bytes", stream)
    if reduction is not None:
        fp = reduction.footprint(k or 1)
        tracer.count("reduce.rows_touched", fp.reduction_reads)
        tracer.count(
            "reduce.rows_budget",
            reduction.n_rows * max(0, reduction.n_threads - 1) * (k or 1),
        )
        if getattr(reduction, "conflict_free", False):
            sched = reduction.schedule
            tracer.count("coloring.classes", sched.n_colors)
            # One rendezvous per barrier-separated step; small classes
            # are merged into serial steps, so this can be below the
            # class count.
            tracer.count("coloring.barrier_waits", sched.n_barriers)
    return size, stream


# Operand validation lives in repro.formats.validate (shared error
# taxonomy); these aliases keep the historic private names importable.
_check_driver_x = check_driver_x
_prepare_driver_y = prepare_driver_y


class ParallelSymmetricSpMV:
    """Two-phase multithreaded symmetric SpM×V.

    Parameters
    ----------
    matrix : SymmetricFormat
        SSS or CSX-Sym matrix. For CSX-Sym the partitions must match
        the ones the matrix was preprocessed for.
    partitions : sequence of (row_start, row_end)
    reduction : str or ReductionMethod
        ``"naive"``, ``"effective"`` or ``"indexed"`` (Section III), or
        ``"coloring"`` (conflict-free scheduling, no reduction phase),
        or a prebuilt method instance.
    executor : Executor, optional
    """

    def __init__(
        self,
        matrix: SymmetricFormat,
        partitions: Sequence[tuple[int, int]],
        reduction: Union[str, ReductionMethod] = "indexed",
        executor: Optional[Executor] = None,
    ):
        validate_partitions(partitions, matrix.n_rows)
        self.matrix = matrix
        self.partitions = [(int(s), int(e)) for s, e in partitions]
        if isinstance(reduction, str):
            reduction = make_reduction(reduction, matrix, self.partitions)
        self.reduction = reduction
        self.executor = executor or Executor("serial")

    @property
    def n_threads(self) -> int:
        return len(self.partitions)

    def __call__(
        self, x: np.ndarray, y: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Compute ``y = A @ x`` with the configured thread layout.

        ``x`` may be a vector ``(n,)`` or a block of ``k`` right-hand
        sides ``(n, k)``; the 2-D case runs the multi-RHS kernels (one
        matrix traversal for all columns) with ``(N, k)`` local buffers
        and the same reduction indexing.
        """
        x = _check_driver_x(x, self.matrix.n_cols)
        y = _prepare_driver_y(y, self.matrix.n_rows, x)
        multi = x.ndim == 2
        k = x.shape[1] if multi else None
        tracer = _active_tracer()

        if self.reduction.conflict_free:
            return self._call_colored(x, y, k, tracer)

        locals_ = self.reduction.allocate_locals(k)

        # Phase 1 — multiplication (Alg. 3 lines 2-11), one task/thread.
        def make_mult_task(tid: int):
            start, end = self.partitions[tid]
            y_direct, y_local = self.reduction.thread_targets(tid, y, locals_)

            def task() -> None:
                if multi:
                    self.matrix.spmm_partition(
                        x, y_direct, y_local, start, end
                    )
                else:
                    self.matrix.spmv_partition(
                        x, y_direct, y_local, start, end
                    )

            return task

        def reset() -> None:
            # Pre-batch workspace state for the executor's serial
            # fallback: zeroed output and locals.
            y[...] = 0.0
            self.reduction.zero_locals(locals_)

        with tracer.span("spmv.mult"):
            self.executor.run_batch(
                [make_mult_task(tid) for tid in range(self.n_threads)],
                label="spmv.mult.task",
                reset=reset,
            )

        # Phase 2 — reduction (Alg. 3 lines 12-16 / Section III-C).
        with tracer.span("spmv.reduce"):
            self.reduction.reduce(y, locals_)
        if tracer.enabled:
            tracer.count("spmv.calls")
            _record_traffic(tracer, self.matrix, k, self.reduction)
        return y

    def _call_colored(
        self,
        x: np.ndarray,
        y: np.ndarray,
        k: Optional[int],
        tracer: Tracer,
    ) -> np.ndarray:
        """Conflict-free path: the precompiled color-class schedule runs
        class-at-a-time with direct output writes — no local vectors,
        nothing to reduce (the ``spmv.reduce`` span stays for phase
        accounting and is empty)."""
        from .coloring import compile_colored_steps, run_colored_steps

        steps = compile_colored_steps(
            self.reduction.schedule, y, lambda: x, k
        )

        def zero() -> None:
            y[...] = 0.0

        with tracer.span("spmv.mult"):
            run_colored_steps(
                self.executor, steps, label="spmv.mult.task", zero=zero
            )
        with tracer.span("spmv.reduce"):
            pass
        if tracer.enabled:
            tracer.count("spmv.calls")
            _record_traffic(tracer, self.matrix, k, self.reduction)
        return y

    def bind(self, k: Optional[int] = None, on_poison: str = "recover"):
        """Return a :class:`~repro.parallel.bound.BoundSymmetricSpMV`:
        persistent workspaces, precompiled tasks and scatters, for
        repeated application with this signature (``k=None`` = 1-D
        SpM×V, integer ``k`` = ``(N, k)`` SpM×M). The amortize-
        across-calls layer iterative solvers use. ``on_poison``
        selects the failed-apply policy (see
        :class:`~repro.parallel.bound.BoundOperator`)."""
        from .bound import BoundSymmetricSpMV

        return BoundSymmetricSpMV(self, k, on_poison=on_poison)

    def footprint(self, k: int = 1) -> ReductionFootprint:
        """Working-set accounting of the configured reduction (``k``
        right-hand sides per pass)."""
        return self.reduction.footprint(k)


class ParallelSpMV:
    """Row-partitioned multithreaded *unsymmetric* SpM×V (CSR / CSX).

    Output rows are exclusive to their thread, so phase 2 is empty —
    the baseline the symmetric kernels are compared against.
    """

    def __init__(
        self,
        matrix: Union[CSRMatrix, CSXMatrix],
        partitions: Sequence[tuple[int, int]],
        executor: Optional[Executor] = None,
    ):
        validate_partitions(partitions, matrix.n_rows)
        self.matrix = matrix
        self.partitions = [(int(s), int(e)) for s, e in partitions]
        self.executor = executor or Executor("serial")
        if isinstance(matrix, CSXMatrix):
            want = [(p.row_start, p.row_end) for p in matrix.partitions]
            if want != self.partitions:
                raise ValueError(
                    "CSX matrix was preprocessed for different partitions"
                )

    @property
    def n_threads(self) -> int:
        return len(self.partitions)

    def __call__(
        self, x: np.ndarray, y: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Compute ``y = A @ x``; ``x`` may be ``(n,)`` or ``(n, k)``
        (multi-RHS fast path, one matrix traversal per partition)."""
        x = _check_driver_x(x, self.matrix.n_cols)
        y = _prepare_driver_y(y, self.matrix.n_rows, x)
        multi = x.ndim == 2
        tracer = _active_tracer()

        if isinstance(self.matrix, CSXMatrix):

            def make_task(tid: int):
                def task() -> None:
                    if multi:
                        self.matrix.spmm_partition_only(x, y, tid)
                    else:
                        self.matrix.spmv_partition_only(x, y, tid)

                return task

        else:

            def make_task(tid: int):
                start, end = self.partitions[tid]

                def task() -> None:
                    if multi:
                        self.matrix.spmm_rows(x, y, start, end)
                    else:
                        self.matrix.spmv_rows(x, y, start, end)

                return task

        def reset() -> None:
            y[...] = 0.0

        with tracer.span("spmv.mult"):
            self.executor.run_batch(
                [make_task(tid) for tid in range(self.n_threads)],
                label="spmv.mult.task",
                reset=reset,
            )
        if tracer.enabled:
            tracer.count("spmv.calls")
            _record_traffic(
                tracer, self.matrix, x.shape[1] if multi else None
            )
        return y

    def bind(self, k: Optional[int] = None, on_poison: str = "recover"):
        """Return a :class:`~repro.parallel.bound.BoundSpMV` with
        persistent output workspace and precompiled tasks for repeated
        application with this signature; ``on_poison`` selects the
        failed-apply policy."""
        from .bound import BoundSpMV

        return BoundSpMV(self, k, on_poison=on_poison)
