"""Async solver-serving front end with SpMM request coalescing.

The paper's traffic argument, turned into a service: same-matrix
single-RHS SpM×V requests (and compatible CG solves) arriving within a
coalescing window are batched into one SpM×M / block-CG call up to
``max_batch`` columns, streaming the matrix once for all of them —
responses stay bit-identical to what each request would have computed
alone. See DESIGN.md §4j for the scheduler, the deadline/backpressure
semantics and the chaos-containment story.
"""

from .errors import (
    DeadlineExceededError,
    QueueFullError,
    ServeError,
    ServerClosedError,
    UnknownOperatorError,
)
from .registry import (
    OperatorRegistry,
    RegisteredOperator,
    matrix_fingerprint,
)
from .server import (
    CGResponse,
    SolverServer,
    SpMVResponse,
    serial_compute,
)
from .loadgen import LoadReport, run_load

__all__ = [
    "ServeError",
    "QueueFullError",
    "DeadlineExceededError",
    "ServerClosedError",
    "UnknownOperatorError",
    "matrix_fingerprint",
    "OperatorRegistry",
    "RegisteredOperator",
    "SolverServer",
    "SpMVResponse",
    "CGResponse",
    "serial_compute",
    "LoadReport",
    "run_load",
]
