"""Closed-loop load generator with per-response bit-identity audit.

The measurement harness for the serving front end: ``concurrency``
workers each keep exactly one request in flight (closed loop, so
offered load adapts to server capacity instead of overrunning it),
drawing right-hand sides from a small seeded vector pool whose serial
reference answers are precomputed once. Every successful response is
compared **bit-for-bit** against its reference — the audit is always
on, because throughput of wrong answers is not throughput.

The report separates correctness (``n_incorrect`` must be zero,
always) from availability (rejections, expiries and failures are
counted by taxon — under the chaos drill those are *expected*, hangs
and wrong bits are not).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional

import numpy as np

from ..obs.tracer import percentile
from .errors import DeadlineExceededError, QueueFullError, ServeError
from .server import CGResponse, SolverServer, serial_compute

__all__ = ["LoadReport", "run_load"]


@dataclass
class LoadReport:
    """Outcome of one :func:`run_load` run."""

    kind: str
    concurrency: int
    n_requests: int
    n_ok: int
    n_incorrect: int
    n_rejected: int
    n_expired: int
    n_failed: int
    duration_s: float
    rps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    #: Mean batch width over successful responses (1.0 = no
    #: coalescing happened).
    mean_coalesced: float
    #: Failure counts by exception class name.
    errors: dict = field(default_factory=dict)

    @property
    def correct(self) -> bool:
        """Every response that came back matched its serial reference
        bit-for-bit (vacuously true only if nothing came back)."""
        return self.n_incorrect == 0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "concurrency": self.concurrency,
            "n_requests": self.n_requests,
            "n_ok": self.n_ok,
            "n_incorrect": self.n_incorrect,
            "n_rejected": self.n_rejected,
            "n_expired": self.n_expired,
            "n_failed": self.n_failed,
            "duration_s": self.duration_s,
            "rps": self.rps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_coalesced": self.mean_coalesced,
            "errors": dict(self.errors),
        }

    def render(self) -> str:
        lines = [
            f"{self.kind} load: {self.n_ok}/{self.n_requests} ok "
            f"({self.n_rejected} rejected, {self.n_expired} expired, "
            f"{self.n_failed} failed) at concurrency "
            f"{self.concurrency}",
            f"  throughput {self.rps:,.1f} req/s over "
            f"{self.duration_s:.2f} s; latency p50 {self.p50_ms:.3f} "
            f"p95 {self.p95_ms:.3f} p99 {self.p99_ms:.3f} ms; mean "
            f"batch width {self.mean_coalesced:.2f}",
            f"  bit-identity: "
            + ("OK" if self.correct
               else f"{self.n_incorrect} INCORRECT RESPONSES"),
        ]
        if self.errors:
            counts = ", ".join(
                f"{name}: {n}" for name, n in sorted(self.errors.items())
            )
            lines.append(f"  error taxa: {counts}")
        return "\n".join(lines)


def _identical(resp, ref) -> bool:
    """Bit-for-bit comparison of a response against its reference."""
    if isinstance(resp, CGResponse):
        return (
            np.array_equal(resp.result.x, ref.x)
            and resp.result.iterations == ref.iterations
            and resp.result.residual_norm == ref.residual_norm
        )
    return np.array_equal(resp.y, ref)


async def run_load(
    server: SolverServer,
    key: str,
    *,
    kind: str = "spmv",
    concurrency: int = 8,
    n_requests: int = 200,
    deadline: Optional[float] = None,
    tol: float = 1e-8,
    max_iter: Optional[int] = None,
    pool_size: int = 16,
    seed: int = 1234,
    verify: bool = True,
) -> LoadReport:
    """Drive ``n_requests`` ``kind`` requests at ``server`` from
    ``concurrency`` closed-loop workers and audit every response.

    The vector pool is seeded, so two runs against the same matrix
    offer identical work; references are computed once per pool entry
    on the serial driver (``verify=False`` skips the audit for pure
    throughput runs — the benchmark never does).
    """
    if kind not in ("spmv", "cg"):
        raise ValueError(f"kind must be 'spmv' or 'cg', got {kind!r}")
    entry = server.registry.get(key)
    rng = np.random.default_rng(seed)
    pool = [
        np.ascontiguousarray(rng.standard_normal(entry.n))
        for _ in range(pool_size)
    ]
    params = () if kind == "spmv" else (float(tol), max_iter)
    refs = (
        [serial_compute(entry, kind, params, vec) for vec in pool]
        if verify else None
    )

    latencies_ms: list[float] = []
    widths: list[int] = []
    errors: dict[str, int] = {}
    counts = {"ok": 0, "incorrect": 0, "rejected": 0, "expired": 0,
              "failed": 0}
    next_id = 0
    lock = asyncio.Lock()

    async def issue(i: int) -> None:
        vec = pool[i % pool_size]
        try:
            if kind == "spmv":
                resp = await server.spmv(key, vec, deadline=deadline)
            else:
                resp = await server.cg(
                    key, vec, tol=tol, max_iter=max_iter,
                    deadline=deadline,
                )
        except QueueFullError:
            counts["rejected"] += 1
            errors["QueueFullError"] = errors.get(
                "QueueFullError", 0) + 1
        except DeadlineExceededError:
            counts["expired"] += 1
            errors["DeadlineExceededError"] = errors.get(
                "DeadlineExceededError", 0) + 1
        except (ServeError, RuntimeError) as exc:
            counts["failed"] += 1
            name = type(exc).__name__
            errors[name] = errors.get(name, 0) + 1
        else:
            latencies_ms.append(resp.latency_s * 1e3)
            widths.append(resp.coalesced)
            if refs is not None and not _identical(
                resp, refs[i % pool_size]
            ):
                counts["incorrect"] += 1
            else:
                counts["ok"] += 1

    async def worker() -> None:
        nonlocal next_id
        while True:
            async with lock:
                if next_id >= n_requests:
                    return
                i = next_id
                next_id += 1
            await issue(i)

    t0 = perf_counter()
    await asyncio.gather(*[worker() for _ in range(concurrency)])
    duration = perf_counter() - t0

    return LoadReport(
        kind=kind,
        concurrency=concurrency,
        n_requests=n_requests,
        n_ok=counts["ok"],
        n_incorrect=counts["incorrect"],
        n_rejected=counts["rejected"],
        n_expired=counts["expired"],
        n_failed=counts["failed"],
        duration_s=duration,
        rps=n_requests / duration if duration > 0 else float("inf"),
        p50_ms=percentile(latencies_ms, 50) if latencies_ms else 0.0,
        p95_ms=percentile(latencies_ms, 95) if latencies_ms else 0.0,
        p99_ms=percentile(latencies_ms, 99) if latencies_ms else 0.0,
        mean_coalesced=(
            sum(widths) / len(widths) if widths else 0.0
        ),
        errors=errors,
    )
