"""Content-addressed registry of bound solver operators.

The serving front end (:mod:`repro.serve.server`) admits requests
against *registered* operators, keyed by a fingerprint of the matrix
content rather than an object identity — two clients naming the same
matrix coalesce even if they registered it independently, and a key
survives process restarts (it is a pure function of the COO triplets).

Each :class:`RegisteredOperator` owns one parallel driver and lazily
binds it per RHS-block width ``k`` (``driver.bind(k)``): the OSKI-style
amortization the paper's bound-operator layer provides, extended with
a per-``k`` cache so a coalesced batch of 5 and a solo request reuse
their respective compiled workspaces across the server's lifetime. A
serial reference clone of the driver (same matrix, same partitions,
same reduction instance, serial executor) backs the bit-identity
oracle: what a request *would* have computed alone, with no executor
and no coalescing in the loop.

Thread-safety: ``operator(k)`` may be called from the event loop and
from executor threads concurrently; the per-``k`` bind cache is locked
with the same lock-free-hit / locked-miss discipline as the format
compilation caches (bound operators are safe to share once
constructed — their ``apply`` serializes internally).
"""

from __future__ import annotations

import hashlib
import threading
from typing import Optional

import numpy as np

from ..formats.coo import COOMatrix
from ..formats.csx.sym import CSXSymMatrix
from ..formats.sss import SSSMatrix
from ..parallel.executor import Executor
from ..parallel.spmv import ParallelSpMV, ParallelSymmetricSpMV
from .errors import UnknownOperatorError

__all__ = [
    "StreamingCOOFingerprint",
    "matrix_fingerprint",
    "RegisteredOperator",
    "OperatorRegistry",
]

#: Entries hashed per :meth:`StreamingCOOFingerprint.update` chunk when
#: fingerprinting an in-memory matrix (bounds the transient dtype-
#: normalization copies to O(chunk) instead of O(nnz)).
FINGERPRINT_CHUNK = 1 << 16


class StreamingCOOFingerprint:
    """Incremental SHA-256 fingerprint over canonical COO triplets.

    Feed entries with :meth:`update` in canonical (row-major sorted)
    order, in chunks of any size — the digest is invariant to the
    chunking because rows, cols and values are hashed as three
    independent streams (dtype-normalized to int64/int64/float64) that
    are combined, together with the shape, only at :meth:`hexdigest`.

    Two producers share this helper: :func:`matrix_fingerprint` (whole
    in-memory matrices, chunked to keep peak extra memory at O(chunk))
    and the out-of-core ingest (:mod:`repro.ooc.shards`), which streams
    a matrix it never fully materializes and stamps the resulting key
    into the shard manifest — tying a shard set to its source matrix
    with the same content-addressing scheme the serving registry uses.
    """

    def __init__(self, shape: tuple[int, int]):
        self.shape = (int(shape[0]), int(shape[1]))
        self._rows = hashlib.sha256()
        self._cols = hashlib.sha256()
        self._vals = hashlib.sha256()
        self.n_entries = 0

    def update(self, rows, cols, vals) -> None:
        """Hash one chunk of canonical-order entries."""
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        cols = np.ascontiguousarray(cols, dtype=np.int64)
        vals = np.ascontiguousarray(vals, dtype=np.float64)
        if not (rows.size == cols.size == vals.size):
            raise ValueError("fingerprint chunk arrays differ in length")
        self._rows.update(rows)
        self._cols.update(cols)
        self._vals.update(vals)
        self.n_entries += rows.size

    def hexdigest(self) -> str:
        """The 16-hex-digit content key (callable repeatedly; more
        :meth:`update` calls afterwards keep extending the streams)."""
        h = hashlib.sha256()
        h.update(np.asarray(self.shape, dtype=np.int64).tobytes())
        h.update(self._rows.digest())
        h.update(self._cols.digest())
        h.update(self._vals.digest())
        return h.hexdigest()[:16]


def matrix_fingerprint(matrix) -> str:
    """Content-addressed key for a matrix: SHA-256 over the
    canonicalized COO triplets and the shape, truncated to 16 hex
    digits. Accepts a :class:`COOMatrix` or any format instance
    (converted via ``to_coo()``); two structurally identical matrices
    fingerprint identically regardless of storage format or triplet
    order. Hashing streams in bounded chunks through
    :class:`StreamingCOOFingerprint` — peak extra memory is O(chunk),
    not a second O(nnz) concatenated byte buffer."""
    coo = matrix if isinstance(matrix, COOMatrix) else matrix.to_coo()
    coo = coo.canonicalize()
    fp = StreamingCOOFingerprint(coo.shape)
    for lo in range(0, coo.nnz, FINGERPRINT_CHUNK):
        hi = min(coo.nnz, lo + FINGERPRINT_CHUNK)
        fp.update(coo.rows[lo:hi], coo.cols[lo:hi], coo.vals[lo:hi])
    return fp.hexdigest()


class RegisteredOperator:
    """One matrix's serving entry: the parallel driver, its per-``k``
    bound-operator cache, and the serial reference driver."""

    def __init__(self, key: str, driver, serial_driver):
        self.key = key
        self.driver = driver
        self.serial_driver = serial_driver
        self._ops: dict[Optional[int], object] = {}
        self._lock = threading.Lock()

    @property
    def n(self) -> int:
        return self.driver.matrix.n_rows

    def operator(self, k: Optional[int] = None):
        """The driver bound for ``k`` right-hand sides (``None`` = the
        1-D SpM×V signature), bind-on-first-use and cached. The bound
        operator serializes its own applies, so one instance per ``k``
        is shared by every request."""
        op = self._ops.get(k)  # lock-free hit: dict.get is atomic
        if op is None:
            with self._lock:
                op = self._ops.get(k)
                if op is None:
                    op = self.driver.bind(k)
                    self._ops[k] = op
        return op

    def reference(self, x: np.ndarray) -> np.ndarray:
        """Serial single-request computation of ``A @ x`` — the
        bit-identity oracle for one coalesced response."""
        return self.serial_driver(np.ascontiguousarray(x))

    def close(self) -> None:
        """Release every bound operator's workspace."""
        with self._lock:
            ops, self._ops = dict(self._ops), {}
        for op in ops.values():
            op.close()


class OperatorRegistry:
    """Mapping of fingerprint keys to :class:`RegisteredOperator`.

    ``register`` builds the parallel driver exactly the way the CLI's
    kernel factory does — symmetric formats get the two-phase
    :class:`ParallelSymmetricSpMV` with the requested reduction,
    unsymmetric ones the direct :class:`ParallelSpMV` — plus the serial
    reference clone sharing the same matrix, partitions and reduction
    instance so reference and served computation differ only in the
    executor and the coalescing.
    """

    def __init__(self):
        self._entries: dict[str, RegisteredOperator] = {}
        self._lock = threading.Lock()

    def register(
        self,
        matrix,
        partitions,
        *,
        reduction: str = "indexed",
        executor: Optional[Executor] = None,
        key: Optional[str] = None,
    ) -> RegisteredOperator:
        """Register ``matrix`` (a built format instance) for serving.

        Returns the new entry; registering an identical matrix twice
        returns the existing entry (idempotent — that is the point of
        content addressing). ``key`` overrides the fingerprint when the
        caller wants a human-readable handle.
        """
        if key is None:
            key = matrix_fingerprint(matrix)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                return existing
        # Same dispatch as the CLI kernel factory: symmetric two-phase
        # driver for the symmetric serving formats, direct driver else.
        if isinstance(matrix, (SSSMatrix, CSXSymMatrix)):
            driver = ParallelSymmetricSpMV(
                matrix, partitions, reduction, executor=executor
            )
            serial = ParallelSymmetricSpMV(
                # Share the reduction *instance*: the reference must
                # accumulate in the same order the served kernel does.
                matrix, partitions, driver.reduction,
                executor=Executor("serial"),
            )
        else:
            driver = ParallelSpMV(matrix, partitions, executor=executor)
            serial = ParallelSpMV(
                matrix, partitions, executor=Executor("serial")
            )
        entry = RegisteredOperator(key, driver, serial)
        with self._lock:
            # Lost the race to a concurrent identical register: keep
            # the first entry, discard ours (nothing bound yet).
            return self._entries.setdefault(key, entry)

    def get(self, key: str) -> RegisteredOperator:
        entry = self._entries.get(key)
        if entry is None:
            raise UnknownOperatorError(key)
        return entry

    def keys(self) -> list[str]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def close(self) -> None:
        """Close every registered operator's bound workspaces."""
        with self._lock:
            entries, self._entries = list(self._entries.values()), {}
        for entry in entries:
            entry.close()
