"""Asyncio solver server with SpMM request coalescing.

The front end the paper's batching argument implies but never builds:
if ``k`` independent clients ask for ``A @ x_j`` against the *same*
matrix at the same time, streaming the matrix once for all of them
(one SpM×M) costs nearly the same memory traffic as serving one — so
the server holds same-matrix single-RHS requests for a short
coalescing window and batches them into one SpM×M (CG solves into one
block-CG) up to ``max_batch`` columns wide.

Correctness contract — the whole point of the design:

* **Bit-identity.** Every response is bit-identical to what the
  request would have computed alone on the serial reference driver.
  SpM×M columns are bit-identical to the SpM×V of the same vector
  (format kernels accumulate per column in the same order), and the
  block-CG recurrences are column-independent
  (:mod:`repro.solvers.block_cg`); coalescing is therefore invisible
  to the caller except in latency.
* **No hangs.** Every admitted request terminates: with a result, a
  typed :mod:`repro.serve.errors` failure, or an execution-layer
  error. Deadlines cut queued *and* running work; ``close()`` fails
  whatever is still waiting.
* **Containment.** A fault inside a coalesced batch (the chaos drill)
  never takes sibling requests down with it: the batch falls back to
  per-request serial computation, which involves no executor and thus
  no injected faults.

Scheduling: requests bucket per ``(matrix key, kind, solver params)``.
The first request of a bucket arms a ``window``-seconds flush timer;
the ``max_batch``-th flushes immediately. Flushing moves the bucket
into an asyncio task that computes on a worker thread
(``run_in_executor``) so the event loop keeps admitting requests while
kernels run. A per-``(key, k)`` asyncio lock serializes solves that
share a bound operator's workspaces — and is released *before* any
serial fallback, so a failing batch can never deadlock against its
own retries.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional

import numpy as np

from ..obs.metrics import MetricsRegistry, SLO, SLOEvaluator, SLOReport
from ..obs.tracer import active as _active_tracer
from ..resilience.errors import ExecutionError
from ..solvers.block_cg import block_conjugate_gradient
from ..solvers.cg import CGResult
from .errors import (
    DeadlineExceededError,
    QueueFullError,
    ServerClosedError,
)
from .registry import OperatorRegistry, RegisteredOperator

__all__ = [
    "SpMVResponse", "CGResponse", "SolverServer", "serial_compute",
]


def serial_compute(
    entry: RegisteredOperator, kind: str, params: tuple,
    vec: np.ndarray,
):
    """What one request computes *alone* on the serial reference
    driver: the bit-identity oracle (load generator, tests) and the
    chaos fallback path. Returns an ndarray for ``"spmv"``, a
    :class:`CGResult` for ``"cg"``."""
    if kind == "spmv":
        return entry.reference(vec)
    tol, max_iter = params
    # The lambda hides ``bind`` so block_cg applies the serial driver
    # directly instead of binding a throwaway operator.
    res = block_conjugate_gradient(
        lambda X: entry.serial_driver(X), vec[:, None],
        tol=tol, max_iter=max_iter,
    )
    return res.column(0)


@dataclass(frozen=True)
class SpMVResponse:
    """One served ``A @ x``."""

    y: np.ndarray
    #: Width of the batch this request was computed in (1 = solo).
    coalesced: int
    latency_s: float


@dataclass(frozen=True)
class CGResponse:
    """One served CG solve (always computed as a block-CG column)."""

    result: CGResult
    #: Width of the block this solve shared its SpM×Ms with (1 = solo).
    coalesced: int
    latency_s: float

    @property
    def x(self) -> np.ndarray:
        return self.result.x


@dataclass
class _Request:
    """One admitted request, alive until its future resolves."""

    kind: str                       # "spmv" | "cg"
    vec: np.ndarray                 # x (spmv) or b (cg)
    fut: asyncio.Future
    t_submit: float                 # perf_counter() at admission
    deadline: Optional[float]       # absolute perf_counter() or None
    budget_s: float = 0.0           # original deadline budget (errors)
    params: tuple = ()              # (tol, max_iter) for cg


@dataclass
class _Bucket:
    """Requests waiting to be flushed as one batch."""

    requests: list = field(default_factory=list)
    timer: Optional[asyncio.TimerHandle] = None


class SolverServer:
    """Admission-controlled asyncio scheduler over an
    :class:`~repro.serve.registry.OperatorRegistry`.

    Parameters
    ----------
    registry : operators to serve, keyed by matrix fingerprint.
    window : float
        Coalescing window in seconds. Requests for the same
        ``(matrix, kind, params)`` arriving within one window batch
        together. ``0`` still coalesces submissions from the same
        event-loop tick (``asyncio.gather``).
    max_batch : int
        Batch-width cap (the paper's SpM×M sweet spot is ~8 columns:
        wider blocks stop amortizing matrix traffic and start thrashing
        the x-block in cache). Reaching it flushes immediately.
    max_pending : int
        Admission limit: requests in flight (queued + computing). The
        ``max_pending + 1``-th submission fails fast with
        :class:`~repro.serve.errors.QueueFullError`.
    coalesce : bool
        ``False`` serves every request solo (the benchmark baseline);
        admission control and deadlines still apply.
    """

    def __init__(
        self,
        registry: OperatorRegistry,
        *,
        window: float = 0.002,
        max_batch: int = 8,
        max_pending: int = 64,
        coalesce: bool = True,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        self.registry = registry
        self.window = float(window)
        self.max_batch = int(max_batch)
        self.max_pending = int(max_pending)
        self.coalesce = bool(coalesce)
        self.metrics = MetricsRegistry()
        self._pending = 0
        self._closed = False
        self._buckets: dict[tuple, _Bucket] = {}
        self._op_locks: dict[tuple, asyncio.Lock] = {}
        self._tasks: set[asyncio.Task] = set()
        self._slos = SLOEvaluator(self.metrics)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    async def spmv(
        self, key: str, x: np.ndarray, *,
        deadline: Optional[float] = None,
    ) -> SpMVResponse:
        """Serve ``A @ x`` for the matrix registered under ``key``.

        ``deadline`` is a per-request budget in seconds; an expired
        request fails with
        :class:`~repro.serve.errors.DeadlineExceededError` instead of
        returning a late result.
        """
        return await self._submit(key, "spmv", np.asarray(
            x, dtype=np.float64), deadline, ())

    async def cg(
        self, key: str, b: np.ndarray, *,
        tol: float = 1e-8,
        max_iter: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> CGResponse:
        """Solve ``A x = b`` under ``key``. Compatible solves (same
        matrix, same ``tol``/``max_iter``) coalesce into one block-CG;
        the response's per-column result is bit-identical to a solo
        solve either way."""
        return await self._submit(key, "cg", np.asarray(
            b, dtype=np.float64), deadline, (float(tol), max_iter))

    @property
    def pending(self) -> int:
        """Requests in flight (queued + computing)."""
        return self._pending

    def add_slo(
        self, name: str, threshold_ms: float, *,
        percentile: float = 99.0, window: int = 60,
        kind: Optional[str] = None,
    ) -> SLO:
        """Attach a latency objective over ``serve.request_ns``
        (optionally pinned to one request ``kind``). Thresholds are
        given in milliseconds; evaluate with :meth:`slo_reports`."""
        labels = {} if kind is None else {"kind": kind}
        return self._slos.add(
            SLO(name, threshold_ms * 1e6, percentile, window),
            "serve.request_ns", **labels,
        )

    def slo_reports(self) -> list[SLOReport]:
        """Evaluate every attached objective against the live metrics
        (streaming — call repeatedly)."""
        return self._slos.evaluate()

    async def close(self) -> None:
        """Refuse new work, fail queued requests with
        :class:`~repro.serve.errors.ServerClosedError`, and wait for
        in-flight batches to finish. The registry (and its bound
        operators) stays open — it is shared state the caller owns."""
        if self._closed:
            return
        self._closed = True
        for bucket in self._buckets.values():
            if bucket.timer is not None:
                bucket.timer.cancel()
            for req in bucket.requests:
                self._finish_error(req, ServerClosedError(
                    "server closed while the request was queued"
                ), counter="serve.failed")
        self._buckets.clear()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    async def __aenter__(self) -> "SolverServer":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Admission and coalescing
    # ------------------------------------------------------------------
    async def _submit(self, key, kind, vec, deadline, params):
        if self._closed:
            raise ServerClosedError()
        if self._pending >= self.max_pending:
            self.metrics.counter(
                "serve.rejected", reason="queue_full"
            ).inc()
            raise QueueFullError(self._pending, self.max_pending)
        entry = self.registry.get(key)  # raises UnknownOperatorError
        if vec.shape != (entry.n,):
            raise ValueError(
                f"vector has shape {vec.shape}, operator {key!r} "
                f"expects ({entry.n},)"
            )
        now = perf_counter()
        req = _Request(
            kind=kind,
            vec=np.ascontiguousarray(vec),
            fut=asyncio.get_running_loop().create_future(),
            t_submit=now,
            deadline=None if deadline is None else now + deadline,
            budget_s=deadline or 0.0,
            params=params,
        )
        self._pending += 1
        self.metrics.gauge("serve.pending").set(self._pending)
        self.metrics.counter("serve.requests", kind=kind).inc()
        if self.coalesce:
            self._enqueue(entry, kind, params, req)
        else:
            self._spawn_batch(entry, kind, params, [req])
        return await req.fut

    def _enqueue(self, entry, kind, params, req) -> None:
        bkey = (entry.key, kind, params)
        bucket = self._buckets.get(bkey)
        if bucket is None:
            bucket = self._buckets[bkey] = _Bucket()
        bucket.requests.append(req)
        if len(bucket.requests) >= self.max_batch:
            self._flush(bkey)
        elif bucket.timer is None:
            bucket.timer = asyncio.get_running_loop().call_later(
                self.window, self._flush, bkey
            )

    def _flush(self, bkey) -> None:
        bucket = self._buckets.pop(bkey, None)
        if bucket is None or not bucket.requests:
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        entry = self.registry.get(bkey[0])
        self._spawn_batch(entry, bkey[1], bkey[2], bucket.requests)

    def _spawn_batch(self, entry, kind, params, requests) -> None:
        task = asyncio.get_running_loop().create_task(
            self._run_batch(entry, kind, params, requests)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def _op_lock(self, key: str, k: Optional[int]) -> asyncio.Lock:
        """Serializes solves sharing the ``(key, k)`` bound operator:
        its persistent workspaces hold one computation at a time (a
        block-CG reads the spmm result across an entire iteration)."""
        lkey = (key, k)
        lock = self._op_locks.get(lkey)
        if lock is None:
            lock = self._op_locks[lkey] = asyncio.Lock()
        return lock

    async def _run_batch(self, entry, kind, params, requests) -> None:
        live = self._drop_expired(requests)
        if not live:
            return
        k = len(live)
        self.metrics.counter("serve.batches", kind=kind).inc()
        self.metrics.histogram("serve.batch_k", kind=kind).record(k)
        if k > 1:
            self.metrics.counter("serve.coalesced_requests").inc(k)
        opk = None if (kind == "spmv" and k == 1) else k
        loop = asyncio.get_running_loop()
        t_start = perf_counter()
        for req in live:
            self.metrics.histogram(
                "serve.queue_ns", kind=kind
            ).record((t_start - req.t_submit) * 1e9)
        try:
            async with self._op_lock(entry.key, opk):
                values = await loop.run_in_executor(
                    None, self._compute, entry, kind, params, live, opk
                )
        except ExecutionError:
            # Chaos containment: the parallel batch faulted. The lock
            # is released here (the async-with exited), so the serial
            # per-request fallback cannot deadlock against it.
            await self._fallback(entry, kind, params, live)
            return
        except Exception as exc:  # invalid params etc.: fail the batch
            for req in live:
                self._finish_error(req, exc, counter="serve.failed")
            return
        self._demux(live, values, k, kind)

    def _drop_expired(self, requests) -> list:
        """Fail requests whose deadline passed while queued."""
        now = perf_counter()
        live = []
        for req in requests:
            if req.fut.done():  # caller went away (cancellation)
                self._release(req)
            elif req.deadline is not None and now >= req.deadline:
                self.metrics.counter(
                    "serve.expired", stage="queued"
                ).inc()
                self._finish_error(req, DeadlineExceededError(
                    "queued", req.budget_s
                ))
            else:
                live.append(req)
        return live

    def _compute(self, entry, kind, params, live, opk):
        """Worker-thread body: one kernel invocation for the batch.
        Returns one value per request (ndarray for spmv,
        :class:`CGResult` for cg)."""
        if kind == "spmv":
            op = entry.operator(opk)
            if opk is None:
                y = op(live[0].vec, out=np.empty(entry.n))
                return [y]
            X = np.stack([req.vec for req in live], axis=1)
            Y = op(X, out=np.empty((entry.n, len(live))))
            return [np.ascontiguousarray(Y[:, j])
                    for j in range(len(live))]
        # CG: always the block solver, even for k=1 — solo and
        # coalesced solves then share one code path and demuxing a
        # column is bit-identical by construction (block_cg module
        # docstring).
        tol, max_iter = params
        op = entry.operator(opk)
        B = np.stack([req.vec for req in live], axis=1)
        should_stop = self._deadline_stop(live)
        res = block_conjugate_gradient(
            op, B, tol=tol, max_iter=max_iter, should_stop=should_stop
        )
        return [res.column(j) for j in range(len(live))]

    @staticmethod
    def _deadline_stop(live):
        """Cut a running solve only once *every* coalesced request's
        deadline has passed — a column with budget left must get the
        exact iterations a solo solve would have run."""
        deadlines = [req.deadline for req in live]
        if any(d is None for d in deadlines):
            return None
        stop_at = max(deadlines)
        return lambda: perf_counter() >= stop_at

    async def _fallback(self, entry, kind, params, live) -> None:
        """Serial per-request completion after a faulted batch. Runs on
        the reference driver — no executor, hence no injected faults —
        and is bit-identical by definition."""
        loop = asyncio.get_running_loop()
        for req in live:
            self.metrics.counter("serve.fallback_requests").inc()
            try:
                value = await loop.run_in_executor(
                    None, serial_compute, entry, kind, params, req.vec
                )
            except Exception as exc:
                self._finish_error(req, exc, counter="serve.failed")
            else:
                self._demux([req], [value], 1, kind)

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _demux(self, live, values, k, kind) -> None:
        now = perf_counter()
        tracer = _active_tracer()
        for req, value in zip(live, values):
            if req.deadline is not None and now >= req.deadline:
                # The result exists but the contract is the deadline:
                # a late answer is a failure, not a slow success.
                self.metrics.counter(
                    "serve.expired", stage="computing"
                ).inc()
                self._finish_error(req, DeadlineExceededError(
                    "computing", req.budget_s
                ))
                continue
            latency = now - req.t_submit
            self.metrics.histogram(
                "serve.request_ns", kind=kind
            ).record(latency * 1e9)
            tracer.record_span(
                "serve.request", int(latency * 1e9),
                kind=kind, coalesced=k,
            )
            if kind == "spmv":
                resp = SpMVResponse(value, k, latency)
            else:
                resp = CGResponse(value, k, latency)
            if not req.fut.done():
                req.fut.set_result(resp)
            self._release(req)

    def _finish_error(self, req, exc, *, counter=None) -> None:
        if counter is not None:
            self.metrics.counter(counter, kind=req.kind).inc()
        if not req.fut.done():
            req.fut.set_exception(exc)
        else:
            # Nobody is waiting (cancelled); don't warn about the
            # never-retrieved exception.
            pass
        self._release(req)

    def _release(self, req) -> None:
        self._pending -= 1
        self.metrics.gauge("serve.pending").set(self._pending)
