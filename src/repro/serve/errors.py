"""Typed failure taxonomy for the serving front end.

Mirrors the conventions of :mod:`repro.resilience.errors`: every class
derives from ``RuntimeError`` (via :class:`ServeError`) so coarse
``except RuntimeError`` call sites keep working, while the load
generator, the chaos drill and the tests can match the precise taxon.
A request admitted into :class:`~repro.serve.server.SolverServer`
terminates in exactly one of three ways — a result, one of these
errors, or an :class:`~repro.resilience.errors.ExecutionError`
propagated from the compute layer. It never hangs.

=============================  ========================================
:class:`ServeError`            base class for serving-side failures
:class:`QueueFullError`        admission control rejected the request:
                               ``max_pending`` requests already in
                               flight (backpressure signal)
:class:`DeadlineExceededError` the request's deadline expired while it
                               was ``"queued"`` (never computed) or
                               ``"computing"`` (solve cut short)
:class:`ServerClosedError`     submitted to a closed server, or the
                               server closed while the request waited
:class:`UnknownOperatorError`  no operator registered under the key
=============================  ========================================
"""

from __future__ import annotations

__all__ = [
    "ServeError",
    "QueueFullError",
    "DeadlineExceededError",
    "ServerClosedError",
    "UnknownOperatorError",
]


class ServeError(RuntimeError):
    """Base class for serving-side failures."""


class QueueFullError(ServeError):
    """Admission control: the server already holds ``max_pending``
    in-flight requests. The caller should back off and retry; the
    rejection is immediate (no queueing) so backpressure propagates."""

    def __init__(self, pending: int, limit: int):
        super().__init__(
            f"server at capacity: {pending} pending requests "
            f"(max_pending={limit})"
        )
        self.pending = int(pending)
        self.limit = int(limit)

    def __reduce__(self):
        return (self.__class__, (self.pending, self.limit))


class DeadlineExceededError(ServeError):
    """The per-request deadline expired.

    ``stage`` records where: ``"queued"`` means the request never
    reached the kernel (it expired in the coalescing window or behind
    a busy operator); ``"computing"`` means the solve started but was
    cut short by the deadline hook and the partial result was
    discarded.
    """

    def __init__(self, stage: str, budget_s: float):
        super().__init__(
            f"deadline exceeded while {stage} "
            f"(budget {budget_s * 1e3:.1f} ms)"
        )
        self.stage = stage
        self.budget_s = float(budget_s)

    def __reduce__(self):
        return (self.__class__, (self.stage, self.budget_s))


class ServerClosedError(ServeError):
    """The server is closed: new submissions are refused and requests
    still waiting at close time fail with this instead of hanging."""

    def __init__(self, msg: str = "server is closed"):
        super().__init__(msg)


class UnknownOperatorError(ServeError, KeyError):
    """No operator registered under the requested key. Also a
    ``KeyError`` so registry lookups match mapping idiom."""

    def __init__(self, key: str):
        RuntimeError.__init__(
            self, f"no operator registered under key {key!r}"
        )
        self.key = key

    def __str__(self) -> str:  # KeyError.__str__ repr-quotes args
        return RuntimeError.__str__(self)

    def __reduce__(self):
        return (self.__class__, (self.key,))
