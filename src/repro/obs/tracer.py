"""In-kernel tracing and metrics: spans, per-thread buffers, counters.

The paper's claims are *per-phase* (compute vs. reduction, Fig. 9/10)
and *per-thread* (effective-region density and load balance, Fig. 4/5),
so the execution stack needs first-class instrumentation rather than
ad-hoc timing around it. This module supplies the hot-path half of that
layer; :mod:`repro.obs.export` turns the recorded data into reports.

Design constraints, in order:

* **Disabled cost is one attribute check.** The module-level active
  tracer defaults to :data:`NULL_TRACER` (``enabled=False``); its
  ``span()`` returns a shared no-op context manager and ``count()`` /
  ``event()`` return immediately. Kernels therefore instrument
  unconditionally and pay ~an ``if`` when nobody is tracing.
* **No locks on the hot path.** Every recording thread appends to its
  own buffer (reached through ``threading.local``); the tracer lock is
  taken only once per thread, when its buffer is first created.
* **Zero dependencies.** Pure stdlib — the tracer must be importable
  from the lowest layers (``formats.base``) without cycles.

Timing uses :func:`time.perf_counter_ns`. Span nesting is tracked per
thread with a depth counter so exporters can rebuild the hierarchy
without parent pointers.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter_ns
from typing import Iterator, Optional, Sequence

from .metrics import MetricsRegistry

__all__ = [
    "Tracer",
    "SpanEvent",
    "NULL_TRACER",
    "active",
    "set_active",
    "tracing",
    "warn",
    "warning_counts",
    "reset_warning_counts",
    "percentile",
    "summarize_ns",
]

#: Sentinel duration of instant (zero-width) events.
INSTANT = -1


class _NullSpan:
    """Shared do-nothing context manager returned by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class SpanEvent:
    """One completed span (or instant event, ``dur_ns == INSTANT``)."""

    __slots__ = ("name", "start_ns", "dur_ns", "depth", "attrs")

    def __init__(self, name, start_ns, dur_ns, depth, attrs):
        self.name = name
        self.start_ns = start_ns
        self.dur_ns = dur_ns
        self.depth = depth
        self.attrs = attrs

    @property
    def is_instant(self) -> bool:
        return self.dur_ns == INSTANT

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SpanEvent {self.name} depth={self.depth} "
            f"dur={self.dur_ns}ns>"
        )


class _ThreadBuffer:
    """Per-thread event list + counter dict; only its owner writes."""

    __slots__ = ("ident", "thread_name", "events", "counters", "depth")

    def __init__(self, ident: int, thread_name: str):
        self.ident = ident
        self.thread_name = thread_name
        self.events: list[SpanEvent] = []
        self.counters: dict[str, float] = {}
        self.depth = 0


class _Span:
    """Live span context manager (enabled tracers only)."""

    __slots__ = ("_buf", "name", "attrs", "start_ns")

    def __init__(self, buf: _ThreadBuffer, name: str, attrs):
        self._buf = buf
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self._buf.depth += 1
        self.start_ns = perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = perf_counter_ns()
        buf = self._buf
        buf.depth -= 1
        buf.events.append(
            SpanEvent(
                self.name, self.start_ns, end - self.start_ns,
                buf.depth, self.attrs,
            )
        )
        return False


class Tracer:
    """Collects spans, instant events and counters across threads.

    Parameters
    ----------
    enabled : bool
        A disabled tracer records nothing and its hot-path methods are
        near-free; :data:`NULL_TRACER` is the shared disabled instance.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.origin_ns = perf_counter_ns()
        self._local = threading.local()
        self._buffers: list[_ThreadBuffer] = []
        self._lock = threading.Lock()
        #: Streaming metrics riding on the same enablement gate: code
        #: records with ``t.metrics.histogram(...)`` only after checking
        #: ``t.enabled``, so the disabled path stays one attribute test.
        self.metrics = MetricsRegistry()

    # -- recording (hot path) -------------------------------------------
    def span(self, name: str, **attrs):
        """Nestable timed region; use as ``with tracer.span("mult"):``.

        Disabled tracers return the shared no-op span.
        """
        if not self.enabled:
            return NULL_SPAN
        return _Span(self._buffer(), name, attrs or None)

    def record_span(
        self, name: str, dur_ns: int, *,
        start_ns: Optional[int] = None, **attrs,
    ) -> None:
        """Record a span that was timed *elsewhere* — e.g. a task
        executed in a worker process, whose duration came back over the
        pool pipe with its ``pid``. Recorded on the calling thread's
        buffer; when ``start_ns`` is omitted, the span is back-dated so
        it ends now."""
        if not self.enabled:
            return
        buf = self._buffer()
        start = (
            start_ns if start_ns is not None
            else perf_counter_ns() - int(dur_ns)
        )
        buf.events.append(
            SpanEvent(name, start, int(dur_ns), buf.depth, attrs or None)
        )

    def event(self, name: str, **attrs) -> None:
        """Record an instant (zero-duration) event, e.g. one solver
        iteration's residual."""
        if not self.enabled:
            return
        buf = self._buffer()
        buf.events.append(
            SpanEvent(name, perf_counter_ns(), INSTANT, buf.depth,
                      attrs or None)
        )

    def count(self, name: str, value: float = 1) -> None:
        """Accumulate a named counter (per-thread, merged at export)."""
        if not self.enabled:
            return
        counters = self._buffer().counters
        counters[name] = counters.get(name, 0) + value

    def _buffer(self) -> _ThreadBuffer:
        buf = getattr(self._local, "buf", None)
        if buf is None:
            t = threading.current_thread()
            buf = _ThreadBuffer(t.ident or 0, t.name)
            self._local.buf = buf
            with self._lock:
                self._buffers.append(buf)
        return buf

    # -- introspection (cold path) --------------------------------------
    def events(self) -> list[tuple[_ThreadBuffer, SpanEvent]]:
        """Snapshot of all recorded events as (thread buffer, event)."""
        with self._lock:
            buffers = list(self._buffers)
        return [(buf, ev) for buf in buffers for ev in buf.events]

    def span_durations_ns(self) -> dict[str, list[int]]:
        """Span name -> list of recorded durations (instants excluded)."""
        out: dict[str, list[int]] = {}
        for _, ev in self.events():
            if not ev.is_instant:
                out.setdefault(ev.name, []).append(ev.dur_ns)
        return out

    def counters(self) -> dict[str, float]:
        """Counters merged across all threads."""
        merged: dict[str, float] = {}
        with self._lock:
            buffers = list(self._buffers)
        for buf in buffers:
            for name, value in buf.counters.items():
                merged[name] = merged.get(name, 0) + value
        return merged

    def n_threads_seen(self) -> int:
        with self._lock:
            return len(self._buffers)

    def clear(self) -> None:
        """Drop all recorded data (buffers of live threads persist but
        are emptied; the origin timestamp resets)."""
        with self._lock:
            for buf in self._buffers:
                buf.events.clear()
                buf.counters.clear()
        self.metrics.clear()
        self.origin_ns = perf_counter_ns()


#: The shared disabled tracer — the default "nobody is tracing" state.
NULL_TRACER = Tracer(enabled=False)

_active: Tracer = NULL_TRACER


def active() -> Tracer:
    """The tracer instrumented code records into right now."""
    return _active


def set_active(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` (``None`` = :data:`NULL_TRACER`) as the
    active tracer; returns the previous one for restoration."""
    global _active
    prev = _active
    _active = tracer if tracer is not None else NULL_TRACER
    return prev


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Activate a tracer for the duration of a block::

        with tracing() as t:
            kernel(x)
        print(t.counters())
    """
    t = tracer if tracer is not None else Tracer()
    prev = set_active(t)
    try:
        yield t
    finally:
        set_active(prev)


# ----------------------------------------------------------------------
# Warning counters — always recorded, independent of the active tracer
# ----------------------------------------------------------------------
_warn_lock = threading.Lock()
_warning_counts: dict[str, int] = {}


def warn(name: str, value: int = 1) -> None:
    """Bump a process-wide warning counter (e.g. a bound operator
    garbage-collected without ``close()``). Unlike span/counter data
    this is recorded even with tracing disabled — a leak is a leak —
    and additionally mirrored into the active tracer when enabled."""
    with _warn_lock:
        _warning_counts[name] = _warning_counts.get(name, 0) + value
    t = _active
    if t.enabled:
        t.count(f"warn.{name}", value)


def warning_counts() -> dict[str, int]:
    with _warn_lock:
        return dict(_warning_counts)


def reset_warning_counts() -> None:
    with _warn_lock:
        _warning_counts.clear()


# ----------------------------------------------------------------------
# Duration statistics (shared by exporters and the benchmarks)
# ----------------------------------------------------------------------
def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (numpy's default method),
    dependency-free so the benchmarks and exporters share one
    definition of p50/p95."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if any(v != v for v in values):
        raise ValueError("percentile of data containing NaN")
    data = sorted(values)
    if not data:
        raise ValueError("percentile of an empty sequence")
    if len(data) == 1:
        return float(data[0])
    pos = q / 100 * (len(data) - 1)
    lo = int(pos)
    frac = pos - lo
    if lo + 1 >= len(data):
        return float(data[-1])
    return float(data[lo] * (1 - frac) + data[lo + 1] * frac)


def summarize_ns(samples_ns: Sequence[float]) -> dict[str, float]:
    """p50/p95/min/max/mean/total statistics of nanosecond samples,
    reported in milliseconds — the one summary shape used by the span
    exporters and the wall-clock benchmarks alike."""
    if not samples_ns:
        raise ValueError("summarize_ns needs at least one sample")
    if any(v != v for v in samples_ns):
        raise ValueError("summarize_ns of data containing NaN")
    n = len(samples_ns)
    total = float(sum(samples_ns))
    return {
        "count": n,
        "total_ms": total / 1e6,
        "mean_ms": total / n / 1e6,
        "p50_ms": percentile(samples_ns, 50) / 1e6,
        "p95_ms": percentile(samples_ns, 95) / 1e6,
        "min_ms": min(samples_ns) / 1e6,
        "max_ms": max(samples_ns) / 1e6,
    }
