"""Observability layer: in-kernel tracing, metrics and exporters.

``repro.obs`` is the zero-dependency instrumentation substrate the
execution stack (executor, parallel drivers, bound operators, solvers,
format caches) records into. Nothing is collected unless a tracer is
activated (``with tracing() as t: ...`` or ``set_active``); the
disabled-path cost is a single attribute check per instrumentation
point. See DESIGN.md §4d for the span taxonomy and counter definitions.
"""

from .metrics import (
    SLO,
    Counter,
    Gauge,
    LogHistogram,
    MetricsRegistry,
    SLOEvaluator,
    SLOReport,
    metrics_report,
    openmetrics_text,
    write_metrics_jsonl,
)
from .export import (
    TRACE_SCHEMA,
    chrome_events,
    load_trace,
    summarize,
    text_report,
    trace_document,
    validate_trace,
    write_trace,
)
from .tracer import (
    NULL_SPAN,
    NULL_TRACER,
    SpanEvent,
    Tracer,
    active,
    percentile,
    reset_warning_counts,
    set_active,
    summarize_ns,
    tracing,
    warn,
    warning_counts,
)

__all__ = [
    "Tracer",
    "SpanEvent",
    "NULL_TRACER",
    "NULL_SPAN",
    "active",
    "set_active",
    "tracing",
    "warn",
    "warning_counts",
    "reset_warning_counts",
    "percentile",
    "summarize_ns",
    "LogHistogram",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "SLO",
    "SLOEvaluator",
    "SLOReport",
    "openmetrics_text",
    "metrics_report",
    "write_metrics_jsonl",
    "TRACE_SCHEMA",
    "summarize",
    "chrome_events",
    "trace_document",
    "write_trace",
    "load_trace",
    "validate_trace",
    "text_report",
]
