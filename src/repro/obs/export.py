"""Trace exporters: JSON summary, Chrome ``trace_event`` timeline, text.

One trace document serves every consumer:

* ``traceEvents`` — the Chrome/Perfetto JSON Object Format (load the
  file directly in ``chrome://tracing`` or https://ui.perfetto.dev for
  the per-thread timeline; extra top-level keys are ignored by both).
* ``summary.spans`` — p50/p95/total per span name (the machine-readable
  phase breakdown benchmarks and CI assert on).
* ``summary.counters`` — merged traffic/cache/solver counters.
* ``summary.metrics`` — the tracer's streaming-metrics snapshot
  (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`): histograms
  with bucket data and p50/p95/p99 summaries, counters, gauges.

Schema v2 additionally renders every merged tracer counter as a
Chrome counter track (``"ph": "C"``): a zero sample at the timeline
origin and the final total at the last event timestamp, so traffic
and reduction volumes are visible alongside the span timeline.

:func:`validate_trace` checks the schema; the ``repro trace`` CLI
subcommand and the CI smoke job both go through it, so a malformed
export fails loudly rather than producing an unloadable timeline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from .tracer import Tracer, summarize_ns, warning_counts

__all__ = [
    "TRACE_SCHEMA",
    "summarize",
    "chrome_events",
    "trace_document",
    "write_trace",
    "load_trace",
    "validate_trace",
    "text_report",
]

#: Schema tag stamped into every trace document.
TRACE_SCHEMA = "repro-trace-v2"

#: Schemas :func:`validate_trace` accepts: current plus still-readable
#: predecessors (v1 lacks counter tracks and ``summary.metrics``).
_READABLE_SCHEMAS = ("repro-trace-v2", "repro-trace-v1")

#: Keys every span-summary entry must carry.
_SPAN_STAT_KEYS = (
    "count", "total_ms", "mean_ms", "p50_ms", "p95_ms", "min_ms", "max_ms",
)


def summarize(tracer: Tracer) -> dict:
    """Per-span-name statistics plus merged counters and warnings."""
    spans = {
        name: summarize_ns(durs)
        for name, durs in sorted(tracer.span_durations_ns().items())
    }
    n_events = sum(
        1 for _, ev in tracer.events() if ev.is_instant
    )
    return {
        "spans": spans,
        "counters": dict(sorted(tracer.counters().items())),
        "metrics": tracer.metrics.snapshot(),
        "warnings": warning_counts(),
        "n_instant_events": n_events,
        "n_threads": tracer.n_threads_seen(),
    }


def chrome_events(tracer: Tracer) -> list[dict]:
    """Chrome ``trace_event`` list: one complete (``"ph": "X"``) event
    per span, one instant (``"ph": "i"``) per event, a counter track
    (``"ph": "C"``) per merged tracer counter, plus thread-name
    metadata so the timeline shows real thread labels. Timestamps are
    microseconds relative to the tracer's origin."""
    origin = tracer.origin_ns
    out: list[dict] = []
    named: set[int] = set()
    last_ts = 0.0
    for buf, ev in tracer.events():
        tid = buf.ident
        if tid not in named:
            named.add(tid)
            out.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": buf.thread_name},
            })
        record = {
            "name": ev.name,
            "pid": 0,
            "tid": tid,
            "ts": (ev.start_ns - origin) / 1e3,
        }
        if ev.attrs:
            record["args"] = dict(ev.attrs)
        if ev.is_instant:
            record["ph"] = "i"
            record["s"] = "t"
            last_ts = max(last_ts, record["ts"])
        else:
            record["ph"] = "X"
            record["dur"] = ev.dur_ns / 1e3
            last_ts = max(last_ts, record["ts"] + record["dur"])
        out.append(record)
    # Counter tracks: Chrome draws "C" samples as a stacked area chart
    # per name. Counters carry totals, not timestamps, so each track is
    # a ramp — zero at the origin, the merged total at the last event
    # timestamp.
    for name, value in sorted(tracer.counters().items()):
        for ts, v in ((0.0, 0), (last_ts, value)):
            out.append({
                "name": name,
                "ph": "C",
                "pid": 0,
                "tid": 0,
                "ts": ts,
                "args": {"value": v},
            })
    # Stable timeline order (metadata events carry no ts -> sort first).
    out.sort(key=lambda r: r.get("ts", -1.0))
    return out


def trace_document(tracer: Tracer, meta: Optional[dict] = None) -> dict:
    """The complete, self-describing trace export."""
    return {
        "schema": TRACE_SCHEMA,
        "meta": dict(meta or {}),
        "traceEvents": chrome_events(tracer),
        "summary": summarize(tracer),
    }


def write_trace(
    path: Union[str, Path], tracer: Tracer, meta: Optional[dict] = None
) -> Path:
    """Serialize the trace document to ``path`` (Chrome-loadable)."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace_document(tracer, meta), indent=1))
    return path


def load_trace(path: Union[str, Path]) -> dict:
    """Parse a trace file (no validation; see :func:`validate_trace`)."""
    return json.loads(Path(path).read_text())


def validate_trace(doc) -> list[str]:
    """Schema check of a trace document; returns the list of problems
    (empty = valid). Covers exactly what the consumers rely on: the
    Chrome loader needs well-formed ``traceEvents``; the benchmarks and
    CI need the span statistics and counters."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document must be a JSON object, got {type(doc).__name__}"]
    schema = doc.get("schema")
    if schema not in _READABLE_SCHEMAS:
        problems.append(
            f"schema must be one of {_READABLE_SCHEMAS}, got {schema!r}"
        )
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        problems.append("traceEvents must be a list")
        events = []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"traceEvents[{i}] is not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                problems.append(f"traceEvents[{i}] missing {key!r}")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M", "C"):
            problems.append(f"traceEvents[{i}] has unknown ph {ph!r}")
        if ph == "X":
            if not isinstance(ev.get("ts"), (int, float)):
                problems.append(f"traceEvents[{i}] ph=X missing numeric ts")
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"traceEvents[{i}] ph=X needs non-negative dur"
                )
        if ph == "C":
            if not isinstance(ev.get("ts"), (int, float)):
                problems.append(f"traceEvents[{i}] ph=C missing numeric ts")
            args = ev.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                problems.append(
                    f"traceEvents[{i}] ph=C needs numeric args values"
                )
    summary = doc.get("summary")
    if not isinstance(summary, dict):
        problems.append("summary must be an object")
        return problems
    spans = summary.get("spans")
    if not isinstance(spans, dict):
        problems.append("summary.spans must be an object")
    else:
        for name, stats in spans.items():
            if not isinstance(stats, dict):
                problems.append(f"summary.spans[{name!r}] is not an object")
                continue
            for key in _SPAN_STAT_KEYS:
                if not isinstance(stats.get(key), (int, float)):
                    problems.append(
                        f"summary.spans[{name!r}] missing numeric {key!r}"
                    )
    counters = summary.get("counters")
    if not isinstance(counters, dict) or any(
        not isinstance(v, (int, float)) for v in counters.values()
    ):
        problems.append("summary.counters must map names to numbers")
    if schema == TRACE_SCHEMA:
        # v2: the streaming-metrics snapshot is part of the contract.
        metrics = summary.get("metrics")
        if not isinstance(metrics, dict):
            problems.append("summary.metrics must be an object (schema v2)")
        else:
            for section in ("counters", "gauges", "histograms"):
                entries = metrics.get(section)
                if not isinstance(entries, list):
                    problems.append(
                        f"summary.metrics.{section} must be a list"
                    )
                    continue
                for j, entry in enumerate(entries):
                    if not isinstance(entry, dict) or not isinstance(
                        entry.get("name"), str
                    ):
                        problems.append(
                            f"summary.metrics.{section}[{j}] needs a name"
                        )
    return problems


def text_report(
    source: Union[Tracer, dict], title: str = "trace report"
) -> str:
    """Human-readable phase table from a tracer or a trace document."""
    summary = (
        summarize(source) if isinstance(source, Tracer)
        else source.get("summary", {})
    )
    spans: dict = summary.get("spans", {})
    lines = [title, "=" * len(title), ""]
    if spans:
        grand_total = sum(s["total_ms"] for s in spans.values())
        lines.append(
            f"{'span':<24} {'count':>7} {'total ms':>10} {'p50 ms':>9} "
            f"{'p95 ms':>9} {'share':>7}"
        )
        for name, s in spans.items():
            share = s["total_ms"] / grand_total if grand_total else 0.0
            lines.append(
                f"{name:<24} {s['count']:>7} {s['total_ms']:>10.3f} "
                f"{s['p50_ms']:>9.4f} {s['p95_ms']:>9.4f} {share:>6.1%}"
            )
    else:
        lines.append("(no spans recorded)")
    counters = summary.get("counters", {})
    if counters:
        lines += ["", "counters:"]
        for name, value in counters.items():
            lines.append(f"  {name:<38} {value:>16,.0f}")
    warnings_ = summary.get("warnings", {})
    if warnings_:
        lines += ["", "warnings:"]
        for name, value in warnings_.items():
            lines.append(f"  {name:<38} {value:>16,d}")
    return "\n".join(lines)
