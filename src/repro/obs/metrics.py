"""Streaming metrics: counters, gauges, mergeable log-scale histograms.

The tracer (:mod:`repro.obs.tracer`) records *what happened* — spans
and raw counters a post-hoc exporter summarizes. This module records
*distributions as they stream*: an operator applied a million times
must answer "what is the p99 latency right now" without retaining a
million samples. Three metric kinds cover that:

* :class:`Counter` — monotone accumulator (requests, bytes, errors).
* :class:`Gauge` — last-written value with a timestamp (the current
  residual of a solver, the depth of a queue).
* :class:`LogHistogram` — fixed-bucket log-scale histogram (HDR-style):
  percentiles are exact to within one bucket (default resolution
  ``10^(1/16) ≈ 1.155``, i.e. ≤ 15.5 % relative error), memory is a
  fixed few hundred integers regardless of sample count, and
  :meth:`LogHistogram.merge` is associative and commutative — so
  per-thread shards, per-process deltas and per-run snapshots all
  aggregate into one distribution without coordination.

:class:`MetricsRegistry` applies the tracer's per-thread-shard pattern
to these metrics: every recording thread writes its own shard (reached
through ``threading.local``; the registry lock is taken only when a
thread's shard is first created), and :meth:`MetricsRegistry.snapshot`
merges the shards on the cold path. Snapshots are plain JSON-able
dicts, which is also the cross-process protocol: pool workers snapshot
their local registry per batch and the parent merges the deltas with
:meth:`MetricsRegistry.merge_snapshot` — a ``"processes"`` run reports
the same metric names as a threaded one.

On top sit the consumers: :class:`SLO` (target percentile + threshold
+ error-budget accounting over a sliding window of evaluations),
:func:`openmetrics_text` (Prometheus/OpenMetrics exposition text) and
:func:`write_metrics_jsonl` (append-one-line-per-snapshot series).

Zero dependencies, pure stdlib — importable from the lowest layers,
like the tracer it rides on.
"""

from __future__ import annotations

import json
import math
import threading
import time
from pathlib import Path
from typing import Iterable, Optional, Union

__all__ = [
    "LogHistogram",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "SLO",
    "SLOEvaluator",
    "SLOReport",
    "openmetrics_text",
    "metrics_report",
    "write_metrics_jsonl",
]

#: Default histogram range: 1 ns .. 1e12 ns (~17 minutes) — wide enough
#: for every latency this library measures; out-of-range values clamp
#: into the edge buckets (exact min/max are tracked separately).
DEFAULT_MIN_VALUE = 1.0
DEFAULT_MAX_VALUE = 1e12

#: Default bucket resolution: 16 buckets per decade — a relative width
#: of ``10^(1/16) ≈ 1.155``, so any percentile estimate is within
#: ~15.5 % of an exact order statistic.
DEFAULT_BUCKETS_PER_DECADE = 16


def _check_value(value: float) -> float:
    """Histograms measure magnitudes (durations, byte counts): NaN is a
    recording bug, negative has no bucket."""
    value = float(value)
    if value != value:
        raise ValueError("cannot record NaN into a histogram")
    if value < 0:
        raise ValueError(f"histogram values must be >= 0, got {value}")
    return value


class LogHistogram:
    """Fixed-bucket log-scale histogram with associative merge.

    Bucket ``i`` (for ``i >= 1``) covers the half-open interval
    ``[min_value·10^(i/b), min_value·10^((i+1)/b))`` with ``b =
    buckets_per_decade``; bucket 0 additionally absorbs everything in
    ``[0, min_value]`` and the last bucket everything above
    ``max_value``. Exact ``count``/``sum``/``min``/``max`` are tracked
    alongside the bucket counts, so the mean is exact and percentile
    estimates clamp into the observed range.
    """

    __slots__ = (
        "min_value", "max_value", "buckets_per_decade", "n_buckets",
        "counts", "count", "sum", "min_seen", "max_seen",
    )

    def __init__(
        self,
        min_value: float = DEFAULT_MIN_VALUE,
        max_value: float = DEFAULT_MAX_VALUE,
        buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
    ):
        if not 0 < min_value < max_value:
            raise ValueError(
                f"need 0 < min_value < max_value, got "
                f"{min_value!r} / {max_value!r}"
            )
        if buckets_per_decade < 1:
            raise ValueError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.buckets_per_decade = int(buckets_per_decade)
        decades = math.log10(self.max_value / self.min_value)
        self.n_buckets = int(math.ceil(decades * buckets_per_decade)) + 1
        self.counts: list[int] = [0] * self.n_buckets
        self.count = 0
        self.sum = 0.0
        self.min_seen = math.inf
        self.max_seen = -math.inf

    # -- recording (hot path) -------------------------------------------
    def bucket_index(self, value: float) -> int:
        """Bucket holding ``value`` (validates NaN/negative)."""
        value = _check_value(value)
        if value <= self.min_value:
            return 0
        i = int(
            math.log10(value / self.min_value) * self.buckets_per_decade
        )
        return min(i, self.n_buckets - 1)

    def record(self, value: float) -> None:
        self.counts[self.bucket_index(value)] += 1
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min_seen:
            self.min_seen = value
        if value > self.max_seen:
            self.max_seen = value

    def record_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.record(v)

    # -- estimation (cold path) -----------------------------------------
    def bucket_edges(self, i: int) -> tuple[float, float]:
        """``[lo, hi)`` bounds of bucket ``i`` (bucket 0's lo is 0.0)."""
        if not 0 <= i < self.n_buckets:
            raise IndexError(f"bucket {i} of {self.n_buckets}")
        b = self.buckets_per_decade
        lo = 0.0 if i == 0 else self.min_value * 10.0 ** (i / b)
        hi = self.min_value * 10.0 ** ((i + 1) / b)
        return lo, hi

    def _representative(self, i: int) -> float:
        """Point estimate for bucket ``i`` — the geometric midpoint,
        clamped into the exactly-tracked observed range."""
        lo, hi = self.bucket_edges(i)
        if i == 0:
            # [0, min_value] has no geometric midpoint; sit just below
            # the resolution floor and let the clamp take over.
            rep = self.min_value * 10.0 ** (-0.5 / self.buckets_per_decade)
        else:
            rep = math.sqrt(lo * hi)
        return min(max(rep, self.min_seen), self.max_seen)

    def percentile(self, q: float) -> float:
        """Rank-selected percentile, exact to within one bucket.

        Uses the nearest-rank definition (``numpy.percentile(...,
        method="nearest")``): the returned value is the representative
        of the bucket containing the sample at rank
        ``round(q/100·(count-1))``.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            raise ValueError("percentile of an empty histogram")
        rank = round(q / 100.0 * (self.count - 1))
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum > rank:
                return self._representative(i)
        return self._representative(self.n_buckets - 1)  # pragma: no cover

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def count_above(self, threshold: float) -> int:
        """Samples strictly above ``threshold``, to bucket resolution:
        the threshold's own bucket is counted as *not* above (samples
        are only ever under-counted, never over-counted — an SLO gate
        on this is conservative toward passing by at most one bucket).
        Exact ``min``/``max`` sharpen the edges."""
        threshold = _check_value(threshold)
        if self.count == 0 or threshold >= self.max_seen:
            return 0
        if threshold < self.min_seen:
            return self.count
        i = self.bucket_index(threshold)
        return sum(self.counts[i + 1:])

    def fraction_above(self, threshold: float) -> float:
        return self.count_above(threshold) / self.count if self.count else 0.0

    def summary(self) -> dict:
        """Fixed-shape statistics block used by the exporters."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min_seen,
            "max": self.max_seen,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    # -- aggregation -----------------------------------------------------
    def compatible(self, other: "LogHistogram") -> bool:
        return (
            self.min_value == other.min_value
            and self.max_value == other.max_value
            and self.buckets_per_decade == other.buckets_per_decade
        )

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """In-place merge of ``other``'s distribution; associative and
        commutative over the bucket counts, count, min and max (the sum
        is float-accumulated and commutes to rounding)."""
        if not self.compatible(other):
            raise ValueError(
                "cannot merge histograms with different bucket layouts"
            )
        for i, c in enumerate(other.counts):
            if c:
                self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        if other.min_seen < self.min_seen:
            self.min_seen = other.min_seen
        if other.max_seen > self.max_seen:
            self.max_seen = other.max_seen
        return self

    def copy(self) -> "LogHistogram":
        new = LogHistogram(
            self.min_value, self.max_value, self.buckets_per_decade
        )
        return new.merge(self)

    # -- wire format (cross-process deltas, JSONL snapshots) -------------
    def to_dict(self) -> dict:
        """JSON-able state: bucket counts as a sparse ``[index, count]``
        list (most of the few hundred buckets are empty)."""
        return {
            "min_value": self.min_value,
            "max_value": self.max_value,
            "buckets_per_decade": self.buckets_per_decade,
            "buckets": [
                [i, c] for i, c in enumerate(self.counts) if c
            ],
            "count": self.count,
            "sum": self.sum,
            "min": self.min_seen if self.count else None,
            "max": self.max_seen if self.count else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LogHistogram":
        h = cls(
            data["min_value"], data["max_value"],
            data["buckets_per_decade"],
        )
        for i, c in data["buckets"]:
            h.counts[int(i)] += int(c)
        h.count = int(data["count"])
        h.sum = float(data["sum"])
        if data.get("min") is not None:
            h.min_seen = float(data["min"])
        if data.get("max") is not None:
            h.max_seen = float(data["max"])
        return h

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<LogHistogram n={self.count}>"


class Counter:
    """Monotone accumulator (per-shard; merged by summing)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, value: float = 1.0) -> None:
        value = float(value)
        if value != value:
            raise ValueError("cannot add NaN to a counter")
        if value < 0:
            raise ValueError(f"counters only go up, got {value}")
        self.value += value


class Gauge:
    """Last-written value; merged across shards by freshest timestamp."""

    __slots__ = ("value", "ts_ns")

    def __init__(self):
        self.value = float("nan")
        self.ts_ns = -1

    def set(self, value: float) -> None:
        self.value = float(value)
        self.ts_ns = time.monotonic_ns()


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Shard:
    """One thread's private metric store; only its owner writes."""

    __slots__ = ("metrics",)

    def __init__(self):
        # (kind, name, label_key) -> metric instance
        self.metrics: dict[tuple, object] = {}


class MetricsRegistry:
    """Per-thread-sharded metric store with merge-on-read snapshots.

    The hot path (``registry.histogram(name, **labels).record(v)``) is
    a ``threading.local`` attribute read plus one dict lookup — no lock
    is ever taken after a thread's shard exists. Aggregation happens in
    :meth:`snapshot` / :meth:`merged_histogram`, which merge shard
    state without disturbing the writers (the worst race is missing a
    concurrent increment, exactly like the tracer's counters).
    """

    def __init__(self):
        self._local = threading.local()
        self._shards: list[_Shard] = []
        self._lock = threading.Lock()

    # -- recording (hot path) -------------------------------------------
    def _shard(self) -> _Shard:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = _Shard()
            self._local.shard = shard
            with self._lock:
                self._shards.append(shard)
        return shard

    def _metric(self, kind: str, factory, name: str, labels: dict):
        key = (kind, name, _label_key(labels))
        metrics = self._shard().metrics
        metric = metrics.get(key)
        if metric is None:
            metric = metrics[key] = factory()
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._metric("counter", Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._metric("gauge", Gauge, name, labels)

    def histogram(self, name: str, **labels) -> LogHistogram:
        return self._metric("histogram", LogHistogram, name, labels)

    # -- aggregation (cold path) ----------------------------------------
    def _merged(self) -> dict[tuple, object]:
        with self._lock:
            shards = list(self._shards)
        merged: dict[tuple, object] = {}
        for shard in shards:
            for key, metric in list(shard.metrics.items()):
                kind = key[0]
                have = merged.get(key)
                if have is None:
                    if kind == "histogram":
                        merged[key] = metric.copy()
                    elif kind == "counter":
                        c = Counter()
                        c.value = metric.value
                        merged[key] = c
                    else:
                        g = Gauge()
                        g.value, g.ts_ns = metric.value, metric.ts_ns
                        merged[key] = g
                elif kind == "histogram":
                    have.merge(metric)
                elif kind == "counter":
                    have.value += metric.value
                elif metric.ts_ns > have.ts_ns:
                    have.value, have.ts_ns = metric.value, metric.ts_ns
        return merged

    def snapshot(self) -> dict:
        """Merged JSON-able view of every metric: the one wire format
        shared by the exporters, the JSONL series and the cross-process
        worker deltas."""
        merged = self._merged()
        out = {"counters": [], "gauges": [], "histograms": []}
        for key in sorted(merged):
            kind, name, labels = key
            metric = merged[key]
            entry = {"name": name, "labels": dict(labels)}
            if kind == "counter":
                entry["value"] = metric.value
                out["counters"].append(entry)
            elif kind == "gauge":
                entry["value"] = metric.value
                out["gauges"].append(entry)
            else:
                entry["data"] = metric.to_dict()
                entry["summary"] = metric.summary()
                out["histograms"].append(entry)
        return out

    def merged_histogram(
        self, name: str, **labels
    ) -> Optional[LogHistogram]:
        """Cross-shard merge of one histogram (``None`` if never
        recorded)."""
        key = ("histogram", name, _label_key(labels))
        return self._merged().get(key)

    def merged_matching(
        self, name: str, **labels
    ) -> Optional[LogHistogram]:
        """Merge of every histogram series named ``name`` whose label
        set is a *superset* of ``labels`` (``None`` if no series
        matches). ``merged_matching("request_ns")`` folds all
        per-``kind`` series into one distribution — what an aggregate
        latency SLO evaluates against."""
        want = set(_label_key(labels))
        merged: Optional[LogHistogram] = None
        for key, metric in self._merged().items():
            if key[0] != "histogram" or key[1] != name:
                continue
            if not want <= set(key[2]):
                continue
            if merged is None:
                merged = metric.copy()
            else:
                merged.merge(metric)
        return merged

    def counter_value(self, name: str, **labels) -> float:
        key = ("counter", name, _label_key(labels))
        metric = self._merged().get(key)
        return metric.value if metric is not None else 0.0

    def gauge_value(self, name: str, **labels) -> float:
        key = ("gauge", name, _label_key(labels))
        metric = self._merged().get(key)
        return metric.value if metric is not None else float("nan")

    def metric_names(self) -> list[str]:
        return sorted({key[1] for key in self._merged()})

    def merge_snapshot(self, snap: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one —
        the parent-side half of the cross-process protocol (workers
        send snapshot deltas back with each batch reply). Applied to
        the calling thread's shard, so it is safe from any thread."""
        for entry in snap.get("counters", ()):
            self.counter(entry["name"], **entry["labels"]).inc(
                entry["value"]
            )
        for entry in snap.get("gauges", ()):
            self.gauge(entry["name"], **entry["labels"]).set(entry["value"])
        for entry in snap.get("histograms", ()):
            self.histogram(entry["name"], **entry["labels"]).merge(
                LogHistogram.from_dict(entry["data"])
            )

    def clear(self) -> None:
        with self._lock:
            for shard in self._shards:
                shard.metrics.clear()


# ----------------------------------------------------------------------
# SLO evaluation: target percentile + threshold + error budget
# ----------------------------------------------------------------------
class SLOReport:
    """One :meth:`SLO.observe` outcome."""

    __slots__ = (
        "name", "percentile", "threshold", "observed", "met",
        "window_count", "window_violations", "budget_fraction",
        "budget_consumed", "healthy",
    )

    def __init__(self, **kw):
        for slot in self.__slots__:
            setattr(self, slot, kw[slot])

    def to_dict(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def render(self) -> str:
        state = "OK" if self.healthy else "VIOLATED"
        observed = (
            f"{self.observed:,.0f}" if self.observed == self.observed
            else "n/a"
        )
        return (
            f"SLO {self.name}: p{self.percentile:g} = {observed} "
            f"(threshold {self.threshold:,.0f}) -> "
            f"{'met' if self.met else 'MISSED'}; error budget "
            f"{100 * self.budget_consumed:.1f}% consumed over "
            f"{self.window_count} samples "
            f"({self.window_violations} above threshold) -> {state}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SLOReport {self.name} healthy={self.healthy}>"


class SLO:
    """A latency objective: "p``percentile`` of samples stay under
    ``threshold``", with error-budget accounting over a sliding window
    of evaluations.

    The error budget is the tolerated violation mass: a p99 objective
    tolerates 1 % of samples above the threshold. Each
    :meth:`observe` call diffs the histogram against the previous
    observation (histograms are cumulative), pushes the delta into the
    window, and reports the budget consumed across the window —
    ``healthy`` goes False when the window's violation fraction
    exceeds the budget, which is a steadier signal than the
    instantaneous percentile alone.
    """

    def __init__(
        self,
        name: str,
        threshold: float,
        percentile: float = 99.0,
        window: int = 60,
    ):
        if not 0 < percentile < 100:
            raise ValueError(
                f"percentile must be in (0, 100), got {percentile}"
            )
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.name = name
        self.threshold = float(threshold)
        self.percentile = float(percentile)
        self.window = int(window)
        self._deltas: list[tuple[int, int]] = []
        self._last_count = 0
        self._last_violations = 0

    @property
    def budget_fraction(self) -> float:
        return 1.0 - self.percentile / 100.0

    def observe(self, hist: LogHistogram) -> SLOReport:
        """Evaluate against the current state of ``hist``; streaming —
        pass the same (growing) histogram repeatedly."""
        count = hist.count
        violations = hist.count_above(self.threshold)
        if count < self._last_count:
            # The histogram was cleared/replaced; restart the diff.
            self._last_count = 0
            self._last_violations = 0
        self._deltas.append(
            (count - self._last_count, violations - self._last_violations)
        )
        self._last_count = count
        self._last_violations = violations
        if len(self._deltas) > self.window:
            del self._deltas[: len(self._deltas) - self.window]
        window_count = sum(d for d, _ in self._deltas)
        window_violations = sum(v for _, v in self._deltas)
        budget = self.budget_fraction
        consumed = (
            (window_violations / window_count) / budget
            if window_count
            else 0.0
        )
        observed = (
            hist.percentile(self.percentile) if count else float("nan")
        )
        met = bool(count) and observed <= self.threshold
        return SLOReport(
            name=self.name,
            percentile=self.percentile,
            threshold=self.threshold,
            observed=observed,
            met=met,
            window_count=window_count,
            window_violations=window_violations,
            budget_fraction=budget,
            budget_consumed=consumed,
            healthy=consumed <= 1.0,
        )


class SLOEvaluator:
    """A set of :class:`SLO` objectives bound to one registry's
    histograms, evaluated together.

    Each objective targets a histogram by name plus an optional label
    *subset* — ``add(SLO(...), "serve.request_ns")`` evaluates against
    the merge of every ``serve.request_ns`` series regardless of its
    ``kind`` label, while ``add(..., kind="cg")`` pins one series.
    :meth:`evaluate` observes every objective against the current
    histogram state (streaming: call it repeatedly as the registry
    grows) and returns the reports; an objective whose histogram has
    recorded nothing yet reports ``met=False`` with ``observed=nan``
    but stays ``healthy`` (an empty window has consumed no budget).
    """

    def __init__(self, registry: "MetricsRegistry"):
        self.registry = registry
        self._objectives: list[tuple[SLO, str, dict]] = []

    def add(self, slo: SLO, metric: str, **labels) -> SLO:
        """Attach ``slo`` to the histogram ``metric`` (label subset
        match; see class docstring). Returns the SLO for chaining."""
        self._objectives.append((slo, metric, dict(labels)))
        return slo

    def __len__(self) -> int:
        return len(self._objectives)

    def evaluate(self) -> list[SLOReport]:
        """One :class:`SLOReport` per objective, in ``add`` order."""
        reports = []
        for slo, metric, labels in self._objectives:
            hist = self.registry.merged_matching(metric, **labels)
            if hist is None:
                hist = LogHistogram()
            reports.append(slo.observe(hist))
        return reports

    @staticmethod
    def all_healthy(reports: Iterable[SLOReport]) -> bool:
        return all(r.healthy for r in reports)

    @staticmethod
    def render(reports: Iterable[SLOReport]) -> str:
        return "\n".join(r.render() for r in reports)


# ----------------------------------------------------------------------
# Exporters: OpenMetrics text, JSONL series, human-readable table
# ----------------------------------------------------------------------
def _om_name(name: str, namespace: str) -> str:
    safe = "".join(
        c if c.isalnum() or c == "_" else "_" for c in name
    )
    return f"{namespace}_{safe}" if namespace else safe


def _om_labels(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    parts = []
    for k, v in sorted(merged.items()):
        val = (
            str(v)
            .replace("\\", r"\\")
            .replace('"', r"\"")
            .replace("\n", r"\n")
        )
        parts.append(f'{k}="{val}"')
    return "{" + ",".join(parts) + "}"


def openmetrics_text(snapshot: dict, namespace: str = "repro") -> str:
    """OpenMetrics/Prometheus exposition text of a registry snapshot.

    Counters become ``<ns>_<name>_total``, gauges plain samples, and
    histograms the cumulative ``_bucket{le=...}`` / ``_sum`` /
    ``_count`` triple (bucket lines only at boundaries where the
    cumulative count changes, plus the mandatory ``le="+Inf"``).
    Terminated with the OpenMetrics ``# EOF`` marker.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def header(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", ()):
        name = _om_name(entry["name"], namespace)
        header(name, "counter")
        lines.append(
            f"{name}_total{_om_labels(entry['labels'])} {entry['value']:g}"
        )
    for entry in snapshot.get("gauges", ()):
        name = _om_name(entry["name"], namespace)
        header(name, "gauge")
        lines.append(
            f"{name}{_om_labels(entry['labels'])} {entry['value']:g}"
        )
    for entry in snapshot.get("histograms", ()):
        name = _om_name(entry["name"], namespace)
        header(name, "histogram")
        labels = entry["labels"]
        hist = LogHistogram.from_dict(entry["data"])
        cum = 0
        for i, c in enumerate(hist.counts):
            if not c:
                continue
            cum += c
            _, hi = hist.bucket_edges(i)
            lines.append(
                f"{name}_bucket{_om_labels(labels, {'le': f'{hi:g}'})} "
                f"{cum}"
            )
        lines.append(
            f"{name}_bucket{_om_labels(labels, {'le': '+Inf'})} "
            f"{hist.count}"
        )
        lines.append(f"{name}_sum{_om_labels(labels)} {hist.sum:g}")
        lines.append(f"{name}_count{_om_labels(labels)} {hist.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_metrics_jsonl(
    path: Union[str, Path], snapshot: dict, meta: Optional[dict] = None
) -> Path:
    """Append one snapshot as a single JSON line — repeated calls build
    the time series the regression tooling diffs."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    record = {
        "ts": time.time(),
        "meta": dict(meta or {}),
        "metrics": snapshot,
    }
    with path.open("a") as fh:
        fh.write(json.dumps(record) + "\n")
    return path


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def metrics_report(snapshot: dict, title: str = "metrics") -> str:
    """Human-readable summary table of a registry snapshot (the
    ``repro metrics`` default output)."""
    lines = [title, "=" * len(title)]
    hists = snapshot.get("histograms", ())
    if hists:
        lines += [
            "",
            f"{'histogram':<44} {'count':>7} {'p50':>12} {'p95':>12} "
            f"{'p99':>12} {'max':>12}",
        ]
        for entry in hists:
            s = entry.get("summary") or {}
            label = f"{entry['name']}{_fmt_labels(entry['labels'])}"
            if s.get("count"):
                lines.append(
                    f"{label:<44} {s['count']:>7} {s['p50']:>12,.0f} "
                    f"{s['p95']:>12,.0f} {s['p99']:>12,.0f} "
                    f"{s['max']:>12,.0f}"
                )
            else:
                lines.append(f"{label:<44} {0:>7}")
    counters = snapshot.get("counters", ())
    if counters:
        lines += ["", "counters:"]
        for entry in counters:
            label = f"{entry['name']}{_fmt_labels(entry['labels'])}"
            lines.append(f"  {label:<50} {entry['value']:>16,.0f}")
    gauges = snapshot.get("gauges", ())
    if gauges:
        lines += ["", "gauges:"]
        for entry in gauges:
            label = f"{entry['name']}{_fmt_labels(entry['labels'])}"
            lines.append(f"  {label:<50} {entry['value']:>16.6g}")
    if not (hists or counters or gauges):
        lines.append("(no metrics recorded)")
    return "\n".join(lines)
