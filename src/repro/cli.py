"""Command-line interface: run the paper's experiments from a shell.

Subcommands
-----------
``suite``
    List the Table I stand-in matrices with their statistics.
``spmv``
    Run one SpM×V configuration functionally and report the machine
    model's prediction for it.
``sweep``
    Thread sweep for one matrix (the Fig. 9/11 view).
``cg``
    Solve a random SPD system from the suite with the chosen kernel.
``fuzz``
    Differential fuzzing of every format × driver × kernel against a
    dense NumPy oracle (seed-deterministic; mismatches shrink to a
    ready-to-paste regression test).
``metrics``
    Run a traced workload and report its streaming metrics — latency/
    traffic histograms, counters, gauges — as a summary table,
    OpenMetrics text or JSON, optionally with an SLO evaluation and
    the measured-vs-modeled attribution report.
``serve``
    Stand up the async solver server over one suite matrix and drive
    it with the closed-loop load generator — including the chaos
    drill (``--executor chaos``), where every request must still
    complete correctly (serial fallback) or fail typed.
``loadgen``
    A/B measurement: the same load with coalescing on and off, with
    per-response bit-identity audits; optional JSON report.
``ooc ingest|spmv|cg``
    Out-of-core pipeline: shard a symmetric MatrixMarket file to disk
    (streaming, bounded memory), then apply or solve it shard-at-a-
    time under an explicit ``--memory-budget``, with durable
    checkpoints and crash-safe ``--resume``.

Examples
--------
::

    python -m repro.cli suite --scale 0.01
    python -m repro.cli spmv --matrix hood --format csx-sym --threads 8
    python -m repro.cli sweep --matrix ldoor --platform dunnington
    python -m repro.cli cg --matrix consph --format sss --threads 4
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from .analysis import (
    attribute_spmv,
    build_format,
    render_series,
    render_table,
)
from .formats import CSRMatrix, CSXSymMatrix, SSSMatrix
from .formats.validate import ValidationError
from .machine import PLATFORMS, predict_serial_csr, predict_spmv
from .obs import (
    SLO,
    LogHistogram,
    Tracer,
    load_trace,
    metrics_report,
    openmetrics_text,
    text_report,
    tracing,
    validate_trace,
    write_trace,
)
from .matrices import SUITE, get_entry
from .parallel import Executor, ParallelSpMV, ParallelSymmetricSpMV
from .resilience import ChaosPlan
from .reorder import bandwidth_stats
from .solvers import conjugate_gradient

__all__ = ["main", "build_parser"]

_FORMATS = ("csr", "csx", "sss", "csx-sym")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Symmetric SpM×V reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_suite = sub.add_parser("suite", help="list the matrix suite")
    p_suite.add_argument("--scale", type=float, default=0.01)

    def common(p):
        p.add_argument("--matrix", default="hood",
                       choices=[e.name for e in SUITE])
        p.add_argument("--scale", type=float, default=0.01)
        p.add_argument("--threads", type=int, default=8)

    def traceable(p):
        p.add_argument(
            "--trace", metavar="PATH", default=None,
            help="record phase spans/counters and write a Chrome-"
                 "loadable trace document (JSON) to PATH",
        )
        p.add_argument(
            "--executor", default="serial",
            choices=("serial", "threads", "processes", "chaos"),
            help="task executor; 'threads' gives per-thread timelines "
                 "in the trace, 'processes' runs GIL-free workers over "
                 "shared-memory workspaces (engages through the bound "
                 "operator), 'chaos' perturbs scheduling (delays + "
                 "reordered completions, no injected exceptions) to "
                 "smoke-test determinism",
        )

    p_spmv = sub.add_parser("spmv", help="run one SpM×V configuration")
    common(p_spmv)
    p_spmv.add_argument("--format", default="sss", choices=_FORMATS)
    p_spmv.add_argument(
        "--reduction", default="indexed",
        choices=("naive", "effective", "indexed", "coloring"),
        help="local-vector reduction strategy, or 'coloring' for the "
             "conflict-free color-scheduled kernel (symmetric formats "
             "only: sss, csx-sym)",
    )
    p_spmv.add_argument(
        "--platform", default="dunnington", choices=sorted(PLATFORMS)
    )
    traceable(p_spmv)

    p_sweep = sub.add_parser("sweep", help="thread sweep (Fig. 9/11 view)")
    common(p_sweep)
    p_sweep.add_argument(
        "--platform", default="dunnington", choices=sorted(PLATFORMS)
    )

    p_cg = sub.add_parser("cg", help="CG solve on a suite matrix")
    common(p_cg)
    p_cg.add_argument("--format", default="sss", choices=_FORMATS)
    p_cg.add_argument(
        "--reduction", default="indexed",
        choices=("naive", "effective", "indexed", "coloring"),
        help="reduction strategy for the symmetric kernel (ignored by "
             "unsymmetric formats, except 'coloring' which they reject)",
    )
    p_cg.add_argument("--tol", type=float, default=1e-8)
    traceable(p_cg)

    p_trace = sub.add_parser(
        "trace", help="validate and summarize a recorded trace file"
    )
    p_trace.add_argument("file", help="trace JSON written by --trace")

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: all formats/drivers vs dense oracle",
    )
    p_fuzz.add_argument(
        "--cases", type=int, default=500,
        help="number of generated matrix cases (default 500)",
    )
    p_fuzz.add_argument(
        "--seed", type=int, default=0,
        help="run seed; every case derives from (seed, index)",
    )
    p_fuzz.add_argument(
        "--budget", type=float, default=None,
        help="wall-clock cap in seconds (stops generating new cases)",
    )
    p_fuzz.add_argument(
        "--k", type=int, default=3,
        help="right-hand-side count for the SpM×M checks",
    )
    p_fuzz.add_argument(
        "--max-mismatches", type=int, default=5,
        help="stop after this many mismatches",
    )
    p_fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="skip ddmin reduction of failing cases",
    )
    p_fuzz.add_argument(
        "--executor", default=None,
        choices=("threads", "processes"),
        help="run the parallel/bound combos on this executor backend "
             "instead of the default serial one (the fuzz-smoke CI "
             "rotates through them)",
    )
    p_fuzz.add_argument(
        "--chaos", action="store_true",
        help="re-run parallel/bound combos under a fault-injecting "
             "chaos executor; injected faults must surface as typed "
             "errors or leave the output oracle-correct",
    )
    p_fuzz.add_argument(
        "--reproducer", metavar="PATH", default=None,
        help="write the first mismatch's ready-to-paste regression "
             "test to PATH",
    )

    p_stats = sub.add_parser(
        "stats", help="structural fingerprint of a suite matrix"
    )
    p_stats.add_argument("--matrix", default="hood",
                         choices=[e.name for e in SUITE])
    p_stats.add_argument("--scale", type=float, default=0.01)
    p_stats.add_argument(
        "--rcm", action="store_true",
        help="also show the fingerprint after RCM reordering",
    )

    p_metrics = sub.add_parser(
        "metrics",
        help="run a traced workload and report streaming metrics",
    )
    p_metrics.add_argument("--matrix", default="hood",
                           choices=[e.name for e in SUITE])
    p_metrics.add_argument("--scale", type=float, default=0.01)
    p_metrics.add_argument("--threads", type=int, default=8)
    p_metrics.add_argument(
        "--storage", default="sss", choices=_FORMATS,
        help="matrix storage format (--format selects the *output* "
             "format on this subcommand)",
    )
    p_metrics.add_argument(
        "--reduction", default="indexed",
        choices=("naive", "effective", "indexed", "coloring"),
    )
    p_metrics.add_argument(
        "--executor", default="serial",
        choices=("serial", "threads", "processes"),
        help="backend the applications run on; 'processes' exercises "
             "the cross-process metric aggregation path",
    )
    p_metrics.add_argument(
        "--applications", type=int, default=20,
        help="bound-operator applications to record (default 20)",
    )
    p_metrics.add_argument(
        "--k", type=int, default=None,
        help="right-hand sides per application (default: SpM×V)",
    )
    p_metrics.add_argument(
        "--format", default="table", dest="out_format",
        choices=("table", "openmetrics", "json"),
        help="output format: human-readable table (default), "
             "OpenMetrics/Prometheus exposition text, or JSON",
    )
    p_metrics.add_argument(
        "--output", metavar="PATH", default=None,
        help="write the report to PATH instead of stdout",
    )
    p_metrics.add_argument(
        "--attribution", action="store_true",
        help="also emit the measured-vs-modeled per-phase attribution "
             "report against --platform's machine model",
    )
    p_metrics.add_argument(
        "--platform", default="dunnington", choices=sorted(PLATFORMS)
    )
    p_metrics.add_argument(
        "--rcm", action="store_true",
        help="RCM-reorder the matrix before building the format",
    )
    p_metrics.add_argument(
        "--slo-ms", type=float, default=None,
        help="evaluate an SLO on op.apply_ns: the --slo-percentile "
             "latency must stay under this many milliseconds (exit "
             "code 3 when the error budget is exhausted)",
    )
    p_metrics.add_argument(
        "--slo-percentile", type=float, default=95.0,
        help="target percentile for --slo-ms (default 95)",
    )

    def serving(p):
        common(p)
        p.add_argument("--format", default="sss", choices=_FORMATS)
        p.add_argument(
            "--reduction", default="indexed",
            choices=("naive", "effective", "indexed", "coloring"),
        )
        p.add_argument(
            "--executor", default="threads",
            choices=("serial", "threads", "processes", "chaos"),
            help="compute executor behind the served operators; "
                 "'chaos' injects faults and delays (the drill: "
                 "requests must complete via serial fallback or fail "
                 "typed — never hang, never return wrong bits)",
        )
        p.add_argument("--kind", default="spmv",
                       choices=("spmv", "cg"))
        p.add_argument("--requests", type=int, default=200,
                       help="total requests to issue (default 200)")
        p.add_argument("--concurrency", type=int, default=8,
                       help="closed-loop workers (default 8)")
        p.add_argument("--window-ms", type=float, default=2.0,
                       help="coalescing window (default 2 ms)")
        p.add_argument("--max-batch", type=int, default=8,
                       help="SpM×M width cap (default 8)")
        p.add_argument("--max-pending", type=int, default=64,
                       help="admission limit (default 64)")
        p.add_argument("--deadline-ms", type=float, default=None,
                       help="per-request deadline budget")
        p.add_argument("--tol", type=float, default=1e-8,
                       help="CG tolerance (--kind cg)")
        p.add_argument("--seed", type=int, default=1234)

    p_serve = sub.add_parser(
        "serve",
        help="run the async solver server under closed-loop load "
             "(chaos drill with --executor chaos)",
    )
    serving(p_serve)
    p_serve.add_argument(
        "--no-coalesce", action="store_true",
        help="serve every request solo (baseline mode)",
    )
    p_serve.add_argument(
        "--slo-ms", type=float, default=None,
        help="latency objective on served requests; exit 3 when the "
             "error budget is blown",
    )
    p_serve.add_argument(
        "--slo-percentile", type=float, default=99.0,
        help="target percentile for --slo-ms (default 99)",
    )

    p_loadgen = sub.add_parser(
        "loadgen",
        help="A/B the same load with coalescing on vs off "
             "(bit-identity always audited)",
    )
    serving(p_loadgen)
    p_loadgen.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the paired reports as JSON to PATH",
    )

    p_ooc = sub.add_parser(
        "ooc",
        help="out-of-core sharded SpMV/CG: ingest, apply, and "
             "checkpointed solves under a memory budget",
    )
    ooc_sub = p_ooc.add_subparsers(dest="ooc_command", required=True)

    p_oi = ooc_sub.add_parser(
        "ingest",
        help="shard a symmetric MatrixMarket file to disk (streaming; "
             "peak memory bounded by --chunk-nnz + one shard)",
    )
    p_oi.add_argument("matrix", help="symmetric MatrixMarket file")
    p_oi.add_argument("out_dir", help="shard directory to create")
    p_oi.add_argument(
        "--shard-nnz", type=int, default=None,
        help="target stored entries per shard",
    )
    p_oi.add_argument(
        "--n-shards", type=int, default=None,
        help="explicit shard count (overrides --shard-nnz)",
    )
    p_oi.add_argument(
        "--chunk-nnz", type=int, default=65536,
        help="entries parsed per streaming chunk (default 65536)",
    )

    def ooc_runtime(p):
        p.add_argument("shard_dir", help="ingested shard directory")
        p.add_argument(
            "--memory-budget", default=None, metavar="BYTES",
            help="resident shard-payload cap, e.g. 64K / 8M / 1G "
                 "(default: unbounded)",
        )
        p.add_argument("--threads", type=int, default=2)
        p.add_argument(
            "--reduction", default="indexed",
            choices=("naive", "effective", "indexed", "coloring"),
        )
        p.add_argument(
            "--executor", default="serial",
            choices=("serial", "threads"),
            help="per-shard task executor",
        )
        p.add_argument(
            "--chaos-io", type=float, default=0.0, metavar="P",
            help="probability of an injected disk fault per shard read "
                 "attempt (containment drill; 0 disables)",
        )
        p.add_argument("--chaos-seed", type=int, default=0)
        p.add_argument("--seed", type=int, default=1234,
                       help="seed for the derived x / b vector")
        p.add_argument(
            "--json", metavar="PATH", default=None,
            help="write the machine-readable outcome to PATH",
        )

    p_os = ooc_sub.add_parser(
        "spmv", help="one sharded SpM×V against a seeded random x"
    )
    ooc_runtime(p_os)

    p_oc = ooc_sub.add_parser(
        "cg",
        help="checkpointed CG solve over a shard set (crash-safe with "
             "--checkpoint-dir/--resume)",
    )
    ooc_runtime(p_oc)
    p_oc.add_argument("--tol", type=float, default=1e-8)
    p_oc.add_argument("--max-iter", type=int, default=None)
    p_oc.add_argument(
        "--precond", default="none", choices=("none", "jacobi"),
    )
    p_oc.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="durable solver-state directory (enables checkpointing)",
    )
    p_oc.add_argument(
        "--checkpoint-every", type=int, default=10,
        help="iterations between durable snapshots (default 10)",
    )
    p_oc.add_argument(
        "--resume", action="store_true",
        help="restart from the newest verifiable checkpoint (fresh "
             "start when none survives)",
    )
    return parser


def _cmd_suite(args) -> int:
    rows = []
    for entry in SUITE:
        coo = entry.build(scale=args.scale)
        bw = bandwidth_stats(coo)
        rows.append(
            [
                entry.name,
                entry.problem,
                coo.n_rows,
                coo.nnz,
                round(coo.nnz / coo.n_rows, 1),
                round(bw.avg_distance / max(1, coo.n_rows), 3),
                "corner" if entry.corner_case else "",
            ]
        )
    print(
        render_table(
            ["matrix", "problem", "rows", "nnz", "nnz/row",
             "avg dist/n", "note"],
            rows,
            title=f"Table I suite at scale {args.scale}",
        )
    )
    return 0


def _make_kernel(matrix, partitions, reduction, executor=None):
    if isinstance(matrix, (SSSMatrix, CSXSymMatrix)):
        return ParallelSymmetricSpMV(
            matrix, partitions, reduction, executor=executor
        )
    if reduction == "coloring":
        raise ValidationError(
            "reduction 'coloring' requires a symmetric driver: the "
            "conflict-free schedule colors the transpose write set of "
            "the stored lower triangle, which unsymmetric formats do "
            "not have; use --format sss or csx-sym"
        )
    return ParallelSpMV(matrix, partitions, executor=executor)


def _trace_setup(args):
    """(tracer, executor) for a traceable subcommand; the tracer is a
    recording one only when ``--trace`` was given."""
    tracer = Tracer(enabled=args.trace is not None)
    if args.executor == "chaos":
        # Scheduling perturbation only — delays and reordered
        # completions keep the two-phase algorithm bit-correct; no
        # injected exceptions from the CLI.
        plan = ChaosPlan(seed=0, p_raise=0.0, p_delay=0.5, max_delay_ms=0.2)
        executor = Executor("chaos", plan=plan)
    elif args.executor in ("threads", "processes"):
        executor = Executor(args.executor)
    else:
        executor = None
    return tracer, executor


def _trace_finish(args, tracer, meta) -> None:
    """Write the trace document and print the phase report."""
    if args.trace is None:
        return
    write_trace(args.trace, tracer, meta=meta)
    print()
    print(text_report(tracer, title=f"trace written to {args.trace}"))


def _cmd_spmv(args) -> int:
    coo = get_entry(args.matrix).build(scale=args.scale)
    matrix, parts = build_format(coo, args.format, args.threads)
    tracer, executor = _trace_setup(args)
    try:
        kernel = _make_kernel(matrix, parts, args.reduction, executor)
    except ValidationError as exc:
        print(f"repro spmv: {exc}", file=sys.stderr)
        return 2
    rng = np.random.default_rng(0)
    x = rng.standard_normal(coo.n_cols)
    with tracing(tracer):
        if args.executor == "processes":
            # The process backend engages through the bound operator
            # (segments + worker pool are a bind-time investment).
            op = kernel.bind()
            try:
                y = np.array(op(x))
            finally:
                op.close()
        else:
            y = kernel(x)
    ref = CSRMatrix.from_coo(coo).spmv(x)
    ok = np.allclose(y, ref)
    platform = PLATFORMS[args.platform]
    red = (
        args.reduction
        if isinstance(matrix, (SSSMatrix, CSXSymMatrix))
        else None
    )
    pt = predict_spmv(
        matrix, parts, platform, reduction=red, machine_scale=args.scale
    )
    base = predict_serial_csr(
        CSRMatrix.from_coo(coo), platform, machine_scale=args.scale
    )
    print(
        f"{args.matrix} [{args.format}] {args.threads} threads on "
        f"{platform.name}: correct={ok}\n"
        f"  size: {matrix.size_bytes()} B "
        f"({matrix.size_bytes() / max(1, coo.nnz):.2f} B/nnz)\n"
        f"  model: mult {pt.t_mult * 1e6:.1f} us + reduce "
        f"{pt.t_reduce * 1e6:.1f} us"
        + (
            f" + barrier {pt.t_barrier * 1e6:.1f} us"
            if pt.t_barrier else ""
        )
        + f" = {pt.total * 1e6:.1f} us "
        f"({pt.gflops:.2f} Gflop/s, {pt.speedup_over(base):.2f}x "
        "serial CSR)"
    )
    _trace_finish(
        args, tracer,
        meta={
            "command": "spmv", "matrix": args.matrix,
            "format": args.format, "threads": args.threads,
            "reduction": args.reduction, "executor": args.executor,
            "scale": args.scale,
        },
    )
    return 0 if ok else 1


def _cmd_sweep(args) -> int:
    coo = get_entry(args.matrix).build(scale=args.scale)
    platform = PLATFORMS[args.platform]
    threads = [
        p
        for p in (1, 2, 4, 8, 12, 16, 24)
        if p <= platform.n_threads
    ]
    base = predict_serial_csr(
        CSRMatrix.from_coo(coo), platform, machine_scale=args.scale
    )
    curves: dict[str, dict[int, float]] = {}
    configs = (
        ("csr", "csr", None),
        ("sss-indexed", "sss", "indexed"),
        ("csx-sym", "csx-sym", "indexed"),
    )
    for label, fmt, red in configs:
        curves[label] = {}
        for p in threads:
            matrix, parts = build_format(coo, fmt, p)
            pt = predict_spmv(
                matrix, parts, platform, reduction=red,
                machine_scale=args.scale,
            )
            curves[label][p] = pt.speedup_over(base)
    print(
        render_series(
            "threads",
            curves,
            title=f"{args.matrix} on {platform.name}: modelled speedup "
                  "over serial CSR",
            floatfmt="{:.2f}",
        )
    )
    return 0


def _cmd_cg(args) -> int:
    coo = get_entry(args.matrix).build(scale=args.scale)
    matrix, parts = build_format(coo, args.format, args.threads)
    tracer, executor = _trace_setup(args)
    try:
        spmv = _make_kernel(matrix, parts, args.reduction, executor)
    except ValidationError as exc:
        print(f"repro cg: {exc}", file=sys.stderr)
        return 2
    if args.executor == "processes":
        # Bind here (CG's own bind is idempotent on a bound operator)
        # so the worker pool and segments get an explicit close below.
        spmv = spmv.bind()
    rng = np.random.default_rng(0)
    x_true = rng.standard_normal(coo.n_rows)
    b = CSRMatrix.from_coo(coo).spmv(x_true)
    try:
        with tracing(tracer):
            res = conjugate_gradient(spmv, b, tol=args.tol)
    finally:
        if args.executor == "processes":
            spmv.close()
    err = float(np.abs(res.x - x_true).max())
    print(
        f"CG on {args.matrix} [{args.format}, {args.threads} threads]: "
        f"{'converged' if res.converged else 'NOT converged'} in "
        f"{res.iterations} iterations, residual {res.residual_norm:.2e}, "
        f"max error {err:.2e}"
    )
    _trace_finish(
        args, tracer,
        meta={
            "command": "cg", "matrix": args.matrix,
            "format": args.format, "threads": args.threads,
            "reduction": args.reduction,
            "executor": args.executor, "scale": args.scale,
            "tol": args.tol, "iterations": res.iterations,
            "converged": bool(res.converged),
        },
    )
    return 0 if res.converged else 1


def _cmd_fuzz(args) -> int:
    from .fuzz import FuzzConfig, run_fuzz

    config = FuzzConfig(
        cases=args.cases,
        seed=args.seed,
        budget=args.budget,
        k=args.k,
        shrink=not args.no_shrink,
        max_mismatches=args.max_mismatches,
        chaos=args.chaos,
        executor_mode=args.executor,
    )
    report = run_fuzz(config)
    print(report.summary())
    if report.mismatches and args.reproducer:
        first = next(
            (m for m in report.mismatches if m.reproducer), None
        )
        if first is not None:
            with open(args.reproducer, "w") as fh:
                fh.write(first.reproducer)
            print(f"reproducer written to {args.reproducer}")
    return 0 if report.ok else 1


def _cmd_trace(args) -> int:
    try:
        doc = load_trace(args.file)
    except (OSError, ValueError) as exc:
        print(f"cannot load {args.file}: {exc}", file=sys.stderr)
        return 1
    problems = validate_trace(doc)
    if problems:
        print(f"{args.file}: INVALID trace document", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print(text_report(doc, title=args.file))
    return 0


def _cmd_stats(args) -> int:
    from .analysis import compute_matrix_stats
    from .reorder import rcm_reorder

    coo = get_entry(args.matrix).build(scale=args.scale)
    variants = [("native", coo)]
    if args.rcm:
        variants.append(("rcm", rcm_reorder(coo)[0]))
    rows = []
    for tag, m in variants:
        s = compute_matrix_stats(m)
        rows.append(
            [
                tag,
                s.nnz,
                round(s.nnz_per_row_mean, 1),
                s.bandwidth,
                round(s.normalized_bandwidth, 3),
                round(s.unit_stride_fraction, 3),
                round(s.x_miss_rate, 4),
                round(100 * s.sss_compression, 1),
            ]
        )
    print(
        render_table(
            [
                "ordering", "nnz", "nnz/row", "bandwidth", "bw/n",
                "unit-stride", "x miss/nnz", "SSS CR %",
            ],
            rows,
            title=f"{args.matrix} at scale {args.scale}",
        )
    )
    return 0


def _merged_named_histogram(snapshot: dict, name: str):
    """Merge every labelled series of histogram ``name`` in a registry
    snapshot into one distribution (``None`` when absent)."""
    merged = None
    for entry in snapshot.get("histograms", ()):
        if entry["name"] != name:
            continue
        h = LogHistogram.from_dict(entry["data"])
        merged = h if merged is None else merged.merge(h)
    return merged


def _cmd_metrics(args) -> int:
    coo = get_entry(args.matrix).build(scale=args.scale)
    if args.rcm:
        from .reorder import rcm_reorder

        coo = rcm_reorder(coo)[0]
    matrix, parts = build_format(coo, args.storage, args.threads)
    executor = (
        Executor(args.executor) if args.executor != "serial" else None
    )
    try:
        kernel = _make_kernel(matrix, parts, args.reduction, executor)
    except (ValidationError, ValueError) as exc:
        print(f"repro metrics: {exc}", file=sys.stderr)
        return 2
    rng = np.random.default_rng(0)
    shape = (
        (coo.n_cols,) if args.k is None else (coo.n_cols, args.k)
    )
    x = rng.standard_normal(shape)
    tracer = Tracer()
    op = kernel.bind(args.k)
    try:
        with tracing(tracer):
            for _ in range(max(1, args.applications)):
                op(x)
    finally:
        op.close()
        if executor is not None:
            executor.close()
    snap = tracer.metrics.snapshot()
    meta = {
        "command": "metrics", "matrix": args.matrix,
        "storage": args.storage, "reduction": args.reduction,
        "executor": args.executor, "threads": args.threads,
        "scale": args.scale, "k": args.k, "rcm": bool(args.rcm),
        "applications": max(1, args.applications),
    }

    attribution = None
    if args.attribution:
        red = (
            args.reduction
            if isinstance(matrix, (SSSMatrix, CSXSymMatrix))
            else None
        )
        platform = PLATFORMS[args.platform]
        predicted = predict_spmv(
            matrix, parts, platform, reduction=red,
            machine_scale=args.scale,
        )
        attribution = attribute_spmv(
            tracer, predicted, platform_name=platform.name,
            label=f"{args.matrix}/{args.storage}"
                  f"{'/rcm' if args.rcm else ''}",
        )

    if args.out_format == "openmetrics":
        text = openmetrics_text(snap)
    elif args.out_format == "json":
        doc = {"meta": meta, "metrics": snap}
        if attribution is not None:
            doc["attribution"] = attribution.to_dict()
        text = json.dumps(doc, indent=1)
    else:
        text = metrics_report(
            snap,
            title=f"metrics: {args.matrix} [{args.storage}/"
                  f"{args.reduction}] x{meta['applications']} on "
                  f"{args.executor}",
        )
    if args.output:
        out = Path(args.output)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + ("" if text.endswith("\n") else "\n"))
        print(f"metrics written to {args.output}")
    else:
        print(text)

    rc = 0
    if args.slo_ms is not None:
        hist = _merged_named_histogram(snap, "op.apply_ns")
        if hist is None:
            print("repro metrics: no op.apply_ns samples for the SLO",
                  file=sys.stderr)
            return 2
        slo = SLO(
            "op.apply", threshold=args.slo_ms * 1e6,
            percentile=args.slo_percentile,
        )
        report = slo.observe(hist)
        print()
        print(report.render())
        if not report.healthy:
            rc = 3
    if attribution is not None and args.out_format != "json":
        print()
        print(attribution.render())
    return rc


def _serve_setup(args):
    """(registry, key, server_kwargs) for the serving subcommands."""
    import asyncio  # noqa: F401  (the commands run an event loop)

    from .serve import OperatorRegistry

    coo = get_entry(args.matrix).build(scale=args.scale)
    matrix, parts = build_format(coo, args.format, args.threads)
    if args.executor == "chaos":
        # The drill: real injected exceptions and delays, unlike the
        # benign scheduling-only chaos of the spmv/cg subcommands —
        # the server's containment (serial fallback) is under test.
        plan = ChaosPlan(
            seed=args.seed, p_raise=0.3, p_delay=0.3, max_delay_ms=0.2
        )
        executor = Executor("chaos", plan=plan)
    elif args.executor in ("threads", "processes"):
        executor = Executor(args.executor, max_workers=args.threads)
    else:
        executor = None
    registry = OperatorRegistry()
    try:
        entry = registry.register(
            matrix, parts, reduction=args.reduction, executor=executor
        )
    except ValidationError as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return None
    return registry, entry.key, {
        "window": args.window_ms * 1e-3,
        "max_batch": args.max_batch,
        "max_pending": args.max_pending,
    }


def _run_serve_load(server, key, args):
    from .serve import run_load

    deadline = (
        None if args.deadline_ms is None else args.deadline_ms * 1e-3
    )
    return run_load(
        server, key, kind=args.kind, concurrency=args.concurrency,
        n_requests=args.requests, deadline=deadline, tol=args.tol,
        seed=args.seed,
    )


def _cmd_serve(args) -> int:
    import asyncio

    from .serve import SolverServer

    setup = _serve_setup(args)
    if setup is None:
        return 2
    registry, key, kwargs = setup

    async def drive():
        server = SolverServer(
            registry, coalesce=not args.no_coalesce, **kwargs
        )
        if args.slo_ms is not None:
            server.add_slo(
                f"serve.{args.kind}", args.slo_ms,
                percentile=args.slo_percentile,
            )
        try:
            report = await _run_serve_load(server, key, args)
            slo_reports = server.slo_reports()
            batches = server.metrics.counter_value(
                "serve.batches", kind=args.kind
            )
            fallbacks = server.metrics.counter_value(
                "serve.fallback_requests"
            )
        finally:
            await server.close()
        return report, slo_reports, batches, fallbacks

    report, slo_reports, batches, fallbacks = asyncio.run(drive())
    registry.close()
    mode = "solo (coalescing off)" if args.no_coalesce else (
        f"coalescing (window {args.window_ms:g} ms, "
        f"max batch {args.max_batch})"
    )
    print(
        f"served {args.matrix} [{args.format}, {args.reduction}, "
        f"{args.executor}] in {mode}: {int(batches)} batches, "
        f"{int(fallbacks)} serial fallbacks"
    )
    print(report.render())
    rc = 0
    for rep in slo_reports:
        print(rep.render())
        if not rep.healthy:
            rc = 3
    if not report.correct:
        print(
            f"repro serve: {report.n_incorrect} responses differed "
            "from the serial reference", file=sys.stderr,
        )
        return 1
    return rc


def _cmd_loadgen(args) -> int:
    import asyncio

    from .serve import SolverServer

    setup = _serve_setup(args)
    if setup is None:
        return 2
    registry, key, kwargs = setup

    async def drive(coalesce):
        server = SolverServer(registry, coalesce=coalesce, **kwargs)
        try:
            return await _run_serve_load(server, key, args)
        finally:
            await server.close()

    async def both():
        on = await drive(True)
        off = await drive(False)
        return on, off

    on, off = asyncio.run(both())
    registry.close()
    print("coalescing ON:")
    print(on.render())
    print("coalescing OFF:")
    print(off.render())
    speedup = off.p50_ms / on.p50_ms if on.p50_ms > 0 else float("nan")
    print(f"p50 latency ratio off/on: {speedup:.2f}x")
    if args.json is not None:
        doc = {
            "matrix": args.matrix, "format": args.format,
            "reduction": args.reduction, "executor": args.executor,
            "coalescing_on": on.to_dict(),
            "coalescing_off": off.to_dict(),
        }
        Path(args.json).write_text(json.dumps(doc, indent=2))
        print(f"report written to {args.json}")
    if not (on.correct and off.correct):
        print(
            f"repro loadgen: incorrect responses "
            f"(on={on.n_incorrect}, off={off.n_incorrect})",
            file=sys.stderr,
        )
        return 1
    return 0


def _ooc_operator(args, tracer):
    """(store, operator) for the ooc runtime subcommands."""
    from .ooc import ShardStore, ShardedOperator

    chaos = None
    if args.chaos_io > 0:
        chaos = ChaosPlan(
            args.chaos_seed, p_io=args.chaos_io, p_delay=0.0,
            reorder=False,
        )
    store = ShardStore(Path(args.shard_dir), chaos=chaos)
    executor = (
        Executor(args.executor) if args.executor != "serial" else None
    )
    op = ShardedOperator(
        store,
        memory_budget=args.memory_budget,
        n_threads=args.threads,
        reduction=args.reduction,
        executor=executor,
    )
    return store, op


def _ooc_counters(tracer) -> dict:
    return {
        name: value
        for name, value in sorted(tracer.counters().items())
        if name.startswith("ooc.")
    }


def _cmd_ooc(args) -> int:
    import hashlib

    from .ooc import checkpointed_cg, ingest_matrix_market
    from .ooc.checkpoint import CheckpointStore
    from .resilience.errors import ExecutionError

    tracer = Tracer(enabled=True)
    try:
        with tracing(tracer):
            if args.ooc_command == "ingest":
                store = ingest_matrix_market(
                    args.matrix, args.out_dir,
                    shard_nnz=args.shard_nnz, n_shards=args.n_shards,
                    chunk_nnz=args.chunk_nnz,
                )
                print(
                    f"ingested {store.n_rows}x{store.n_cols} "
                    f"({store.nnz_stored} stored entries) into "
                    f"{store.n_shards} shard(s), "
                    f"{store.total_payload_bytes()} B payload, "
                    f"fingerprint {store.fingerprint}"
                )
                return 0

            store, op = _ooc_operator(args, tracer)
            rng = np.random.default_rng(args.seed)
            if args.ooc_command == "spmv":
                x = rng.standard_normal(store.n_cols)
                y = op(x)
                digest = hashlib.sha256(y.tobytes()).hexdigest()[:16]
                outcome = {
                    "n": store.n_rows,
                    "shards": store.n_shards,
                    "y_sha256": digest,
                    "peak_resident_bytes": op.peak_resident_bytes,
                    "memory_budget": op.memory_budget,
                    "counters": _ooc_counters(tracer),
                }
                print(
                    f"ooc spmv over {store.n_shards} shard(s): "
                    f"y digest {digest}, peak resident "
                    f"{op.peak_resident_bytes} B"
                    + (
                        f" (budget {op.memory_budget} B)"
                        if op.memory_budget is not None else ""
                    )
                )
            else:  # cg
                ck = None
                if args.checkpoint_dir is not None:
                    ck = CheckpointStore(Path(args.checkpoint_dir))
                b = rng.standard_normal(store.n_rows)
                solve = checkpointed_cg(
                    op, b, tol=args.tol, max_iter=args.max_iter,
                    store=ck, checkpoint_every=args.checkpoint_every,
                    resume=args.resume, precond=args.precond,
                )
                res = solve.result
                digest = hashlib.sha256(res.x.tobytes()).hexdigest()[:16]
                outcome = {
                    "n": store.n_rows,
                    "shards": store.n_shards,
                    "converged": bool(res.converged),
                    "iterations": int(res.iterations),
                    "residual_norm": float(res.residual_norm),
                    "x_sha256": digest,
                    "resumed_from": solve.resumed_from,
                    "peak_resident_bytes": op.peak_resident_bytes,
                    "memory_budget": op.memory_budget,
                    "counters": _ooc_counters(tracer),
                }
                resumed = (
                    f" (resumed from iteration {solve.resumed_from})"
                    if solve.resumed_from is not None else ""
                )
                print(
                    f"ooc cg{resumed}: converged={res.converged} "
                    f"iterations={res.iterations} "
                    f"residual={res.residual_norm:.3e} "
                    f"x digest {digest}, peak resident "
                    f"{op.peak_resident_bytes} B"
                )
        if args.json is not None:
            Path(args.json).write_text(json.dumps(outcome, indent=1))
        return 0
    except ValidationError as exc:
        print(f"repro ooc: {exc}", file=sys.stderr)
        return 2
    except ExecutionError as exc:
        print(f"repro ooc: {exc}", file=sys.stderr)
        return 1


_COMMANDS = {
    "suite": _cmd_suite,
    "spmv": _cmd_spmv,
    "sweep": _cmd_sweep,
    "cg": _cmd_cg,
    "stats": _cmd_stats,
    "trace": _cmd_trace,
    "fuzz": _cmd_fuzz,
    "metrics": _cmd_metrics,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "ooc": _cmd_ooc,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
