"""Matrix bandwidth and profile statistics (Section V-D context)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats.coo import COOMatrix

__all__ = ["BandwidthStats", "bandwidth_stats"]


@dataclass(frozen=True)
class BandwidthStats:
    """Bandwidth metrics of a sparse matrix.

    Attributes
    ----------
    bandwidth : max |row - col| over stored entries.
    avg_distance : mean |row - col| (how far mass sits from the
        diagonal — the quantity that actually drives x-vector locality
        and local-vector conflicts).
    profile : sum over rows of (row - leftmost column), the classic
        envelope size RCM minimizes.
    normalized_bandwidth : bandwidth / n (comparable across sizes).
    """

    bandwidth: int
    avg_distance: float
    profile: int
    normalized_bandwidth: float


def bandwidth_stats(coo: COOMatrix) -> BandwidthStats:
    """Compute bandwidth statistics of a (square) sparse matrix."""
    if coo.n_rows != coo.n_cols:
        raise ValueError("bandwidth statistics require a square matrix")
    n = coo.n_rows
    if coo.nnz == 0 or n == 0:
        return BandwidthStats(0, 0.0, 0, 0.0)
    dist = np.abs(coo.rows.astype(np.int64) - coo.cols.astype(np.int64))
    bw = int(dist.max())
    avg = float(dist.mean())
    # Envelope/profile over rows of the lower triangle.
    lower = coo.cols <= coo.rows
    rows_l = coo.rows[lower].astype(np.int64)
    cols_l = coo.cols[lower].astype(np.int64)
    leftmost = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(leftmost, rows_l, cols_l)
    has = leftmost != np.iinfo(np.int64).max
    profile = int(
        np.sum(np.arange(n, dtype=np.int64)[has] - leftmost[has])
    )
    return BandwidthStats(bw, avg, profile, bw / n)
