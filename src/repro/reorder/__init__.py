"""Bandwidth-reduction reordering (RCM) and bandwidth statistics."""

from .bandwidth import BandwidthStats, bandwidth_stats
from .rcm import cuthill_mckee, rcm_reorder, reverse_cuthill_mckee

__all__ = [
    "cuthill_mckee",
    "reverse_cuthill_mckee",
    "rcm_reorder",
    "BandwidthStats",
    "bandwidth_stats",
]
