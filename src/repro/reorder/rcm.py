"""Cuthill-McKee / Reverse Cuthill-McKee bandwidth reduction.

Implemented from scratch (the paper's Section V-D applies RCM [18] to
the matrix suite): a breadth-first traversal from a pseudo-peripheral
vertex, visiting neighbours in increasing-degree order; the reverse of
the visit order is the RCM permutation. Correctness is cross-checked
against ``scipy.sparse.csgraph.reverse_cuthill_mckee`` in the tests
(identical bandwidth class, not necessarily identical permutation).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..formats.coo import COOMatrix

__all__ = ["cuthill_mckee", "reverse_cuthill_mckee", "rcm_reorder"]


def _adjacency(coo: COOMatrix) -> tuple[np.ndarray, np.ndarray]:
    """CSR-style adjacency (indptr, indices) of the symmetrized pattern,
    self-loops removed, neighbour lists sorted by (degree, index)."""
    n = coo.n_rows
    mask = coo.rows != coo.cols
    src = np.concatenate([coo.rows[mask], coo.cols[mask]]).astype(np.int64)
    dst = np.concatenate([coo.cols[mask], coo.rows[mask]]).astype(np.int64)
    # Deduplicate edges.
    keys = src * n + dst
    keys = np.unique(keys)
    src = keys // n
    dst = keys % n
    degree = np.bincount(src, minlength=n)
    # Sort each neighbour list by (degree, index) for deterministic CM.
    order = np.lexsort((dst, degree[dst], src))
    src, dst = src[order], dst[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
    return indptr, dst


def _pseudo_peripheral(
    indptr: np.ndarray, indices: np.ndarray, start: int
) -> int:
    """George-Liu style pseudo-peripheral vertex search: repeat BFS
    from the farthest minimum-degree vertex until eccentricity stops
    growing."""
    n = indptr.size - 1
    degree = np.diff(indptr)
    current = start
    last_ecc = -1
    for _ in range(n):  # terminates far earlier in practice
        levels = _bfs_levels(indptr, indices, current)
        ecc = int(levels.max())
        if ecc <= last_ecc:
            return current
        last_ecc = ecc
        far = np.flatnonzero(levels == ecc)
        current = int(far[np.argmin(degree[far])])
    return current


def _bfs_levels(
    indptr: np.ndarray, indices: np.ndarray, start: int
) -> np.ndarray:
    """BFS level of every vertex from ``start``; vertices in other
    components stay at ``-1`` (excluded, never aliased to level 0 —
    mapping them to 0 would let the pseudo-peripheral eccentricity
    search wander across components on disconnected graphs)."""
    n = indptr.size - 1
    levels = np.full(n, -1, dtype=np.int64)
    levels[start] = 0
    frontier = np.array([start], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        neigh = np.concatenate(
            [indices[indptr[v] : indptr[v + 1]] for v in frontier]
        ) if frontier.size else np.zeros(0, dtype=np.int64)
        neigh = np.unique(neigh)
        new = neigh[levels[neigh] < 0]
        levels[new] = level
        frontier = new
    return levels


def cuthill_mckee(coo: COOMatrix) -> np.ndarray:
    """Cuthill-McKee ordering of a symmetric-pattern matrix.

    Returns ``perm`` with ``perm[k]`` = original index of the vertex
    visited ``k``-th (scipy convention). Handles disconnected graphs by
    restarting from the minimum-degree unvisited vertex.
    """
    if coo.n_rows != coo.n_cols:
        raise ValueError("CM ordering requires a square matrix")
    n = coo.n_rows
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    indptr, indices = _adjacency(coo)
    degree = np.diff(indptr)
    visited = np.zeros(n, dtype=bool)
    perm = np.empty(n, dtype=np.int64)
    pos = 0
    order_by_degree = np.lexsort((np.arange(n), degree))
    scan = 0  # pointer into order_by_degree for component restarts

    while pos < n:
        while visited[order_by_degree[scan]]:
            scan += 1
        start = _pseudo_peripheral(
            indptr, indices, int(order_by_degree[scan])
        )
        if visited[start]:  # pseudo-peripheral walked into old component
            start = int(order_by_degree[scan])
        visited[start] = True
        perm[pos] = start
        pos += 1
        head = pos - 1
        while head < pos:
            v = perm[head]
            head += 1
            neigh = indices[indptr[v] : indptr[v + 1]]
            fresh = neigh[~visited[neigh]]
            if fresh.size:
                # Neighbour lists are pre-sorted by degree.
                visited[fresh] = True
                perm[pos : pos + fresh.size] = fresh
                pos += fresh.size
    return perm


def reverse_cuthill_mckee(coo: COOMatrix) -> np.ndarray:
    """RCM permutation: the reverse of the Cuthill-McKee order."""
    return cuthill_mckee(coo)[::-1].copy()


def rcm_reorder(
    coo: COOMatrix, perm: Optional[np.ndarray] = None
) -> tuple[COOMatrix, np.ndarray]:
    """Symmetrically permute ``coo`` by (a provided or computed) RCM
    ordering. Returns ``(reordered matrix, perm)``."""
    if perm is None:
        perm = reverse_cuthill_mckee(coo)
    return coo.permute_symmetric(perm), perm
