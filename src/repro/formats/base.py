"""Common interface for sparse matrix storage formats.

Every storage format in :mod:`repro.formats` implements
:class:`SparseFormat`: a container exposing the logical matrix shape and
non-zero count, a serial SpM×V kernel, and exact in-memory size accounting
(the quantity the paper's performance analysis is built on, eqs. (1)-(2)).

Sizing conventions follow the paper: 8-byte double-precision values and
4-byte integer indices unless a format states otherwise.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

#: Bytes per non-zero value (double precision).
VALUE_BYTES = 8
#: Bytes per index entry (32-bit integers, as in the paper).
INDEX_BYTES = 4

__all__ = ["SparseFormat", "SymmetricFormat", "VALUE_BYTES", "INDEX_BYTES"]


class SparseFormat(abc.ABC):
    """Abstract base class for sparse matrix storage formats.

    Attributes
    ----------
    shape : tuple[int, int]
        Logical matrix dimensions ``(n_rows, n_cols)``.
    """

    #: Short lowercase format identifier (``"csr"``, ``"sss"``, ...).
    format_name: str = "abstract"

    def __init__(self, shape: tuple[int, int]):
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if n_rows < 0 or n_cols < 0:
            raise ValueError(f"matrix shape must be non-negative, got {shape}")
        self.shape: tuple[int, int] = (n_rows, n_cols)

    # ------------------------------------------------------------------
    # Core interface
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of *logical* non-zero elements.

        For symmetric formats this counts both triangles, i.e. it equals
        the non-zero count of the fully expanded matrix, so flop counts
        (``2 * nnz``) are comparable across formats.
        """

    @property
    @abc.abstractmethod
    def stored_entries(self) -> int:
        """Number of explicitly stored value entries."""

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Exact in-memory representation size in bytes.

        Only the arrays that a C implementation would stream during
        SpM×V are counted (values + indexing metadata), matching the
        paper's eqs. (1) and (2).
        """

    @abc.abstractmethod
    def spmv(self, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        """Serial sparse matrix-vector product ``y = A @ x``.

        Parameters
        ----------
        x : ndarray of float64, shape ``(n_cols,)``
        y : optional output array, shape ``(n_rows,)``; overwritten.

        Returns
        -------
        ndarray
            The product vector (``y`` if provided).
        """

    @abc.abstractmethod
    def to_coo(self):
        """Convert to :class:`repro.formats.coo.COOMatrix` (expanded,
        both triangles for symmetric formats)."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    def _check_spmv_args(
        self, x: np.ndarray, y: Optional[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Validate/allocate SpM×V operands. Returns ``(x, y)``."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ValueError(
                f"x has shape {x.shape}, expected ({self.n_cols},) for "
                f"{self.format_name} matrix of shape {self.shape}"
            )
        if y is None:
            y = np.zeros(self.n_rows, dtype=np.float64)
        else:
            if y.shape != (self.n_rows,):
                raise ValueError(
                    f"y has shape {y.shape}, expected ({self.n_rows},)"
                )
            if y.dtype != np.float64:
                raise TypeError("y must be float64")
            y[:] = 0.0
        return x, y

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense ndarray (testing / small matrices only)."""
        return self.to_coo().to_dense()

    def compression_ratio_vs(self, other: "SparseFormat") -> float:
        """Size reduction relative to ``other``: ``1 - size/other.size``."""
        other_size = other.size_bytes()
        if other_size == 0:
            raise ValueError("reference format has zero size")
        return 1.0 - self.size_bytes() / other_size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.n_rows}x{self.n_cols} "
            f"nnz={self.nnz} bytes={self.size_bytes()}>"
        )


class SymmetricFormat(SparseFormat):
    """Marker base class for formats that store only the lower triangle.

    Symmetric formats additionally support a *partitioned* SpM×V used by
    the multithreaded algorithms of Section III: thread ``i`` computes the
    products of the stored rows ``start[i]..end[i]`` but its transposed
    (upper-triangle) contributions scatter to arbitrary earlier rows,
    which is exactly what the local-vector machinery resolves.
    """

    def __init__(self, shape: tuple[int, int]):
        if shape[0] != shape[1]:
            raise ValueError(f"symmetric formats require a square matrix, got {shape}")
        super().__init__(shape)

    @abc.abstractmethod
    def spmv_partition(
        self,
        x: np.ndarray,
        y_direct: np.ndarray,
        y_local: np.ndarray,
        row_start: int,
        row_end: int,
    ) -> None:
        """Compute the partition product for stored rows
        ``[row_start, row_end)``.

        Contributions to output rows inside ``[row_start, row_end)`` are
        accumulated into ``y_direct``; transposed contributions to rows
        ``< row_start`` go to ``y_local`` (the thread's local vector).
        Both arrays have length ``n_rows`` and are accumulated into, not
        overwritten (callers zero them).
        """
