"""Common interface for sparse matrix storage formats.

Every storage format in :mod:`repro.formats` implements
:class:`SparseFormat`: a container exposing the logical matrix shape and
non-zero count, a serial SpM×V kernel, and exact in-memory size accounting
(the quantity the paper's performance analysis is built on, eqs. (1)-(2)).

Sizing conventions follow the paper: 8-byte double-precision values and
4-byte integer indices unless a format states otherwise.
"""

from __future__ import annotations

import abc
import threading
from typing import Optional

import numpy as np

from ..obs.tracer import active as _active_tracer
from .validate import check_spmm_args, check_spmv_args

#: Bytes per non-zero value (double precision).
VALUE_BYTES = 8
#: Bytes per index entry (32-bit integers, as in the paper).
INDEX_BYTES = 4

__all__ = [
    "SparseFormat",
    "SymmetricFormat",
    "VALUE_BYTES",
    "INDEX_BYTES",
    "scatter_add_rows",
    "RowScatter",
    "FLAT_CACHE_MAX",
]

#: Cap on the per-``RowScatter`` flattened-index cache (one entry per
#: distinct right-hand-side count ``k``; oldest evicted beyond this).
FLAT_CACHE_MAX = 8


def bounded_cache_insert(cache: dict, key, value, cap: int) -> None:
    """Insert into an insertion-ordered dict cache, evicting the oldest
    entry when ``cap`` would be exceeded (keeps steady-state memory of
    the lazy scatter/split caches bounded).

    Not thread-safe by itself — the evict-then-insert sequence mutates
    the dict twice; every caller must hold its cache's lock (see
    :class:`RowScatter` and the format-level ``_cache_lock`` users)."""
    while len(cache) >= cap:
        cache.pop(next(iter(cache)))
    cache[key] = value


def scatter_add_rows(
    y: np.ndarray, idx: np.ndarray, products: np.ndarray
) -> None:
    """``y[idx] += products`` with duplicate indices accumulated.

    The scatter is *window-restricted*: the bincount runs over the
    effective index window ``[idx.min(), idx.max() + 1)`` and is added
    into the matching slice of ``y``, so a scatter that touches a
    narrow column band (a CSB block, a partition's transposed writes)
    never streams the full output length. 2-D ``(m, k)`` scatters use
    one flattened ``np.bincount`` pass — ``np.ufunc.at`` is an order of
    magnitude slower, which would erase the multi-RHS traffic
    amortization the spmm kernels exist for.
    """
    if idx.size == 0:
        return
    idx = np.asarray(idx, dtype=np.int64)
    lo = int(idx.min())
    hi = int(idx.max()) + 1
    if y.ndim == 1:
        y[lo:hi] += np.bincount(
            idx - lo, weights=products, minlength=hi - lo
        )
        return
    k = y.shape[1]
    flat = (
        (idx - lo)[:, None] * k
        + np.arange(k, dtype=np.int64)[None, :]
    )
    y[lo:hi] += np.bincount(
        flat.ravel(), weights=products.ravel(), minlength=(hi - lo) * k
    ).reshape(hi - lo, k)


class RowScatter:
    """Precompiled accumulating row scatter ``y[idx] += products``.

    The index array is part of the matrix *structure*, so repeated
    calls scatter through the same indices every time. Two things are
    compiled out of the per-call path:

    * the *effective window* ``[lo, hi) = [idx.min(), idx.max() + 1)``:
      every bincount runs over the rebased indices and accumulates into
      ``y[lo:hi]``, so a scatter confined to a narrow column band (a
      partition's local writes, a CSB block) never streams the full
      output vector — the paper's effective-ranges idea applied to the
      multiplication phase;
    * the flattened 2-D bincount index per right-hand-side count ``k``
      (building it costs more than the bincount itself), which is where
      the hot formats (SSS, CSX, BCSR) recover the multi-RHS
      amortization. The per-``k`` cache is bounded by
      :data:`FLAT_CACHE_MAX`.

    Thread safety: mutation of the bounded per-``k`` cache (compile,
    eviction, clear) happens under an internal lock. :meth:`add` reads
    the cache lock-free on the hit path and keeps a local reference to
    the flat index, so a concurrent eviction or :meth:`clear` can never
    yank the array out from under an in-flight scatter — the compiled
    index is immutable structure, only the dict membership changes.
    """

    def __init__(self, idx: np.ndarray):
        self.idx = np.asarray(idx, dtype=np.int64)
        if self.idx.size:
            self.lo = int(self.idx.min())
            self.hi = int(self.idx.max()) + 1
        else:
            self.lo = 0
            self.hi = 0
        self._rebased = self.idx - self.lo
        self._flat: dict[int, np.ndarray] = {}
        self._flat_lock = threading.Lock()

    def __getstate__(self):
        # Locks are unpicklable; the process backend ships scatters to
        # workers through the shared arena. Each process re-creates its
        # own lock (the cache is per-process state anyway).
        state = self.__dict__.copy()
        del state["_flat_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._flat_lock = threading.Lock()

    @property
    def window(self) -> tuple[int, int]:
        """Effective output window ``[lo, hi)`` the scatter touches."""
        return (self.lo, self.hi)

    def compile(self, k: Optional[int] = None) -> None:
        """Eagerly build the flattened index for ``k`` right-hand sides
        (no-op for ``k=None``: the 1-D path needs no flat index)."""
        if k is None or self.idx.size == 0:
            return
        self._flat_for(int(k))

    def _flat_for(self, k: int) -> np.ndarray:
        """The flattened index for ``k``, compiling (and caching) it on
        a miss. Insertion/eviction run under the cache lock; the
        returned array stays valid even if evicted right after."""
        with self._flat_lock:
            flat = self._flat.get(k)
            if flat is None:
                flat = (
                    self._rebased[:, None] * k
                    + np.arange(k, dtype=np.int64)[None, :]
                ).ravel()
                bounded_cache_insert(self._flat, k, flat, FLAT_CACHE_MAX)
            return flat

    def add(self, y: np.ndarray, products: np.ndarray) -> None:
        """Accumulate ``y[idx] += products`` (1-D or ``(m, k)``)."""
        if self.idx.size == 0:
            return
        lo, hi = self.lo, self.hi
        tracer = _active_tracer()
        if tracer.enabled:
            # Window restriction savings: elements the full-length
            # scatter would have streamed vs the effective window.
            tracer.count("scatter.window_elems", hi - lo)
            tracer.count("scatter.full_elems", y.shape[0])
        if y.ndim == 1:
            y[lo:hi] += np.bincount(
                self._rebased, weights=products, minlength=hi - lo
            )
            return
        k = y.shape[1]
        # Lock-free hit path: dict.get is atomic and the compiled index
        # is immutable, so a concurrent eviction/clear only affects
        # membership — this local reference stays valid either way.
        flat = self._flat.get(k)
        if tracer.enabled:
            tracer.count(
                "scatter.flat_hit" if flat is not None
                else "scatter.flat_miss"
            )
        if flat is None:
            flat = self._flat_for(k)
        y[lo:hi] += np.bincount(
            flat, weights=products.ravel(), minlength=(hi - lo) * k
        ).reshape(hi - lo, k)

    def clear(self) -> None:
        """Drop the compiled per-``k`` flat indices."""
        with self._flat_lock:
            self._flat.clear()


class SparseFormat(abc.ABC):
    """Abstract base class for sparse matrix storage formats.

    Attributes
    ----------
    shape : tuple[int, int]
        Logical matrix dimensions ``(n_rows, n_cols)``.
    """

    #: Short lowercase format identifier (``"csr"``, ``"sss"``, ...).
    format_name: str = "abstract"

    def __init__(self, shape: tuple[int, int]):
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if n_rows < 0 or n_cols < 0:
            raise ValueError(f"matrix shape must be non-negative, got {shape}")
        self.shape: tuple[int, int] = (n_rows, n_cols)

    # ------------------------------------------------------------------
    # Core interface
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of *logical* non-zero elements.

        For symmetric formats this counts both triangles, i.e. it equals
        the non-zero count of the fully expanded matrix, so flop counts
        (``2 * nnz``) are comparable across formats.
        """

    @property
    @abc.abstractmethod
    def stored_entries(self) -> int:
        """Number of explicitly stored value entries."""

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Exact in-memory representation size in bytes.

        Only the arrays that a C implementation would stream during
        SpM×V are counted (values + indexing metadata), matching the
        paper's eqs. (1) and (2).
        """

    @abc.abstractmethod
    def spmv(self, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        """Serial sparse matrix-vector product ``y = A @ x``.

        Parameters
        ----------
        x : ndarray of float64, shape ``(n_cols,)``
        y : optional output array, shape ``(n_rows,)``; overwritten.

        Returns
        -------
        ndarray
            The product vector (``y`` if provided).
        """

    @abc.abstractmethod
    def to_coo(self):
        """Convert to :class:`repro.formats.coo.COOMatrix` (expanded,
        both triangles for symmetric formats)."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    def _check_spmv_args(
        self, x: np.ndarray, y: Optional[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Validate/allocate SpM×V operands. Returns ``(x, y)``."""
        return check_spmv_args(self.shape, self.format_name, x, y)

    def _check_spmm_args(
        self, X: np.ndarray, Y: Optional[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Validate/allocate SpM×M operands. Returns ``(X, Y)``.

        ``X`` must be a 2-D block of ``k`` right-hand sides, shape
        ``(n_cols, k)``; ``Y`` is allocated (or zeroed) with shape
        ``(n_rows, k)``.
        """
        return check_spmm_args(self.shape, self.format_name, X, Y)

    def spmm(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        """Multi-RHS product ``Y = A @ X`` for ``X`` of shape
        ``(n_cols, k)``.

        The base implementation loops over columns; every concrete
        format overrides it with a kernel that traverses the matrix
        structure once for all ``k`` columns (the traffic-amortization
        lever: matrix bytes are streamed once instead of ``k`` times).
        """
        X, Y = self._check_spmm_args(X, Y)
        for j in range(X.shape[1]):
            Y[:, j] = self.spmv(np.ascontiguousarray(X[:, j]))
        return Y

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense ndarray (testing / small matrices only)."""
        return self.to_coo().to_dense()

    # ------------------------------------------------------------------
    # Bound-operator hooks (see repro.parallel.bound)
    # ------------------------------------------------------------------
    def precompile(self, k: Optional[int] = None) -> None:
        """Eagerly build any lazy per-call compilation caches (scatter
        indices, split positions) for ``k`` right-hand sides (``None``
        = the 1-D SpM×V path), so a bound operator's first timed
        iteration is not a compilation run. Default: nothing to do."""

    def clear_caches(self) -> None:
        """Release the lazy execution caches (compiled scatters, split
        positions). Safe to call at any time — the caches rebuild on
        demand. Default: nothing to do."""

    def compression_ratio_vs(self, other: "SparseFormat") -> float:
        """Size reduction relative to ``other``: ``1 - size/other.size``."""
        other_size = other.size_bytes()
        if other_size == 0:
            raise ValueError("reference format has zero size")
        return 1.0 - self.size_bytes() / other_size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.n_rows}x{self.n_cols} "
            f"nnz={self.nnz} bytes={self.size_bytes()}>"
        )


class SymmetricFormat(SparseFormat):
    """Marker base class for formats that store only the lower triangle.

    Symmetric formats additionally support a *partitioned* SpM×V used by
    the multithreaded algorithms of Section III: thread ``i`` computes the
    products of the stored rows ``start[i]..end[i]`` but its transposed
    (upper-triangle) contributions scatter to arbitrary earlier rows,
    which is exactly what the local-vector machinery resolves.
    """

    def __init__(self, shape: tuple[int, int]):
        if shape[0] != shape[1]:
            raise ValueError(f"symmetric formats require a square matrix, got {shape}")
        super().__init__(shape)

    def lower_triple(
        self,
    ) -> Optional[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """``(dvalues, rowptr, colind, values)`` CSR view of the stored
        strictly-lower triangle, or ``None`` when the format cannot
        expose one cheaply.

        This is the structural contract the conflict-free (coloring)
        scheduler builds on: ``dvalues`` is the dense main diagonal and
        the CSR triple enumerates the strictly-lower entries row by row
        in ascending column order. Formats without a recoverable lower
        CSR (e.g. blocked layouts) return ``None`` and the coloring
        reduction strategy reports itself unsupported for them.
        """
        return None

    @abc.abstractmethod
    def spmv_partition(
        self,
        x: np.ndarray,
        y_direct: np.ndarray,
        y_local: np.ndarray,
        row_start: int,
        row_end: int,
    ) -> None:
        """Compute the partition product for stored rows
        ``[row_start, row_end)``.

        Contributions to output rows inside ``[row_start, row_end)`` are
        accumulated into ``y_direct``; transposed contributions to rows
        ``< row_start`` go to ``y_local`` (the thread's local vector).
        Both arrays have length ``n_rows`` and are accumulated into, not
        overwritten (callers zero them).
        """

    def spmm_partition(
        self,
        X: np.ndarray,
        Y_direct: np.ndarray,
        Y_local: np.ndarray,
        row_start: int,
        row_end: int,
    ) -> None:
        """Multi-RHS partition kernel: :meth:`spmv_partition` semantics
        with ``(n, k)`` operands, all ``k`` columns per structure
        traversal.

        The base implementation loops :meth:`spmv_partition` over
        column views; SSS / CSX-Sym / CSB-Sym override it with
        single-traversal kernels.
        """
        for j in range(X.shape[1]):
            self.spmv_partition(
                X[:, j], Y_direct[:, j], Y_local[:, j], row_start, row_end
            )

    def precompile_partition(
        self, row_start: int, row_end: int, k: Optional[int] = None
    ) -> None:
        """Eagerly build the partition kernel's lazy caches (local vs
        direct split positions, window-restricted scatters, flattened
        ``k``-RHS indices) for one ``[row_start, row_end)`` partition,
        so a bound operator pays compilation at bind time instead of on
        the first timed iteration. Default: nothing to do."""
