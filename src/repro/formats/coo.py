"""Coordinate (COO) format: the construction and interchange substrate.

Every other format in the library converts to/from COO. The class keeps
entries canonical (row-major sorted, duplicates summed, explicit zeros
dropped on request), which makes format round-trip testing exact.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import INDEX_BYTES, VALUE_BYTES, RowScatter, SparseFormat
from .validate import (
    check_entry_arrays,
    check_finite,
    check_index_bounds,
)

__all__ = ["COOMatrix"]


class COOMatrix(SparseFormat):
    """Coordinate-format sparse matrix with canonical entry ordering.

    Parameters
    ----------
    shape : (int, int)
    rows, cols : integer arrays of equal length
    vals : float array of equal length
    sum_duplicates : bool
        Combine entries with identical coordinates (default True).
    drop_zeros : bool
        Remove explicitly stored zero values (default False — formats
        may legitimately carry explicit zeros, e.g. inside CSX blocks).
    allow_nonfinite : bool
        Permit NaN/inf stored values (default False: construction
        raises :class:`~repro.formats.validate.NonFiniteError`).
    """

    format_name = "coo"

    def __init__(
        self,
        shape: tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        *,
        sum_duplicates: bool = True,
        drop_zeros: bool = False,
        allow_nonfinite: bool = False,
    ):
        super().__init__(shape)
        rows = np.asarray(rows, dtype=np.int32)
        cols = np.asarray(cols, dtype=np.int32)
        vals = np.asarray(vals, dtype=np.float64)
        check_entry_arrays(rows, cols, vals)
        check_index_bounds(rows, cols, self.shape)
        if not allow_nonfinite:
            check_finite(vals, "stored values")

        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        canonical = True

        if rows.size:
            keys = rows.astype(np.int64) * self.n_cols + cols
            if sum_duplicates:
                uniq, inverse = np.unique(keys, return_inverse=True)
                if uniq.size != keys.size:
                    summed = np.zeros(uniq.size, dtype=np.float64)
                    np.add.at(summed, inverse, vals)
                    rows = (uniq // self.n_cols).astype(np.int32)
                    cols = (uniq % self.n_cols).astype(np.int32)
                    vals = summed
            else:
                canonical = bool(np.all(np.diff(keys) > 0))

        if drop_zeros and vals.size:
            keep = vals != 0.0
            rows, cols, vals = rows[keep], cols[keep], vals[keep]

        self.rows = rows
        self.cols = cols
        self.vals = vals
        #: True when entries are sorted with unique coordinates (always
        #: the case after ``sum_duplicates=True`` construction).
        self.is_canonical = canonical
        self._spmm_scatter: Optional[RowScatter] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("dense matrix must be 2-D")
        rows, cols = np.nonzero(dense)
        return cls(dense.shape, rows, cols, dense[rows, cols])

    @classmethod
    def from_scipy(cls, mat) -> "COOMatrix":
        """Build from any scipy.sparse matrix."""
        m = mat.tocoo()
        return cls(m.shape, m.row, m.col, m.data)

    @classmethod
    def empty(cls, shape: tuple[int, int]) -> "COOMatrix":
        z = np.zeros(0)
        return cls(shape, z, z, z)

    # ------------------------------------------------------------------
    # SparseFormat interface
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.vals.size)

    @property
    def stored_entries(self) -> int:
        return int(self.vals.size)

    def size_bytes(self) -> int:
        """COO stores a (row, col, value) triplet per entry."""
        return self.nnz * (2 * INDEX_BYTES + VALUE_BYTES)

    def spmv(self, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        x, y = self._check_spmv_args(x, y)
        np.add.at(y, self.rows, self.vals * x[self.cols])
        return y

    def spmm(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        """Multi-RHS product: one scatter pass for all ``k`` columns."""
        X, Y = self._check_spmm_args(X, Y)
        if self._spmm_scatter is None:
            self._spmm_scatter = RowScatter(self.rows)
        self._spmm_scatter.add(Y, self.vals[:, None] * X[self.cols])
        return Y

    def to_coo(self) -> "COOMatrix":
        return self

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.rows, self.cols), self.vals)
        return dense

    def to_scipy(self):
        import scipy.sparse as sp

        return sp.coo_matrix(
            (self.vals, (self.rows, self.cols)), shape=self.shape
        ).tocsr()

    # ------------------------------------------------------------------
    # Structure queries / transforms
    # ------------------------------------------------------------------
    def canonicalize(self) -> "COOMatrix":
        """Canonical (row-major sorted, duplicate-summed) equivalent.

        Returns ``self`` when already canonical; explicit zeros are
        kept either way.
        """
        if self.is_canonical:
            return self
        return COOMatrix(
            self.shape, self.rows, self.cols, self.vals,
            allow_nonfinite=True,
        )

    def transpose(self) -> "COOMatrix":
        return COOMatrix(
            (self.n_cols, self.n_rows), self.cols, self.rows, self.vals,
            allow_nonfinite=True,
        )

    def is_structurally_symmetric(self) -> bool:
        """True if the sparsity pattern equals its transpose.

        Both sides are canonicalized first: ``transpose()`` sums
        duplicates, so comparing a *non-canonical* instance (built with
        ``sum_duplicates=False``) against it entry-wise would compare
        different entry sets and return a wrong verdict.
        """
        if self.n_rows != self.n_cols:
            return False
        a = self.canonicalize()
        t = a.transpose()
        return (
            np.array_equal(a.rows, t.rows)
            and np.array_equal(a.cols, t.cols)
        )

    def is_symmetric(self, rtol: float = 1e-12) -> bool:
        """True if the matrix equals its transpose (values included)."""
        if self.n_rows != self.n_cols:
            return False
        a = self.canonicalize()
        t = a.transpose()
        return (
            np.array_equal(a.rows, t.rows)
            and np.array_equal(a.cols, t.cols)
            and bool(np.allclose(a.vals, t.vals, rtol=rtol, atol=0.0))
        )

    def lower_triangle(self, *, strict: bool = False) -> "COOMatrix":
        """Entries with ``col <= row`` (``col < row`` when strict)."""
        mask = self.cols < self.rows if strict else self.cols <= self.rows
        return COOMatrix(
            self.shape, self.rows[mask], self.cols[mask], self.vals[mask]
        )

    def diagonal(self) -> np.ndarray:
        """Dense main-diagonal vector (length ``min(shape)``)."""
        d = np.zeros(min(self.shape), dtype=np.float64)
        mask = self.rows == self.cols
        d[self.rows[mask]] = self.vals[mask]
        return d

    def permute_symmetric(self, perm: np.ndarray) -> "COOMatrix":
        """Apply the symmetric permutation ``A' = P A P^T``.

        ``perm[k]`` is the *original* index placed at position ``k``
        (scipy's ``reverse_cuthill_mckee`` convention). Row ``perm[k]``
        of ``A`` becomes row ``k`` of ``A'``.
        """
        perm = np.asarray(perm)
        if perm.shape != (self.n_rows,) or self.n_rows != self.n_cols:
            raise ValueError("perm must be a permutation of the square matrix rows")
        inv = np.empty_like(perm)
        inv[perm] = np.arange(perm.size)
        return COOMatrix(
            self.shape, inv[self.rows], inv[self.cols], self.vals
        )

    def row_counts(self) -> np.ndarray:
        """Number of stored entries per row (length ``n_rows``)."""
        return np.bincount(self.rows, minlength=self.n_rows).astype(np.int64)

    def bandwidth(self) -> int:
        """Matrix (half-)bandwidth: ``max |row - col|`` over entries."""
        if self.nnz == 0:
            return 0
        return int(np.abs(self.rows.astype(np.int64) - self.cols).max())
