"""Compressed Sparse Row (CSR): the paper's baseline format.

Size follows eq. (1): ``S_CSR = 12*NNZ + 4*(N+1)`` with 8-byte values and
4-byte ``colind`` / ``rowptr`` entries.

The SpM×V kernel is expressed with ``np.add.reduceat`` so a whole
partition is computed in a handful of vectorized passes — the library's
stand-in for the tight C loop of the original implementation (see
DESIGN.md, substitution table).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import INDEX_BYTES, VALUE_BYTES, SparseFormat
from .coo import COOMatrix

__all__ = ["CSRMatrix", "csr_row_segment_sums"]


def csr_row_segment_sums(
    products: np.ndarray, rowptr: np.ndarray, row_start: int, row_end: int
) -> np.ndarray:
    """Sum ``products`` (ordered by row) into one value per row.

    ``products[rowptr[r]-rowptr[row_start] : rowptr[r+1]-rowptr[row_start]]``
    holds the per-element products of row ``r``. Empty rows yield 0.

    ``products`` may also be 2-D, shape ``(nnz_local, k)`` — one column
    per right-hand side — in which case the result is ``(n_local, k)``
    (the SpM×M case: the segmented reduction runs along axis 0 for all
    columns in one pass).

    The reduction must be **row-local**: an earlier implementation
    used a global prefix-sum difference (``prefix[hi] - prefix[lo]``),
    whose per-row rounding error scales with the running sum of every
    *preceding* row — a row of tiny values after a row of huge ones
    came back with its entire value wiped out (found by
    ``repro.fuzz``).  ``np.add.reduceat`` sums each row's products
    independently; empty rows (where ``reduceat`` would misbehave,
    returning ``products[lo]``) are skipped and left at zero.
    """
    n_local = row_end - row_start
    tail = products.shape[1:]
    out = np.zeros((max(n_local, 0),) + tail, dtype=np.float64)
    if n_local <= 0 or products.shape[0] == 0:
        return out
    base = rowptr[row_start]
    lo = (rowptr[row_start:row_end] - base).astype(np.intp)
    hi = (rowptr[row_start + 1 : row_end + 1] - base).astype(np.intp)
    nonempty = np.flatnonzero(hi > lo)
    if nonempty.size == 0:
        return out
    # Consecutive non-empty starts are strictly increasing (empty rows
    # between them share the same offset), so every reduceat segment is
    # exactly one stored row — no empty-segment misfire possible.
    out[nonempty] = np.add.reduceat(products, lo[nonempty], axis=0)
    return out


class CSRMatrix(SparseFormat):
    """Compressed Sparse Row storage.

    Parameters
    ----------
    shape : (int, int)
    rowptr : int32 array of length ``n_rows + 1``
    colind : int32 array of length ``nnz`` (column-sorted within rows)
    values : float64 array of length ``nnz``
    """

    format_name = "csr"

    def __init__(
        self,
        shape: tuple[int, int],
        rowptr: np.ndarray,
        colind: np.ndarray,
        values: np.ndarray,
    ):
        super().__init__(shape)
        rowptr = np.asarray(rowptr, dtype=np.int32)
        colind = np.asarray(colind, dtype=np.int32)
        values = np.asarray(values, dtype=np.float64)
        if rowptr.shape != (self.n_rows + 1,):
            raise ValueError(
                f"rowptr length {rowptr.size} != n_rows+1 = {self.n_rows + 1}"
            )
        if rowptr[0] != 0 or rowptr[-1] != colind.size:
            raise ValueError("rowptr must start at 0 and end at nnz")
        if np.any(np.diff(rowptr) < 0):
            raise ValueError("rowptr must be non-decreasing")
        if colind.shape != values.shape:
            raise ValueError("colind and values length mismatch")
        if colind.size and (
            colind.min() < 0 or colind.max() >= self.n_cols
        ):
            raise ValueError("column index out of bounds")
        self.rowptr = rowptr
        self.colind = colind
        self.values = values

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        counts = np.bincount(coo.rows, minlength=coo.n_rows)
        rowptr = np.zeros(coo.n_rows + 1, dtype=np.int32)
        np.cumsum(counts, out=rowptr[1:])
        # COOMatrix keeps entries row-major sorted, so cols/vals are ready.
        return cls(coo.shape, rowptr, coo.cols, coo.vals)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    # ------------------------------------------------------------------
    # SparseFormat interface
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.values.size)

    @property
    def stored_entries(self) -> int:
        return int(self.values.size)

    def size_bytes(self) -> int:
        """Paper eq. (1): ``12*NNZ + 4*(N+1)``."""
        return (
            self.nnz * (VALUE_BYTES + INDEX_BYTES)
            + (self.n_rows + 1) * INDEX_BYTES
        )

    def spmv(self, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        x, y = self._check_spmv_args(x, y)
        products = self.values * x[self.colind]
        y[:] = csr_row_segment_sums(products, self.rowptr, 0, self.n_rows)
        return y

    def spmv_rows(
        self, x: np.ndarray, y: np.ndarray, row_start: int, row_end: int
    ) -> None:
        """Partition kernel: compute rows ``[row_start, row_end)`` into
        ``y[row_start:row_end]`` (the multithreaded CSR building block —
        rows are independent, no reduction needed)."""
        lo, hi = self.rowptr[row_start], self.rowptr[row_end]
        products = self.values[lo:hi] * x[self.colind[lo:hi]]
        y[row_start:row_end] = csr_row_segment_sums(
            products, self.rowptr, row_start, row_end
        )

    def spmm(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        """Multi-RHS product: one traversal of (rowptr, colind, values)
        computes all ``k`` columns — matrix traffic is paid once."""
        X, Y = self._check_spmm_args(X, Y)
        products = self.values[:, None] * X[self.colind]
        Y[:] = csr_row_segment_sums(products, self.rowptr, 0, self.n_rows)
        return Y

    def spmm_rows(
        self, X: np.ndarray, Y: np.ndarray, row_start: int, row_end: int
    ) -> None:
        """Multi-RHS partition kernel (``(n, k)`` analogue of
        :meth:`spmv_rows`)."""
        lo, hi = self.rowptr[row_start], self.rowptr[row_end]
        products = self.values[lo:hi, None] * X[self.colind[lo:hi]]
        Y[row_start:row_end] = csr_row_segment_sums(
            products, self.rowptr, row_start, row_end
        )

    def to_coo(self) -> COOMatrix:
        rows = np.repeat(
            np.arange(self.n_rows, dtype=np.int32), np.diff(self.rowptr)
        )
        return COOMatrix(
            self.shape, rows, self.colind, self.values, sum_duplicates=False
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def row_nnz(self) -> np.ndarray:
        return np.diff(self.rowptr).astype(np.int64)

    def row(self, r: int) -> tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of stored row ``r``."""
        lo, hi = self.rowptr[r], self.rowptr[r + 1]
        return self.colind[lo:hi], self.values[lo:hi]
