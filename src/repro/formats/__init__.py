"""Sparse matrix storage formats.

The format zoo of the paper: COO (interchange), CSR (baseline, eq. 1),
SSS (symmetric skyline, eq. 2), CSX and CSX-Sym (Section IV).
"""

from .base import INDEX_BYTES, VALUE_BYTES, SparseFormat, SymmetricFormat
from .bcsr import BCSRMatrix
from .coo import COOMatrix
from .csb import CSBMatrix, CSBSymMatrix
from .csr import CSRMatrix
from .csx import CSXMatrix, CSXSymMatrix, DetectionConfig
from .sss import SSSMatrix
from .validate import (
    BoundsError,
    CanonicalityError,
    DTypeError,
    NonFiniteError,
    ParseError,
    PartitionError,
    ShapeError,
    SymmetryError,
    TriangleConventionError,
    ValidationError,
)

__all__ = [
    "SparseFormat",
    "SymmetricFormat",
    "COOMatrix",
    "CSRMatrix",
    "SSSMatrix",
    "CSXMatrix",
    "CSXSymMatrix",
    "DetectionConfig",
    "BCSRMatrix",
    "CSBMatrix",
    "CSBSymMatrix",
    "INDEX_BYTES",
    "VALUE_BYTES",
    "ValidationError",
    "ShapeError",
    "DTypeError",
    "BoundsError",
    "NonFiniteError",
    "CanonicalityError",
    "TriangleConventionError",
    "SymmetryError",
    "ParseError",
    "PartitionError",
]
