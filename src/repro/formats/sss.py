"""Symmetric Sparse Skyline (SSS) storage (paper Section II-B).

SSS stores a symmetric matrix as a separate dense main-diagonal array
``dvalues`` plus the *strictly lower* triangle in CSR form. Size follows
eq. (2): ``S_SSS = 6*(NNZ + N) + 4`` for a matrix with ``NNZ`` logical
non-zeros (both triangles, full diagonal) of rank ``N``.

The serial kernel is Alg. 2; the partition kernel used by the
multithreaded algorithms (Alg. 3) routes transposed contributions either
directly into the output vector (inside the thread's own row range) or
into the thread's local vector (rows before the partition), which is the
behaviour the three reduction methods of Section III build upon.
"""

from __future__ import annotations

import threading
from typing import Optional

import numpy as np

from ..obs.tracer import active as _active_tracer
from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    RowScatter,
    SymmetricFormat,
    bounded_cache_insert,
)
from .coo import COOMatrix
from .csr import csr_row_segment_sums
from .validate import SymmetryError

__all__ = ["SSSMatrix", "PART_SPLIT_CACHE_MAX"]

#: Cap on cached per-partition local/direct scatter splits (keyed by
#: partition bounds; oldest evicted beyond this, so repartitioning a
#: long-lived matrix cannot grow the cache without bound).
PART_SPLIT_CACHE_MAX = 256


class SSSMatrix(SymmetricFormat):
    """Sparse Symmetric Skyline storage of a symmetric matrix.

    Parameters
    ----------
    shape : (int, int) — must be square.
    dvalues : float64 array of length ``N`` (dense main diagonal; zeros
        allowed for structurally missing diagonal entries).
    rowptr, colind, values : CSR triple of the strictly lower triangle.
    """

    format_name = "sss"

    def __init__(
        self,
        shape: tuple[int, int],
        dvalues: np.ndarray,
        rowptr: np.ndarray,
        colind: np.ndarray,
        values: np.ndarray,
    ):
        super().__init__(shape)
        dvalues = np.asarray(dvalues, dtype=np.float64)
        rowptr = np.asarray(rowptr, dtype=np.int32)
        colind = np.asarray(colind, dtype=np.int32)
        values = np.asarray(values, dtype=np.float64)
        if dvalues.shape != (self.n_rows,):
            raise ValueError("dvalues must have length N")
        if rowptr.shape != (self.n_rows + 1,):
            raise ValueError("rowptr must have length N+1")
        if rowptr[0] != 0 or rowptr[-1] != colind.size:
            raise ValueError("rowptr must start at 0 and end at nnz(lower)")
        if np.any(np.diff(rowptr) < 0):
            raise ValueError("rowptr must be non-decreasing")
        if colind.shape != values.shape:
            raise ValueError("colind/values length mismatch")
        self.dvalues = dvalues
        self.rowptr = rowptr
        self.colind = colind
        self.values = values
        # Row index of each stored (strictly lower) entry; an execution
        # aid for the vectorized scatter, not counted in size_bytes().
        self._rows = np.repeat(
            np.arange(self.n_rows, dtype=np.int32), np.diff(rowptr)
        )
        if colind.size and np.any(colind >= self._rows):
            raise ValueError("SSS off-diagonal entries must be strictly lower")
        # Lazy spmm scatter compilations (whole matrix / per partition).
        # Mutations (miss-path build, bounded eviction, clear_caches)
        # run under the cache lock so concurrent bind()/apply from
        # several operators sharing this matrix cannot corrupt the
        # dicts; hit paths read lock-free and keep local references.
        self._spmm_scatter: Optional[RowScatter] = None
        self._spmm_part_cache: dict[tuple[int, int], tuple] = {}
        self._cache_lock = threading.Lock()

    def __getstate__(self):
        # Locks are unpicklable; the process backend ships the matrix
        # to workers through the shared arena. Workers get their own.
        state = self.__dict__.copy()
        del state["_cache_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._cache_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, *, check_symmetry: bool = True) -> "SSSMatrix":
        """Build from an (expanded) symmetric COO matrix."""
        if check_symmetry and not coo.is_symmetric():
            raise SymmetryError("matrix is not symmetric; SSS requires symmetry")
        lower = coo.lower_triangle(strict=True)
        counts = np.bincount(lower.rows, minlength=coo.n_rows)
        rowptr = np.zeros(coo.n_rows + 1, dtype=np.int32)
        np.cumsum(counts, out=rowptr[1:])
        return cls(coo.shape, coo.diagonal(), rowptr, lower.cols, lower.vals)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "SSSMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    # ------------------------------------------------------------------
    # SparseFormat interface
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Logical non-zeros of the expanded matrix."""
        return int(2 * self.values.size + np.count_nonzero(self.dvalues))

    @property
    def stored_entries(self) -> int:
        """Explicit value entries: N diagonal slots + lower triangle."""
        return int(self.n_rows + self.values.size)

    @property
    def nnz_lower(self) -> int:
        """Stored strictly-lower entries, ``(NNZ - N) / 2`` in the paper."""
        return int(self.values.size)

    def size_bytes(self) -> int:
        """Paper eq. (2): ``8N + 12*(NNZ-N)/2 + 4*(N+1) = 6(NNZ+N) + 4``."""
        return (
            self.n_rows * VALUE_BYTES
            + self.nnz_lower * (VALUE_BYTES + INDEX_BYTES)
            + (self.n_rows + 1) * INDEX_BYTES
        )

    def spmv(self, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        """Serial symmetric SpM×V (Alg. 2), vectorized."""
        x, y = self._check_spmv_args(x, y)
        y[:] = self.dvalues * x
        if self.values.size:
            products = self.values * x[self.colind]
            y += csr_row_segment_sums(products, self.rowptr, 0, self.n_rows)
            # Transposed (upper-triangle) contributions: y[c] += a_rc * x[r].
            np.add.at(y, self.colind, self.values * x[self._rows])
        return y

    def spmm(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        """Multi-RHS symmetric product: one pass over the stored lower
        triangle serves all ``k`` columns (direct and transposed halves
        alike), so the ``6(NNZ+N)`` matrix bytes are streamed once."""
        X, Y = self._check_spmm_args(X, Y)
        Y[:] = self.dvalues[:, None] * X
        if self.values.size:
            products = self.values[:, None] * X[self.colind]
            Y += csr_row_segment_sums(products, self.rowptr, 0, self.n_rows)
            scatter = self._spmm_scatter
            if scatter is None:
                with self._cache_lock:
                    scatter = self._spmm_scatter
                    if scatter is None:
                        scatter = RowScatter(self.colind)
                        self._spmm_scatter = scatter
            scatter.add(Y, self.values[:, None] * X[self._rows])
        return Y

    def spmm_partition(
        self,
        X: np.ndarray,
        Y_direct: np.ndarray,
        Y_local: np.ndarray,
        row_start: int,
        row_end: int,
    ) -> None:
        """Multi-RHS partition kernel: :meth:`spmv_partition` with
        ``(n, k)`` operands, one structure traversal for all columns."""
        lo, hi = self.rowptr[row_start], self.rowptr[row_end]
        sl = slice(row_start, row_end)
        Y_direct[sl] += self.dvalues[sl, None] * X[sl]
        if hi == lo:
            return
        cols = self.colind[lo:hi]
        vals = self.values[lo:hi]
        products = vals[:, None] * X[cols]
        Y_direct[sl] += csr_row_segment_sums(
            products, self.rowptr, row_start, row_end
        )
        transposed = vals[:, None] * X[self._rows[lo:hi]]
        local_pos, local_sc, direct_pos, direct_sc = self._partition_split(
            row_start, row_end
        )
        if local_pos.size == 0:
            direct_sc.add(Y_direct, transposed)
            return
        local_sc.add(Y_local, transposed[local_pos])
        if direct_pos.size:
            direct_sc.add(Y_direct, transposed[direct_pos])

    def _partition_split(
        self, row_start: int, row_end: int
    ) -> tuple[np.ndarray, RowScatter, np.ndarray, RowScatter]:
        """Cached local/direct split of one partition's transposed
        writes: positions of entries with column < / >= ``row_start``
        plus the window-restricted scatters through them (shared by the
        1-D and multi-RHS partition kernels)."""
        key = (row_start, row_end)
        # Lock-free hit path; the tuple is immutable once built, so a
        # concurrent eviction only affects dict membership, never this
        # local reference.
        cache = self._spmm_part_cache.get(key)
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.count(
                "sss.part_split_hit" if cache is not None
                else "sss.part_split_miss"
            )
        if cache is None:
            with self._cache_lock:
                cache = self._spmm_part_cache.get(key)
                if cache is None:
                    lo, hi = self.rowptr[row_start], self.rowptr[row_end]
                    cols = self.colind[lo:hi]
                    local_pos = np.flatnonzero(cols < row_start)
                    direct_pos = np.flatnonzero(cols >= row_start)
                    cache = (
                        local_pos,
                        RowScatter(cols[local_pos]),
                        direct_pos,
                        RowScatter(cols[direct_pos]),
                    )
                    bounded_cache_insert(
                        self._spmm_part_cache, key, cache,
                        PART_SPLIT_CACHE_MAX,
                    )
        return cache

    def precompile_partition(
        self, row_start: int, row_end: int, k: Optional[int] = None
    ) -> None:
        """Build the partition's split and scatters (plus the flattened
        ``k``-RHS indices) ahead of the first kernel call."""
        _, local_sc, _, direct_sc = self._partition_split(row_start, row_end)
        local_sc.compile(k)
        direct_sc.compile(k)

    def clear_caches(self) -> None:
        """Release the lazy scatter compilations (rebuilt on demand).
        Safe against concurrent kernel calls: they hold local
        references to whatever was compiled when they started."""
        with self._cache_lock:
            self._spmm_scatter = None
            self._spmm_part_cache.clear()

    def spmv_partition(
        self,
        x: np.ndarray,
        y_direct: np.ndarray,
        y_local: np.ndarray,
        row_start: int,
        row_end: int,
    ) -> None:
        """Partition kernel for Alg. 3 (one thread's multiplication phase).

        Stored rows ``[row_start, row_end)`` are computed. Row results and
        transposed contributions landing inside the partition accumulate
        into ``y_direct``; transposed contributions to rows before
        ``row_start`` go to ``y_local``. The transposed scatters run
        through the cached local/direct split, window-restricted to each
        side's effective column range.
        """
        lo, hi = self.rowptr[row_start], self.rowptr[row_end]
        sl = slice(row_start, row_end)
        y_direct[sl] += self.dvalues[sl] * x[sl]
        if hi == lo:
            return
        cols = self.colind[lo:hi]
        vals = self.values[lo:hi]
        products = vals * x[cols]
        y_direct[sl] += csr_row_segment_sums(
            products, self.rowptr, row_start, row_end
        )
        transposed = vals * x[self._rows[lo:hi]]
        local_pos, local_sc, direct_pos, direct_sc = self._partition_split(
            row_start, row_end
        )
        if local_pos.size == 0:
            direct_sc.add(y_direct, transposed)
            return
        local_sc.add(y_local, transposed[local_pos])
        if direct_pos.size:
            direct_sc.add(y_direct, transposed[direct_pos])

    def lower_triple(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy lower-triangle CSR view — SSS *is* the triple."""
        return self.dvalues, self.rowptr, self.colind, self.values

    def to_coo(self) -> COOMatrix:
        """Expand to a full (both-triangle) COO matrix."""
        diag_rows = np.flatnonzero(self.dvalues).astype(np.int32)
        rows = np.concatenate([self._rows, self.colind, diag_rows])
        cols = np.concatenate([self.colind, self._rows, diag_rows])
        vals = np.concatenate(
            [self.values, self.values, self.dvalues[diag_rows]]
        )
        return COOMatrix(self.shape, rows, cols, vals, sum_duplicates=False)

    # ------------------------------------------------------------------
    # Partition structure queries (used by the reduction machinery)
    # ------------------------------------------------------------------
    def partition_conflict_rows(self, row_start: int, row_end: int) -> np.ndarray:
        """Sorted unique output rows *before* ``row_start`` that the
        partition's transposed contributions write to.

        These are exactly the non-zero elements of the partition's local
        vector — the quantity the local-vectors indexing scheme of
        Section III-C indexes.
        """
        lo, hi = self.rowptr[row_start], self.rowptr[row_end]
        cols = self.colind[lo:hi]
        return np.unique(cols[cols < row_start]).astype(np.int64)

    def row_nnz_lower(self) -> np.ndarray:
        """Stored (strictly lower) entries per row."""
        return np.diff(self.rowptr).astype(np.int64)

    def expanded_row_nnz(self) -> np.ndarray:
        """Logical non-zeros per row of the expanded matrix (used by the
        nnz-balanced partitioner so thread loads match the real work)."""
        counts = np.diff(self.rowptr).astype(np.int64)
        counts += np.bincount(
            self.colind, minlength=self.n_rows
        ).astype(np.int64)
        counts += (self.dvalues != 0.0).astype(np.int64)
        return counts
