"""Compressed Sparse Blocks (CSB) — related-work comparator.

The paper's Section VI discusses Buluç et al.'s CSB [8] and its
symmetric extension [27] as the closest rival to the local-vectors
indexing scheme. CSB tiles the matrix into large ``β×β`` sparse blocks
stored in coordinate form with *small* (2-byte) local indices:

* :class:`CSBMatrix` — the unsymmetric format (supports ``A·x``).
* :class:`CSBSymMatrix` — stores only the lower-triangle blocks; the
  multithreaded kernel follows [27]: transposed contributions landing
  within the three innermost block diagonals go to per-thread local
  buffers (so the reduction is always at most three vector additions),
  while contributions from farther blocks use atomic updates on the
  shared output vector. On matrices with large bandwidth the atomics
  dominate — the weakness the paper points out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .base import (
    INDEX_BYTES,
    VALUE_BYTES,
    SparseFormat,
    SymmetricFormat,
    scatter_add_rows,
)
from .coo import COOMatrix
from .validate import SymmetryError

__all__ = ["CSBMatrix", "CSBSymMatrix", "default_beta"]

#: Local indices are stored in 16 bits, capping the block dimension.
MAX_BETA = 1 << 16
#: Bytes per stored element: value + two uint16 local indices.
_ELEM_BYTES = VALUE_BYTES + 4
#: Per-block index overhead: block row, block col, offset.
_BLOCK_BYTES = 3 * INDEX_BYTES


def _gather_products(vals: np.ndarray, x_gathered: np.ndarray) -> np.ndarray:
    """Per-element products for 1-D (``(m,)``) or multi-RHS 2-D
    (``(m, k)``) gathered operands."""
    if x_gathered.ndim == 2:
        return vals[:, None] * x_gathered
    return vals * x_gathered


def default_beta(n: int) -> int:
    """CSB's recommended block dimension: ``~sqrt(n)`` rounded up to a
    power of two, clamped to the uint16 local-index range."""
    if n <= 1:
        return 1
    beta = 1
    while beta * beta < n:
        beta <<= 1
    return min(max(beta, 2), MAX_BETA)


@dataclass
class _Block:
    """One sparse block: local coordinates + values."""

    brow: int
    bcol: int
    lrows: np.ndarray  # uint16 local row indices
    lcols: np.ndarray  # uint16 local col indices
    vals: np.ndarray

    @property
    def nnz(self) -> int:
        return int(self.vals.size)


def _build_blocks(
    coo: COOMatrix, beta: int
) -> list[_Block]:
    rows = coo.rows.astype(np.int64)
    cols = coo.cols.astype(np.int64)
    brow = rows // beta
    bcol = cols // beta
    n_bcols = -(-coo.n_cols // beta)
    keys = brow * n_bcols + bcol
    order = np.argsort(keys, kind="stable")
    keys_sorted = keys[order]
    boundaries = np.flatnonzero(
        np.diff(np.concatenate(([-1], keys_sorted)))
    )
    blocks: list[_Block] = []
    ends = np.append(boundaries[1:], keys_sorted.size)
    for start, end in zip(boundaries, ends):
        sel = order[start:end]
        key = keys_sorted[start]
        blocks.append(
            _Block(
                brow=int(key // n_bcols),
                bcol=int(key % n_bcols),
                lrows=(rows[sel] % beta).astype(np.uint16),
                lcols=(cols[sel] % beta).astype(np.uint16),
                vals=coo.vals[sel].copy(),
            )
        )
    return blocks


class CSBMatrix(SparseFormat):
    """Compressed Sparse Blocks storage (unsymmetric).

    Parameters
    ----------
    coo : source matrix.
    beta : block dimension (power of two ≤ 65536); default
        :func:`default_beta`.
    """

    format_name = "csb"

    def __init__(self, coo: COOMatrix, beta: Optional[int] = None):
        super().__init__(coo.shape)
        self.beta = int(beta) if beta is not None else default_beta(max(self.shape))
        if not 1 <= self.beta <= MAX_BETA:
            raise ValueError(f"beta must be in [1, {MAX_BETA}]")
        self.blocks = _build_blocks(coo, self.beta)
        self._nnz = coo.nnz

    @property
    def nnz(self) -> int:
        return int(self._nnz)

    @property
    def stored_entries(self) -> int:
        return int(self._nnz)

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def size_bytes(self) -> int:
        return self._nnz * _ELEM_BYTES + self.n_blocks * _BLOCK_BYTES

    def spmv(self, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        x, y = self._check_spmv_args(x, y)
        b = self.beta
        for blk in self.blocks:
            r0 = blk.brow * b
            c0 = blk.bcol * b
            products = blk.vals * x[c0 + blk.lcols.astype(np.int64)]
            y[r0 : r0 + b] += np.bincount(
                blk.lrows, weights=products, minlength=min(b, self.n_rows - r0)
            )[: self.n_rows - r0]
        return y

    def spmm(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        """Multi-RHS product: one pass over the block list for all
        ``k`` columns."""
        X, Y = self._check_spmm_args(X, Y)
        b = self.beta
        for blk in self.blocks:
            r0 = blk.brow * b
            c0 = blk.bcol * b
            products = blk.vals[:, None] * X[c0 + blk.lcols.astype(np.int64)]
            scatter_add_rows(Y, r0 + blk.lrows.astype(np.int64), products)
        return Y

    def to_coo(self) -> COOMatrix:
        if not self.blocks:
            return COOMatrix.empty(self.shape)
        b = self.beta
        rows = np.concatenate(
            [blk.brow * b + blk.lrows.astype(np.int64) for blk in self.blocks]
        )
        cols = np.concatenate(
            [blk.bcol * b + blk.lcols.astype(np.int64) for blk in self.blocks]
        )
        vals = np.concatenate([blk.vals for blk in self.blocks])
        return COOMatrix(self.shape, rows, cols, vals, sum_duplicates=False)


class CSBSymMatrix(SymmetricFormat):
    """Symmetric CSB: lower-triangle blocks only ([27]'s storage).

    Off-diagonal blocks (``brow > bcol``) carry both ``A·x`` and
    ``Aᵀ·x`` contributions; diagonal blocks store their lower triangle
    and expand symmetrically in-kernel.
    """

    format_name = "csb-sym"

    #: Transposed writes within this many block diagonals of a thread's
    #: own rows go to local buffers; farther ones are atomic ([27] uses
    #: the three innermost block diagonals → distance ≤ 2).
    NEAR_DIAGONALS = 2

    def __init__(
        self,
        coo: COOMatrix,
        beta: Optional[int] = None,
        *,
        check_symmetry: bool = True,
    ):
        super().__init__(coo.shape)
        if check_symmetry and not coo.is_symmetric():
            raise SymmetryError("CSB-Sym requires a symmetric matrix")
        self.beta = int(beta) if beta is not None else default_beta(self.n_rows)
        if not 1 <= self.beta <= MAX_BETA:
            raise ValueError(f"beta must be in [1, {MAX_BETA}]")
        lower = coo.lower_triangle(strict=False)  # diagonal kept in-block
        self.blocks = _build_blocks(lower, self.beta)
        self._nnz_stored = lower.nnz
        self._nnz = coo.nnz
        self.n_brows = -(-self.n_rows // self.beta)

    @property
    def nnz(self) -> int:
        return int(self._nnz)

    @property
    def stored_entries(self) -> int:
        return int(self._nnz_stored)

    def size_bytes(self) -> int:
        return (
            self._nnz_stored * _ELEM_BYTES
            + len(self.blocks) * _BLOCK_BYTES
        )

    # ------------------------------------------------------------------
    def _block_contribution(
        self, blk: _Block, x: np.ndarray, y_direct: np.ndarray,
        y_transposed: np.ndarray,
    ) -> None:
        """Accumulate one block's direct rows into ``y_direct`` and its
        transposed writes into ``y_transposed`` (may alias).

        Operands may be 1-D vectors or 2-D ``(n, k)`` multi-RHS blocks;
        either way the block is traversed once.
        """
        b = self.beta
        r0 = blk.brow * b
        c0 = blk.bcol * b
        lr = blk.lrows.astype(np.int64)
        lc = blk.lcols.astype(np.int64)
        if blk.brow == blk.bcol:
            # Diagonal block: symmetric expansion, diagonal counted once.
            products = _gather_products(blk.vals, x[c0 + lc])
            scatter_add_rows(y_direct, r0 + lr, products)
            off = lr != lc
            if np.any(off):
                scatter_add_rows(
                    y_transposed,
                    c0 + lc[off],
                    _gather_products(blk.vals[off], x[r0 + lr[off]]),
                )
        else:
            scatter_add_rows(
                y_direct, r0 + lr, _gather_products(blk.vals, x[c0 + lc])
            )
            scatter_add_rows(
                y_transposed, c0 + lc, _gather_products(blk.vals, x[r0 + lr])
            )

    def spmv(self, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        x, y = self._check_spmv_args(x, y)
        for blk in self.blocks:
            self._block_contribution(blk, x, y, y)
        return y

    def spmm(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        """Multi-RHS symmetric product: each lower-triangle block is
        visited once for all ``k`` columns."""
        X, Y = self._check_spmm_args(X, Y)
        for blk in self.blocks:
            self._block_contribution(blk, X, Y, Y)
        return Y

    def spmv_partition(
        self,
        x: np.ndarray,
        y_direct: np.ndarray,
        y_local: np.ndarray,
        row_start: int,
        row_end: int,
    ) -> None:
        """SymmetricFormat interface: partition boundaries must align to
        block rows. Transposed writes before ``row_start`` go to
        ``y_local`` regardless of distance (the generic local-vectors
        contract); :meth:`spmv_partition_csb` exposes [27]'s
        near/atomic split with its statistics."""
        self._partition_accumulate(x, y_direct, y_local, row_start, row_end)

    def spmm_partition(
        self,
        X: np.ndarray,
        Y_direct: np.ndarray,
        Y_local: np.ndarray,
        row_start: int,
        row_end: int,
    ) -> None:
        """Multi-RHS partition kernel (same block traversal, ``(n, k)``
        operands)."""
        self._partition_accumulate(X, Y_direct, Y_local, row_start, row_end)

    def _partition_accumulate(
        self, x, y_direct, y_local, row_start: int, row_end: int
    ) -> None:
        if row_start % self.beta and row_start != self.n_rows:
            raise ValueError(
                f"partition boundary {row_start} not aligned to beta="
                f"{self.beta}"
            )
        scratch = np.zeros_like(y_direct)
        # Transposed writes land at columns <= their row < row_end, and
        # no earlier than the leftmost visited block column — merge the
        # scratch over that window only instead of the full vector.
        cmin = row_start
        for blk in self.blocks:
            r0 = blk.brow * self.beta
            if not row_start <= r0 < row_end:
                continue
            cmin = min(cmin, blk.bcol * self.beta)
            self._block_contribution(blk, x, y_direct, scratch)
        y_direct[row_start:row_end] += scratch[row_start:row_end]
        if cmin < row_start:
            y_local[cmin:row_start] += scratch[cmin:row_start]

    def spmv_partition_csb(
        self,
        x: np.ndarray,
        y_shared: np.ndarray,
        near_buffers: np.ndarray,
        row_start: int,
        row_end: int,
    ) -> int:
        """[27]'s kernel for one thread: direct writes and *near*
        transposed writes (within :attr:`NEAR_DIAGONALS` block
        diagonals) go to ``near_buffers`` (shape ``(NEAR_DIAGONALS+1,
        n)``); farther transposed writes hit ``y_shared`` "atomically".

        Returns the number of atomic updates performed (the model's
        cost driver).
        """
        b = self.beta
        atomic = 0
        for blk in self.blocks:
            r0 = blk.brow * b
            if not row_start <= r0 < row_end:
                continue
            dist = blk.brow - blk.bcol
            if dist <= self.NEAR_DIAGONALS:
                # Direct rows always go to the shared vector (rows are
                # thread-exclusive); near transposed writes buffer.
                buf = near_buffers[max(dist, 0)]
                self._block_contribution(blk, x, y_shared, buf)
            else:
                lr = blk.lrows.astype(np.int64)
                lc = blk.lcols.astype(np.int64)
                c0 = blk.bcol * b
                np.add.at(
                    y_shared, r0 + lr, blk.vals * x[c0 + lc]
                )
                np.add.at(
                    y_shared, c0 + lc, blk.vals * x[r0 + lr]
                )
                atomic += blk.nnz
        return atomic

    def count_atomic_updates(
        self, partitions: Sequence[tuple[int, int]]
    ) -> int:
        """Transposed elements beyond the near diagonals — each needs an
        atomic update in [27]'s scheme."""
        total = 0
        for blk in self.blocks:
            if blk.brow - blk.bcol > self.NEAR_DIAGONALS:
                total += blk.nnz
        return total

    def partition_conflict_rows(self, row_start: int, row_end: int) -> np.ndarray:
        """Generic local-vectors interface (for cross-method reuse)."""
        b = self.beta
        out = []
        for blk in self.blocks:
            r0 = blk.brow * b
            if not row_start <= r0 < row_end:
                continue
            cols = blk.bcol * b + blk.lcols.astype(np.int64)
            out.append(cols[cols < row_start])
        if not out:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(out))

    def block_row_partitions(
        self, n_threads: int
    ) -> list[tuple[int, int]]:
        """Row partitions aligned to block rows, balanced on stored
        elements per block row."""
        weights = np.zeros(self.n_brows, dtype=np.float64)
        for blk in self.blocks:
            weights[blk.brow] += blk.nnz
        from ..parallel.partition import partition_nnz_balanced

        bparts = partition_nnz_balanced(weights, n_threads)
        out = []
        for bs, be in bparts:
            out.append(
                (
                    min(bs * self.beta, self.n_rows),
                    min(be * self.beta, self.n_rows),
                )
            )
        if out:
            out[-1] = (out[-1][0], self.n_rows)
        return out

    def to_coo(self) -> COOMatrix:
        if not self.blocks:
            return COOMatrix.empty(self.shape)
        b = self.beta
        rows_l, cols_l, vals_l = [], [], []
        for blk in self.blocks:
            r = blk.brow * b + blk.lrows.astype(np.int64)
            c = blk.bcol * b + blk.lcols.astype(np.int64)
            rows_l.append(r)
            cols_l.append(c)
            vals_l.append(blk.vals)
            off = r != c
            rows_l.append(c[off])
            cols_l.append(r[off])
            vals_l.append(blk.vals[off])
        return COOMatrix(
            self.shape,
            np.concatenate(rows_l),
            np.concatenate(cols_l),
            np.concatenate(vals_l),
            sum_duplicates=False,
        )
