"""Shared input-validation layer and error taxonomy.

Every entry point that accepts user-controlled data — COO construction,
MatrixMarket parsing, thread partitioning, the parallel-driver operand
checks — routes its validation through this module, so (a) the checks
exist exactly once, (b) failures carry a typed, machine-matchable error
class, and (c) the differential fuzzer (:mod:`repro.fuzz`) can assert
that malformed input is *rejected with the right taxon* instead of
silently mis-computed.

Taxonomy
--------
All errors derive from :class:`ValidationError`, which derives from
``ValueError`` so pre-existing ``except ValueError`` call sites keep
working.  :class:`DTypeError` additionally derives from ``TypeError``
for the same reason.

============================  =============================================
:class:`ShapeError`           operand/array has the wrong shape or ndim
:class:`DTypeError`           operand has the wrong dtype
:class:`BoundsError`          index out of range (negative or >= extent)
:class:`NonFiniteError`       NaN/inf where finite data is required
:class:`CanonicalityError`    duplicate/unsorted entries where canonical
                              (unique, sorted) entries are required
:class:`TriangleConventionError`  symmetric-storage triangle convention
                              violated (entry above the diagonal)
:class:`SymmetryError`        matrix expected symmetric but is not
:class:`ParseError`           malformed MatrixMarket (or other) text
:class:`PartitionError`       thread partitioning does not tile the rows
============================  =============================================

Kernel operands (``x`` vectors) deliberately have **no** default
finiteness check: NaN/inf inputs must propagate through the kernels
with IEEE semantics (``tests/test_failure_injection.py`` pins this).
Use :func:`check_finite` explicitly where strictness is wanted — the
fuzzer and the I/O layer do.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "ValidationError",
    "ShapeError",
    "DTypeError",
    "BoundsError",
    "NonFiniteError",
    "CanonicalityError",
    "TriangleConventionError",
    "SymmetryError",
    "ParseError",
    "PartitionError",
    "check_finite",
    "check_index_bounds",
    "check_entry_arrays",
    "check_no_duplicates",
    "check_lower_triangle",
    "check_spmv_args",
    "check_spmm_args",
    "check_driver_x",
    "prepare_driver_y",
    "check_partitions",
]


class ValidationError(ValueError):
    """Base class for all typed input-validation failures."""


class ShapeError(ValidationError):
    """Operand or array has the wrong shape/ndim."""


class DTypeError(ValidationError, TypeError):
    """Operand has the wrong dtype (also a ``TypeError``)."""


class BoundsError(ValidationError):
    """Index out of range for the declared matrix extent."""


class NonFiniteError(ValidationError):
    """NaN or infinity where finite data is required."""


class CanonicalityError(ValidationError):
    """Duplicate or unsorted entries where canonical entries are required."""


class TriangleConventionError(ValidationError):
    """Symmetric-storage lower-triangle convention violated."""


class SymmetryError(ValidationError):
    """Matrix expected symmetric but is not."""


class ParseError(ValidationError):
    """Malformed text input (MatrixMarket)."""


class PartitionError(ValidationError):
    """Thread partitioning does not tile the row range contiguously."""


# ----------------------------------------------------------------------
# Array-content checks
# ----------------------------------------------------------------------
def check_finite(arr: np.ndarray, what: str = "values") -> None:
    """Raise :class:`NonFiniteError` if ``arr`` holds NaN or infinity."""
    if arr.size and not np.isfinite(arr).all():
        bad = int(np.flatnonzero(~np.isfinite(np.ravel(arr)))[0])
        raise NonFiniteError(
            f"{what} contain non-finite entries (first at flat index {bad})"
        )


def check_index_bounds(
    rows: np.ndarray, cols: np.ndarray, shape: tuple[int, int]
) -> None:
    """Raise :class:`BoundsError` unless all indices fit ``shape``."""
    if rows.size == 0:
        return
    if rows.min(initial=0) < 0 or cols.min(initial=0) < 0:
        raise BoundsError("negative indices")
    if rows.max(initial=-1) >= shape[0] or cols.max(initial=-1) >= shape[1]:
        raise BoundsError(f"index out of bounds for shape {shape}")


def check_entry_arrays(
    rows: np.ndarray, cols: np.ndarray, vals: np.ndarray
) -> None:
    """Raise :class:`ShapeError` unless the COO triple is consistent."""
    if not (rows.shape == cols.shape == vals.shape) or rows.ndim != 1:
        raise ShapeError("rows, cols, vals must be equal-length 1-D arrays")


def _entry_keys(
    rows: np.ndarray, cols: np.ndarray, n_cols: int
) -> np.ndarray:
    return rows.astype(np.int64) * max(1, n_cols) + cols.astype(np.int64)


def check_no_duplicates(
    rows: np.ndarray, cols: np.ndarray, n_cols: int, what: str = "entries"
) -> None:
    """Raise :class:`CanonicalityError` when a coordinate appears twice."""
    keys = _entry_keys(rows, cols, n_cols)
    uniq, counts = np.unique(keys, return_counts=True)
    if uniq.size != keys.size:
        first = uniq[counts > 1][0]
        r, c = divmod(int(first), max(1, n_cols))
        raise CanonicalityError(
            f"duplicate {what} at coordinate ({r}, {c})"
        )


def check_lower_triangle(
    rows: np.ndarray, cols: np.ndarray, what: str = "entries"
) -> None:
    """Raise :class:`TriangleConventionError` on entries above the diagonal."""
    above = cols > rows
    if np.any(above):
        i = int(np.flatnonzero(above)[0])
        raise TriangleConventionError(
            f"{what} must lie on or below the diagonal; "
            f"found ({int(rows[i])}, {int(cols[i])}) above it"
        )


# ----------------------------------------------------------------------
# Kernel-operand checks (serial formats)
# ----------------------------------------------------------------------
def check_spmv_args(
    shape: tuple[int, int],
    format_name: str,
    x: np.ndarray,
    y: Optional[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Validate/allocate serial SpM×V operands. Returns ``(x, y)``."""
    n_rows, n_cols = shape
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (n_cols,):
        raise ShapeError(
            f"x has shape {x.shape}, expected ({n_cols},) for "
            f"{format_name} matrix of shape {shape}"
        )
    if y is None:
        y = np.zeros(n_rows, dtype=np.float64)
    else:
        if y.shape != (n_rows,):
            raise ShapeError(f"y has shape {y.shape}, expected ({n_rows},)")
        if y.dtype != np.float64:
            raise DTypeError("y must be float64")
        y[:] = 0.0
    return x, y


def check_spmm_args(
    shape: tuple[int, int],
    format_name: str,
    X: np.ndarray,
    Y: Optional[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Validate/allocate serial SpM×M operands. Returns ``(X, Y)``."""
    n_rows, n_cols = shape
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] != n_cols:
        raise ShapeError(
            f"X has shape {X.shape}, expected ({n_cols}, k) for "
            f"{format_name} matrix of shape {shape}"
        )
    k = X.shape[1]
    if Y is None:
        Y = np.zeros((n_rows, k), dtype=np.float64)
    else:
        if Y.shape != (n_rows, k):
            raise ShapeError(
                f"Y has shape {Y.shape}, expected ({n_rows}, {k})"
            )
        if Y.dtype != np.float64:
            raise DTypeError("Y must be float64")
        Y[:] = 0.0
    return X, Y


# ----------------------------------------------------------------------
# Parallel-driver operand checks
# ----------------------------------------------------------------------
def check_driver_x(x: np.ndarray, n_cols: int) -> np.ndarray:
    """Validate a driver input: a vector ``(n_cols,)`` or a multi-RHS
    block ``(n_cols, k)``."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 1 and x.shape == (n_cols,):
        return x
    if x.ndim == 2 and x.shape[0] == n_cols and x.shape[1] >= 1:
        return x
    raise ShapeError(
        f"x has shape {x.shape}, expected ({n_cols},) or ({n_cols}, k)"
    )


def prepare_driver_y(
    y: Optional[np.ndarray], n_rows: int, x: np.ndarray
) -> np.ndarray:
    """Allocate (or validate and zero) the driver output matching
    ``x``'s 1-D/2-D layout."""
    shape = (n_rows,) if x.ndim == 1 else (n_rows, x.shape[1])
    if y is None:
        return np.zeros(shape, dtype=np.float64)
    if y.shape != shape:
        raise ShapeError(f"y has shape {y.shape}, expected {shape}")
    if y.dtype != np.float64:
        raise DTypeError("y must be float64")
    y[:] = 0.0
    return y


def check_partitions(
    partitions: Sequence[tuple[int, int]], n_rows: int
) -> None:
    """Raise :class:`PartitionError` unless the partitions tile
    ``[0, n_rows)`` contiguously."""
    prev = 0
    for start, end in partitions:
        if start != prev:
            raise PartitionError(
                f"partition gap/overlap at row {prev}: got start {start}"
            )
        if end < start:
            raise PartitionError(f"negative partition ({start}, {end})")
        prev = end
    if prev != n_rows:
        raise PartitionError(
            f"partitions end at {prev}, expected n_rows = {n_rows}"
        )
