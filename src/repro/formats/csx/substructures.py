"""CSX substructure taxonomy (paper Section IV-A, Fig. 6).

CSX represents a sparse matrix as a stream of *units*. A unit is either:

* a **delta unit** — a run of same-row elements whose column deltas all
  fit in 8, 16 or 32 bits (the generic fallback; every element can be
  stored this way), or
* a **substructure unit** — a run of elements following a regular
  pattern (horizontal / vertical / diagonal / anti-diagonal with a
  constant stride ``delta``, or a dense row-major ``r×c`` block) whose
  per-element index information is therefore *zero* bytes.

The module defines the pattern algebra: pattern keys, element coordinate
generation, and the legality predicate CSX-Sym adds (Section IV-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = [
    "PatternType",
    "PatternKey",
    "Unit",
    "DELTA8",
    "DELTA16",
    "DELTA32",
    "delta_pattern_for",
    "unit_coordinates",
]


class PatternType(enum.IntEnum):
    """Kinds of CSX units."""

    DELTA = 0          # params: byte width of the encoded column deltas
    HORIZONTAL = 1     # params: column stride
    VERTICAL = 2       # params: row stride
    DIAGONAL = 3       # params: stride along (+1, +1)
    ANTI_DIAGONAL = 4  # params: stride along (+1, -1)
    BLOCK = 5          # params: (block_rows, block_cols), row-aligned


@dataclass(frozen=True, order=True)
class PatternKey:
    """Identity of a pattern instantiation, e.g. HORIZONTAL with stride 2.

    ``params`` is the byte-width for DELTA, the stride for the four 1-D
    run patterns, and the ``(r, c)`` shape tuple for BLOCK.
    """

    type: PatternType
    params: tuple

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.type is PatternType.DELTA:
            return f"delta{8 * self.params[0]}"
        if self.type is PatternType.BLOCK:
            return f"block{self.params[0]}x{self.params[1]}"
        return f"{self.type.name.lower()}(d={self.params[0]})"

    @property
    def is_delta(self) -> bool:
        return self.type is PatternType.DELTA


DELTA8 = PatternKey(PatternType.DELTA, (1,))
DELTA16 = PatternKey(PatternType.DELTA, (2,))
DELTA32 = PatternKey(PatternType.DELTA, (4,))

#: Fixed ``ctl`` pattern ids for the three delta widths; substructure
#: instantiations get per-matrix ids from 3 upward (6-bit field → ≤ 64).
FIXED_PATTERN_IDS = {DELTA8: 0, DELTA16: 1, DELTA32: 2}
FIRST_DYNAMIC_ID = 3
MAX_PATTERN_ID = 63

#: Maximum unit length: the ctl size field is one byte.
MAX_UNIT_LEN = 255


def delta_pattern_for(max_delta: int) -> PatternKey:
    """Smallest delta pattern whose width fits ``max_delta``."""
    if max_delta < 0:
        raise ValueError("column deltas must be non-negative")
    if max_delta < (1 << 8):
        return DELTA8
    if max_delta < (1 << 16):
        return DELTA16
    if max_delta < (1 << 32):
        return DELTA32
    raise ValueError(f"column delta {max_delta} exceeds 32 bits")


@dataclass
class Unit:
    """One CSX unit: a pattern instantiation anchored at ``(row, col)``.

    ``length`` counts elements. Delta units additionally carry their
    absolute column indices in ``cols`` (first entry equals ``col``).
    ``values`` are attached at encode time in execution order.
    """

    pattern: PatternKey
    row: int
    col: int
    length: int
    cols: Optional[np.ndarray] = None
    values: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("unit length must be >= 1")
        if self.length > MAX_UNIT_LEN:
            raise ValueError(
                f"unit length {self.length} exceeds the 1-byte size field"
            )
        if self.pattern.is_delta:
            if self.cols is None:
                raise ValueError("delta units need explicit column indices")
            self.cols = np.asarray(self.cols, dtype=np.int64)
            if self.cols.size != self.length:
                raise ValueError("cols length mismatch")
            if self.cols[0] != self.col:
                raise ValueError("first delta column must equal unit col")
            if self.length > 1 and np.any(np.diff(self.cols) <= 0):
                raise ValueError("delta columns must be strictly increasing")
        elif self.pattern.type is PatternType.BLOCK:
            r, c = self.pattern.params
            if self.length != r * c:
                raise ValueError(
                    f"block unit length {self.length} != {r}*{c}"
                )


def unit_coordinates(unit: Unit) -> tuple[np.ndarray, np.ndarray]:
    """Expand a unit into its element coordinates ``(rows, cols)``.

    Coordinates are produced in the unit's canonical (execution) order:
    row-major for blocks, run order for everything else.
    """
    t = unit.pattern.type
    k = np.arange(unit.length, dtype=np.int64)
    if t is PatternType.DELTA:
        rows = np.full(unit.length, unit.row, dtype=np.int64)
        return rows, unit.cols.copy()
    if t is PatternType.HORIZONTAL:
        (d,) = unit.pattern.params
        rows = np.full(unit.length, unit.row, dtype=np.int64)
        return rows, unit.col + d * k
    if t is PatternType.VERTICAL:
        (d,) = unit.pattern.params
        cols = np.full(unit.length, unit.col, dtype=np.int64)
        return unit.row + d * k, cols
    if t is PatternType.DIAGONAL:
        (d,) = unit.pattern.params
        return unit.row + d * k, unit.col + d * k
    if t is PatternType.ANTI_DIAGONAL:
        (d,) = unit.pattern.params
        return unit.row + d * k, unit.col - d * k
    if t is PatternType.BLOCK:
        r, c = unit.pattern.params
        rows = unit.row + np.repeat(np.arange(r, dtype=np.int64), c)
        cols = unit.col + np.tile(np.arange(c, dtype=np.int64), r)
        return rows, cols
    raise AssertionError(f"unhandled pattern type {t!r}")


def unit_column_span(unit: Unit) -> tuple[int, int]:
    """Inclusive ``(min_col, max_col)`` of the unit's elements.

    Used by CSX-Sym's legality filter: a substructure is only encoded if
    its transposed writes fall entirely on one side of the thread's
    local/direct boundary (Section IV-B, Fig. 8).
    """
    _, cols = unit_coordinates(unit)
    return int(cols.min()), int(cols.max())
