"""The CSX ``ctl`` byte-array codec (paper Fig. 7).

CSX discards ``rowptr``/``colind`` and stores all location metadata in a
single byte stream of unit heads (+ bodies for delta units):

* **flags byte** — bit 7 ``nr`` (unit starts a new row), bit 6 ``rjmp``
  (the row jump is > 1 and follows as a varint), bits 0-5 the pattern id.
* **size byte** — number of elements in the unit (1..255).
* **rjmp varint** — present iff ``rjmp``: rows jumped (≥ 2).
* **column-delta varint** — the unit anchor's column as a delta from the
  previous unit's anchor column (reset to 0 on a new row).
* **body** — delta units only: ``size - 1`` column gaps, each stored in
  the unit's fixed byte width (8/16/32-bit little-endian).

Substructure pattern ids above the three fixed delta ids index a small
per-matrix *pattern table* mapping id → (pattern type, stride / block
shape); the table is part of the encoded representation and its bytes
are counted in the format size.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .substructures import (
    FIRST_DYNAMIC_ID,
    FIXED_PATTERN_IDS,
    MAX_PATTERN_ID,
    PatternKey,
    PatternType,
    Unit,
)
from .varint import decode_varint, encode_varint

__all__ = [
    "build_pattern_table",
    "encode_ctl",
    "decode_ctl",
    "encode_pattern_table",
    "decode_pattern_table",
]

_NR_BIT = 0x80
_RJMP_BIT = 0x40
_ID_MASK = 0x3F


def build_pattern_table(units: Sequence[Unit]) -> dict[PatternKey, int]:
    """Assign ``ctl`` pattern ids: fixed ids for the delta widths, then
    dynamic ids in first-appearance order for substructures."""
    table = dict(FIXED_PATTERN_IDS)
    next_id = FIRST_DYNAMIC_ID
    for unit in units:
        if unit.pattern in table:
            continue
        if next_id > MAX_PATTERN_ID:
            raise ValueError(
                "pattern table overflow: more than "
                f"{MAX_PATTERN_ID - FIRST_DYNAMIC_ID + 1} substructure "
                "instantiations"
            )
        table[unit.pattern] = next_id
        next_id += 1
    return table


def encode_pattern_table(table: dict[PatternKey, int]) -> bytes:
    """Serialize the dynamic part of the pattern table.

    Layout: count byte, then per entry ``id, type, p0 varint, p1 varint``
    (``p1`` only for blocks).
    """
    dynamic = sorted(
        ((i, p) for p, i in table.items() if i >= FIRST_DYNAMIC_ID)
    )
    out = bytearray([len(dynamic)])
    for pid, pattern in dynamic:
        out.append(pid)
        out.append(int(pattern.type))
        encode_varint(pattern.params[0], out)
        if pattern.type is PatternType.BLOCK:
            encode_varint(pattern.params[1], out)
    return bytes(out)


def decode_pattern_table(buf: bytes) -> tuple[dict[int, PatternKey], int]:
    """Inverse of :func:`encode_pattern_table`.

    Returns ``(id -> pattern, bytes consumed)`` including the fixed ids.
    """
    table: dict[int, PatternKey] = {
        i: p for p, i in FIXED_PATTERN_IDS.items()
    }
    if not buf:
        raise ValueError("empty pattern table buffer")
    count = buf[0]
    pos = 1
    for _ in range(count):
        if pos + 2 > len(buf):
            raise ValueError("truncated pattern table")
        pid = buf[pos]
        ptype = PatternType(buf[pos + 1])
        pos += 2
        p0, pos = decode_varint(buf, pos)
        if ptype is PatternType.BLOCK:
            p1, pos = decode_varint(buf, pos)
            params: tuple = (p0, p1)
        else:
            params = (p0,)
        table[pid] = PatternKey(ptype, params)
    return table, pos


def encode_ctl(
    units: Sequence[Unit], table: dict[PatternKey, int]
) -> bytes:
    """Serialize a row-major-sorted unit list into the ctl byte stream."""
    out = bytearray()
    current_row = 0
    prev_col = 0
    for unit in units:
        if unit.row < current_row:
            raise ValueError("units must be sorted by row")
        flags = table[unit.pattern]
        jump = unit.row - current_row
        if jump > 0:
            flags |= _NR_BIT
            prev_col = 0
            if jump > 1:
                flags |= _RJMP_BIT
        delta = unit.col - prev_col
        if delta < 0:
            raise ValueError(
                "units within a row must be sorted by anchor column"
            )
        out.append(flags)
        out.append(unit.length)
        if jump > 1:
            encode_varint(jump, out)
        encode_varint(delta, out)
        if unit.pattern.is_delta and unit.length > 1:
            width = unit.pattern.params[0]
            gaps = np.diff(unit.cols)
            if gaps.size and int(gaps.max()) >= (1 << (8 * width)):
                raise ValueError(
                    f"column gap overflows delta{8 * width} body"
                )
            dtype = {1: "<u1", 2: "<u2", 4: "<u4"}[width]
            out.extend(gaps.astype(dtype).tobytes())
        current_row = unit.row
        prev_col = unit.col
    return bytes(out)


def decode_ctl(
    buf: bytes, table: dict[int, PatternKey]
) -> list[Unit]:
    """Decode a ctl byte stream back into the unit list (without values).

    Exact inverse of :func:`encode_ctl` — property-tested round trip.
    """
    units: list[Unit] = []
    pos = 0
    current_row = 0
    prev_col = 0
    n = len(buf)
    while pos < n:
        if pos + 2 > n:
            raise ValueError("truncated unit head")
        flags = buf[pos]
        length = buf[pos + 1]
        pos += 2
        if length < 1:
            raise ValueError("unit with zero length")
        pid = flags & _ID_MASK
        try:
            pattern = table[pid]
        except KeyError:
            raise ValueError(f"unknown pattern id {pid}") from None
        if flags & _NR_BIT:
            if flags & _RJMP_BIT:
                jump, pos = decode_varint(buf, pos)
                if jump < 2:
                    raise ValueError("rjmp must encode a jump >= 2")
            else:
                jump = 1
            current_row += jump
            prev_col = 0
        elif flags & _RJMP_BIT:
            raise ValueError("rjmp set without nr")
        delta, pos = decode_varint(buf, pos)
        col = prev_col + delta
        if pattern.is_delta:
            width = pattern.params[0]
            body_len = (length - 1) * width
            if pos + body_len > n:
                raise ValueError("truncated delta body")
            dtype = {1: "<u1", 2: "<u2", 4: "<u4"}[width]
            gaps = np.frombuffer(
                buf, dtype=dtype, count=length - 1, offset=pos
            ).astype(np.int64)
            pos += body_len
            cols = np.empty(length, dtype=np.int64)
            cols[0] = col
            if length > 1:
                np.cumsum(gaps, out=cols[1:])
                cols[1:] += col
            unit = Unit(pattern, current_row, col, length, cols=cols)
        else:
            unit = Unit(pattern, current_row, col, length)
        units.append(unit)
        prev_col = col
    return units
