"""Vectorized execution plans: the library's stand-in for CSX codegen.

The original CSX emits an LLVM-JIT'ed SpM×V kernel per matrix so decoding
the ``ctl`` stream costs nothing per element at run time. A pure-Python
per-element interpreter would bury the experiment in interpreter
overhead, so we play the same trick at the numpy level: after decoding,
units are grouped by ``(pattern, length)`` into rectangular index/value
blocks, and SpM×V becomes one gather + multiply + segmented reduction
per group ("compiling" the matrix into a handful of vectorized
operations). This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ...obs.tracer import active as _active_tracer
from ..base import RowScatter, bounded_cache_insert
from .substructures import PatternKey, PatternType, Unit, unit_coordinates

__all__ = ["CompiledKernel", "ExecutionPlan", "compile_plan"]

#: Minimum cap on cached transposed local/direct splits per plan (the
#: actual cap scales with the kernel count; oldest boundary evicted).
TSPLIT_CACHE_MIN = 32


@dataclass
class CompiledKernel:
    """All units sharing one ``(pattern, element count)`` signature.

    Arrays are rectangular: one row per unit, one column per element.

    Attributes
    ----------
    rows2d, cols2d : (n_units, length) int64
        Element coordinates (output row, input column).
    values : (n_units, length) float64
    row_uniform : bool
        True when every element of a unit shares the unit's anchor row
        (horizontal and delta patterns) — those reduce with a row sum
        instead of a scatter.
    """

    pattern: PatternKey
    length: int
    rows2d: np.ndarray
    cols2d: np.ndarray
    values: np.ndarray
    row_uniform: bool

    @property
    def n_units(self) -> int:
        return self.rows2d.shape[0]

    @property
    def n_elements(self) -> int:
        return int(self.rows2d.size)


class ExecutionPlan:
    """Compiled SpM×V program for one CSX(-Sym) matrix (or partition)."""

    def __init__(self, n_rows: int, kernels: Sequence[CompiledKernel]):
        self.n_rows = n_rows
        self.kernels = list(kernels)
        # Lazy per-kernel scatter compilations (shared by the 1-D and
        # multi-RHS paths): kernel index -> RowScatter, and (kernel
        # index, boundary) -> (local positions, local scatter, direct
        # positions, direct scatter) for the transposed local/direct
        # split. Both are bounded; clear_caches() releases them. All
        # mutation (miss-path build, eviction, clear) runs under the
        # cache lock — concurrent bind()/apply through operators
        # sharing this plan read lock-free and keep local references.
        self._row_scatters: dict[int, RowScatter] = {}
        self._tsplit_cache: dict[tuple[int, int], tuple] = {}
        self._tsplit_cache_max = max(
            TSPLIT_CACHE_MIN, 4 * len(self.kernels)
        )
        self._cache_lock = threading.Lock()

    def __getstate__(self):
        # Locks are unpicklable; the process backend ships the plan to
        # workers through the shared arena. Workers get their own.
        state = self.__dict__.copy()
        del state["_cache_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._cache_lock = threading.Lock()

    @property
    def n_elements(self) -> int:
        return sum(k.n_elements for k in self.kernels)

    def _scatter_for(self, i: int) -> RowScatter:
        """Cached window-restricted row scatter of kernel ``i``."""
        sc = self._row_scatters.get(i)
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.count(
                "csx.scatter_hit" if sc is not None else "csx.scatter_miss"
            )
        if sc is None:
            with self._cache_lock:
                sc = self._row_scatters.get(i)
                if sc is None:
                    k = self.kernels[i]
                    idx = (
                        k.rows2d[:, 0] if k.row_uniform
                        else k.rows2d.ravel()
                    )
                    sc = self._row_scatters[i] = RowScatter(idx)
        return sc

    def _tsplit_for(self, i: int, boundary: int) -> tuple:
        """Cached local/direct split of kernel ``i``'s transposed
        writes at ``boundary`` (positions + window scatters)."""
        cache = self._tsplit_cache.get((i, boundary))
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.count(
                "csx.tsplit_hit" if cache is not None else "csx.tsplit_miss"
            )
        if cache is None:
            with self._cache_lock:
                cache = self._tsplit_cache.get((i, boundary))
                if cache is None:
                    cols = self.kernels[i].cols2d.ravel()
                    local_pos = np.flatnonzero(cols < boundary)
                    direct_pos = np.flatnonzero(cols >= boundary)
                    cache = (
                        local_pos,
                        RowScatter(cols[local_pos]),
                        direct_pos,
                        RowScatter(cols[direct_pos]),
                    )
                    bounded_cache_insert(
                        self._tsplit_cache, (i, boundary), cache,
                        self._tsplit_cache_max,
                    )
        return cache

    def execute(self, x: np.ndarray, y: np.ndarray) -> None:
        """Accumulate ``A_plan @ x`` into ``y`` (not cleared here).

        ``x`` may be a vector ``(n,)`` or a multi-RHS block ``(n, k)``
        (with matching ``y``); either way each compiled kernel's index
        and value arrays are traversed exactly once, and every scatter
        is window-restricted to the kernel's effective row range.
        """
        multi = x.ndim == 2
        for i, k in enumerate(self.kernels):
            sc = self._scatter_for(i)
            if multi:
                products = k.values[..., None] * x[k.cols2d]
                if k.row_uniform:
                    sc.add(y, products.sum(axis=1))
                else:
                    sc.add(y, products.reshape(-1, x.shape[1]))
            else:
                products = k.values * x[k.cols2d]
                if k.row_uniform:
                    sc.add(y, products.sum(axis=1))
                else:
                    sc.add(y, products.ravel())

    def execute_transposed_split(
        self,
        x: np.ndarray,
        y_direct: np.ndarray,
        y_local: np.ndarray,
        boundary: int,
    ) -> None:
        """Accumulate the *transposed* products ``A_plan^T @ x`` routing
        each write ``y[c] += a_rc * x[r]`` to ``y_direct`` when
        ``c >= boundary`` and to ``y_local`` otherwise.

        This is the upper-triangle half of the symmetric kernel
        (Alg. 3 line 8) with the local/direct split of Section III-B.
        Both sides scatter through the cached split, window-restricted
        to their effective column ranges.

        Accepts a vector ``(n,)`` or a multi-RHS block ``(n, k)``.
        """
        multi = x.ndim == 2
        for i, k in enumerate(self.kernels):
            if multi:
                products = (k.values[..., None] * x[k.rows2d]).reshape(
                    -1, x.shape[1]
                )
            else:
                products = (k.values * x[k.rows2d]).ravel()
            local_pos, local_sc, direct_pos, direct_sc = self._tsplit_for(
                i, boundary
            )
            if local_pos.size == 0:
                direct_sc.add(y_direct, products)
                continue
            local_sc.add(y_local, products[local_pos])
            if direct_pos.size:
                direct_sc.add(y_direct, products[direct_pos])

    def precompile(
        self, k: Optional[int] = None, boundary: Optional[int] = None
    ) -> None:
        """Eagerly build the row scatters (and, when ``boundary`` is
        given, the transposed local/direct split at that boundary) plus
        their flattened ``k``-RHS indices, so the first execution after
        a bind is not a compilation run."""
        for i in range(len(self.kernels)):
            self._scatter_for(i).compile(k)
            if boundary is not None:
                _, local_sc, _, direct_sc = self._tsplit_for(i, boundary)
                local_sc.compile(k)
                direct_sc.compile(k)

    def clear_caches(self) -> None:
        """Release the lazy scatter/split compilations (rebuilt on
        demand). Safe against concurrent execution: running kernels
        hold local references to the compiled structures."""
        with self._cache_lock:
            self._row_scatters.clear()
            self._tsplit_cache.clear()

    def element_coordinates(self) -> tuple[np.ndarray, np.ndarray]:
        """All (rows, cols) covered by the plan, in no particular order."""
        if not self.kernels:
            z = np.zeros(0, dtype=np.int64)
            return z, z
        rows = np.concatenate([k.rows2d.ravel() for k in self.kernels])
        cols = np.concatenate([k.cols2d.ravel() for k in self.kernels])
        return rows, cols


def compile_plan(units: Sequence[Unit], n_rows: int) -> ExecutionPlan:
    """Group decoded units into :class:`CompiledKernel` blocks.

    Units must carry values (i.e. come from the encoder, or have values
    re-attached after a ctl decode).
    """
    groups: dict[tuple[PatternKey, int], list[Unit]] = {}
    for unit in units:
        if unit.values is None:
            raise ValueError("cannot compile units without values")
        groups.setdefault((unit.pattern, unit.length), []).append(unit)

    kernels: list[CompiledKernel] = []
    for (pattern, length), members in sorted(
        groups.items(), key=lambda kv: (kv[0][0], kv[0][1])
    ):
        g = len(members)
        rows2d = np.empty((g, length), dtype=np.int64)
        cols2d = np.empty((g, length), dtype=np.int64)
        values = np.empty((g, length), dtype=np.float64)
        for i, unit in enumerate(members):
            ur, uc = unit_coordinates(unit)
            rows2d[i] = ur
            cols2d[i] = uc
            values[i] = unit.values
        row_uniform = pattern.type in (
            PatternType.DELTA,
            PatternType.HORIZONTAL,
        )
        kernels.append(
            CompiledKernel(pattern, length, rows2d, cols2d, values, row_uniform)
        )
    return ExecutionPlan(n_rows, kernels)
