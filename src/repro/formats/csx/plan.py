"""Vectorized execution plans: the library's stand-in for CSX codegen.

The original CSX emits an LLVM-JIT'ed SpM×V kernel per matrix so decoding
the ``ctl`` stream costs nothing per element at run time. A pure-Python
per-element interpreter would bury the experiment in interpreter
overhead, so we play the same trick at the numpy level: after decoding,
units are grouped by ``(pattern, length)`` into rectangular index/value
blocks, and SpM×V becomes one gather + multiply + segmented reduction
per group ("compiling" the matrix into a handful of vectorized
operations). This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..base import RowScatter
from .substructures import PatternKey, PatternType, Unit, unit_coordinates

__all__ = ["CompiledKernel", "ExecutionPlan", "compile_plan"]


@dataclass
class CompiledKernel:
    """All units sharing one ``(pattern, element count)`` signature.

    Arrays are rectangular: one row per unit, one column per element.

    Attributes
    ----------
    rows2d, cols2d : (n_units, length) int64
        Element coordinates (output row, input column).
    values : (n_units, length) float64
    row_uniform : bool
        True when every element of a unit shares the unit's anchor row
        (horizontal and delta patterns) — those reduce with a row sum
        instead of a scatter.
    """

    pattern: PatternKey
    length: int
    rows2d: np.ndarray
    cols2d: np.ndarray
    values: np.ndarray
    row_uniform: bool

    @property
    def n_units(self) -> int:
        return self.rows2d.shape[0]

    @property
    def n_elements(self) -> int:
        return int(self.rows2d.size)


class ExecutionPlan:
    """Compiled SpM×V program for one CSX(-Sym) matrix (or partition)."""

    def __init__(self, n_rows: int, kernels: Sequence[CompiledKernel]):
        self.n_rows = n_rows
        self.kernels = list(kernels)
        # Lazy per-kernel scatter compilations for the multi-RHS path:
        # kernel index -> RowScatter, and (kernel index, boundary) ->
        # (local positions, local scatter, direct positions, direct
        # scatter) for the transposed local/direct split.
        self._row_scatters: dict[int, RowScatter] = {}
        self._tsplit_cache: dict[tuple[int, int], tuple] = {}

    @property
    def n_elements(self) -> int:
        return sum(k.n_elements for k in self.kernels)

    def execute(self, x: np.ndarray, y: np.ndarray) -> None:
        """Accumulate ``A_plan @ x`` into ``y`` (not cleared here).

        ``x`` may be a vector ``(n,)`` or a multi-RHS block ``(n, k)``
        (with matching ``y``); either way each compiled kernel's index
        and value arrays are traversed exactly once.
        """
        if x.ndim == 2:
            n_rhs = x.shape[1]
            for i, k in enumerate(self.kernels):
                products = k.values[..., None] * x[k.cols2d]
                sc = self._row_scatters.get(i)
                if sc is None:
                    idx = (
                        k.rows2d[:, 0] if k.row_uniform else k.rows2d.ravel()
                    )
                    sc = self._row_scatters[i] = RowScatter(idx)
                if k.row_uniform:
                    sc.add(y, products.sum(axis=1))
                else:
                    sc.add(y, products.reshape(-1, n_rhs))
            return
        for k in self.kernels:
            products = k.values * x[k.cols2d]
            if k.row_uniform:
                per_unit = products.sum(axis=1)
                y += np.bincount(
                    k.rows2d[:, 0], weights=per_unit, minlength=self.n_rows
                )
            else:
                y += np.bincount(
                    k.rows2d.ravel(),
                    weights=products.ravel(),
                    minlength=self.n_rows,
                )

    def execute_transposed_split(
        self,
        x: np.ndarray,
        y_direct: np.ndarray,
        y_local: np.ndarray,
        boundary: int,
    ) -> None:
        """Accumulate the *transposed* products ``A_plan^T @ x`` routing
        each write ``y[c] += a_rc * x[r]`` to ``y_direct`` when
        ``c >= boundary`` and to ``y_local`` otherwise.

        This is the upper-triangle half of the symmetric kernel
        (Alg. 3 line 8) with the local/direct split of Section III-B.

        Accepts a vector ``(n,)`` or a multi-RHS block ``(n, k)``.
        """
        n = self.n_rows
        if x.ndim == 2:
            n_rhs = x.shape[1]
            for i, k in enumerate(self.kernels):
                products = (k.values[..., None] * x[k.rows2d]).reshape(
                    -1, n_rhs
                )
                cache = self._tsplit_cache.get((i, boundary))
                if cache is None:
                    cols = k.cols2d.ravel()
                    local_pos = np.flatnonzero(cols < boundary)
                    direct_pos = np.flatnonzero(cols >= boundary)
                    cache = (
                        local_pos,
                        RowScatter(cols[local_pos]),
                        direct_pos,
                        RowScatter(cols[direct_pos]),
                    )
                    self._tsplit_cache[(i, boundary)] = cache
                local_pos, local_sc, direct_pos, direct_sc = cache
                if local_pos.size == 0:
                    direct_sc.add(y_direct, products)
                    continue
                local_sc.add(y_local, products[local_pos])
                if direct_pos.size:
                    direct_sc.add(y_direct, products[direct_pos])
            return
        for k in self.kernels:
            products = (k.values * x[k.rows2d]).ravel()
            cols = k.cols2d.ravel()
            local = cols < boundary
            if boundary > 0 and np.any(local):
                y_local += np.bincount(
                    cols[local], weights=products[local], minlength=n
                )
                direct = ~local
                if np.any(direct):
                    y_direct += np.bincount(
                        cols[direct], weights=products[direct], minlength=n
                    )
            else:
                y_direct += np.bincount(cols, weights=products, minlength=n)

    def element_coordinates(self) -> tuple[np.ndarray, np.ndarray]:
        """All (rows, cols) covered by the plan, in no particular order."""
        if not self.kernels:
            z = np.zeros(0, dtype=np.int64)
            return z, z
        rows = np.concatenate([k.rows2d.ravel() for k in self.kernels])
        cols = np.concatenate([k.cols2d.ravel() for k in self.kernels])
        return rows, cols


def compile_plan(units: Sequence[Unit], n_rows: int) -> ExecutionPlan:
    """Group decoded units into :class:`CompiledKernel` blocks.

    Units must carry values (i.e. come from the encoder, or have values
    re-attached after a ctl decode).
    """
    groups: dict[tuple[PatternKey, int], list[Unit]] = {}
    for unit in units:
        if unit.values is None:
            raise ValueError("cannot compile units without values")
        groups.setdefault((unit.pattern, unit.length), []).append(unit)

    kernels: list[CompiledKernel] = []
    for (pattern, length), members in sorted(
        groups.items(), key=lambda kv: (kv[0][0], kv[0][1])
    ):
        g = len(members)
        rows2d = np.empty((g, length), dtype=np.int64)
        cols2d = np.empty((g, length), dtype=np.int64)
        values = np.empty((g, length), dtype=np.float64)
        for i, unit in enumerate(members):
            ur, uc = unit_coordinates(unit)
            rows2d[i] = ur
            cols2d[i] = uc
            values[i] = unit.values
        row_uniform = pattern.type in (
            PatternType.DELTA,
            PatternType.HORIZONTAL,
        )
        kernels.append(
            CompiledKernel(pattern, length, rows2d, cols2d, values, row_uniform)
        )
    return ExecutionPlan(n_rows, kernels)
