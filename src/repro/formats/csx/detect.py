"""Substructure detection and encoding selection for CSX (Section IV-A).

The pipeline mirrors the original CSX preprocessing:

1. **Scan** the non-zero elements in four orientations (horizontal,
   vertical, diagonal, anti-diagonal) plus row-aligned 2-D blocks and
   collect, per pattern instantiation (type + stride / block shape), how
   many elements it could cover.
2. **Select** the instantiations whose estimated byte gain clears a
   threshold, capped by the 6-bit ``ctl`` pattern-id space.
3. **Encode** greedily in decreasing-gain order, marking elements as
   consumed so each element belongs to exactly one unit; leftovers become
   delta units of the narrowest sufficient width.

Statistics may be computed on a sampled subset of row windows — the
mechanism behind the contained preprocessing cost the paper reports in
Section V-E.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from .substructures import (
    MAX_PATTERN_ID,
    MAX_UNIT_LEN,
    FIRST_DYNAMIC_ID,
    PatternKey,
    PatternType,
    Unit,
    delta_pattern_for,
)
from .varint import varint_sizes

__all__ = [
    "DetectionConfig",
    "DetectionReport",
    "PatternStats",
    "detect_and_encode",
    "collect_pattern_stats",
]

#: Approximate ctl head bytes per unit (flags + size + column delta).
UNIT_HEAD_BYTES = 3


@dataclass
class DetectionConfig:
    """Tunables of the CSX preprocessing pass.

    Defaults follow the spirit of the original implementation: 1-D runs
    must have at least 4 elements to beat a delta unit, small dense
    blocks are probed, and at most a couple of stride instantiations per
    orientation are kept so the pattern-id space is never exhausted.
    """

    min_run_len: int = 4
    #: Orientations to scan. Disable entries for the ablation study.
    enable_horizontal: bool = True
    enable_vertical: bool = True
    enable_diagonal: bool = True
    enable_anti_diagonal: bool = True
    enable_blocks: bool = True
    #: Row-aligned dense block shapes probed, in probe order.
    block_shapes: tuple[tuple[int, int], ...] = (
        (3, 3),
        (2, 2),
        (2, 3),
        (3, 2),
        (2, 4),
        (4, 2),
    )
    #: Keep at most this many stride instantiations per 1-D orientation.
    max_deltas_per_type: int = 2
    #: Largest stride considered for 1-D runs.
    max_stride: int = 8
    #: Minimum fraction of nnz an instantiation must cover to be encoded.
    min_coverage: float = 0.005
    #: Fraction of row windows sampled for statistics (1.0 = full scan).
    sampling_fraction: float = 1.0
    #: Row-window size used by the sampler.
    sampling_window: int = 1024
    #: Seed for the sampling RNG (determinism matters for tests).
    sampling_seed: int = 0


@dataclass
class PatternStats:
    """Scan statistics for one pattern instantiation."""

    pattern: PatternKey
    covered: int = 0
    n_units: int = 0

    @property
    def gain_bytes(self) -> float:
        """Estimated ctl bytes saved by encoding this instantiation.

        Each covered element would otherwise carry roughly one delta
        byte; each unit costs a head. Blocks additionally replace several
        unit heads with one.
        """
        return float(self.covered) - UNIT_HEAD_BYTES * self.n_units


@dataclass
class DetectionReport:
    """Preprocessing outcome: what was scanned, selected and encoded.

    ``elements_scanned`` accumulates the number of (element, orientation)
    visits — the work metric behind the preprocessing-cost model of
    :mod:`repro.analysis.preproc`.
    """

    stats: dict[PatternKey, PatternStats] = field(default_factory=dict)
    selected: list[PatternKey] = field(default_factory=list)
    elements_scanned: int = 0
    sampled_elements: int = 0
    total_elements: int = 0
    encoded_by_pattern: dict[PatternKey, int] = field(default_factory=dict)

    def coverage_fraction(self) -> float:
        """Fraction of elements encoded into (non-delta) substructures."""
        if self.total_elements == 0:
            return 0.0
        covered = sum(
            n
            for p, n in self.encoded_by_pattern.items()
            if not p.is_delta
        )
        return covered / self.total_elements


# ----------------------------------------------------------------------
# Run scanning
# ----------------------------------------------------------------------
def _runs_in_ordering(
    group: np.ndarray, pos: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Given elements sorted by ``(group, pos)``, return
    ``(valid, diffs)`` where ``valid[i]`` says elements ``i`` and ``i+1``
    are in the same group and ``diffs[i]`` is their position gap."""
    if group.size < 2:
        return np.zeros(0, dtype=bool), np.zeros(0, dtype=np.int64)
    same = group[1:] == group[:-1]
    diffs = pos[1:] - pos[:-1]
    return same, diffs


def _extract_runs(
    links: np.ndarray, min_len: int
) -> tuple[np.ndarray, np.ndarray]:
    """Find maximal runs of consecutive True ``links``.

    A run of ``m`` links covers ``m + 1`` elements. Returns
    ``(starts, lengths)`` in *element* units, keeping runs with at least
    ``min_len`` elements.
    """
    if links.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    padded = np.concatenate(([False], links, [False]))
    changes = np.flatnonzero(padded[1:] != padded[:-1])
    starts = changes[0::2]
    ends = changes[1::2]
    lengths = ends - starts + 1  # link count + 1 = element count
    keep = lengths >= min_len
    return starts[keep].astype(np.int64), lengths[keep].astype(np.int64)


@dataclass
class _Orientation:
    """One scan orientation: a sort order plus grouping/position keys."""

    type: PatternType
    order: np.ndarray  # canonical element index, sorted by (group, pos)
    group: np.ndarray  # in sorted order
    pos: np.ndarray  # in sorted order


def _build_orientations(
    rows: np.ndarray, cols: np.ndarray, config: DetectionConfig
) -> list[_Orientation]:
    orientations: list[_Orientation] = []
    r = rows.astype(np.int64)
    c = cols.astype(np.int64)

    def add(ptype: PatternType, group: np.ndarray, pos: np.ndarray) -> None:
        order = np.lexsort((pos, group))
        orientations.append(
            _Orientation(ptype, order, group[order], pos[order])
        )

    if config.enable_horizontal:
        add(PatternType.HORIZONTAL, r, c)
    if config.enable_vertical:
        add(PatternType.VERTICAL, c, r)
    if config.enable_diagonal:
        add(PatternType.DIAGONAL, r - c, r)
    if config.enable_anti_diagonal:
        add(PatternType.ANTI_DIAGONAL, r + c, r)
    return orientations


def _stride_candidates(
    diffs: np.ndarray, valid: np.ndarray, config: DetectionConfig
) -> list[int]:
    """Most frequent strides among in-group gaps, small strides only."""
    if diffs.size == 0:
        return []
    usable = valid & (diffs >= 1) & (diffs <= config.max_stride)
    if not np.any(usable):
        return []
    values, counts = np.unique(diffs[usable], return_counts=True)
    order = np.argsort(counts)[::-1]
    return [int(values[i]) for i in order[: config.max_deltas_per_type]]


# ----------------------------------------------------------------------
# Block scanning
# ----------------------------------------------------------------------
def _block_candidates(
    rows: np.ndarray,
    cols: np.ndarray,
    n_cols: int,
    shape: tuple[int, int],
    consumed: Optional[np.ndarray] = None,
) -> list[tuple[int, int]]:
    """Anchors ``(r0, c0)`` of fully dense, non-overlapping ``r×c``
    blocks, scanning greedily left-to-right / top-to-bottom.

    Works on a sorted key array so membership tests are
    ``O(log nnz)`` each, fully vectorized across candidates.
    """
    br, bc = shape
    keys = rows.astype(np.int64) * n_cols + cols.astype(np.int64)
    order = np.argsort(keys)
    sorted_keys = keys[order]
    if consumed is not None:
        free_sorted = ~consumed[order]
    else:
        free_sorted = np.ones(keys.size, dtype=bool)

    def present(qkeys: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(sorted_keys, qkeys)
        ok = idx < sorted_keys.size
        hit = np.zeros(qkeys.size, dtype=bool)
        safe = np.where(ok, idx, 0)
        hit[ok] = (sorted_keys[safe[ok]] == qkeys[ok]) & free_sorted[safe[ok]]
        return hit

    # Candidate anchors: every free element could be a block's top-left.
    if consumed is not None:
        anchor_mask = ~consumed
    else:
        anchor_mask = np.ones(rows.size, dtype=bool)
    cand_r = rows[anchor_mask].astype(np.int64)
    cand_c = cols[anchor_mask].astype(np.int64)
    in_range = cand_c + bc <= n_cols
    cand_r, cand_c = cand_r[in_range], cand_c[in_range]
    if cand_r.size == 0:
        return []

    full = np.ones(cand_r.size, dtype=bool)
    for dr in range(br):
        for dc in range(bc):
            if dr == 0 and dc == 0:
                continue
            q = (cand_r + dr) * n_cols + (cand_c + dc)
            full &= present(q)
            if not np.any(full):
                return []
    anchors_r = cand_r[full]
    anchors_c = cand_c[full]

    # Greedy non-overlap selection in (row, col) anchor order.
    order2 = np.lexsort((anchors_c, anchors_r))
    chosen: list[tuple[int, int]] = []
    taken: set[tuple[int, int]] = set()
    for i in order2:
        r0, c0 = int(anchors_r[i]), int(anchors_c[i])
        cells = [(r0 + dr, c0 + dc) for dr in range(br) for dc in range(bc)]
        if any(cell in taken for cell in cells):
            continue
        taken.update(cells)
        chosen.append((r0, c0))
    return chosen


# ----------------------------------------------------------------------
# Statistics (optionally sampled)
# ----------------------------------------------------------------------
def _sample_mask(
    rows: np.ndarray, n_rows: int, config: DetectionConfig
) -> np.ndarray:
    """Boolean element mask selecting sampled row windows."""
    if config.sampling_fraction >= 1.0:
        return np.ones(rows.size, dtype=bool)
    if not 0.0 < config.sampling_fraction < 1.0:
        raise ValueError("sampling_fraction must be in (0, 1]")
    window = max(1, config.sampling_window)
    n_windows = max(1, -(-n_rows // window))
    n_pick = max(1, int(round(config.sampling_fraction * n_windows)))
    rng = np.random.default_rng(config.sampling_seed)
    picked = rng.choice(n_windows, size=min(n_pick, n_windows), replace=False)
    window_of = rows // window
    return np.isin(window_of, picked)


def collect_pattern_stats(
    rows: np.ndarray,
    cols: np.ndarray,
    n_cols: int,
    config: DetectionConfig,
    report: DetectionReport,
) -> dict[PatternKey, PatternStats]:
    """Scan (a sample of) the elements and tabulate per-instantiation
    coverage. Populates and returns ``report.stats``."""
    n_rows_est = int(rows.max()) + 1 if rows.size else 0
    mask = _sample_mask(rows, n_rows_est, config)
    s_rows, s_cols = rows[mask], cols[mask]
    report.sampled_elements = int(s_rows.size)
    report.total_elements = int(rows.size)
    stats: dict[PatternKey, PatternStats] = {}

    for orient in _build_orientations(s_rows, s_cols, config):
        report.elements_scanned += int(s_rows.size)
        valid, diffs = _runs_in_ordering(orient.group, orient.pos)
        for stride in _stride_candidates(diffs, valid, config):
            links = valid & (diffs == stride)
            starts, lengths = _extract_runs(links, config.min_run_len)
            if starts.size == 0:
                continue
            key = PatternKey(orient.type, (stride,))
            # Long runs split into MAX_UNIT_LEN-sized units.
            n_units = int(np.sum(-(-lengths // MAX_UNIT_LEN)))
            stats[key] = PatternStats(
                key, covered=int(lengths.sum()), n_units=n_units
            )

    if config.enable_blocks:
        for shape in config.block_shapes:
            report.elements_scanned += int(s_rows.size)
            anchors = _block_candidates(s_rows, s_cols, n_cols, shape)
            if not anchors:
                continue
            key = PatternKey(PatternType.BLOCK, shape)
            stats[key] = PatternStats(
                key,
                covered=len(anchors) * shape[0] * shape[1],
                n_units=len(anchors),
            )

    report.stats = stats
    return stats


def select_patterns(
    stats: dict[PatternKey, PatternStats],
    total_elements: int,
    sampled_elements: int,
    config: DetectionConfig,
) -> list[PatternKey]:
    """Rank instantiations by estimated gain and keep the worthwhile ones.

    Sampled statistics are extrapolated to the full matrix before the
    coverage threshold is applied.
    """
    if sampled_elements == 0:
        return []
    scale = total_elements / sampled_elements
    ranked = sorted(
        stats.values(), key=lambda s: s.gain_bytes * scale, reverse=True
    )
    selected: list[PatternKey] = []
    budget = MAX_PATTERN_ID - FIRST_DYNAMIC_ID + 1
    for s in ranked:
        if len(selected) >= budget:
            break
        if s.gain_bytes <= 0:
            continue
        if s.covered * scale < config.min_coverage * total_elements:
            continue
        selected.append(s.pattern)
    return selected


# ----------------------------------------------------------------------
# Greedy encoding
# ----------------------------------------------------------------------
def _encode_runs_for_pattern(
    pattern: PatternKey,
    orient: _Orientation,
    consumed: np.ndarray,
    min_run_len: int,
    units: list[Unit],
    rows: np.ndarray,
    cols: np.ndarray,
) -> int:
    """Encode all maximal unconsumed runs of one 1-D instantiation.

    Returns the number of elements consumed. Runs are recomputed against
    the ``consumed`` mask so earlier (higher-gain) patterns win overlaps.
    """
    (stride,) = pattern.params
    group, pos, order = orient.group, orient.pos, orient.order
    if group.size < 2:
        return 0
    free = ~consumed[order]
    links = (
        (group[1:] == group[:-1])
        & (pos[1:] - pos[:-1] == stride)
        & free[1:]
        & free[:-1]
    )
    starts, lengths = _extract_runs(links, min_run_len)
    taken = 0
    for start, length in zip(starts, lengths):
        offset = 0
        while offset < length:
            chunk = min(int(length - offset), MAX_UNIT_LEN)
            if chunk < min_run_len and offset > 0:
                break  # tail too short to pay for a unit head
            sel = order[start + offset : start + offset + chunk]
            units.append(
                Unit(
                    pattern,
                    row=int(rows[sel[0]]),
                    col=int(cols[sel[0]]),
                    length=chunk,
                )
            )
            consumed[sel] = True
            taken += chunk
            offset += chunk
    return taken


def _encode_blocks_for_shape(
    pattern: PatternKey,
    rows: np.ndarray,
    cols: np.ndarray,
    n_cols: int,
    consumed: np.ndarray,
    units: list[Unit],
) -> int:
    """Encode all unconsumed dense blocks of one shape."""
    shape = pattern.params
    anchors = _block_candidates(rows, cols, n_cols, shape, consumed=consumed)
    if not anchors:
        return 0
    keys = rows.astype(np.int64) * n_cols + cols.astype(np.int64)
    order = np.argsort(keys)
    sorted_keys = keys[order]
    br, bc = shape
    taken = 0
    for r0, c0 in anchors:
        qr = r0 + np.repeat(np.arange(br, dtype=np.int64), bc)
        qc = c0 + np.tile(np.arange(bc, dtype=np.int64), br)
        idx = np.searchsorted(sorted_keys, qr * n_cols + qc)
        sel = order[idx]
        if np.any(consumed[sel]):
            continue  # raced with an overlapping earlier block
        units.append(
            Unit(pattern, row=int(r0), col=int(c0), length=br * bc)
        )
        consumed[sel] = True
        taken += br * bc
    return taken


def _encode_delta_leftovers(
    rows: np.ndarray,
    cols: np.ndarray,
    consumed: np.ndarray,
    units: list[Unit],
) -> int:
    """Pack every unconsumed element into delta units (per row, grouped
    by the narrowest byte width that fits the run's column gaps)."""
    free_idx = np.flatnonzero(~consumed)
    if free_idx.size == 0:
        return 0
    fr = rows[free_idx]
    fc = cols[free_idx]
    order = np.lexsort((fc, fr))
    fr, fc = fr[order], fc[order]

    # Width class of the gap *into* each element (first of a row: width 1,
    # the head column delta is a varint and costs no body byte).
    widths = np.ones(fr.size, dtype=np.int64)
    if fr.size > 1:
        same_row = fr[1:] == fr[:-1]
        gaps = fc[1:] - fc[:-1]
        w = np.ones(gaps.size, dtype=np.int64)
        w[gaps >= (1 << 8)] = 2
        w[gaps >= (1 << 16)] = 4
        widths[1:][same_row] = w[same_row]

    # Split points: new row, width change, or unit overflow.
    split = np.zeros(fr.size, dtype=bool)
    split[0] = True
    if fr.size > 1:
        split[1:] = (fr[1:] != fr[:-1]) | (widths[1:] != widths[:-1])
    unit_starts = np.flatnonzero(split)
    unit_ends = np.append(unit_starts[1:], fr.size)
    taken = 0
    for s, e in zip(unit_starts, unit_ends):
        for off in range(int(s), int(e), MAX_UNIT_LEN):
            end = min(off + MAX_UNIT_LEN, int(e))
            width = int(widths[off if off > int(s) else min(off + 1, end - 1)])
            pattern = PatternKey(PatternType.DELTA, (width,))
            units.append(
                Unit(
                    pattern,
                    row=int(fr[off]),
                    col=int(fc[off]),
                    length=end - off,
                    cols=fc[off:end].copy(),
                )
            )
            taken += end - off
    return taken


def detect_and_encode(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    n_cols: int,
    config: Optional[DetectionConfig] = None,
) -> tuple[list[Unit], DetectionReport]:
    """Full CSX preprocessing: scan, select, and encode into units.

    Elements must be unique coordinates. Returns the unit list sorted by
    anchor (row-major) with per-unit values attached in execution order,
    plus the :class:`DetectionReport`.
    """
    config = config or DetectionConfig()
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    vals = np.asarray(vals, dtype=np.float64)
    report = DetectionReport(total_elements=int(rows.size))
    if rows.size == 0:
        return [], report

    stats = collect_pattern_stats(rows, cols, n_cols, config, report)
    selected = select_patterns(
        stats, report.total_elements, report.sampled_elements, config
    )
    report.selected = selected

    consumed = np.zeros(rows.size, dtype=bool)
    units: list[Unit] = []
    orientations = {
        o.type: o for o in _build_orientations(rows, cols, config)
    }
    for pattern in selected:
        report.elements_scanned += int(rows.size)
        if pattern.type is PatternType.BLOCK:
            n = _encode_blocks_for_shape(
                pattern, rows, cols, n_cols, consumed, units
            )
        else:
            n = _encode_runs_for_pattern(
                pattern,
                orientations[pattern.type],
                consumed,
                config.min_run_len,
                units,
                rows,
                cols,
            )
        if n:
            report.encoded_by_pattern[pattern] = n

    n_delta = _encode_delta_leftovers(rows, cols, consumed, units)
    if n_delta:
        for u in units:
            if u.pattern.is_delta:
                key = u.pattern
                report.encoded_by_pattern[key] = (
                    report.encoded_by_pattern.get(key, 0) + u.length
                )

    # Row-major anchor order, then attach values in execution order.
    units.sort(key=lambda u: (u.row, u.col, u.pattern))
    _attach_values(units, rows, cols, vals, n_cols)
    return units, report


def _attach_values(
    units: Sequence[Unit],
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    n_cols: int,
) -> None:
    """Fill each unit's ``values`` by looking its coordinates up in the
    element set (values are stored substructure-wise, Section IV-A)."""
    from .substructures import unit_coordinates

    keys = rows * n_cols + cols
    order = np.argsort(keys)
    sorted_keys = keys[order]
    for unit in units:
        ur, uc = unit_coordinates(unit)
        idx = np.searchsorted(sorted_keys, ur * n_cols + uc)
        if np.any(idx >= sorted_keys.size):
            raise ValueError("unit references a missing element")
        sel = order[idx]
        if not (
            np.array_equal(rows[sel], ur) and np.array_equal(cols[sel], uc)
        ):
            raise ValueError("unit references a missing element")
        unit.values = vals[sel].copy()
