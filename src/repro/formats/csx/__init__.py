"""Compressed Sparse eXtended (CSX) and its symmetric variant CSX-Sym.

Public entry points:

* :class:`~repro.formats.csx.matrix.CSXMatrix` — unsymmetric CSX.
* :class:`~repro.formats.csx.sym.CSXSymMatrix` — CSX-Sym.
* :class:`~repro.formats.csx.detect.DetectionConfig` — preprocessing
  tunables (pattern menu, sampling, thresholds).
"""

from .detect import DetectionConfig, DetectionReport, detect_and_encode
from .matrix import CSXMatrix, CSXPartition
from .plan import ExecutionPlan, compile_plan
from .substructures import PatternKey, PatternType, Unit
from .sym import CSXSymMatrix

__all__ = [
    "CSXMatrix",
    "CSXSymMatrix",
    "CSXPartition",
    "DetectionConfig",
    "DetectionReport",
    "detect_and_encode",
    "ExecutionPlan",
    "compile_plan",
    "PatternKey",
    "PatternType",
    "Unit",
]
