"""CSX-Sym: the symmetric CSX variant (paper Section IV-B).

CSX-Sym stores the main diagonal in a dense ``dvalues`` array (like SSS)
and runs the CSX substructure machinery on the *strictly lower*
triangle only. One restriction is added: a substructure whose transposed
writes would hit both the thread's local vector and the output vector
(i.e. whose column span straddles the partition's ``row_start``
boundary, Fig. 8) is rejected and falls back to delta units — this
avoids a per-element routing check inside the generated kernel.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..base import VALUE_BYTES, SymmetricFormat
from ..coo import COOMatrix
from ..validate import SymmetryError
from .ctl import build_pattern_table, decode_ctl, encode_ctl, encode_pattern_table
from .detect import DetectionConfig, DetectionReport, detect_and_encode
from .matrix import CSXPartition
from .plan import compile_plan
from .substructures import (
    PatternType,
    Unit,
    delta_pattern_for,
    unit_column_span,
    unit_coordinates,
)

__all__ = ["CSXSymMatrix", "legalize_units"]


def _unit_to_delta_units(unit: Unit) -> list[Unit]:
    """Break a substructure unit into per-row delta units.

    Used for substructures rejected by the legality filter; their
    elements are stored as generic delta units instead.
    """
    rows, cols = unit_coordinates(unit)
    out: list[Unit] = []
    order = np.lexsort((cols, rows))
    rows, cols = rows[order], cols[order]
    values = unit.values[order] if unit.values is not None else None
    start = 0
    for i in range(1, rows.size + 1):
        if i == rows.size or rows[i] != rows[start]:
            ucols = cols[start:i]
            gaps_max = int(np.diff(ucols).max()) if i - start > 1 else 0
            u = Unit(
                delta_pattern_for(gaps_max),
                row=int(rows[start]),
                col=int(ucols[0]),
                length=i - start,
                cols=ucols.copy(),
            )
            if values is not None:
                u.values = values[start:i].copy()
            out.append(u)
            start = i
    return out


def legalize_units(
    units: Sequence[Unit], boundary: int
) -> tuple[list[Unit], int]:
    """Apply the CSX-Sym legality filter for a partition starting at
    ``boundary``.

    A substructure is legal iff all its columns are on one side of
    ``boundary`` (all-local or all-direct transposed writes). Returns
    the legalized (re-sorted) unit list and the number of rejected
    substructure units.
    """
    out: list[Unit] = []
    rejected = 0
    for unit in units:
        if unit.pattern.is_delta:
            out.append(unit)
            continue
        cmin, cmax = unit_column_span(unit)
        if cmin < boundary <= cmax:
            out.extend(_unit_to_delta_units(unit))
            rejected += 1
        else:
            out.append(unit)
    out.sort(key=lambda u: (u.row, u.col, u.pattern))
    return out, rejected


class CSXSymMatrix(SymmetricFormat):
    """Symmetric CSX storage.

    Parameters
    ----------
    coo : COOMatrix
        Fully expanded symmetric matrix.
    partitions : sequence of (row_start, row_end), optional
        Thread partitions the matrix is preprocessed for (defaults to a
        single serial partition). The legality filter and the
        partitioned kernel both depend on these boundaries, exactly as
        in the original implementation where CSX-Sym is built per
        thread.
    config : DetectionConfig, optional
    check_symmetry : bool
    """

    format_name = "csx-sym"

    def __init__(
        self,
        coo: COOMatrix,
        partitions: Optional[Sequence[tuple[int, int]]] = None,
        config: Optional[DetectionConfig] = None,
        *,
        check_symmetry: bool = True,
        legality_filter: bool = True,
    ):
        super().__init__(coo.shape)
        if check_symmetry and not coo.is_symmetric():
            raise SymmetryError("CSX-Sym requires a symmetric matrix")
        self.config = config or DetectionConfig()
        self.legality_filter = legality_filter
        if partitions is None:
            partitions = [(0, self.n_rows)]
        self._partition_bounds = [(int(s), int(e)) for s, e in partitions]
        self._check_partitions()

        self.dvalues = coo.diagonal()
        lower = coo.lower_triangle(strict=True)
        rows = lower.rows.astype(np.int64)
        cols = lower.cols.astype(np.int64)

        self.partitions: list[CSXPartition] = []
        self.rejected_units = 0
        for start, end in self._partition_bounds:
            mask = (rows >= start) & (rows < end)
            units, report = detect_and_encode(
                rows[mask], cols[mask], lower.vals[mask], self.n_cols,
                self.config,
            )
            if self.legality_filter:
                units, nrej = legalize_units(units, start)
                self.rejected_units += nrej
            table = build_pattern_table(units)
            ctl = encode_ctl(units, table)
            decoded = decode_ctl(ctl, {i: p for p, i in table.items()})
            for u_enc, u_dec in zip(units, decoded):
                u_dec.values = u_enc.values
            plan = compile_plan(decoded, self.n_rows)
            self.partitions.append(
                CSXPartition(
                    start, end, decoded, ctl,
                    encode_pattern_table(table), plan, report,
                )
            )
        self._nnz_lower = int(lower.nnz)
        total = sum(p.n_elements for p in self.partitions)
        if total != self._nnz_lower:
            raise AssertionError(
                f"encoded {total} lower elements, expected {self._nnz_lower}"
            )
        self._part_index = {
            (s, e): i for i, (s, e) in enumerate(self._partition_bounds)
        }

    def _check_partitions(self) -> None:
        prev = 0
        for start, end in self._partition_bounds:
            if start != prev or end < start:
                raise ValueError("partitions must tile [0, n_rows)")
            prev = end
        if prev != self.n_rows:
            raise ValueError("partitions must cover all rows")

    # ------------------------------------------------------------------
    # SparseFormat interface
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(
            2 * self._nnz_lower + np.count_nonzero(self.dvalues)
        )

    @property
    def stored_entries(self) -> int:
        return self.n_rows + self._nnz_lower

    @property
    def nnz_lower(self) -> int:
        return self._nnz_lower

    def size_bytes(self) -> int:
        """dvalues + lower values + ctl streams + pattern tables."""
        return (
            self.n_rows * VALUE_BYTES
            + self._nnz_lower * VALUE_BYTES
            + sum(p.ctl_bytes() for p in self.partitions)
        )

    def ctl_size_bytes(self) -> int:
        return sum(p.ctl_bytes() for p in self.partitions)

    def spmv(self, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        """Serial symmetric SpM×V through the compiled plans."""
        x, y = self._check_spmv_args(x, y)
        y += self.dvalues * x
        dummy_local = np.zeros(0, dtype=np.float64)
        for p in self.partitions:
            p.plan.execute(x, y)
            p.plan.execute_transposed_split(x, y, dummy_local, boundary=0)
        return y

    def spmm(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        """Multi-RHS symmetric product through the compiled plans (one
        traversal of each kernel for all ``k`` columns)."""
        X, Y = self._check_spmm_args(X, Y)
        Y += self.dvalues[:, None] * X
        dummy_local = np.zeros((0, X.shape[1]), dtype=np.float64)
        for p in self.partitions:
            p.plan.execute(X, Y)
            p.plan.execute_transposed_split(X, Y, dummy_local, boundary=0)
        return Y

    def spmv_partition(
        self,
        x: np.ndarray,
        y_direct: np.ndarray,
        y_local: np.ndarray,
        row_start: int,
        row_end: int,
    ) -> None:
        """One thread's multiplication phase (Alg. 3 lines 2-11) through
        the partition's compiled plan. ``(row_start, row_end)`` must be
        one of the partitions the matrix was preprocessed for."""
        try:
            i = self._part_index[(row_start, row_end)]
        except KeyError:
            raise ValueError(
                f"({row_start}, {row_end}) is not a preprocessed partition; "
                f"available: {self._partition_bounds}"
            ) from None
        p = self.partitions[i]
        sl = slice(row_start, row_end)
        y_direct[sl] += self.dvalues[sl] * x[sl]
        p.plan.execute(x, y_direct)
        p.plan.execute_transposed_split(x, y_direct, y_local, row_start)

    def spmm_partition(
        self,
        X: np.ndarray,
        Y_direct: np.ndarray,
        Y_local: np.ndarray,
        row_start: int,
        row_end: int,
    ) -> None:
        """Multi-RHS partition kernel: the same compiled plan executed
        once with ``(n, k)`` operands."""
        try:
            i = self._part_index[(row_start, row_end)]
        except KeyError:
            raise ValueError(
                f"({row_start}, {row_end}) is not a preprocessed partition; "
                f"available: {self._partition_bounds}"
            ) from None
        p = self.partitions[i]
        sl = slice(row_start, row_end)
        Y_direct[sl] += self.dvalues[sl, None] * X[sl]
        p.plan.execute(X, Y_direct)
        p.plan.execute_transposed_split(X, Y_direct, Y_local, row_start)

    def to_coo(self) -> COOMatrix:
        rows_list, cols_list, vals_list = [], [], []
        for p in self.partitions:
            r, c = p.plan.element_coordinates()
            v = (
                np.concatenate([k.values.ravel() for k in p.plan.kernels])
                if p.plan.kernels
                else np.zeros(0)
            )
            rows_list += [r, c]
            cols_list += [c, r]
            vals_list += [v, v]
        diag_rows = np.flatnonzero(self.dvalues).astype(np.int64)
        rows_list.append(diag_rows)
        cols_list.append(diag_rows)
        vals_list.append(self.dvalues[diag_rows])
        return COOMatrix(
            self.shape,
            np.concatenate(rows_list),
            np.concatenate(cols_list),
            np.concatenate(vals_list),
            sum_duplicates=False,
        )

    def lower_triple(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Lower-triangle CSR reconstructed from the partition plans'
        element coordinates (cached — the structure is immutable).

        The coloring scheduler consumes this; the encoded units
        themselves stay untouched, so CSX-Sym keeps its compressed
        in-memory representation while still joining the conflict-free
        schedule build.
        """
        cached = getattr(self, "_lower_triple_cache", None)
        if cached is not None:
            return cached
        rows_list, cols_list, vals_list = [], [], []
        for p in self.partitions:
            r, c = p.plan.element_coordinates()
            v = (
                np.concatenate([k.values.ravel() for k in p.plan.kernels])
                if p.plan.kernels
                else np.zeros(0)
            )
            rows_list.append(np.asarray(r, dtype=np.int64))
            cols_list.append(np.asarray(c, dtype=np.int64))
            vals_list.append(np.asarray(v, dtype=np.float64))
        rows = np.concatenate(rows_list) if rows_list else np.zeros(0, np.int64)
        cols = np.concatenate(cols_list) if cols_list else np.zeros(0, np.int64)
        vals = np.concatenate(vals_list) if vals_list else np.zeros(0)
        order = np.lexsort((cols, rows))
        counts = np.bincount(rows, minlength=self.n_rows)
        rowptr = np.zeros(self.n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=rowptr[1:])
        cached = (self.dvalues, rowptr, cols[order], vals[order])
        self._lower_triple_cache = cached
        return cached

    def precompile_partition(
        self, row_start: int, row_end: int, k: Optional[int] = None
    ) -> None:
        """Eagerly compile the partition plan's scatters and its
        transposed split at the partition boundary (plus ``k``-RHS flat
        indices), so a bound operator's first iteration is not a
        compilation run."""
        try:
            i = self._part_index[(row_start, row_end)]
        except KeyError:
            raise ValueError(
                f"({row_start}, {row_end}) is not a preprocessed partition; "
                f"available: {self._partition_bounds}"
            ) from None
        self.partitions[i].plan.precompile(k=k, boundary=row_start)

    def clear_caches(self) -> None:
        """Release every partition plan's lazy scatter compilations."""
        self._lower_triple_cache = None
        for p in self.partitions:
            p.plan.clear_caches()

    # ------------------------------------------------------------------
    # Partition structure queries
    # ------------------------------------------------------------------
    @property
    def partition_bounds(self) -> list[tuple[int, int]]:
        return list(self._partition_bounds)

    def partition_conflict_rows(self, row_start: int, row_end: int) -> np.ndarray:
        """Unique output rows before ``row_start`` that the partition's
        transposed writes touch (= non-zeros of its local vector)."""
        i = self._part_index[(row_start, row_end)]
        _, cols = self.partitions[i].plan.element_coordinates()
        return np.unique(cols[cols < row_start]).astype(np.int64)

    def detection_reports(self) -> list[DetectionReport]:
        return [p.report for p in self.partitions]

    def substructure_coverage(self) -> float:
        """Fraction of stored lower elements inside non-delta units."""
        if self._nnz_lower == 0:
            return 0.0
        covered = 0
        for p in self.partitions:
            for u in p.units:
                if not u.pattern.is_delta:
                    covered += u.length
        return covered / self._nnz_lower
