"""The CSX storage format (unsymmetric variant), paper Section IV-A.

A :class:`CSXMatrix` is preprocessed per thread partition, exactly like
the original implementation: each partition owns an independent ``ctl``
byte stream, values array and compiled execution plan, so the
multithreaded SpM×V simply runs one partition per thread (rows never
conflict for the unsymmetric kernel).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..base import VALUE_BYTES, SparseFormat
from ..coo import COOMatrix
from .ctl import (
    build_pattern_table,
    decode_ctl,
    encode_ctl,
    encode_pattern_table,
)
from .detect import DetectionConfig, DetectionReport, detect_and_encode
from .plan import ExecutionPlan, compile_plan
from .substructures import Unit

__all__ = ["CSXPartition", "CSXMatrix"]


@dataclass
class CSXPartition:
    """One thread's share of a CSX matrix."""

    row_start: int
    row_end: int
    units: list[Unit]
    ctl: bytes
    pattern_table_bytes: bytes
    plan: ExecutionPlan
    report: DetectionReport

    @property
    def n_elements(self) -> int:
        return sum(u.length for u in self.units)

    def ctl_bytes(self) -> int:
        return len(self.ctl) + len(self.pattern_table_bytes)


def _encode_partition(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    n_rows: int,
    n_cols: int,
    row_start: int,
    row_end: int,
    config: DetectionConfig,
) -> CSXPartition:
    """Run the full CSX pipeline on one row slice."""
    mask = (rows >= row_start) & (rows < row_end)
    units, report = detect_and_encode(
        rows[mask], cols[mask], vals[mask], n_cols, config
    )
    table = build_pattern_table(units)
    ctl = encode_ctl(units, table)
    table_bytes = encode_pattern_table(table)
    # Fidelity check: the plan is compiled from the *decoded* stream so
    # the bytes we account for are the bytes we execute.
    decoded = decode_ctl(ctl, {i: p for p, i in table.items()})
    for u_enc, u_dec in zip(units, decoded):
        u_dec.values = u_enc.values
    if len(decoded) != len(units):
        raise AssertionError("ctl round-trip lost units")
    plan = compile_plan(decoded, n_rows)
    return CSXPartition(
        row_start, row_end, decoded, ctl, table_bytes, plan, report
    )


class CSXMatrix(SparseFormat):
    """Compressed Sparse eXtended storage.

    Parameters
    ----------
    coo : COOMatrix
        Source matrix (all non-zeros stored; use
        :class:`~repro.formats.csx.sym.CSXSymMatrix` for the symmetric
        variant).
    partitions : sequence of (row_start, row_end), optional
        Thread partition boundaries; default one partition covering the
        whole matrix (serial build).
    config : DetectionConfig, optional
    """

    format_name = "csx"

    def __init__(
        self,
        coo: COOMatrix,
        partitions: Optional[Sequence[tuple[int, int]]] = None,
        config: Optional[DetectionConfig] = None,
    ):
        super().__init__(coo.shape)
        self.config = config or DetectionConfig()
        if partitions is None:
            partitions = [(0, self.n_rows)]
        self._check_partitions(partitions)
        rows = coo.rows.astype(np.int64)
        cols = coo.cols.astype(np.int64)
        self.partitions: list[CSXPartition] = [
            _encode_partition(
                rows,
                cols,
                coo.vals,
                self.n_rows,
                self.n_cols,
                start,
                end,
                self.config,
            )
            for start, end in partitions
        ]
        self._nnz = int(coo.nnz)
        total = sum(p.n_elements for p in self.partitions)
        if total != self._nnz:
            raise AssertionError(
                f"encoded {total} elements, expected {self._nnz}"
            )

    def _check_partitions(self, partitions: Sequence[tuple[int, int]]) -> None:
        prev_end = 0
        for start, end in partitions:
            if start != prev_end or end < start:
                raise ValueError(
                    f"partitions must tile [0, n_rows) contiguously, got "
                    f"{list(partitions)}"
                )
            prev_end = end
        if prev_end != self.n_rows:
            raise ValueError("partitions must cover all rows")

    # ------------------------------------------------------------------
    # SparseFormat interface
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def stored_entries(self) -> int:
        return self._nnz

    def size_bytes(self) -> int:
        """values + ctl stream + pattern tables."""
        return self._nnz * VALUE_BYTES + sum(
            p.ctl_bytes() for p in self.partitions
        )

    def ctl_size_bytes(self) -> int:
        """Indexing metadata only (the part CSX compresses)."""
        return sum(p.ctl_bytes() for p in self.partitions)

    def spmv(self, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        x, y = self._check_spmv_args(x, y)
        for p in self.partitions:
            p.plan.execute(x, y)
        return y

    def spmm(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        """Multi-RHS product through the compiled plans: each ctl-derived
        kernel is traversed once for all ``k`` columns."""
        X, Y = self._check_spmm_args(X, Y)
        for p in self.partitions:
            p.plan.execute(X, Y)
        return Y

    def spmv_partition_only(
        self, x: np.ndarray, y: np.ndarray, part_index: int
    ) -> None:
        """Execute a single partition's plan (one thread's work).

        For unsymmetric CSX partitions write disjoint row ranges, so
        threads need no reduction."""
        self.partitions[part_index].plan.execute(x, y)

    def spmm_partition_only(
        self, X: np.ndarray, Y: np.ndarray, part_index: int
    ) -> None:
        """Multi-RHS analogue of :meth:`spmv_partition_only`."""
        self.partitions[part_index].plan.execute(X, Y)

    def precompile(self, k: Optional[int] = None) -> None:
        """Eagerly compile every partition plan's row scatters (and
        ``k``-RHS flat indices) ahead of the first execution."""
        for p in self.partitions:
            p.plan.precompile(k=k)

    def clear_caches(self) -> None:
        """Release every partition plan's lazy scatter compilations."""
        for p in self.partitions:
            p.plan.clear_caches()

    def to_coo(self) -> COOMatrix:
        rows_list = []
        cols_list = []
        vals_list = []
        for p in self.partitions:
            r, c = p.plan.element_coordinates()
            rows_list.append(r)
            cols_list.append(c)
            vals_list.append(
                np.concatenate([k.values.ravel() for k in p.plan.kernels])
                if p.plan.kernels
                else np.zeros(0)
            )
        return COOMatrix(
            self.shape,
            np.concatenate(rows_list) if rows_list else np.zeros(0),
            np.concatenate(cols_list) if cols_list else np.zeros(0),
            np.concatenate(vals_list) if vals_list else np.zeros(0),
            sum_duplicates=False,
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def detection_reports(self) -> list[DetectionReport]:
        return [p.report for p in self.partitions]

    def substructure_coverage(self) -> float:
        """Fraction of elements encoded as (non-delta) substructures."""
        if self._nnz == 0:
            return 0.0
        covered = sum(
            n
            for p in self.partitions
            for pat, n in p.report.encoded_by_pattern.items()
            if not pat.is_delta
        )
        return covered / self._nnz
