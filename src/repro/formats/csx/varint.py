"""Variable-size integer codec used by the CSX ``ctl`` byte stream.

CSX stores row jumps and column deltas as variable-size integers so that
the common small values cost a single byte. We use the standard LEB128
(7 bits per byte, high bit = continuation) encoding, the same family of
codec the original implementation uses.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = [
    "encode_varint",
    "decode_varint",
    "encode_varints",
    "varint_size",
]


def encode_varint(value: int, out: bytearray) -> None:
    """Append the LEB128 encoding of a non-negative ``value`` to ``out``."""
    if value < 0:
        raise ValueError(f"varints must be non-negative, got {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_varint(buf, pos: int) -> tuple[int, int]:
    """Decode one varint from ``buf`` starting at ``pos``.

    Returns ``(value, next_pos)``. Raises ``ValueError`` on truncation.
    """
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            raise ValueError("truncated varint")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def encode_varints(values: Iterable[int]) -> bytes:
    """Encode a sequence of varints into one byte string."""
    out = bytearray()
    for v in values:
        encode_varint(int(v), out)
    return bytes(out)


def varint_size(value: int) -> int:
    """Number of bytes ``encode_varint`` uses for ``value``."""
    if value < 0:
        raise ValueError(f"varints must be non-negative, got {value}")
    size = 1
    value >>= 7
    while value:
        size += 1
        value >>= 7
    return size


def varint_sizes(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`varint_size` for a non-negative int array."""
    values = np.asarray(values, dtype=np.int64)
    if values.size and values.min() < 0:
        raise ValueError("varints must be non-negative")
    sizes = np.ones(values.shape, dtype=np.int64)
    v = values >> 7
    while np.any(v):
        sizes += (v != 0).astype(np.int64)
        v >>= 7
    return sizes
