"""Blocked Compressed Sparse Row (BCSR) — related-work comparator.

The paper's Section VI discusses BCSR (Im & Yelick's SPARSITY / OSKI
lineage) as the classic register-blocking format: the matrix is tiled
into fixed ``r×c`` blocks aligned to the block grid and every block
containing at least one non-zero is stored densely (explicit zero
fill-in). Indexing cost drops to one column index per *block*, at the
price of the fill-in values.

Includes the OSKI-style size autotuner: pick the block shape minimizing
the stored byte count over a candidate set.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from .base import INDEX_BYTES, VALUE_BYTES, RowScatter, SparseFormat
from .coo import COOMatrix

__all__ = ["BCSRMatrix", "bcsr_fill_ratio", "autotune_block_shape"]

#: Block shapes the autotuner considers by default.
DEFAULT_CANDIDATES = ((1, 1), (2, 2), (3, 3), (2, 3), (3, 2), (4, 4), (6, 6))


def _block_structure(
    coo: COOMatrix, r: int, c: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Map entries to blocks; returns (block_keys_sorted_unique,
    block_of_entry, entry_order) for grid-aligned ``r×c`` tiling."""
    brow = coo.rows.astype(np.int64) // r
    bcol = coo.cols.astype(np.int64) // c
    n_bcols = -(-coo.n_cols // c)
    keys = brow * n_bcols + bcol
    uniq, inverse = np.unique(keys, return_inverse=True)
    return uniq, inverse, keys


class BCSRMatrix(SparseFormat):
    """Blocked CSR storage with grid-aligned dense ``r×c`` blocks.

    Parameters
    ----------
    coo : source matrix.
    block_shape : (r, c) tile shape; ``autotune=True`` picks it instead.
    """

    format_name = "bcsr"

    def __init__(
        self,
        coo: COOMatrix,
        block_shape: tuple[int, int] = (2, 2),
        *,
        autotune: bool = False,
        candidates: Sequence[tuple[int, int]] = DEFAULT_CANDIDATES,
    ):
        super().__init__(coo.shape)
        if autotune:
            block_shape = autotune_block_shape(coo, candidates)
        r, c = int(block_shape[0]), int(block_shape[1])
        if r < 1 or c < 1:
            raise ValueError(f"invalid block shape {block_shape}")
        self.block_shape = (r, c)
        self._nnz = coo.nnz

        n_brows = -(-self.n_rows // r)
        n_bcols = -(-self.n_cols // c)
        self.n_brows = n_brows
        self.n_bcols = n_bcols

        uniq, inverse, _ = _block_structure(coo, r, c)
        nb = uniq.size
        self.brow = (uniq // n_bcols).astype(np.int32)
        self.bcol = (uniq % n_bcols).astype(np.int32)
        # Dense block values, row-major within each block.
        self.values = np.zeros((nb, r, c), dtype=np.float64)
        lr = coo.rows.astype(np.int64) % r
        lc = coo.cols.astype(np.int64) % c
        np.add.at(self.values, (inverse, lr, lc), coo.vals)

        counts = np.bincount(self.brow, minlength=n_brows)
        self.browptr = np.zeros(n_brows + 1, dtype=np.int32)
        np.cumsum(counts, out=self.browptr[1:])

        # Padded x/y workspaces for ragged edges.
        self._pad_cols = n_bcols * c
        self._pad_rows = n_brows * r
        self._spmm_scatter = None  # lazy RowScatter over block rows

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self._nnz)

    @property
    def stored_entries(self) -> int:
        """Stored values including explicit fill-in zeros."""
        return int(self.values.size)

    @property
    def n_blocks(self) -> int:
        return int(self.values.shape[0])

    @property
    def fill_ratio(self) -> float:
        """Stored entries per true non-zero (≥ 1; the BCSR tax)."""
        return self.stored_entries / self.nnz if self.nnz else 1.0

    def size_bytes(self) -> int:
        """Dense block values + one column index per block + browptr."""
        return (
            self.stored_entries * VALUE_BYTES
            + self.n_blocks * INDEX_BYTES
            + (self.n_brows + 1) * INDEX_BYTES
        )

    def spmv(self, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        x, y = self._check_spmv_args(x, y)
        r, c = self.block_shape
        if self.n_blocks == 0:
            return y
        x_pad = x
        if self._pad_cols != self.n_cols:
            x_pad = np.zeros(self._pad_cols, dtype=np.float64)
            x_pad[: self.n_cols] = x
        # Gather each block's x slice: (nb, c).
        xs = x_pad[
            self.bcol.astype(np.int64)[:, None] * c
            + np.arange(c, dtype=np.int64)[None, :]
        ]
        contrib = np.einsum("brc,bc->br", self.values, xs)  # (nb, r)
        y_pad = np.zeros(self._pad_rows, dtype=np.float64)
        rows_flat = (
            self.brow.astype(np.int64)[:, None] * r
            + np.arange(r, dtype=np.int64)[None, :]
        ).ravel()
        y_pad += np.bincount(
            rows_flat, weights=contrib.ravel(), minlength=self._pad_rows
        )
        y += y_pad[: self.n_rows]
        return y

    def spmm(self, X: np.ndarray, Y: Optional[np.ndarray] = None) -> np.ndarray:
        """Multi-RHS product: each block's dense ``r×c`` tile multiplies
        a ``(c, k)`` slice of ``X`` in one einsum — block values stream
        once for all ``k`` columns."""
        X, Y = self._check_spmm_args(X, Y)
        r, c = self.block_shape
        if self.n_blocks == 0:
            return Y
        k = X.shape[1]
        X_pad = X
        if self._pad_cols != self.n_cols:
            X_pad = np.zeros((self._pad_cols, k), dtype=np.float64)
            X_pad[: self.n_cols] = X
        xs = X_pad[
            self.bcol.astype(np.int64)[:, None] * c
            + np.arange(c, dtype=np.int64)[None, :]
        ]  # (nb, c, k)
        contrib = np.einsum("brc,bck->brk", self.values, xs)  # (nb, r, k)
        if self._spmm_scatter is None:
            rows_flat = (
                self.brow.astype(np.int64)[:, None] * r
                + np.arange(r, dtype=np.int64)[None, :]
            ).ravel()
            self._spmm_scatter = RowScatter(rows_flat)
        Y_pad = np.zeros((self._pad_rows, k), dtype=np.float64)
        self._spmm_scatter.add(Y_pad, contrib.reshape(-1, k))
        Y += Y_pad[: self.n_rows]
        return Y

    def to_coo(self) -> COOMatrix:
        """Expand back to COO, dropping the fill-in zeros."""
        r, c = self.block_shape
        rows = (
            self.brow.astype(np.int64)[:, None, None] * r
            + np.arange(r, dtype=np.int64)[None, :, None]
        )
        cols = (
            self.bcol.astype(np.int64)[:, None, None] * c
            + np.arange(c, dtype=np.int64)[None, None, :]
        )
        rows = np.broadcast_to(rows, self.values.shape).ravel()
        cols = np.broadcast_to(cols, self.values.shape).ravel()
        vals = self.values.ravel()
        keep = (
            (vals != 0.0) & (rows < self.n_rows) & (cols < self.n_cols)
        )
        return COOMatrix(
            self.shape, rows[keep], cols[keep], vals[keep],
            sum_duplicates=False,
        )


def bcsr_fill_ratio(coo: COOMatrix, block_shape: tuple[int, int]) -> float:
    """Fill ratio of tiling ``coo`` with ``block_shape`` (without
    materializing values — used by the autotuner)."""
    r, c = block_shape
    uniq, _, _ = _block_structure(coo, r, c)
    if coo.nnz == 0:
        return 1.0
    return uniq.size * r * c / coo.nnz


def autotune_block_shape(
    coo: COOMatrix,
    candidates: Iterable[tuple[int, int]] = DEFAULT_CANDIDATES,
) -> tuple[int, int]:
    """OSKI-style structural autotuning: choose the candidate block
    shape minimizing the stored byte count (values incl. fill + block
    indices)."""
    best = None
    best_bytes = float("inf")
    for r, c in candidates:
        uniq, _, _ = _block_structure(coo, r, c)
        n_brows = -(-coo.n_rows // r)
        size = (
            uniq.size * r * c * VALUE_BYTES
            + uniq.size * INDEX_BYTES
            + (n_brows + 1) * INDEX_BYTES
        )
        if size < best_bytes:
            best_bytes = size
            best = (r, c)
    if best is None:
        raise ValueError("no candidate block shapes given")
    return best
