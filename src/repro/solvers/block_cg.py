"""Multi-RHS Conjugate Gradient on the SpM×M fast path.

Runs ``k`` independent CG recurrences (one per column of ``B``) that
share a single SpM×M application per iteration, so the matrix bytes —
the bandwidth bottleneck of Section II — are streamed once for all
``k`` systems instead of once per system. Each column keeps its own
``alpha``/``beta`` scalars and residual, hence the per-column iterates
are bit-for-bit the classic CG iterates; the coupling is purely in the
memory traffic.

Columns converge (or break down) independently: a finished column's
``alpha`` is forced to zero so its iterate freezes while the remaining
columns keep riding the shared matrix pass.

Bit-identical demultiplexing: the per-column scalar recurrences
(``r·r``, ``p·Ap``, ``‖b‖``) are computed from *contiguous column
copies* via BLAS-1 dots — never from strided block-wide reductions
like ``einsum("ij,ij->j")`` or ``norm(axis=0)``, whose summation order
(and therefore last-ulp rounding) depends on the block layout. With
per-column scalars layout-independent and every block-wide update
elementwise, column ``j`` of a ``k``-column solve is bit-for-bit the
``k=1`` solve of ``b_j`` alone — the contract the serving layer's
request coalescing (``repro.serve``) is built on, pinned by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter_ns
from typing import Callable, Optional

import numpy as np

from ..obs.tracer import Tracer, active as _active_tracer, warn as _obs_warn
from .cg import CGResult, _note_iteration, bind_operator
from .guards import DEFAULT_STAGNATION_WINDOW, Breakdown
from .vecops import OpCounter

__all__ = ["BlockCGResult", "block_conjugate_gradient"]

_F8 = 8


def _column_dots(A: np.ndarray, C: Optional[np.ndarray] = None) -> np.ndarray:
    """Per-column dots ``[a_j · c_j]`` (``C=None`` → ``[a_j · a_j]``)
    over *contiguous column copies*, so each scalar is the exact BLAS-1
    result the column would produce in a standalone ``k=1`` solve —
    independent of how many columns share the block. A block-wide
    ``einsum("ij,ij->j")`` changes summation order with the layout and
    would break the coalescing layer's bit-identity contract."""
    k = A.shape[1]
    out = np.empty(k, dtype=np.float64)
    for j in range(k):
        a = np.ascontiguousarray(A[:, j])
        c = a if C is None else np.ascontiguousarray(C[:, j])
        out[j] = np.dot(a, c)
    return out


@dataclass
class BlockCGResult:
    """Outcome and instrumentation of one multi-RHS CG solve."""

    X: np.ndarray
    converged: np.ndarray       # (k,) bool, per column
    iterations: int             # shared iteration count
    residual_norms: np.ndarray  # (k,) final ‖r_j‖
    n_spmm: int                 # matrix passes (each serves all k columns)
    vector_flops: float
    vector_bytes: float
    residual_history: Optional[np.ndarray] = None  # (iters+1, k)
    #: Per-column typed diagnosis (length k); ``None`` entries are
    #: columns that ran clean. A column with a breakdown never counts
    #: as converged.
    breakdowns: Optional[list] = None
    #: (k,) iteration at which each column converged (its iterate
    #: froze there); ``-1`` for columns that never did. A converged
    #: column's value matches the iteration count of the solo ``k=1``
    #: solve of the same right-hand side.
    converged_at: Optional[np.ndarray] = None

    @property
    def all_converged(self) -> bool:
        return bool(np.all(self.converged))

    @property
    def any_breakdown(self) -> bool:
        return self.breakdowns is not None and any(
            bd is not None for bd in self.breakdowns
        )

    def column(self, j: int) -> CGResult:
        """Demultiplex column ``j`` as a standalone :class:`CGResult` —
        the serving layer's per-request view of a coalesced solve. The
        iterate is a contiguous copy and, because the per-column scalar
        recurrences are layout-independent (module docstring), it is
        bit-identical to the ``k=1`` solve of ``b_j`` alone. A
        converged column reports the iteration it converged at (where
        its iterate froze — the solo solve's count), not the block's
        shared count. The flop/byte totals are those of the *shared*
        block solve (traffic is genuinely shared — that is the point
        of coalescing), and ``n_spmv`` counts block applications."""
        j = int(j)
        k = self.X.shape[1]
        if not 0 <= j < k:
            raise IndexError(f"column {j} of a k={k} solve")
        iterations = self.iterations
        if (
            self.converged_at is not None
            and self.converged[j]
            and self.converged_at[j] >= 0
        ):
            iterations = int(self.converged_at[j])
        history = (
            np.ascontiguousarray(self.residual_history[:, j])
            if self.residual_history is not None
            else None
        )
        return CGResult(
            np.ascontiguousarray(self.X[:, j]),
            bool(self.converged[j]),
            iterations,
            float(self.residual_norms[j]),
            self.n_spmm,
            self.vector_flops,
            self.vector_bytes,
            history,
            breakdown=(
                self.breakdowns[j] if self.breakdowns is not None else None
            ),
        )


def block_conjugate_gradient(
    spmm: Callable[[np.ndarray], np.ndarray],
    B: np.ndarray,
    X0: Optional[np.ndarray] = None,
    *,
    tol: float = 1e-8,
    max_iter: Optional[int] = None,
    record_history: bool = False,
    counter: Optional[OpCounter] = None,
    trace: Optional[Tracer] = None,
    stagnation_window: int = DEFAULT_STAGNATION_WINDOW,
    should_stop: Optional[Callable[[], bool]] = None,
) -> BlockCGResult:
    """Solve ``A X = B`` column-wise for symmetric positive definite
    ``A``, sharing one SpM×M per iteration across all columns.

    Parameters
    ----------
    spmm : callable
        ``spmm(X) -> A @ X`` for 2-D ``X`` — a format's ``spmm`` or a
        :class:`~repro.parallel.spmv.ParallelSymmetricSpMV` (both
        drivers accept 2-D input transparently).
    B : (n, k) block of right-hand sides.
    X0 : optional (n, k) initial guess (zero by default).
    tol : per-column relative tolerance ``‖r_j‖ ≤ tol·‖b_j‖``.
    max_iter : shared iteration cap (default ``10·n``).
    record_history : keep per-iteration residual norms, shape
        ``(iters+1, k)``.
    counter : optional shared :class:`OpCounter` for the vector ops.
    trace : optional :class:`~repro.obs.Tracer` — "cg.spmm" /
        "cg.vecops" phase spans and one "cg.iter" event (max residual
        over the still-active columns) per iteration. Defaults to the
        globally active tracer.
    should_stop : optional callable
        Checked before each iteration; returning True ends the solve
        early with the current iterates (unconverged columns simply
        stay unconverged — no breakdown is recorded). The serving
        layer's deadline enforcement: a request-scoped solve can always
        be cut off instead of hanging to ``max_iter``.

    Returns
    -------
    BlockCGResult
    """
    B = np.asarray(B, dtype=np.float64)
    if B.ndim != 2:
        raise ValueError(f"B must be (n, k), got shape {B.shape}")
    n, k = B.shape
    ops = counter or OpCounter()
    tracer = trace if trace is not None else _active_tracer()
    if max_iter is None:
        max_iter = max(1, 10 * n)
    # Bind once to the k-RHS signature, apply every iteration.
    with tracer.span("cg.bind"):
        spmm = bind_operator(spmm, k)

    X = (
        np.zeros((n, k), dtype=np.float64)
        if X0 is None
        else np.array(X0, dtype=np.float64)
    )
    if X.shape != (n, k):
        raise ValueError(f"X0 has shape {X.shape}, expected {(n, k)}")
    n_spmm = 0

    if X0 is None or not np.any(X):
        R = B.copy()
        ops.add(0.0, 16.0 * n * k)
    else:
        with tracer.span("cg.spmm"):
            AX = spmm(X)
        R = B - AX
        n_spmm += 1
        ops.add(float(n * k), 24.0 * n * k)

    b_norms = np.sqrt(_column_dots(B))
    thresholds = tol * np.where(b_norms > 0, b_norms, 1.0)

    rs = _column_dots(R)                       # (k,) per-column r·r
    ops.add(2.0 * n * k, _F8 * n * k)
    res_norms = np.sqrt(rs)
    history = [res_norms.copy()] if record_history else None

    converged = res_norms <= thresholds
    converged_at = np.where(converged, 0, -1).astype(np.int64)
    # Columns that break down — non-SPD direction, non-finite scalars,
    # stagnation — stop updating but never count as converged; each
    # carries its typed diagnosis in ``breakdowns``.
    stalled = np.zeros(k, dtype=bool)
    breakdowns: list[Optional[Breakdown]] = [None] * k
    best_norms = np.where(np.isfinite(res_norms), res_norms, np.inf)
    since_improve = np.zeros(k, dtype=np.int64)

    def stall(mask: np.ndarray, kind: str, it: int, what: str, values):
        """Record per-column diagnoses and retire those columns."""
        nonlocal stalled
        for j in np.flatnonzero(mask):
            breakdowns[j] = Breakdown(
                kind, it, f"column {j}: {what} = {float(values[j]):.6g}",
                float(values[j]),
            )
        stalled |= mask

    # A contaminated b_j breaks its column down before iterating.
    stall(
        ~np.isfinite(res_norms) & ~converged, "nonfinite", 0,
        "initial residual norm", res_norms,
    )

    P = R.copy()
    ops.add(0.0, 16.0 * n * k)
    it = 0
    while it < max_iter and not np.all(converged | stalled):
        if should_stop is not None and should_stop():
            tracer.event("cg.stopped", iteration=it)
            break
        it += 1
        iter_t0 = perf_counter_ns() if tracer.enabled else 0
        with tracer.span("cg.spmm"):
            Q = spmm(P)  # one matrix pass for all k columns
        n_spmm += 1
        with tracer.span("cg.vecops"):
            pq = _column_dots(P, Q)
            ops.add(2.0 * n * k, _F8 * 2 * n * k)

            active = ~(converged | stalled)
            finite_pq = np.isfinite(pq)
            stall(
                active & ~finite_pq, "nonfinite", it,
                "curvature pᵀAp", pq,
            )
            stall(
                active & finite_pq & (pq <= 0), "indefinite", it,
                "non-positive curvature pᵀAp", pq,
            )
            active &= finite_pq & (pq > 0)

            alpha = np.where(active, rs / np.where(pq != 0, pq, 1.0), 0.0)
            X += alpha * P                         # x_j ← x_j + α_j p_j
            R -= alpha * Q                         # r_j ← r_j - α_j A p_j
            ops.add(4.0 * n * k, _F8 * 6 * n * k)

            rs_new = _column_dots(R)
            ops.add(2.0 * n * k, _F8 * n * k)
            bad_rs = active & ~np.isfinite(rs_new)
            stall(bad_rs, "nonfinite", it, "residual norm²", rs_new)
            active &= ~bad_rs
            res_norms = np.where(active, np.sqrt(rs_new), res_norms)
        if record_history:
            history.append(res_norms.copy())
        iter_residual = (
            float(np.max(np.where(active, res_norms, 0.0)))
            if np.any(active)
            else float(np.max(np.where(np.isfinite(res_norms), res_norms,
                                       0.0)))
        )
        tracer.event(
            "cg.iter",
            iteration=it,
            residual=iter_residual,
            active_columns=int(np.count_nonzero(active)),
        )
        if tracer.enabled:
            _note_iteration(tracer, "block_cg", iter_t0, iter_residual)
        with tracer.span("cg.vecops"):
            newly = active & (res_norms <= thresholds)
            converged |= newly
            converged_at = np.where(newly, it, converged_at)
            active &= ~newly

            # Per-column stagnation window over the best residual seen.
            improved = active & (res_norms < best_norms)
            best_norms = np.where(improved, res_norms, best_norms)
            since_improve = np.where(
                improved, 0,
                np.where(active, since_improve + 1, since_improve),
            )
            stagnant = active & (since_improve >= stagnation_window)
            stall(
                stagnant, "stagnation", it,
                "stalled residual norm", res_norms,
            )
            active &= ~stagnant

            beta = np.where(active, rs_new / np.where(rs != 0, rs, 1.0), 0.0)
            P = np.where(active, R + beta * P, P)  # p_j ← r_j + β_j p_j
            ops.add(2.0 * n * k, _F8 * 3 * n * k)
            rs = np.where(active, rs_new, rs)

    if any(bd is not None for bd in breakdowns):
        _obs_warn("resilience.cg_breakdown")
        first = next(bd for bd in breakdowns if bd is not None)
        tracer.event(
            "cg.breakdown", kind=first.kind, iteration=first.iteration,
            columns=int(sum(bd is not None for bd in breakdowns)),
        )
    return BlockCGResult(
        X,
        converged,
        it,
        res_norms,
        n_spmm,
        ops.flops,
        ops.bytes,
        np.array(history) if record_history else None,
        breakdowns=breakdowns,
        converged_at=converged_at,
    )
