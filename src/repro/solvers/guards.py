"""Breakdown detection shared by the CG family of solvers.

The classic CG recurrence silently misbehaves on three inputs the
solver cannot rule out up front: a NaN/inf contaminated operator or
right-hand side (every subsequent iterate is garbage, yet the loop
happily runs to ``max_iter``), an indefinite matrix (``pᵀAp ≤ 0``
divides by a non-positive curvature), and a stagnating system (the
residual stops improving but never crosses the tolerance). Each solver
threads its per-iteration scalars through a :class:`BreakdownDetector`
and returns the resulting typed :class:`Breakdown` diagnosis in its
result instead of burning the remaining iterations — the acceptance
bound is detection within two iterations of the fault.

An optional restart-once policy (``restart=True`` on the solvers)
gives the recurrence one clean re-seeding — fresh residual
``r = b − A·x`` from the current iterate — before the breakdown is
final; useful when accumulated rounding (not the system itself) broke
the search direction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["Breakdown", "BreakdownDetector", "BREAKDOWN_KINDS"]

BREAKDOWN_KINDS = ("nonfinite", "indefinite", "stagnation")

#: Iterations without any best-residual improvement before the
#: stagnation diagnosis fires. CG's residual norm is not monotone, so
#: the window is generous — transient plateaus of a healthy solve are
#: far shorter than this.
DEFAULT_STAGNATION_WINDOW = 50


@dataclass(frozen=True)
class Breakdown:
    """Typed diagnosis of why a CG-family solve stopped early.

    ``kind`` is one of :data:`BREAKDOWN_KINDS`:

    * ``"nonfinite"`` — a recurrence scalar (``pᵀAp``, ``rᵀr``, ``rᵀz``)
      went NaN/inf: the operator, preconditioner or right-hand side is
      contaminated.
    * ``"indefinite"`` — ``pᵀAp ≤ 0``: the matrix is not positive
      definite along the search direction.
    * ``"stagnation"`` — no best-residual improvement for the detector's
      whole window.
    """

    kind: str
    iteration: int
    detail: str
    value: float = float("nan")

    def describe(self) -> str:
        return f"{self.kind} at iteration {self.iteration}: {self.detail}"


class BreakdownDetector:
    """Per-solve breakdown state machine (one instance per column for
    the block solver). All checks return a :class:`Breakdown` on
    detection and ``None`` on a healthy value; the caller decides
    whether to stop or restart."""

    def __init__(self, stagnation_window: int = DEFAULT_STAGNATION_WINDOW):
        if stagnation_window < 1:
            raise ValueError(
                f"stagnation_window must be >= 1, got {stagnation_window}"
            )
        self.stagnation_window = stagnation_window
        self.best_residual = math.inf
        self.iters_since_improvement = 0

    def check_curvature(self, pq: float, it: int) -> Optional[Breakdown]:
        """Validate the curvature ``pᵀAp`` of one iteration."""
        if not math.isfinite(pq):
            return Breakdown(
                "nonfinite", it, f"curvature pᵀAp = {pq}", float(pq)
            )
        if pq <= 0.0:
            return Breakdown(
                "indefinite", it,
                f"non-positive curvature pᵀAp = {pq:.6g} "
                "(matrix not positive definite along p)",
                float(pq),
            )
        return None

    def check_scalar(
        self, value: float, it: int, what: str
    ) -> Optional[Breakdown]:
        """Validate any other recurrence scalar (``rᵀr``, ``rᵀz``…)."""
        if not math.isfinite(value):
            return Breakdown(
                "nonfinite", it, f"{what} = {value}", float(value)
            )
        return None

    def observe_residual(
        self, res_norm: float, it: int
    ) -> Optional[Breakdown]:
        """Feed one iteration's residual norm; detects non-finite
        residuals immediately and stagnation after the window."""
        if not math.isfinite(res_norm):
            return Breakdown(
                "nonfinite", it, f"residual norm = {res_norm}",
                float(res_norm),
            )
        if res_norm < self.best_residual:
            self.best_residual = res_norm
            self.iters_since_improvement = 0
            return None
        self.iters_since_improvement += 1
        if self.iters_since_improvement >= self.stagnation_window:
            return Breakdown(
                "stagnation", it,
                f"no residual improvement below {self.best_residual:.6g} "
                f"for {self.iters_since_improvement} iterations",
                float(res_norm),
            )
        return None

    def reset(self) -> None:
        """Forget stagnation history (after a restart re-seeded the
        recurrence)."""
        self.best_residual = math.inf
        self.iters_since_improvement = 0
