"""Iterative solvers: instrumented non-preconditioned CG (Alg. 1) and
the multi-RHS block CG riding the SpM×M fast path."""

from .block_cg import BlockCGResult, block_conjugate_gradient
from .cg import CGResult, bind_operator, conjugate_gradient
from .pcg import jacobi_preconditioner, preconditioned_conjugate_gradient
from .vecops import OpCounter, VectorOps

__all__ = [
    "CGResult",
    "conjugate_gradient",
    "bind_operator",
    "BlockCGResult",
    "block_conjugate_gradient",
    "jacobi_preconditioner",
    "preconditioned_conjugate_gradient",
    "OpCounter",
    "VectorOps",
]
