"""Iterative solvers: instrumented non-preconditioned CG (Alg. 1) and
the multi-RHS block CG riding the SpM×M fast path. All three guard
their recurrences (non-finite scalars, indefinite curvature,
stagnation) and report faults as typed :class:`Breakdown` diagnoses
instead of iterating to ``max_iter``."""

from .block_cg import BlockCGResult, block_conjugate_gradient
from .cg import CGResult, CGState, bind_operator, conjugate_gradient
from .guards import BREAKDOWN_KINDS, Breakdown, BreakdownDetector
from .pcg import jacobi_preconditioner, preconditioned_conjugate_gradient
from .vecops import OpCounter, VectorOps

__all__ = [
    "Breakdown",
    "BreakdownDetector",
    "BREAKDOWN_KINDS",
    "CGResult",
    "CGState",
    "conjugate_gradient",
    "bind_operator",
    "BlockCGResult",
    "block_conjugate_gradient",
    "jacobi_preconditioner",
    "preconditioned_conjugate_gradient",
    "OpCounter",
    "VectorOps",
]
