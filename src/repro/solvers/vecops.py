"""Instrumented dense vector operations for the CG solver.

CG interleaves one SpM×V with several level-1 BLAS operations per
iteration (Alg. 1); on small matrices the vector operations dominate
the multithreaded solver (Fig. 14's first observation). Every operation
here updates an :class:`OpCounter` with its flop count and streamed
bytes so the machine model can time the vector phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["OpCounter", "VectorOps"]

_F8 = 8  # bytes per double


@dataclass
class OpCounter:
    """Accumulated floating-point and memory-traffic counts."""

    flops: float = 0.0
    bytes: float = 0.0
    n_ops: int = 0

    def add(self, flops: float, bytes_: float) -> None:
        self.flops += flops
        self.bytes += bytes_
        self.n_ops += 1

    def reset(self) -> None:
        self.flops = 0.0
        self.bytes = 0.0
        self.n_ops = 0


class VectorOps:
    """Dense vector kernels with traffic accounting.

    All kernels are numpy-vectorized and in-place where the CG
    algorithm allows (the guides' "in place operations" rule).
    """

    def __init__(self, counter: OpCounter | None = None):
        self.counter = counter or OpCounter()

    def dot(self, a: np.ndarray, b: np.ndarray) -> float:
        """Inner product ``aᵀ b`` (2n flops; reads both operands —
        n doubles once when they alias)."""
        n = a.size
        reads = n if a is b else 2 * n
        self.counter.add(2.0 * n, _F8 * reads)
        return float(np.dot(a, b))

    def norm2(self, a: np.ndarray) -> float:
        """Euclidean norm ``‖a‖₂``."""
        return float(np.sqrt(self.dot(a, a)))

    def axpy(self, alpha: float, x: np.ndarray, y: np.ndarray) -> None:
        """``y ← y + alpha·x`` in place (2n flops, 3n element traffic:
        read x, read y, write y)."""
        n = x.size
        self.counter.add(2.0 * n, _F8 * 3 * n)
        y += alpha * x

    def xpay(self, x: np.ndarray, beta: float, y: np.ndarray) -> None:
        """``y ← x + beta·y`` in place (the CG direction update)."""
        n = x.size
        self.counter.add(2.0 * n, _F8 * 3 * n)
        y *= beta
        y += x

    def copy(self, src: np.ndarray, dst: np.ndarray) -> None:
        """``dst ← src`` (pure traffic, no flops)."""
        n = src.size
        self.counter.add(0.0, _F8 * 2 * n)
        dst[:] = src

    def scale(self, alpha: float, x: np.ndarray) -> None:
        """``x ← alpha·x`` in place."""
        n = x.size
        self.counter.add(float(n), _F8 * 2 * n)
        x *= alpha
