"""Jacobi-preconditioned Conjugate Gradient.

The paper evaluates a *non-preconditioned* CG and notes that
"improving the performance of a preconditioner is orthogonal to the
SpM×V optimization examined" (§II-C). This module supplies the natural
extension: CG preconditioned with ``M = diag(A)`` — the cheapest
preconditioner, whose application is a vector multiply and therefore
keeps SpM×V the dominant kernel, preserving the paper's conclusions
while usually cutting the iteration count on ill-conditioned systems.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..obs.tracer import Tracer, active as _active_tracer
from .cg import CGResult, bind_operator
from .vecops import OpCounter, VectorOps

__all__ = ["jacobi_preconditioner", "preconditioned_conjugate_gradient"]


def jacobi_preconditioner(diagonal: np.ndarray) -> Callable[[np.ndarray], np.ndarray]:
    """``M⁻¹`` application for ``M = diag(A)``.

    Raises if the diagonal has zeros (Jacobi undefined).
    """
    diagonal = np.asarray(diagonal, dtype=np.float64)
    if np.any(diagonal == 0.0):
        raise ValueError("Jacobi preconditioner needs a zero-free diagonal")
    inv = 1.0 / diagonal

    def apply(r: np.ndarray) -> np.ndarray:
        return inv * r

    return apply


def preconditioned_conjugate_gradient(
    spmv: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    precond: Callable[[np.ndarray], np.ndarray],
    x0: Optional[np.ndarray] = None,
    *,
    tol: float = 1e-8,
    max_iter: Optional[int] = None,
    counter: Optional[OpCounter] = None,
    trace: Optional[Tracer] = None,
) -> CGResult:
    """Solve ``A x = b`` with left-preconditioned CG.

    Same contract as :func:`repro.solvers.cg.conjugate_gradient`; the
    preconditioner application is counted as one vector op per
    iteration (3n element traffic, n flops for Jacobi) and telemetered
    under its own "cg.precond" span.
    """
    b = np.asarray(b, dtype=np.float64)
    n = b.size
    ops = VectorOps(counter)
    tracer = trace if trace is not None else _active_tracer()
    if max_iter is None:
        max_iter = max(1, 10 * n)
    # Bind once, apply every iteration (parallel drivers only).
    with tracer.span("cg.bind"):
        spmv = bind_operator(spmv)

    x = (
        np.zeros(n, dtype=np.float64)
        if x0 is None
        else np.array(x0, dtype=np.float64)
    )
    n_spmv = 0
    if x0 is None or not np.any(x):
        r = b.copy()
        ops.counter.add(0.0, 16.0 * n)
    else:
        with tracer.span("cg.spmv"):
            Ax = spmv(x)
        r = b - Ax
        n_spmv += 1
        ops.counter.add(float(n), 24.0 * n)

    b_norm = float(np.linalg.norm(b))
    threshold = tol * (b_norm if b_norm > 0 else 1.0)

    with tracer.span("cg.precond"):
        z = precond(r)
    ops.counter.add(float(n), 24.0 * n)
    rz = ops.dot(r, z)
    res_norm = float(np.linalg.norm(r))
    if res_norm <= threshold:
        return CGResult(
            x, True, 0, res_norm, n_spmv,
            ops.counter.flops, ops.counter.bytes,
        )

    p = z.copy()
    ops.counter.add(0.0, 16.0 * n)
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        with tracer.span("cg.spmv"):
            q = spmv(p)
        n_spmv += 1
        with tracer.span("cg.vecops"):
            pq = ops.dot(p, q)
            indefinite = pq <= 0
            if not indefinite:
                alpha = rz / pq
                ops.axpy(alpha, p, x)
                ops.axpy(-alpha, q, r)
                res_norm = float(np.linalg.norm(r))
                ops.counter.add(2.0 * n, 8.0 * n)
        if indefinite:
            break
        tracer.event("cg.iter", iteration=it, residual=res_norm)
        if res_norm <= threshold:
            converged = True
            break
        with tracer.span("cg.precond"):
            z = precond(r)
        ops.counter.add(float(n), 24.0 * n)
        with tracer.span("cg.vecops"):
            rz_new = ops.dot(r, z)
            beta = rz_new / rz
            ops.xpay(z, beta, p)
        rz = rz_new

    return CGResult(
        x, converged, it, res_norm, n_spmv,
        ops.counter.flops, ops.counter.bytes,
    )
