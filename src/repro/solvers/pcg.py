"""Jacobi-preconditioned Conjugate Gradient.

The paper evaluates a *non-preconditioned* CG and notes that
"improving the performance of a preconditioner is orthogonal to the
SpM×V optimization examined" (§II-C). This module supplies the natural
extension: CG preconditioned with ``M = diag(A)`` — the cheapest
preconditioner, whose application is a vector multiply and therefore
keeps SpM×V the dominant kernel, preserving the paper's conclusions
while usually cutting the iteration count on ill-conditioned systems.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Callable, Optional

import numpy as np

from ..obs.tracer import Tracer, active as _active_tracer, warn as _obs_warn
from .cg import (
    CGResult,
    CGState,
    _note_breakdown,
    _note_iteration,
    _restore_state,
    bind_operator,
)
from .guards import DEFAULT_STAGNATION_WINDOW, Breakdown, BreakdownDetector
from .vecops import OpCounter, VectorOps

__all__ = ["jacobi_preconditioner", "preconditioned_conjugate_gradient"]


def jacobi_preconditioner(diagonal: np.ndarray) -> Callable[[np.ndarray], np.ndarray]:
    """``M⁻¹`` application for ``M = diag(A)``.

    Raises if the diagonal has zeros (Jacobi undefined).
    """
    diagonal = np.asarray(diagonal, dtype=np.float64)
    if np.any(diagonal == 0.0):
        raise ValueError("Jacobi preconditioner needs a zero-free diagonal")
    inv = 1.0 / diagonal

    def apply(r: np.ndarray) -> np.ndarray:
        return inv * r

    return apply


def preconditioned_conjugate_gradient(
    spmv: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    precond: Callable[[np.ndarray], np.ndarray],
    x0: Optional[np.ndarray] = None,
    *,
    tol: float = 1e-8,
    max_iter: Optional[int] = None,
    counter: Optional[OpCounter] = None,
    trace: Optional[Tracer] = None,
    restart: bool = False,
    stagnation_window: int = DEFAULT_STAGNATION_WINDOW,
    checkpoint: Optional[Callable[[CGState], None]] = None,
    checkpoint_every: int = 0,
    resume_from: Optional[CGState] = None,
) -> CGResult:
    """Solve ``A x = b`` with left-preconditioned CG.

    Same contract as :func:`repro.solvers.cg.conjugate_gradient` —
    including the breakdown guards (non-finite scalars, non-positive
    curvature, stagnation → ``CGResult.breakdown``), the
    ``restart=True`` restart-once policy, and the
    ``checkpoint``/``resume_from`` hooks (the persisted ``rs`` scalar
    carries ``rᵀz`` here; states are tagged ``"pcg"`` and cannot be
    resumed by the plain-CG solver, or vice versa); the preconditioner
    application is counted as one vector op per iteration (3n element
    traffic, n flops for Jacobi) and telemetered under its own
    "cg.precond" span.
    """
    b = np.asarray(b, dtype=np.float64)
    n = b.size
    ops = VectorOps(counter)
    tracer = trace if trace is not None else _active_tracer()
    if max_iter is None:
        max_iter = max(1, 10 * n)
    # Bind once, apply every iteration (parallel drivers only).
    with tracer.span("cg.bind"):
        spmv = bind_operator(spmv)

    x = (
        np.zeros(n, dtype=np.float64)
        if x0 is None
        else np.array(x0, dtype=np.float64)
    )
    n_spmv = 0
    b_norm = float(np.linalg.norm(b))
    threshold = tol * (b_norm if b_norm > 0 else 1.0)
    detector = BreakdownDetector(stagnation_window)
    res_norm = float("nan")

    def reseed():
        """(z, rz) from the current residual (initial seed + restarts)."""
        with tracer.span("cg.precond"):
            z = precond(r)
        ops.counter.add(float(n), 24.0 * n)
        return z, ops.dot(r, z)

    def result(converged, it, breakdown=None):
        return CGResult(
            x, converged, it, res_norm, n_spmv,
            ops.counter.flops, ops.counter.bytes,
            breakdown=breakdown,
        )

    if resume_from is not None:
        x, r, p, rz, res_norm = _restore_state(
            resume_from, "pcg", n, detector
        )
        start_it = resume_from.iteration + 1
        if res_norm <= threshold:
            return result(True, resume_from.iteration)
    else:
        start_it = 1
        if x0 is None or not np.any(x):
            r = b.copy()
            ops.counter.add(0.0, 16.0 * n)
        else:
            with tracer.span("cg.spmv"):
                Ax = spmv(x)
            r = b - Ax
            n_spmv += 1
            ops.counter.add(float(n), 24.0 * n)

        z, rz = reseed()
        res_norm = float(np.linalg.norm(r))
        bd = detector.check_scalar(res_norm, 0, "initial residual norm")
        if bd is None:
            bd = detector.check_scalar(float(rz), 0, "initial rᵀz")
        if bd is not None:
            _note_breakdown(tracer, bd)
            return result(False, 0, bd)
        if res_norm <= threshold:
            return result(True, 0)

        p = z.copy()
        ops.counter.add(0.0, 16.0 * n)
    converged = False
    breakdown: Optional[Breakdown] = None
    restarted = False
    it = start_it - 1
    for it in range(start_it, max_iter + 1):
        iter_t0 = perf_counter_ns() if tracer.enabled else 0
        with tracer.span("cg.spmv"):
            q = spmv(p)
        n_spmv += 1
        with tracer.span("cg.vecops"):
            pq = ops.dot(p, q)
            bd = detector.check_curvature(float(pq), it)
            if bd is None:
                alpha = rz / pq
                ops.axpy(alpha, p, x)
                ops.axpy(-alpha, q, r)
                res_norm = float(np.linalg.norm(r))
                ops.counter.add(2.0 * n, 8.0 * n)
                bd = detector.observe_residual(res_norm, it)
        if bd is not None:
            if restart and not restarted and bool(np.isfinite(x).all()):
                restarted = True
                _obs_warn("resilience.cg_restart")
                tracer.event("cg.restart", iteration=it, kind=bd.kind)
                with tracer.span("cg.spmv"):
                    Ax = spmv(x)
                n_spmv += 1
                r = b - Ax
                ops.counter.add(float(n), 24.0 * n)
                res_norm = float(np.linalg.norm(r))
                detector.reset()
                bd = detector.check_scalar(
                    res_norm, it, "post-restart residual norm"
                )
                if bd is None:
                    if res_norm <= threshold:
                        converged = True
                        break
                    z, rz = reseed()
                    bd = detector.check_scalar(
                        float(rz), it, "post-restart rᵀz"
                    )
                    if bd is None:
                        p = z.copy()
                        ops.counter.add(0.0, 16.0 * n)
                        continue
            breakdown = bd
            break
        tracer.event("cg.iter", iteration=it, residual=res_norm)
        if tracer.enabled:
            _note_iteration(tracer, "pcg", iter_t0, res_norm)
        if res_norm <= threshold:
            converged = True
            break
        with tracer.span("cg.precond"):
            z = precond(r)
        ops.counter.add(float(n), 24.0 * n)
        with tracer.span("cg.vecops"):
            rz_new = ops.dot(r, z)
            bd = detector.check_scalar(float(rz_new), it, "rᵀz")
            if bd is not None:
                breakdown = bd
                break
            beta = rz_new / rz
            ops.xpay(z, beta, p)
        rz = rz_new
        if checkpoint is not None and checkpoint_every > 0 and (
            it % checkpoint_every == 0
        ):
            with tracer.span("cg.checkpoint"):
                checkpoint(CGState(
                    "pcg", it, x, r, p, rz, res_norm,
                    detector.best_residual,
                    detector.iters_since_improvement,
                ))

    if breakdown is not None:
        _note_breakdown(tracer, breakdown)
    return result(converged, it, breakdown)
