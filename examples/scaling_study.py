#!/usr/bin/env python
"""Multicore scaling study on the modelled platforms.

Reproduces a Fig. 9 / Fig. 11-style thread sweep for one matrix of the
paper's suite: speedup over serial CSR for CSR, SSS with each reduction
method, and CSX-Sym, on the Dunnington SMP and Gainestown NUMA models.
Shows the paper's central result in one screen: the naive and
effective-ranges reductions stop scaling when the memory bandwidth
saturates, the indexing scheme keeps scaling, and CSX-Sym's compression
adds another step on the bandwidth-starved machine.

Run:  python examples/scaling_study.py [matrix] [scale]
      e.g. python examples/scaling_study.py hood 0.02
"""

import sys

from repro.analysis import build_format, render_series
from repro.formats import CSRMatrix
from repro.machine import (
    DUNNINGTON,
    GAINESTOWN,
    predict_serial_csr,
    predict_spmv,
)
from repro.matrices import get_entry

CONFIGS = (
    ("csr", "csr", None),
    ("sss-naive", "sss", "naive"),
    ("sss-effective", "sss", "effective"),
    ("sss-indexed", "sss", "indexed"),
    ("csx-sym", "csx-sym", "indexed"),
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "hood"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.01
    entry = get_entry(name)
    coo = entry.build(scale=scale)
    print(
        f"{name} at scale {scale}: {coo.n_rows} rows, {coo.nnz} nnz "
        f"(paper: {entry.paper_rows} rows, {entry.paper_nnz} nnz)"
    )

    for platform, threads in (
        (DUNNINGTON, (1, 2, 4, 8, 12, 24)),
        (GAINESTOWN, (1, 2, 4, 8, 16)),
    ):
        base = predict_serial_csr(
            CSRMatrix.from_coo(coo), platform, machine_scale=scale
        )
        curves = {}
        for label, fmt, red in CONFIGS:
            curves[label] = {}
            for p in threads:
                matrix, parts = build_format(coo, fmt, p)
                pt = predict_spmv(
                    matrix, parts, platform, reduction=red,
                    machine_scale=scale,
                )
                curves[label][p] = pt.speedup_over(base)
        print()
        print(
            render_series(
                "threads",
                curves,
                title=f"{platform.name}: modelled speedup over serial CSR",
                floatfmt="{:.2f}",
            )
        )


if __name__ == "__main__":
    main()
