#!/usr/bin/env python
"""Quickstart: store a symmetric matrix four ways and multiply.

Builds a small FEM-style symmetric positive-definite matrix, stores it
in every format the library implements (CSR, SSS, CSX, CSX-Sym),
verifies all kernels agree, and prints what the symmetric compression
buys — the paper's Table-I-style numbers in miniature.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.formats import CSRMatrix, CSXMatrix, CSXSymMatrix, SSSMatrix
from repro.matrices import block_structural
from repro.parallel import (
    ParallelSymmetricSpMV,
    partition_nnz_balanced,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # A structural-mechanics-style matrix: 500 nodes with 3 degrees of
    # freedom each, coupled in dense 3x3 blocks (what CSX loves).
    coo = block_structural(
        n_nodes=500, dof=3, nnz_per_row=50.0, band_nodes=30, rng=rng
    )
    print(f"matrix: {coo.n_rows} x {coo.n_cols}, {coo.nnz} non-zeros")

    x = rng.standard_normal(coo.n_cols)

    # --- serial SpM×V in every format -------------------------------
    csr = CSRMatrix.from_coo(coo)
    sss = SSSMatrix.from_coo(coo)
    csx = CSXMatrix(coo)
    csx_sym = CSXSymMatrix(coo)

    reference = csr.spmv(x)
    for m in (sss, csx, csx_sym):
        assert np.allclose(m.spmv(x), reference), m.format_name

    print("\nformat    size (KiB)   vs CSR")
    for m in (csr, sss, csx, csx_sym):
        ratio = m.size_bytes() / csr.size_bytes()
        print(
            f"{m.format_name:8s}  {m.size_bytes() / 1024:9.1f}   "
            f"{100 * ratio:5.1f}%"
        )
    print(
        f"\nCSX-Sym substructure coverage: "
        f"{100 * csx_sym.substructure_coverage():.1f}% of stored elements"
    )

    # --- multithreaded symmetric SpM×V (paper Alg. 3) ----------------
    n_threads = 8
    parts = partition_nnz_balanced(sss.expanded_row_nnz(), n_threads)
    kernel = ParallelSymmetricSpMV(sss, parts, reduction="indexed")
    assert np.allclose(kernel(x), reference)

    fp = kernel.footprint()
    print(
        f"\n{n_threads}-thread symmetric SpM×V with local-vectors "
        f"indexing:\n"
        f"  conflicting elements indexed: {fp.index_pairs}\n"
        f"  effective-region density:     {fp.effective_density:.3f}\n"
        f"  reduction working set:        "
        f"{fp.ws_measured_bytes / 1024:.1f} KiB "
        f"(naive method would use "
        f"{8 * n_threads * coo.n_rows / 1024:.1f} KiB)"
    )


if __name__ == "__main__":
    main()
