#!/usr/bin/env python
"""Explore what CSX-Sym finds inside a sparse matrix.

Builds (or reads) a symmetric matrix, runs the CSX-Sym preprocessing,
and prints the detection report: which substructure instantiations were
selected, how many elements each encodes, the resulting ``ctl`` stream
size, and the end-to-end compression against CSR and SSS. Also
round-trips the matrix through MatrixMarket to demonstrate the I/O.

Run:  python examples/format_explorer.py [suite-matrix-name|path.mtx]
      e.g. python examples/format_explorer.py bmwcra_1
           python examples/format_explorer.py my_matrix.mtx
"""

import sys
import tempfile
from pathlib import Path

from repro.formats import CSRMatrix, CSXSymMatrix, SSSMatrix
from repro.matrices import (
    get_entry,
    read_matrix_market,
    write_matrix_market,
)
from repro.parallel import partition_nnz_balanced


def load_matrix(arg: str):
    if arg.endswith(".mtx"):
        coo = read_matrix_market(arg)
        return arg, coo
    entry = get_entry(arg)
    return arg, entry.build(scale=0.01)


def main() -> None:
    arg = sys.argv[1] if len(sys.argv) > 1 else "bmwcra_1"
    name, coo = load_matrix(arg)
    print(f"{name}: {coo.n_rows} x {coo.n_cols}, {coo.nnz} non-zeros")
    if not coo.is_symmetric():
        raise SystemExit("CSX-Sym needs a symmetric matrix")

    csr = CSRMatrix.from_coo(coo)
    sss = SSSMatrix.from_coo(coo)
    parts = partition_nnz_balanced(sss.expanded_row_nnz(), 4)
    csx_sym = CSXSymMatrix(coo, partitions=parts)

    print("\nper-partition substructure detection:")
    for part in csx_sym.partitions:
        report = part.report
        print(
            f"  rows [{part.row_start:6d}, {part.row_end:6d}): "
            f"{report.total_elements} lower elements, "
            f"ctl {len(part.ctl)} B + table "
            f"{len(part.pattern_table_bytes)} B"
        )
        for pattern, n in sorted(
            report.encoded_by_pattern.items(), key=lambda kv: -kv[1]
        ):
            share = 100 * n / max(1, report.total_elements)
            print(f"      {str(pattern):20s} {n:8d} elements ({share:4.1f}%)")
    if csx_sym.rejected_units:
        print(
            f"  legality filter rejected {csx_sym.rejected_units} "
            "boundary-straddling substructures (Fig. 8)"
        )

    print(
        f"\nsubstructure coverage: "
        f"{100 * csx_sym.substructure_coverage():.1f}%"
    )
    print("sizes:")
    for m in (csr, sss, csx_sym):
        print(
            f"  {m.format_name:8s} {m.size_bytes():10d} B "
            f"(CR vs CSR: {100 * m.compression_ratio_vs(csr):5.1f}%)"
        )

    # MatrixMarket round trip.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "matrix.mtx"
        write_matrix_market(path, coo, symmetric=True)
        back = read_matrix_market(path)
        assert back.nnz == coo.nnz
        print(
            f"\nMatrixMarket round trip ✓ "
            f"({path.stat().st_size / 1024:.0f} KiB on disk, "
            "lower triangle stored)"
        )


if __name__ == "__main__":
    main()
