#!/usr/bin/env python
"""Solve a 2-D Poisson problem with CG over the symmetric formats.

Discretizes the Poisson equation on a square grid (5-point Laplacian),
then solves ``A x = b`` with the instrumented non-preconditioned CG of
the paper's Alg. 1 running over three kernels: serial CSR, the
multithreaded SSS kernel with local-vectors indexing, and CSX-Sym. All
must converge to the same solution; the instrumentation shows where the
solver's work goes (the Fig. 14 story).

Run:  python examples/cg_solver.py [grid_size]
"""

import sys

import numpy as np

from repro.formats import CSRMatrix, CSXSymMatrix, SSSMatrix
from repro.matrices import grid_laplacian_2d
from repro.parallel import ParallelSymmetricSpMV, partition_nnz_balanced
from repro.solvers import conjugate_gradient


def main() -> None:
    grid = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    coo = grid_laplacian_2d(grid, grid)
    n = coo.n_rows
    print(f"Poisson {grid}x{grid}: {n} unknowns, {coo.nnz} non-zeros")

    rng = np.random.default_rng(0)
    x_true = rng.standard_normal(n)
    csr = CSRMatrix.from_coo(coo)
    b = csr.spmv(x_true)

    n_threads = 8
    sss = SSSMatrix.from_coo(coo)
    parts = partition_nnz_balanced(sss.expanded_row_nnz(), n_threads)
    csx_sym = CSXSymMatrix(coo, partitions=parts)

    kernels = {
        "csr (serial)": csr.spmv,
        f"sss + indexing ({n_threads}t)": ParallelSymmetricSpMV(
            sss, parts, "indexed"
        ),
        f"csx-sym + indexing ({n_threads}t)": ParallelSymmetricSpMV(
            csx_sym, parts, "indexed"
        ),
    }

    print(f"\n{'kernel':28s} {'iters':>5s} {'residual':>10s} "
          f"{'error':>10s} {'vec Mflop':>10s}")
    solutions = []
    for label, kernel in kernels.items():
        res = conjugate_gradient(kernel, b, tol=1e-10)
        err = float(np.abs(res.x - x_true).max())
        print(
            f"{label:28s} {res.iterations:5d} {res.residual_norm:10.2e} "
            f"{err:10.2e} {res.vector_flops / 1e6:10.2f}"
        )
        assert res.converged
        solutions.append(res.x)

    for other in solutions[1:]:
        assert np.allclose(solutions[0], other, atol=1e-7)
    print("\nall kernels converged to the same solution ✓")

    print(
        f"\nstorage: CSR {csr.size_bytes() / 1024:.0f} KiB -> "
        f"SSS {sss.size_bytes() / 1024:.0f} KiB -> "
        f"CSX-Sym {csx_sym.size_bytes() / 1024:.0f} KiB "
        f"({100 * csx_sym.compression_ratio_vs(csr):.1f}% smaller than CSR)"
    )


if __name__ == "__main__":
    main()
