#!/usr/bin/env python
"""Compare the paper's method against the published rivals (§VI).

Runs the three multithreaded symmetric SpM×V strategies implemented in
this library on one matrix:

* local-vectors **indexing** (the paper's contribution),
* symmetric **CSB** with three near-diagonal buffers + atomics
  (Buluç et al. [27]),
* the conflict-free **coloring** method (Batista et al. [7]),

verifies they all compute the same product, and prints each method's
characteristic statistic — index pairs, atomic updates, color count —
with the machine model's verdict on the Dunnington SMP.

Run:  python examples/related_methods.py [matrix] [scale]
"""

import sys

import numpy as np

from repro.analysis import thread_partitions
from repro.formats import CSBSymMatrix, CSRMatrix, SSSMatrix
from repro.machine import DUNNINGTON, predict_spmv
from repro.matrices import get_entry
from repro.parallel import (
    ColoredSymmetricSpMV,
    ParallelCSBSymSpMV,
    ParallelSymmetricSpMV,
    coloring_stats,
    distance2_coloring,
    predict_colored_time,
    predict_csb_sym_time,
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "thermal2"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.005
    threads = 24
    coo = get_entry(name).build(scale=scale)
    print(f"{name}: {coo.n_rows} rows, {coo.nnz} nnz, {threads} threads\n")

    rng = np.random.default_rng(0)
    x = rng.standard_normal(coo.n_cols)
    reference = CSRMatrix.from_coo(coo).spmv(x)

    # --- local-vectors indexing (this paper) --------------------------
    sss = SSSMatrix.from_coo(coo)
    parts = thread_partitions(coo, threads, symmetric=True)
    indexed = ParallelSymmetricSpMV(sss, parts, "indexed")
    assert np.allclose(indexed(x), reference)
    fp = indexed.footprint()
    t_idx = predict_spmv(
        sss, parts, DUNNINGTON, reduction="indexed", machine_scale=scale
    ).total
    print(
        f"indexing : {fp.index_pairs} index pairs "
        f"(density {fp.effective_density:.3f}) "
        f"-> model {t_idx * 1e6:8.1f} us"
    )

    # --- symmetric CSB (Buluç et al.) ---------------------------------
    csbs = CSBSymMatrix(coo)
    csb_parts = csbs.block_row_partitions(threads)
    csb_kernel = ParallelCSBSymSpMV(csbs, csb_parts)
    assert np.allclose(csb_kernel(x), reference)
    t_csb = predict_csb_sym_time(
        csbs, csb_parts, DUNNINGTON, machine_scale=scale
    )
    atomics = csb_kernel.last_stats.atomic_updates
    print(
        f"csb-sym  : {atomics} atomic updates "
        f"({atomics / max(1, csbs.stored_entries):.0%} of elements) "
        f"-> model {t_csb * 1e6:8.1f} us"
    )

    # --- coloring (Batista et al.) -------------------------------------
    colors = distance2_coloring(sss)
    colored = ColoredSymmetricSpMV(sss, colors)
    assert np.allclose(colored(x), reference)
    stats = coloring_stats(colors)
    t_col = predict_colored_time(
        sss, colors, DUNNINGTON, threads, machine_scale=scale
    )
    print(
        f"coloring : {stats.n_colors} colors "
        f"(mean class {stats.mean_class:.0f} rows) "
        f"-> model {t_col * 1e6:8.1f} us"
    )

    best = min(t_idx, t_csb, t_col)
    if best == t_idx:
        print(
            f"\nthe local-vectors indexing wins by "
            f"{min(t_csb, t_col) / t_idx:.2f}x over the closest rival "
            "(the paper's §VI conclusion)"
        )
    else:
        # On low-bandwidth structural matrices CSB-Sym's atomics vanish
        # and the two methods converge — the paper's argument is about
        # the high-bandwidth regime.
        print(
            f"\nrivals are within {best / t_idx:.2f}x here; try a "
            "high-bandwidth matrix (thermal2, G3_circuit) to see the "
            "paper's separation"
        )


if __name__ == "__main__":
    main()
