"""Ablation — NUMA allocation policy (paper §V-A).

The paper's NUMA runs use numactl plus a custom interleaved allocator.
This ablation shows why: on Gainestown the naive first-touch placement
(matrix built by the main thread → all pages on socket 0) caps the
kernel at one memory controller, while interleaved/local placement
reaches the aggregate bandwidth. The SMP Dunnington is placement-blind.
"""

from common import MATRIX_NAMES, SCALE, predict, write_result
from repro.analysis import render_table
from repro.machine import (
    AllocationPolicy,
    DUNNINGTON,
    GAINESTOWN,
    effective_bandwidth,
)

P = 16

ABLATION_MATRICES = [
    n for n in ("hood", "ldoor", "thermal2")
    if n in MATRIX_NAMES
] or MATRIX_NAMES[:2]


def _time_under_policy(pt, platform, policy):
    """Rescale a prediction's memory ceilings to the policy's effective
    bandwidth (compute ceilings are placement-independent)."""
    base_bw = platform.bandwidth_gbps(pt.n_threads)
    eff_bw = effective_bandwidth(platform, pt.n_threads, policy)
    scale = base_bw / eff_bw
    t_mult = max(pt.t_mult_compute, pt.t_mult_memory * scale)
    t_red = max(pt.t_reduce_compute, pt.t_reduce_memory * scale)
    return t_mult + t_red


def compute_numa_ablation():
    rows = []
    stats = {}
    for name in ABLATION_MATRICES:
        pt = predict(name, "sss", GAINESTOWN, P, "indexed")
        pt_d = predict(name, "sss", DUNNINGTON, P, "indexed")
        for policy in AllocationPolicy:
            t_g = _time_under_policy(pt, GAINESTOWN, policy)
            t_d = _time_under_policy(pt_d, DUNNINGTON, policy)
            rows.append([name, policy.value, t_g * 1e6, t_d * 1e6])
            stats[(name, policy)] = (t_g, t_d)
    return rows, stats


def test_numa_allocation_ablation(benchmark):
    rows, stats = benchmark.pedantic(
        compute_numa_ablation, rounds=1, iterations=1
    )
    text = render_table(
        ["matrix", "policy", "Gainestown 16t (us)", "Dunnington 16t (us)"],
        rows,
        title="Ablation — NUMA allocation policy (SSS, indexed)",
        floatfmt="{:.1f}",
    )
    write_result("ablation_numa", text)

    for name in ABLATION_MATRICES:
        ft = stats[(name, AllocationPolicy.FIRST_TOUCH_SERIAL)]
        il = stats[(name, AllocationPolicy.INTERLEAVED)]
        loc = stats[(name, AllocationPolicy.LOCAL)]
        # Gainestown: placement ordering local ≤ interleaved < first-touch.
        assert loc[0] <= il[0] <= ft[0], name
        assert ft[0] > 1.3 * loc[0], name  # the allocator's raison d'être
        # Dunnington (shared bus): placement changes nothing.
        assert ft[1] == il[1] == loc[1], name
