"""Table I — matrix suite and CSX-Sym compression ratios.

Regenerates the paper's Table I rows: matrix, rows, non-zeros, the
compression ratio CSX-Sym achieves against CSR, and the maximum
possible symmetric compression ratio (values only, no indexing). The
paper's reported ratios are printed alongside for comparison; the shape
assertion checks every CSX-Sym ratio sits within the (SSS, max) band
and tracks the paper's value.

The timed kernel is the full CSX-Sym preprocessing (detection +
encoding + plan compilation) of one mid-sized suite matrix.
"""

import pytest

from common import MATRIX_NAMES, suite_matrix, write_result
from repro.analysis import render_table
from repro.formats import CSRMatrix, CSXSymMatrix, SSSMatrix
from repro.matrices import get_entry


def compute_table1():
    rows = []
    for name in MATRIX_NAMES:
        entry = get_entry(name)
        coo = suite_matrix(name)
        csr = CSRMatrix.from_coo(coo)
        sss = SSSMatrix.from_coo(coo)
        csxs = CSXSymMatrix(coo)
        nnz = coo.nnz
        cr_csxs = csxs.compression_ratio_vs(csr)
        cr_sss = sss.compression_ratio_vs(csr)
        ideal = 8 * coo.n_rows + 8 * (nnz - coo.n_rows) / 2
        cr_max = 1 - ideal / csr.size_bytes()
        rows.append(
            [
                name,
                coo.n_rows,
                nnz,
                round(100 * cr_csxs, 1),
                round(100 * entry.paper_cr_csx_sym, 1),
                round(100 * cr_max, 1),
                round(100 * entry.paper_cr_max, 1),
                round(100 * cr_sss, 1),
            ]
        )
    return rows


def test_table1_compression_ratios(benchmark):
    rows = benchmark.pedantic(compute_table1, rounds=1, iterations=1)
    text = render_table(
        [
            "matrix", "rows", "nonzeros",
            "CR CSX-Sym %", "paper %",
            "CR max %", "paper max %",
            "CR SSS %",
        ],
        rows,
        title="Table I — suite and compression ratios "
              "(measured vs paper)",
        floatfmt="{:.1f}",
    )
    write_result("table1_compression", text)

    for row in rows:
        name, _, _, cr_csxs, paper_csxs, cr_max, paper_max, cr_sss = row
        # Max CR formula matches the paper's within a point or two
        # (density differences at miniature scale).
        assert abs(cr_max - paper_max) < 6.0, (name, cr_max, paper_max)
        # CSX-Sym compresses beyond SSS and below the indexless bound.
        assert cr_sss - 2.0 <= cr_csxs <= cr_max + 0.5, name
        # And tracks the paper's reported ratio.
        assert abs(cr_csxs - paper_csxs) < 12.0, (name, cr_csxs)


def test_csx_sym_build_wallclock(benchmark):
    """Wall-clock of the CSX-Sym preprocessing pipeline itself."""
    coo = suite_matrix("bmw7st_1")
    result = benchmark(lambda: CSXSymMatrix(coo))
    assert result.nnz == coo.nnz
