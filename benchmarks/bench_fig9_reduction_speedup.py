"""Fig. 9 — symmetric SpM×V speedup with the three reduction methods.

Regenerates the speedup-over-serial-CSR curves for CSR and SSS with the
naive / effective-ranges / indexed reductions on both platforms.

Paper shape: all symmetric methods beat CSR at low thread counts;
naive and effective stop scaling and fall to (or below) CSR as the
memory bandwidth saturates, while the indexed method keeps scaling at
CSR's rate and stays above it. Headline: the indexed SSS beats the best
plain-SSS configuration by a large margin (83.9% on Dunnington, 44% on
Gainestown in the paper).
"""

from common import (
    DUNNINGTON_THREADS,
    GAINESTOWN_THREADS,
    MATRIX_NAMES,
    speedup,
    suite_mean,
    write_result,
)
from repro.analysis import render_series
from repro.machine import DUNNINGTON, GAINESTOWN

CONFIGS = (
    ("csr", "csr", None),
    ("sss-naive", "sss", "naive"),
    ("sss-effective", "sss", "effective"),
    ("sss-indexed", "sss", "indexed"),
)


def compute_platform(platform, threads):
    curves = {}
    for label, fmt, red in CONFIGS:
        curves[label] = {
            p: suite_mean(
                speedup(name, fmt, platform, p, red)
                for name in MATRIX_NAMES
            )
            for p in threads
        }
    return curves


def check_shape(curves, threads, platform_name):
    max_p = threads[-1]
    csr = curves["csr"]
    idx = curves["sss-indexed"]
    # All symmetric methods win while bandwidth is unsaturated.
    for label, *_ in CONFIGS[1:]:
        assert curves[label][1] > 0.8 * csr[1], (platform_name, label)
    # Naive loses its advantage at full thread count (paper: "completely
    # eliminated when the memory bandwidth is saturated").
    assert curves["sss-naive"][max_p] < 1.1 * csr[max_p], platform_name
    # Indexed keeps scaling: stays above CSR and above the others.
    assert idx[max_p] > 1.15 * csr[max_p], platform_name
    assert idx[max_p] > curves["sss-effective"][max_p]
    # Indexed vs the *best* plain-SSS configuration over all thread
    # counts (the paper's 83.9% / 44% metric). The suite average at
    # miniature scale compresses this gap — dense matrices where all
    # methods tie weigh it down — so the threshold checks direction;
    # EXPERIMENTS.md records the measured value against the paper's.
    best_plain = max(
        max(curves["sss-naive"].values()),
        max(curves["sss-effective"].values()),
    )
    gain = max(idx.values()) / best_plain - 1.0
    assert gain > 0.04, (platform_name, gain)
    return gain


def test_fig9_dunnington(benchmark):
    curves = benchmark.pedantic(
        compute_platform, args=(DUNNINGTON, DUNNINGTON_THREADS),
        rounds=1, iterations=1,
    )
    gain = check_shape(curves, DUNNINGTON_THREADS, "Dunnington")
    text = render_series(
        "threads", curves,
        title=(
            "Fig. 9a — Dunnington: suite-average speedup over serial CSR\n"
            f"indexed vs best plain SSS: +{100 * gain:.1f}% "
            "(paper: +83.9%)"
        ),
    )
    write_result("fig9_dunnington", text)


def test_fig9_gainestown(benchmark):
    curves = benchmark.pedantic(
        compute_platform, args=(GAINESTOWN, GAINESTOWN_THREADS),
        rounds=1, iterations=1,
    )
    gain = check_shape(curves, GAINESTOWN_THREADS, "Gainestown")
    text = render_series(
        "threads", curves,
        title=(
            "Fig. 9b — Gainestown: suite-average speedup over serial CSR\n"
            f"indexed vs best plain SSS: +{100 * gain:.1f}% (paper: +44%)"
        ),
    )
    write_result("fig9_gainestown", text)
