"""Ablation — the CSX substructure menu (DESIGN.md §5).

How much of CSX-Sym's compression comes from each pattern family?
Encodes the suite with deltas only, +1-D runs, and +blocks, reporting
compression ratio and the predicted Dunnington speedup per menu.
"""

from common import MATRIX_NAMES, SCALE, suite_matrix, write_result
from repro.analysis import render_table, thread_partitions
from repro.formats import CSRMatrix, CSXSymMatrix
from repro.formats.csx import DetectionConfig
from repro.machine import DUNNINGTON, predict_spmv

MENUS = {
    "deltas-only": DetectionConfig(
        enable_horizontal=False,
        enable_vertical=False,
        enable_diagonal=False,
        enable_anti_diagonal=False,
        enable_blocks=False,
    ),
    "runs-1d": DetectionConfig(enable_blocks=False),
    "full": DetectionConfig(),
}

#: Representative subset — one per pattern-richness class.
ABLATION_MATRICES = [
    n for n in ("consph", "bmw7st_1", "thermal2", "ldoor")
    if n in MATRIX_NAMES
] or MATRIX_NAMES[:2]


def compute_menu_ablation():
    rows = []
    stats = {}
    for name in ABLATION_MATRICES:
        coo = suite_matrix(name)
        csr = CSRMatrix.from_coo(coo)
        parts = thread_partitions(coo, 24, symmetric=True)
        for menu, config in MENUS.items():
            csxs = CSXSymMatrix(coo, partitions=parts, config=config)
            cr = csxs.compression_ratio_vs(csr)
            t = predict_spmv(
                csxs, parts, DUNNINGTON, reduction="indexed",
                machine_scale=SCALE,
            ).total
            rows.append(
                [name, menu, 100 * cr, 100 * csxs.substructure_coverage(),
                 t * 1e6]
            )
            stats[(name, menu)] = (cr, t)
    return rows, stats


def test_csx_menu_ablation(benchmark):
    rows, stats = benchmark.pedantic(
        compute_menu_ablation, rounds=1, iterations=1
    )
    text = render_table(
        ["matrix", "menu", "CR %", "coverage %", "t @24t Dunnington (us)"],
        rows,
        title="Ablation — CSX-Sym substructure menu",
        floatfmt="{:.1f}",
    )
    write_result("ablation_csx_menu", text)

    for name in ABLATION_MATRICES:
        cr_delta, t_delta = stats[(name, "deltas-only")]
        cr_runs, t_runs = stats[(name, "runs-1d")]
        cr_full, t_full = stats[(name, "full")]
        # Richer menus never compress worse.
        assert cr_delta <= cr_runs + 1e-9 and cr_runs <= cr_full + 1e-9
        # And never predict slower.
        assert t_full <= t_delta * 1.02, name
    # Block patterns matter specifically for the structural matrices.
    for name in ("bmw7st_1", "ldoor"):
        if name in ABLATION_MATRICES:
            assert (
                stats[(name, "full")][0]
                > stats[(name, "runs-1d")][0] + 0.002
            ), name
