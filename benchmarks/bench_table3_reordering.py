"""Table III — SpM×V performance improvement due to RCM reordering.

Regenerates the average per-format improvement from applying the RCM
ordering (Section V-D). Paper shape: everyone gains, the symmetric
formats gain far more than the unsymmetric ones (their reduction index
shrinks with the bandwidth), and the effect is stronger on Dunnington
than Gainestown. Paper values — Dunnington: CSR 22%, CSX 63%, SSS
92.2%, CSX-Sym 106.8%; Gainestown: 11.1%, 14%, 43.6%, 48.5%.
"""

import numpy as np

from common import (
    MATRIX_NAMES,
    predict,
    predict_reordered,
    write_result,
)
from repro.analysis import render_table
from repro.machine import DUNNINGTON, GAINESTOWN

CONFIGS = (
    ("csr", "csr", None),
    ("csx", "csx", None),
    ("sss", "sss", "indexed"),
    ("csx-sym", "csx-sym", "indexed"),
)

PAPER = {
    ("Dunnington", "csr"): 22.0,
    ("Dunnington", "csx"): 63.0,
    ("Dunnington", "sss"): 92.2,
    ("Dunnington", "csx-sym"): 106.8,
    ("Gainestown", "csr"): 11.1,
    ("Gainestown", "csx"): 14.0,
    ("Gainestown", "sss"): 43.6,
    ("Gainestown", "csx-sym"): 48.5,
}


def compute_table3():
    improvements = {}
    for platform, p in ((DUNNINGTON, 24), (GAINESTOWN, 16)):
        for label, fmt, red in CONFIGS:
            gains = []
            for name in MATRIX_NAMES:
                t_native = predict(name, fmt, platform, p, red).total
                t_rcm = predict_reordered(name, fmt, platform, p, red).total
                gains.append(t_native / t_rcm - 1.0)
            improvements[(platform.name, label)] = 100 * float(
                np.mean(gains)
            )
    return improvements


def test_table3_rcm_improvement(benchmark):
    imp = benchmark.pedantic(compute_table3, rounds=1, iterations=1)
    rows = [
        [
            label,
            imp[("Dunnington", label)],
            PAPER[("Dunnington", label)],
            imp[("Gainestown", label)],
            PAPER[("Gainestown", label)],
        ]
        for label, *_ in CONFIGS
    ]
    text = render_table(
        [
            "format",
            "Dunnington %", "paper %",
            "Gainestown %", "paper %",
        ],
        rows,
        title="Table III — average improvement from RCM reordering",
        floatfmt="{:.1f}",
    )
    write_result("table3_reordering", text)

    for platform in ("Dunnington", "Gainestown"):
        # Everyone gains from reordering.
        for label, *_ in CONFIGS:
            assert imp[(platform, label)] > 0, (platform, label)
        # Symmetric formats gain more than their unsymmetric bases.
        assert imp[(platform, "sss")] > imp[(platform, "csr")]
        assert imp[(platform, "csx-sym")] > imp[(platform, "csx")]
        # CSX-Sym gains the most (reasons 1-3 of §V-D compound).
        assert imp[(platform, "csx-sym")] == max(
            imp[(platform, label)] for label, *_ in CONFIGS
        )
