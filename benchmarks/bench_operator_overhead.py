"""Bound-operator overhead benchmark: persistent plans vs per-call setup.

Iterative solvers apply the same operator hundreds of times (Section
II-C: CG's cost is one SpM×V per iteration). The bound-operator layer
(:meth:`ParallelSymmetricSpMV.bind`) pays the setup — reduction
indexing, scatter compilation, workspace allocation — once, so the
per-iteration cost is the kernel alone. This benchmark times a
fixed-iteration CG (SSS + indexed reduction) under three operator
regimes:

* ``per_call`` — a fresh :class:`ParallelSymmetricSpMV` is constructed
  for every application (the naive "build on use" pattern),
* ``unbound``  — one driver reused, but workspaces and lazy caches are
  re-resolved per call,
* ``bound``    — ``driver.bind()``: precompiled tasks, persistent
  zeroed-in-place workspaces, window-restricted scatters.

It reports per-iteration wall-clock (p50 with the p95 tail, over the
suite-wide warmup policy of ``common.timed_repeat``) and the
tracemalloc transient-peak per application window, plus a multi-RHS
block-CG section (``k = 4``), an informational ``bound_traced`` row
(the same bound operator under a *recording* tracer), and the
disabled-tracer overhead: the p50 ratio of the full ``__call__``
dispatch (validation + one tracer check) over the raw ``_apply`` hot
path, which must stay within ``TRACER_OVERHEAD_BUDGET``.

With the streaming-metrics subsystem compiled into the traced branch
(``op.apply_ns`` histograms, ``batch.latency_ns`` recording inside
``run_batch``), the disabled path gained a few more ``tracer.enabled``
checks at the executor layer. ``disabled_metrics_overhead`` re-measures
that budget in the worst realistic state: a real tracer with a
*populated* metrics registry installed but flipped to
``enabled=False`` — the disabled branch must never touch registry
state, so the ratio must stay within ``METRICS_OVERHEAD_BUDGET``
(3 %).
Machine-readable output goes to ``results/BENCH_operator.json``.

Runs standalone (``python benchmarks/bench_operator_overhead.py``,
``--smoke`` for the tiny CI configuration) or under pytest. Acceptance
target: bound per-iteration wall-clock ≥ 1.5× better than per-call
construction on the smoke matrices.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import timed_repeat  # noqa: E402
from repro.formats import COOMatrix, SSSMatrix  # noqa: E402
from repro.matrices.generators import (  # noqa: E402
    banded_random,
    grid_laplacian_2d,
)
from repro.obs import Tracer, percentile, tracing  # noqa: E402
from repro.parallel import (  # noqa: E402
    Executor,
    ParallelSymmetricSpMV,
    partition_nnz_balanced,
)
from repro.solvers import block_conjugate_gradient, conjugate_gradient  # noqa: E402

N_THREADS = 4
CG_ITERS = 60
SMOKE_CG_ITERS = 40
BLOCK_K = 4
ALLOC_WINDOW = 12          # applications per tracemalloc window
TARGET_SPEEDUP = 1.5       # bound vs per_call, per-iteration CG
TRACER_OVERHEAD_BUDGET = 0.03  # disabled-tracer dispatch vs raw _apply
METRICS_OVERHEAD_BUDGET = 0.03  # disabled metrics checks vs bare loop
OVERHEAD_INNER = 40        # applications per overhead timing sample
VARIANTS = ("per_call", "unbound", "bound")
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def smoke_matrices() -> dict[str, COOMatrix]:
    """Tiny generator instances for the CI smoke run (~seconds)."""
    rng = np.random.default_rng(7)
    return {
        "laplace2d_32": grid_laplacian_2d(32, 32),
        "banded_1500": banded_random(1500, 11.0, 60, rng),
    }


def full_matrices() -> dict[str, COOMatrix]:
    """Generator-suite instances at the shared benchmark scale."""
    from common import MATRIX_NAMES, suite_matrix

    names = MATRIX_NAMES[:4] if len(MATRIX_NAMES) > 4 else MATRIX_NAMES
    return {n: suite_matrix(n) for n in names}


def make_variants(coo: COOMatrix, n_threads: int = N_THREADS):
    """The three operator regimes over one SSS + indexed configuration.

    Returns ``(variant -> apply-callable, close-callable)``. The
    ``per_call`` closure stands the whole operator up inside every
    application — driver, reduction indexing, *and* its thread pool —
    which is exactly the state a bound operator keeps alive between
    iterations. ``unbound`` and ``bound`` share one persistent threads
    executor; ``bound`` additionally owns precompiled tasks, scatters
    and zeroed-in-place workspaces.
    """
    sss = SSSMatrix.from_coo(coo)
    parts = partition_nnz_balanced(sss.expanded_row_nnz(), n_threads)
    shared = Executor("threads", max_workers=n_threads)
    driver = ParallelSymmetricSpMV(sss, parts, "indexed", executor=shared)
    bound = driver.bind()

    def per_call(x):
        with Executor("threads", max_workers=n_threads) as ex:
            return ParallelSymmetricSpMV(
                sss, parts, "indexed", executor=ex
            )(x)

    def close():
        bound.close()
        shared.close()

    variants = {
        "per_call": per_call,
        "unbound": lambda x: driver(x),
        "bound": bound,
    }
    return variants, close


def time_cg(apply_fn, b: np.ndarray, iters: int,
            repeats: int) -> tuple[dict, int]:
    """p50/p95 stats of a fixed-iteration CG solve (``tol = 0`` keeps
    it running the full ``iters``), and the SpM×V count per solve."""
    n_spmv = 0

    def solve() -> None:
        nonlocal n_spmv
        res = conjugate_gradient(
            lambda x: apply_fn(x), b, tol=0.0, max_iter=iters
        )
        n_spmv = res.n_spmv

    return timed_repeat(solve, repeats=repeats), n_spmv


def time_block_cg(apply_fn, B: np.ndarray, iters: int,
                  repeats: int) -> tuple[dict, int]:
    n_spmm = 0

    def solve() -> None:
        nonlocal n_spmm
        res = block_conjugate_gradient(
            lambda X: apply_fn(X), B, tol=0.0, max_iter=iters
        )
        n_spmm = res.n_spmm

    return timed_repeat(solve, repeats=repeats), n_spmm


def transient_peak_kb(apply_fn, x: np.ndarray,
                      window: int = ALLOC_WINDOW) -> float:
    """tracemalloc peak above the resting footprint across ``window``
    warm applications — per-call construction shows up as extra
    transient allocation; a bound operator's persistent workspaces do
    not (they are traced before the window opens)."""
    for _ in range(2):
        apply_fn(x)
    gc.collect()
    started = tracemalloc.is_tracing()
    if not started:
        tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        base, _ = tracemalloc.get_traced_memory()
        for _ in range(window):
            apply_fn(x)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not started:
            tracemalloc.stop()
    return max(0.0, (peak - base) / 1024.0)


def run_bench(matrices, iters: int, repeats: int = 3,
              n_threads: int = N_THREADS, block_k: int = BLOCK_K):
    """One row per (matrix, section, variant)."""
    rows = []
    rng = np.random.default_rng(42)
    for name, coo in matrices.items():
        variants, close = make_variants(coo, n_threads)
        b = rng.standard_normal(coo.n_cols)
        B = rng.standard_normal((coo.n_cols, block_k))

        # Differential check before timing: all regimes must agree.
        ys = {v: np.array(fn(b)) for v, fn in variants.items()}
        for v in VARIANTS[1:]:
            if not np.allclose(ys[v], ys["per_call"]):
                raise AssertionError(
                    f"variant mismatch for {v} on {name}"
                )

        for variant, fn in variants.items():
            stats, n_apply = time_cg(fn, b, iters, repeats)
            rows.append({
                "matrix": name,
                "section": "cg",
                "variant": variant,
                "iters": n_apply,
                "per_iter_ms": stats["p50_ms"] / max(1, n_apply),
                "per_iter_p95_ms": stats["p95_ms"] / max(1, n_apply),
                "alloc_peak_kb": transient_peak_kb(fn, b),
            })

        # Informational: the bound regime under a *recording* tracer
        # (spans + counters live) — the enabled-tracer cost, excluded
        # from the speedup targets.
        with tracing(Tracer(enabled=True)):
            stats, n_apply = time_cg(variants["bound"], b, iters, repeats)
            rows.append({
                "matrix": name,
                "section": "cg",
                "variant": "bound_traced",
                "iters": n_apply,
                "per_iter_ms": stats["p50_ms"] / max(1, n_apply),
                "per_iter_p95_ms": stats["p95_ms"] / max(1, n_apply),
                "alloc_peak_kb": transient_peak_kb(variants["bound"], b),
            })

        # Multi-RHS: rebind to the k signature for the bound regime.
        bound_k = variants["bound"].bind(block_k)
        variants_k = dict(variants, bound=bound_k)
        for variant, fn in variants_k.items():
            stats, n_apply = time_block_cg(fn, B, iters, repeats)
            rows.append({
                "matrix": name,
                "section": f"block_cg_k{block_k}",
                "variant": variant,
                "iters": n_apply,
                "per_iter_ms": stats["p50_ms"] / max(1, n_apply),
                "per_iter_p95_ms": stats["p95_ms"] / max(1, n_apply),
                "alloc_peak_kb": transient_peak_kb(fn, B),
            })
        bound_k.close()
        close()
    return rows


def _pairwise_ratio(call_fn, raw_fn, x, rounds: int, inner: int) -> dict:
    """Order-balanced adjacent A/B timing of ``call_fn`` vs ``raw_fn``.

    Two back-to-back A/B timing loops read CPU-frequency drift as fake
    overhead several times larger than the real one, so each round
    times both loops adjacently (order alternating between rounds) and
    contributes one call/raw *ratio* — drift common to the pair
    cancels — and the estimate is the median ratio over the rounds."""

    def sample(fn) -> float:
        t0 = time.perf_counter_ns()
        for _ in range(inner):
            fn(x)
        return (time.perf_counter_ns() - t0) / inner

    sample(call_fn), sample(raw_fn)  # warmup (caches, branch predictors)
    ratios, call_ns, raw_ns = [], [], []
    for r in range(rounds):
        if r % 2 == 0:
            c, w = sample(call_fn), sample(raw_fn)
        else:
            w, c = sample(raw_fn), sample(call_fn)
        ratios.append(c / w)
        call_ns.append(c)
        raw_ns.append(w)
    return {
        "per_apply_call_ms": percentile(call_ns, 50) / 1e6,
        "per_apply_raw_ms": percentile(raw_ns, 50) / 1e6,
        "ratio": percentile(ratios, 50),
    }


def _overhead_operator(coo, n_threads: int):
    """One serial-executor SSS + indexed bound operator (serial so
    thread-pool jitter does not drown the microsecond under
    measurement)."""
    sss = SSSMatrix.from_coo(coo)
    parts = partition_nnz_balanced(sss.expanded_row_nnz(), n_threads)
    bound = ParallelSymmetricSpMV(sss, parts, "indexed").bind()
    return bound


def disabled_tracer_overhead(
    matrices, n_threads: int = N_THREADS, rounds: int = 12,
    inner: int = OVERHEAD_INNER,
) -> dict:
    """Per-application cost of the tracing hooks when no tracer is
    active: ``bound(x)`` (input validation + one tracer-enabled check,
    then ``_apply``) vs ``bound._apply(x)`` (the raw hot path, the
    zero-instrumentation control). ``overhead`` is the geomean of the
    per-matrix median ratios minus 1 (0.01 = 1%)."""
    per_matrix = {}
    rng = np.random.default_rng(3)
    for name, coo in matrices.items():
        bound = _overhead_operator(coo, n_threads)
        x = np.asarray(rng.standard_normal(coo.n_cols), dtype=np.float64)
        per_matrix[name] = _pairwise_ratio(
            bound, bound._apply, x, rounds, inner
        )
        bound.close()
    overhead = _geomean(
        m["ratio"] for m in per_matrix.values()
    ) - 1.0
    return {
        "per_matrix": per_matrix,
        "overhead": overhead,
        "budget": TRACER_OVERHEAD_BUDGET,
        "pass": overhead <= TRACER_OVERHEAD_BUDGET,
    }


def disabled_metrics_overhead(
    matrices, n_threads: int = N_THREADS, rounds: int = 12,
    inner: int = OVERHEAD_INNER,
) -> dict:
    """Disabled-path budget with the streaming metrics compiled in and
    a *populated* registry installed.

    :func:`disabled_tracer_overhead` runs with no tracer in context
    (the NULL tracer). This measurement puts the operator in the state
    a long-running process is actually in after turning tracing off: a
    real :class:`Tracer` whose metrics registry was populated by
    enabled applications (``op.apply_ns`` / ``batch.latency_ns``
    histograms and kernel counters exist), then flipped to
    ``enabled=False``. The ``bound(x)`` vs ``bound._apply(x)`` pairwise
    ratio is re-timed under that tracer — the metrics hooks at every
    layer (``__call__`` dispatch, ``run_batch`` bookkeeping, the
    per-task wrapper) ride the same one-attribute ``tracer.enabled``
    gate, so the presence of a populated registry must not move the
    ratio."""
    per_matrix = {}
    rng = np.random.default_rng(5)
    for name, coo in matrices.items():
        bound = _overhead_operator(coo, n_threads)
        x = np.asarray(rng.standard_normal(coo.n_cols), dtype=np.float64)
        tracer = Tracer(enabled=True)
        with tracing(tracer):
            for _ in range(3):  # populate histograms and counters
                bound(x)
            tracer.enabled = False
            per_matrix[name] = _pairwise_ratio(
                bound, bound._apply, x, rounds, inner
            )
        bound.close()
    overhead = _geomean(
        m["ratio"] for m in per_matrix.values()
    ) - 1.0
    return {
        "per_matrix": per_matrix,
        "overhead": overhead,
        "budget": METRICS_OVERHEAD_BUDGET,
        "pass": overhead <= METRICS_OVERHEAD_BUDGET,
    }


def _geomean(vals) -> float:
    vals = list(vals)
    return float(np.exp(np.mean(np.log(vals)))) if vals else float("nan")


def geomean_speedup(rows, section: str, variant: str,
                    over: str = "per_call") -> float:
    """Geomean of per-iteration speedup of ``variant`` over ``over``."""
    by_matrix = {}
    for r in rows:
        if r["section"] == section:
            by_matrix.setdefault(r["matrix"], {})[r["variant"]] = r
    return _geomean(
        m[over]["per_iter_ms"] / m[variant]["per_iter_ms"]
        for m in by_matrix.values()
        if over in m and variant in m
    )


def render(rows, overhead=None, metrics_overhead=None) -> tuple[str, dict]:
    lines = [
        "Bound-operator overhead — per-iteration CG wall-clock (p50 of "
        "repeats) under three operator regimes (SSS + indexed reduction)",
        "",
        f"{'matrix':<14} {'section':<13} {'variant':<12} {'iters':>5} "
        f"{'p50 ms/it':>10} {'p95 ms/it':>10} {'peak KB':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r['matrix']:<14} {r['section']:<13} {r['variant']:<12} "
            f"{r['iters']:>5} {r['per_iter_ms']:>10.4f} "
            f"{r['per_iter_p95_ms']:>10.4f} {r['alloc_peak_kb']:>9.1f}"
        )
    lines.append("")
    sections = sorted({r["section"] for r in rows})
    summary = {}
    for section in sections:
        for variant in ("unbound", "bound"):
            s = geomean_speedup(rows, section, variant)
            summary[f"{section}:{variant}_vs_per_call"] = s
            lines.append(
                f"geomean per-iter speedup [{section}] {variant} vs "
                f"per_call: {s:.2f}x"
            )
    target = geomean_speedup(rows, "cg", "bound")
    passed = target >= TARGET_SPEEDUP
    lines.append(
        f"target cg bound vs per_call: {target:.2f}x >= "
        f"{TARGET_SPEEDUP}x -> {'PASS' if passed else 'FAIL'}"
    )
    summary["target_speedup"] = TARGET_SPEEDUP
    summary["cg_bound_vs_per_call"] = target
    summary["pass"] = passed
    if overhead is not None:
        lines.append(
            f"disabled-tracer overhead (bound __call__ vs raw _apply): "
            f"{100 * overhead['overhead']:+.2f}% (budget "
            f"{100 * overhead['budget']:.0f}%) -> "
            f"{'PASS' if overhead['pass'] else 'FAIL'}"
        )
        summary["disabled_tracer_overhead"] = overhead["overhead"]
        summary["tracer_overhead_budget"] = overhead["budget"]
        summary["tracer_overhead_pass"] = overhead["pass"]
    if metrics_overhead is not None:
        lines.append(
            f"disabled-metrics overhead (populated registry, disabled "
            f"gate): {100 * metrics_overhead['overhead']:+.2f}% (budget "
            f"{100 * metrics_overhead['budget']:.0f}%) -> "
            f"{'PASS' if metrics_overhead['pass'] else 'FAIL'}"
        )
        summary["disabled_metrics_overhead"] = metrics_overhead["overhead"]
        summary["metrics_overhead_budget"] = metrics_overhead["budget"]
        summary["metrics_overhead_pass"] = metrics_overhead["pass"]
    return "\n".join(lines), summary


def write_json(rows, summary, config) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_operator.json"
    path.write_text(json.dumps(
        {"config": config, "rows": rows, "summary": summary}, indent=2,
    ) + "\n")
    print(f"[json written to {path}]")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny matrices and shorter solves (CI smoke run)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--threads", type=int, default=N_THREADS)
    parser.add_argument("--iters", type=int, default=None,
                        help="CG iterations per timing (default: preset)")
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.threads < 1:
        parser.error("--threads must be >= 1")

    if args.smoke:
        matrices, iters = smoke_matrices(), SMOKE_CG_ITERS
    else:
        matrices, iters = full_matrices(), CG_ITERS
    if args.iters is not None:
        iters = args.iters
    rows = run_bench(matrices, iters, args.repeats, args.threads)
    overhead = disabled_tracer_overhead(matrices, args.threads)
    metrics_overhead = disabled_metrics_overhead(matrices, args.threads)
    text, summary = render(rows, overhead, metrics_overhead)
    config = {
        "smoke": args.smoke, "iters": iters,
        "repeats": args.repeats, "threads": args.threads,
        "block_k": BLOCK_K, "overhead_inner": OVERHEAD_INNER,
        "host_cores": os.cpu_count(),
    }
    write_json(
        rows,
        dict(
            summary,
            tracer_overhead_detail=overhead,
            metrics_overhead_detail=metrics_overhead,
        ),
        config,
    )
    try:
        from common import write_result

        write_result("operator_overhead", text)
    except ImportError:
        print(text)
    return 0 if summary["pass"] else 1


# -- pytest entry point (collected with the other wall-clock benches) --
def test_operator_overhead():
    rows = run_bench(smoke_matrices(), SMOKE_CG_ITERS, repeats=3)
    assert geomean_speedup(rows, "cg", "bound") >= TARGET_SPEEDUP


if __name__ == "__main__":
    raise SystemExit(main())
