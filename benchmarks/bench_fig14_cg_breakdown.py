"""Fig. 14 — CG execution-time breakdown @ 24 threads, Dunnington,
RCM-reordered suite, 2048 iterations.

Paper shape: vector operations dominate the small/sparse matrices
(parabolic_fem, offshore — can exceed 50% of solver time); the large
matrices gain >50% total time from the symmetric formats; CSX-Sym's
preprocessing hurts it on small matrices and amortizes on large ones.
Headline: overall solver acceleration ~77.8% on Dunnington (vs CSR).
"""

import numpy as np

from common import MATRIX_NAMES, SCALE, reordered_matrix, write_result
from repro.analysis import cg_breakdown, render_stacked_bars, render_table
from repro.machine import DUNNINGTON

ITERATIONS = 2048


def compute_fig14():
    matrices = {n: reordered_matrix(n) for n in MATRIX_NAMES}
    return cg_breakdown(
        matrices, DUNNINGTON, 24, iterations=ITERATIONS,
        machine_scale=SCALE,
    )


def test_fig14_cg_breakdown(benchmark):
    rows = benchmark.pedantic(compute_fig14, rounds=1, iterations=1)
    table = [
        [
            r.matrix,
            r.config,
            r.t_spmv_mult * 1e3,
            r.t_spmv_reduce * 1e3,
            r.t_vector * 1e3,
            r.t_preproc * 1e3,
            r.total * 1e3,
        ]
        for r in rows
    ]
    text = render_table(
        [
            "matrix", "config", "spmv (ms)", "reduce (ms)",
            "vector (ms)", "preproc (ms)", "total (ms)",
        ],
        table,
        title=(
            f"Fig. 14 — CG breakdown, 24 threads, Dunnington, RCM, "
            f"{ITERATIONS} iterations (model time)"
        ),
        floatfmt="{:.2f}",
    )

    by = {(r.matrix, r.config): r for r in rows}
    gains = []
    for name in MATRIX_NAMES:
        csr = by[(name, "csr")]
        best_sym = min(
            by[(name, "sss")].total, by[(name, "csx-sym")].total
        )
        gains.append(csr.total / best_sym - 1.0)
    avg_gain = float(np.mean(gains))
    text += (
        f"\n\naverage CG acceleration vs CSR: +{100 * avg_gain:.1f}% "
        "(paper: +77.8%)"
    )
    bars = render_stacked_bars(
        [
            (
                f"{r.matrix}/{r.config}",
                {
                    "spmv": r.t_spmv_mult * 1e3,
                    "reduce": r.t_spmv_reduce * 1e3,
                    "vector": r.t_vector * 1e3,
                    "preproc": r.t_preproc * 1e3,
                },
            )
            for r in rows
        ],
        title="Fig. 14 breakdown bars (ms)",
    )
    write_result("fig14_cg_breakdown", text + "\n\n" + bars)

    # Vector operations are a significant share for the sparse, large-N
    # matrices (paper: can exceed 50% for parabolic_fem / offshore).
    sparse = by[("parabolic_fem", "csr")]
    assert sparse.t_vector / sparse.total > 0.25
    # Large structural matrices gain substantially from symmetry.
    for name in ("inline_1", "ldoor"):
        csr = by[(name, "csr")]
        sym = by[(name, "csx-sym")]
        assert csr.total / sym.total > 1.3, name
    # Preprocessing hurts only the CSX variants, and is one-off (small
    # against 2048 iterations for large matrices).
    big = by[("ldoor", "csx-sym")]
    assert big.t_preproc < 0.25 * big.total
    assert avg_gain > 0.20
