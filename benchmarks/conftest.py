"""Benchmark-suite configuration.

Makes ``benchmarks/`` importable as a script directory (so the bench
modules can ``import common``) and prints the active scale once.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import common  # noqa: E402


def pytest_report_header(config):
    return (
        f"repro benchmarks: scale={common.SCALE} "
        f"matrices={len(common.MATRIX_NAMES)} "
        f"results -> {common.RESULTS_DIR}"
    )
