"""Shared infrastructure for the per-table/per-figure benchmarks.

Every benchmark regenerates one artifact of the paper's evaluation
(Section V). The matrices are the synthetic Table I stand-ins at
``REPRO_BENCH_SCALE`` of the paper's sizes (default 0.01); the machine
model's caches are scaled by the same factor so capacity effects appear
at the right relative sizes (see ``predict_spmv(machine_scale=...)``).

Rendered artifacts are printed and written to ``results/``.
"""

from __future__ import annotations

import os
import time
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.analysis import build_format, thread_partitions
from repro.obs import summarize_ns
from repro.formats import CSRMatrix
from repro.machine import (
    DUNNINGTON,
    GAINESTOWN,
    predict_serial_csr,
    predict_spmv,
)
from repro.matrices import SUITE, get_entry

#: Fraction of the paper's matrix sizes the benchmarks run at.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.01"))

#: Optional comma-separated matrix subset (all 12 by default).
_names_env = os.environ.get("REPRO_BENCH_MATRICES", "")
MATRIX_NAMES = (
    [n.strip() for n in _names_env.split(",") if n.strip()]
    if _names_env
    else [e.name for e in SUITE]
)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Thread sweeps per platform (paper Fig. 9 / 11 x-axes).
DUNNINGTON_THREADS = (1, 2, 4, 8, 12, 24)
GAINESTOWN_THREADS = (1, 2, 4, 8, 16)

#: Un-timed calls before any timed sample — the one warmup policy of
#: the benchmark suite (lazy scatter/cache compilation happens here,
#: never inside a timed window).
WARMUP = 2


def timed_repeat(fn, *, repeats: int = 5, warmup: int = WARMUP) -> dict:
    """Run ``fn`` ``warmup`` times un-timed, then ``repeats`` timed
    samples, summarized by the obs layer's :func:`summarize_ns` —
    ``{count, total_ms, mean_ms, p50_ms, p95_ms, min_ms, max_ms}``.

    Benchmarks report the p50 (robust location) and p95 (tail) instead
    of best-of-N so one preempted sample neither defines nor hides the
    result.
    """
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter_ns()
        fn()
        samples.append(time.perf_counter_ns() - t0)
    return summarize_ns(samples)


def write_result(name: str, text: str) -> Path:
    """Persist one rendered artifact under ``results/`` and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path


@lru_cache(maxsize=None)
def suite_matrix(name: str):
    """Cached suite build at the benchmark scale."""
    return get_entry(name).build(scale=SCALE)


@lru_cache(maxsize=None)
def built_format(name: str, format_name: str, n_threads: int):
    """Cached (matrix, partitions) for a suite entry/format/threads."""
    return build_format(suite_matrix(name), format_name, n_threads)


@lru_cache(maxsize=None)
def reordered_matrix(name: str):
    """Cached RCM-reordered suite build (Section V-D)."""
    from repro.reorder import rcm_reorder

    return rcm_reorder(suite_matrix(name))[0]


@lru_cache(maxsize=None)
def built_format_reordered(name: str, format_name: str, n_threads: int):
    return build_format(reordered_matrix(name), format_name, n_threads)


@lru_cache(maxsize=None)
def serial_csr_baseline_reordered(name: str, platform_name: str):
    platform = {"dunnington": DUNNINGTON, "gainestown": GAINESTOWN}[
        platform_name
    ]
    csr = CSRMatrix.from_coo(reordered_matrix(name))
    return predict_serial_csr(csr, platform, machine_scale=SCALE)


def predict_reordered(name: str, format_name: str, platform,
                      n_threads: int, reduction=None):
    matrix, parts = built_format_reordered(name, format_name, n_threads)
    return predict_spmv(
        matrix, parts, platform, reduction=reduction, machine_scale=SCALE
    )


@lru_cache(maxsize=None)
def serial_csr_baseline(name: str, platform_name: str):
    """Cached serial CSR prediction (the speedup denominator)."""
    platform = {"dunnington": DUNNINGTON, "gainestown": GAINESTOWN}[
        platform_name
    ]
    csr = CSRMatrix.from_coo(suite_matrix(name))
    return predict_serial_csr(csr, platform, machine_scale=SCALE)


def predict(name: str, format_name: str, platform, n_threads: int,
            reduction=None):
    """Model prediction for one configuration at the benchmark scale."""
    matrix, parts = built_format(name, format_name, n_threads)
    return predict_spmv(
        matrix, parts, platform, reduction=reduction, machine_scale=SCALE
    )


def speedup(name: str, format_name: str, platform, n_threads: int,
            reduction=None) -> float:
    """Speedup over the serial CSR baseline (the paper's Fig. 9/11 y)."""
    base = serial_csr_baseline(name, platform.name.lower())
    return predict(
        name, format_name, platform, n_threads, reduction
    ).speedup_over(base)


def suite_mean(values) -> float:
    return float(np.mean(list(values)))
