"""Out-of-core operator benchmark: SpMV/CG under a memory budget.

The out-of-core layer's claim is containment, not speed: a solve whose
matrix never fully resides in memory should (a) stream shards at a
bounded, predictable cost over the in-core operator, (b) stay under
its declared resident-byte budget, and (c) pay only a small durability
tax for periodic checkpoints. This benchmark ingests a 5-point grid
Laplacian into a shard store once, then measures:

* ``spmv`` — one out-of-core apply per budget regime (``unbounded``
  caches every shard after the first pass; ``half`` holds roughly half
  the payload so the LRU churns; ``tight`` fits little more than the
  largest shard, the worst case: every apply re-reads nearly
  everything);
* ``cg`` — a fixed-iteration checkpointed CG solve with durable
  snapshots every 5 iterations vs the same solve with no store, so the
  fsync-per-checkpoint tax is a first-class measured quantity.

Every budgeted cell asserts ``peak_resident_bytes <= budget`` and that
its result is bit-identical to the unbounded apply — throughput of
wrong or over-budget answers is not throughput.

Machine-readable output goes to ``results/BENCH_ooc.json`` (consumed
by ``check_regression.py``). Runs standalone
(``python benchmarks/bench_ooc.py``, ``--smoke`` for CI) or under
pytest; the pytest entry asserts the artifact shape and the
containment invariants, never wall-clock.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import timed_repeat  # noqa: E402
from repro.matrices.generators import grid_laplacian_2d  # noqa: E402
from repro.matrices.mmio import write_matrix_market  # noqa: E402
from repro.ooc import (  # noqa: E402
    CheckpointStore,
    ShardedOperator,
    checkpointed_cg,
    ingest_matrix_market,
)

GRID = 120
SMOKE_GRID = 48
N_SHARDS = 8
CG_ITERS = 40
CHECKPOINT_EVERY = 5
REPEATS = 7
SMOKE_REPEATS = 3
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def build_store(grid: int, work_dir: Path):
    """Ingest the grid Laplacian into ``work_dir`` once."""
    coo = grid_laplacian_2d(grid, grid)
    mm = work_dir / "laplacian.mtx"
    write_matrix_market(mm, coo, symmetric=True)
    return ingest_matrix_market(
        mm, work_dir / "shards", n_shards=N_SHARDS
    )


def budget_regimes(store) -> dict:
    """Named resident-byte budgets from the ingested payload sizes."""
    total = store.total_payload_bytes()
    largest = max(info.n_bytes for info in store.shards)
    return {
        "unbounded": None,
        "half": max(largest, total // 2),
        "tight": max(largest, int(largest * 1.5)),
    }


def measure_spmv(store, regimes, repeats: int) -> list[dict]:
    rng = np.random.default_rng(1234)
    x = rng.standard_normal(store.n_cols)
    reference = ShardedOperator(store, n_threads=2)(x)
    rows = []
    for name, budget in regimes.items():
        op = ShardedOperator(store, memory_budget=budget, n_threads=2)
        y = op(x)
        assert np.array_equal(y, reference), name
        if budget is not None:
            assert op.peak_resident_bytes <= budget, name
        stats = timed_repeat(lambda: op(x), repeats=repeats, warmup=1)
        rows.append({
            "matrix": f"grid{store.n_rows}",
            "section": "spmv",
            "variant": name,
            "budget_bytes": budget,
            "peak_resident_bytes": op.peak_resident_bytes,
            "p50_ms": stats["p50_ms"],
            "p95_ms": stats["p95_ms"],
            "bit_identical": True,
        })
    return rows


def measure_cg(store, work_dir: Path, repeats: int) -> list[dict]:
    rng = np.random.default_rng(7)
    b = rng.standard_normal(store.n_rows)
    op = ShardedOperator(store, n_threads=2)
    rows = []
    for variant, with_store in (
        ("no-checkpoint", False),
        (f"ckpt-every-{CHECKPOINT_EVERY}", True),
    ):
        def solve():
            store_kw = {}
            if with_store:
                ck_dir = Path(
                    tempfile.mkdtemp(dir=work_dir, prefix="ck-")
                )
                store_kw = {
                    "store": CheckpointStore(ck_dir),
                    "checkpoint_every": CHECKPOINT_EVERY,
                }
            out = checkpointed_cg(
                op, b, tol=0.0, max_iter=CG_ITERS, **store_kw
            )
            assert out.result.iterations == CG_ITERS
            return out

        stats = timed_repeat(solve, repeats=repeats, warmup=1)
        rows.append({
            "matrix": f"grid{store.n_rows}",
            "section": "cg",
            "variant": variant,
            "budget_bytes": None,
            "peak_resident_bytes": op.peak_resident_bytes,
            "p50_ms": stats["p50_ms"],
            "p95_ms": stats["p95_ms"],
            "bit_identical": True,
        })
    return rows


def render(rows) -> str:
    lines = [
        "Out-of-core SpMV/CG — resident-byte budgets and checkpoint "
        "overhead",
        "",
        f"{'matrix':<10} {'section':<6} {'variant':<16} "
        f"{'budget B':>10} {'peak B':>10} {'p50 ms':>9} {'p95 ms':>9}",
    ]
    for r in rows:
        budget = r["budget_bytes"]
        lines.append(
            f"{r['matrix']:<10} {r['section']:<6} {r['variant']:<16} "
            f"{budget if budget is not None else '-':>10} "
            f"{r['peak_resident_bytes']:>10} "
            f"{r['p50_ms']:>9.3f} {r['p95_ms']:>9.3f}"
        )
    return "\n".join(lines)


def write_json(rows, config) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_ooc.json"
    path.write_text(json.dumps(
        {"config": config, "measured": rows}, indent=2,
    ) + "\n")
    print(f"[json written to {path}]")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small grid, fewer repeats (CI smoke run)",
    )
    parser.add_argument("--grid", type=int, default=None,
                        help="Laplacian grid side (default 120/48 smoke)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed samples per cell (default 7/3 smoke)")
    args = parser.parse_args(argv)

    grid = args.grid or (SMOKE_GRID if args.smoke else GRID)
    repeats = args.repeats or (SMOKE_REPEATS if args.smoke else REPEATS)
    host_cores = os.cpu_count() or 1

    with tempfile.TemporaryDirectory(prefix="bench-ooc-") as tmp:
        work_dir = Path(tmp)
        store = build_store(grid, work_dir)
        regimes = budget_regimes(store)
        rows = measure_spmv(store, regimes, repeats)
        rows.extend(measure_cg(store, work_dir, repeats))

    config = {
        "smoke": args.smoke,
        "grid": grid,
        "n_shards": N_SHARDS,
        "cg_iters": CG_ITERS,
        "checkpoint_every": CHECKPOINT_EVERY,
        "repeats": repeats,
        "host_cores": host_cores,
    }
    write_json(rows, config)
    text = render(rows)
    try:
        from common import write_result

        write_result("ooc", text)
    except ImportError:
        print(text)
    return 0


# -- pytest entry point (collected with the other wall-clock benches) --
def test_ooc_bench_smoke(tmp_path, monkeypatch):
    """Artifact shape + containment invariants; never wall-clock."""
    monkeypatch.setattr(sys.modules[__name__], "RESULTS_DIR", tmp_path)
    assert main(["--smoke"]) == 0
    payload = json.loads((tmp_path / "BENCH_ooc.json").read_text())
    assert payload["measured"]
    assert {r["section"] for r in payload["measured"]} == {"spmv", "cg"}
    for r in payload["measured"]:
        assert r["bit_identical"]
        if r["budget_bytes"] is not None:
            assert r["peak_resident_bytes"] <= r["budget_bytes"]
    assert payload["config"]["host_cores"] >= 1


if __name__ == "__main__":
    sys.exit(main())
