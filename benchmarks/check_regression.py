"""Noise-aware benchmark regression gate over the committed baselines.

Compares freshly produced ``BENCH_*.json`` documents against the
committed ones in ``results/`` and fails when a timed entry got
meaningfully slower. "Meaningfully" is the whole point: CI runners are
noisy, so a fixed percentage gate either cries wolf or never fires.
The gate here is

    fresh_p50 / base_p50  >  tolerance * noise

where ``noise = max(1, base_p95/base_p50, fresh_p95/fresh_p50)`` — the
worse tail-to-median spread of the two runs. A benchmark whose own
repeats scatter 1.4x cannot support a 1.2x verdict, and the gate
widens itself accordingly instead of pretending the data is cleaner
than it is.

Honest self-skip: wall-clock baselines only transfer between identical
hosts. When ``config.host_cores`` (or any other config key shared by
both documents) differs between baseline and fresh run, the file is
*skipped* with an explicit reason rather than compared — a skipped
gate that says so beats a passing gate that compared apples to
oranges. The CI job records the skip in its log.

Usage::

    python benchmarks/check_regression.py --fresh DIR [--baseline DIR]
        [--tolerance 1.25]

Exit codes: 0 = no regression (including all-skipped), 1 = at least
one regression, 2 = usage/malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Median-ratio slack before the noise factor (1.25 = 25% slower).
DEFAULT_TOLERANCE = 1.25

#: Per-file adapters: where the timed entries live, what identifies
#: one entry across runs, and which fields carry the median / tail.
ADAPTERS = {
    "BENCH_operator.json": {
        "entries": lambda doc: doc.get("rows", []),
        "key": lambda r: (r["matrix"], r["section"], r["variant"]),
        "p50": "per_iter_ms",
        "p95": "per_iter_p95_ms",
    },
    "BENCH_coloring.json": {
        "entries": lambda doc: doc.get("measured", []),
        "key": lambda r: (r["matrix"], r["strategy"], r["workers"]),
        "p50": "p50_ms",
        "p95": "p95_ms",
    },
    "BENCH_scaling.json": {
        "entries": lambda doc: doc.get("measured", []),
        "key": lambda r: (r["matrix"], r["backend"], r["workers"]),
        "p50": "p50_ms",
        "p95": "p95_ms",
    },
    "BENCH_serving.json": {
        "entries": lambda doc: doc.get("measured", []),
        "key": lambda r: (r["kind"], r["mode"], r["concurrency"]),
        "p50": "p50_ms",
        "p95": "p95_ms",
    },
    "BENCH_ooc.json": {
        "entries": lambda doc: doc.get("measured", []),
        "key": lambda r: (r["matrix"], r["section"], r["variant"]),
        "p50": "p50_ms",
        "p95": "p95_ms",
    },
}


def config_mismatch(base_cfg: dict, fresh_cfg: dict):
    """First config key the two runs disagree on (``None`` = same
    configuration). Only keys present in *both* documents count — a new
    config field in a fresher producer must not invalidate the
    committed baseline."""
    for key in sorted(set(base_cfg) & set(fresh_cfg)):
        if base_cfg[key] != fresh_cfg[key]:
            return key, base_cfg[key], fresh_cfg[key]
    return None


def compare_docs(
    name: str, base_doc: dict, fresh_doc: dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> dict:
    """Compare one benchmark document pair.

    Returns ``{"name", "status": "ok"|"regression"|"skipped",
    "reason", "entries": [...]}`` where each entry carries the key,
    both medians, the ratio, the noise-widened limit and a ``slower``
    flag. Entries present on only one side are listed informationally
    (a new benchmark is not a regression; a vanished one is not a
    pass)."""
    adapter = ADAPTERS[name]
    mismatch = config_mismatch(
        base_doc.get("config", {}), fresh_doc.get("config", {})
    )
    if mismatch is not None:
        key, b, f = mismatch
        return {
            "name": name,
            "status": "skipped",
            "reason": (
                f"config.{key} differs (baseline {b!r} vs fresh {f!r}); "
                "wall-clock baselines do not transfer"
            ),
            "entries": [],
        }
    base = {adapter["key"](r): r for r in adapter["entries"](base_doc)}
    fresh = {adapter["key"](r): r for r in adapter["entries"](fresh_doc)}
    entries, regressed = [], False
    for key in sorted(base, key=str):
        if key not in fresh:
            entries.append({"key": key, "note": "missing in fresh run"})
            continue
        b, f = base[key], fresh[key]
        b50, f50 = b[adapter["p50"]], f[adapter["p50"]]
        if not b50 or b50 <= 0:
            entries.append({"key": key, "note": "baseline p50 is zero"})
            continue
        noise = max(
            1.0,
            b[adapter["p95"]] / b50,
            f[adapter["p95"]] / f50 if f50 > 0 else 1.0,
        )
        ratio = f50 / b50
        limit = tolerance * noise
        slower = ratio > limit
        regressed |= slower
        entries.append({
            "key": key, "base_p50": b50, "fresh_p50": f50,
            "ratio": ratio, "noise": noise, "limit": limit,
            "slower": slower,
        })
    for key in sorted(set(fresh) - set(base), key=str):
        entries.append({"key": key, "note": "new entry (no baseline)"})
    return {
        "name": name,
        "status": "regression" if regressed else "ok",
        "reason": "",
        "entries": entries,
    }


def render(results: list) -> str:
    lines = []
    for res in results:
        tag = {"ok": "PASS", "regression": "FAIL", "skipped": "SKIP"}[
            res["status"]
        ]
        lines.append(f"[{tag}] {res['name']}"
                     + (f" — {res['reason']}" if res["reason"] else ""))
        for e in res["entries"]:
            key = "/".join(str(p) for p in e["key"]) \
                if isinstance(e["key"], tuple) else str(e["key"])
            if "note" in e:
                lines.append(f"    {key:<44} ({e['note']})")
                continue
            mark = "REGRESSION" if e["slower"] else "ok"
            lines.append(
                f"    {key:<44} {e['base_p50']:>9.4f} -> "
                f"{e['fresh_p50']:>9.4f} ms  x{e['ratio']:.2f} "
                f"(limit x{e['limit']:.2f}, noise x{e['noise']:.2f}) "
                f"{mark}"
            )
    return "\n".join(lines)


def check(
    fresh_dir: Path, baseline_dir: Path = RESULTS_DIR,
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[list, int]:
    """Compare every known benchmark file present in both directories.
    Returns ``(results, exit_code)``."""
    results = []
    for name in sorted(ADAPTERS):
        base_path, fresh_path = baseline_dir / name, fresh_dir / name
        if not base_path.exists() or not fresh_path.exists():
            missing = "baseline" if not base_path.exists() else "fresh"
            results.append({
                "name": name, "status": "skipped",
                "reason": f"no {missing} document", "entries": [],
            })
            continue
        try:
            base_doc = json.loads(base_path.read_text())
            fresh_doc = json.loads(fresh_path.read_text())
        except json.JSONDecodeError as exc:
            print(f"malformed JSON in {name}: {exc}", file=sys.stderr)
            return results, 2
        results.append(compare_docs(name, base_doc, fresh_doc, tolerance))
    compared = [r for r in results if r["status"] != "skipped"]
    code = 1 if any(r["status"] == "regression" for r in results) else 0
    if not compared:
        # All-skipped is a pass, but never a silent one.
        print("note: every benchmark file was skipped; nothing compared",
              file=sys.stderr)
    return results, code


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fresh", type=Path, required=True,
        help="directory holding the freshly produced BENCH_*.json",
    )
    parser.add_argument(
        "--baseline", type=Path, default=RESULTS_DIR,
        help="directory holding the committed baselines "
             "(default: results/)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed p50 ratio before the noise factor "
             f"(default {DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args(argv)
    if args.tolerance <= 1.0:
        parser.error("--tolerance must be > 1.0")
    results, code = check(args.fresh, args.baseline, args.tolerance)
    print(render(results))
    verdict = {0: "no regressions", 1: "REGRESSION DETECTED", 2: "error"}
    print(f"bench-regression gate: {verdict[code]}")
    return code


if __name__ == "__main__":
    raise SystemExit(main())
