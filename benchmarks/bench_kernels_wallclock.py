"""Wall-clock sanity benchmarks of the actual Python kernels.

The evaluation figures use the machine model (see DESIGN.md); this file
keeps the library honest by timing the real numpy kernels on the host:
serial SpM×V per format, the two-phase parallel symmetric kernel, the
three reduction phases in isolation, and a CG solve. Relative costs
here are host-specific and not the paper's — correctness of execution
is the point.
"""

import numpy as np
import pytest

from common import suite_matrix
from repro.formats import CSRMatrix, CSXMatrix, CSXSymMatrix, SSSMatrix
from repro.parallel import (
    ParallelSymmetricSpMV,
    make_reduction,
    partition_nnz_balanced,
)
from repro.solvers import conjugate_gradient

MATRIX = "bmw7st_1"


@pytest.fixture(scope="module")
def coo():
    return suite_matrix(MATRIX)


@pytest.fixture(scope="module")
def x(coo):
    return np.random.default_rng(0).standard_normal(coo.n_cols)


def test_spmv_csr(benchmark, coo, x):
    csr = CSRMatrix.from_coo(coo)
    y = benchmark(csr.spmv, x)
    assert y.shape == (coo.n_rows,)


def test_spmv_sss(benchmark, coo, x):
    sss = SSSMatrix.from_coo(coo)
    y = benchmark(sss.spmv, x)
    assert np.allclose(y, CSRMatrix.from_coo(coo).spmv(x))


def test_spmv_csx(benchmark, coo, x):
    csx = CSXMatrix(coo)
    y = benchmark(csx.spmv, x)
    assert np.allclose(y, CSRMatrix.from_coo(coo).spmv(x))


def test_spmv_csx_sym(benchmark, coo, x):
    csxs = CSXSymMatrix(coo)
    y = benchmark(csxs.spmv, x)
    assert np.allclose(y, CSRMatrix.from_coo(coo).spmv(x))


@pytest.mark.parametrize("method", ["naive", "effective", "indexed"])
def test_parallel_symmetric_spmv(benchmark, coo, x, method):
    sss = SSSMatrix.from_coo(coo)
    parts = partition_nnz_balanced(sss.expanded_row_nnz(), 8)
    kernel = ParallelSymmetricSpMV(sss, parts, method)
    y = benchmark(kernel, x)
    assert np.allclose(y, CSRMatrix.from_coo(coo).spmv(x))


@pytest.mark.parametrize("method", ["naive", "effective", "indexed"])
def test_reduction_phase_only(benchmark, coo, method):
    """Isolated reduction phase cost (the Fig. 10 quantity, on-host)."""
    sss = SSSMatrix.from_coo(coo)
    parts = partition_nnz_balanced(sss.expanded_row_nnz(), 8)
    red = make_reduction(method, sss, parts)
    locals_ = red.allocate_locals()
    rng = np.random.default_rng(1)
    for buf in locals_:
        if buf is not None:
            buf[:] = rng.standard_normal(buf.size)
    y = np.zeros(sss.n_rows)

    def run():
        y[:] = 0.0
        red.reduce(y, locals_)
        return y

    benchmark(run)


def test_cg_solve(benchmark, coo):
    csr = CSRMatrix.from_coo(coo)
    rng = np.random.default_rng(2)
    b = csr.spmv(rng.standard_normal(coo.n_rows))
    result = benchmark.pedantic(
        lambda: conjugate_gradient(csr.spmv, b, tol=1e-8),
        rounds=3, iterations=1,
    )
    assert result.converged
