"""Fig. 11 — symmetric SpM×V speedup with CSX-Sym.

Regenerates the speedup curves for CSR, CSX, SSS (indexed local
vectors) and CSX-Sym (indexed) on both platforms. Paper shape: CSX-Sym
on top, then SSS-indexed, with the unsymmetric CSX and CSR below;
the CSX-Sym advantage over SSS is large on the bandwidth-starved
Dunnington (43.4% in the paper) and small on Gainestown (10%).
"""

from common import (
    DUNNINGTON_THREADS,
    GAINESTOWN_THREADS,
    MATRIX_NAMES,
    speedup,
    suite_mean,
    write_result,
)
from repro.analysis import render_series
from repro.machine import DUNNINGTON, GAINESTOWN

CONFIGS = (
    ("csr", "csr", None),
    ("csx", "csx", None),
    ("sss-indexed", "sss", "indexed"),
    ("csx-sym", "csx-sym", "indexed"),
)


def compute_platform(platform, threads):
    curves = {}
    for label, fmt, red in CONFIGS:
        curves[label] = {
            p: suite_mean(
                speedup(name, fmt, platform, p, red)
                for name in MATRIX_NAMES
            )
            for p in threads
        }
    return curves


def check_shape(curves, threads, platform_name):
    max_p = threads[-1]
    # CSX beats CSR (compression) and CSX-Sym beats everything.
    assert curves["csx"][max_p] > curves["csr"][max_p], platform_name
    assert curves["csx-sym"][max_p] > curves["sss-indexed"][max_p]
    assert curves["csx-sym"][max_p] > curves["csx"][max_p]
    gain = curves["csx-sym"][max_p] / curves["sss-indexed"][max_p] - 1
    return gain


def test_fig11_dunnington(benchmark):
    curves = benchmark.pedantic(
        compute_platform, args=(DUNNINGTON, DUNNINGTON_THREADS),
        rounds=1, iterations=1,
    )
    gain = check_shape(curves, DUNNINGTON_THREADS, "Dunnington")
    # Bandwidth-starved platform: the compression gain is large.
    assert gain > 0.15, gain
    text = render_series(
        "threads", curves,
        title=(
            "Fig. 11a — Dunnington: suite-average speedup over serial "
            f"CSR\nCSX-Sym vs SSS-indexed @24t: +{100 * gain:.1f}% "
            "(paper: +43.4%)"
        ),
    )
    write_result("fig11_dunnington", text)


def test_fig11_gainestown(benchmark):
    curves = benchmark.pedantic(
        compute_platform, args=(GAINESTOWN, GAINESTOWN_THREADS),
        rounds=1, iterations=1,
    )
    gain = check_shape(curves, GAINESTOWN_THREADS, "Gainestown")
    text = render_series(
        "threads", curves,
        title=(
            "Fig. 11b — Gainestown: suite-average speedup over serial "
            f"CSR\nCSX-Sym vs SSS-indexed @16t: +{100 * gain:.1f}% "
            "(paper: +10%)"
        ),
    )
    write_result("fig11_gainestown", text)
    # Ample bandwidth: the compression gain narrows (paper: ~10%).
    dunnington_gain_floor = 0.15
    assert gain < dunnington_gain_floor + 0.25
