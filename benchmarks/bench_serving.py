"""Serving-layer benchmark: SpMM request coalescing on vs off.

The serving front end's claim is the paper's traffic argument applied
to concurrent clients: ``k`` same-matrix SpM×V requests served as one
SpM×M stream the matrix once instead of ``k`` times, so under
concurrency the coalescing scheduler should beat solo-serving on both
throughput and latency. This benchmark drives the real
:class:`~repro.serve.server.SolverServer` with the closed-loop load
generator (bit-identity audit always on — throughput of wrong answers
is not throughput) across a concurrency sweep, with coalescing on and
off, and records throughput and latency percentiles per cell.

Acceptance gate: coalescing-on throughput >= ``GATE_SPEEDUP``x
coalescing-off at concurrency >= ``GATE_CONCURRENCY`` (geomean across
qualifying cells). The gate verdict is only recorded as pass/fail on
hosts with >= ``GATE_MIN_CORES`` cores; smaller hosts record the
measurement honestly under ``gate.status = "skipped-single-core"``.
Incorrect responses fail the run unconditionally — there is no core
count on which wrong bits are acceptable.

Machine-readable output goes to ``results/BENCH_serving.json``
(consumed by ``check_regression.py``). Runs standalone
(``python benchmarks/bench_serving.py``, ``--smoke`` for CI) or under
pytest; the pytest entry asserts the artifact shape and the
zero-incorrect invariant, never the speedup.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.formats import SSSMatrix  # noqa: E402
from repro.matrices.generators import grid_laplacian_2d  # noqa: E402
from repro.parallel import Executor, partition_nnz_balanced  # noqa: E402
from repro.serve import (  # noqa: E402
    OperatorRegistry,
    SolverServer,
    run_load,
)

MODES = ("coalesce", "solo")
CONCURRENCY_SWEEP = (1, 4, 8, 16)
SMOKE_SWEEP = (2, 8)
REQUESTS_PER_CELL = 240
SMOKE_REQUESTS = 64
WINDOW_S = 0.002
MAX_BATCH = 8
GATE_CONCURRENCY = 8        # the claim is about concurrent clients
GATE_SPEEDUP = 1.5          # coalescing-on vs off, throughput geomean
GATE_MIN_CORES = 4
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def build_registry(grid: int, workers: int):
    """(registry, key): an SSS + indexed operator over a 2-D Laplacian
    (SPD, so the CG coverage cell runs clean)."""
    coo = grid_laplacian_2d(grid, grid)
    sss = SSSMatrix.from_coo(coo)
    parts = partition_nnz_balanced(sss.expanded_row_nnz(), workers)
    registry = OperatorRegistry()
    entry = registry.register(
        sss, parts,
        executor=Executor("threads", max_workers=workers),
    )
    return registry, entry.key


def run_cell(
    registry, key, *, mode: str, concurrency: int, n_requests: int,
    kind: str = "spmv",
) -> dict:
    """One (mode x concurrency) measurement through the real server."""

    async def drive():
        server = SolverServer(
            registry,
            window=WINDOW_S,
            max_batch=MAX_BATCH,
            max_pending=4 * concurrency + MAX_BATCH,
            coalesce=(mode == "coalesce"),
        )
        try:
            # Warmup outside the timed window: first-use binds and
            # scatter compilation must not pollute the percentiles.
            await run_load(
                server, key, kind=kind, concurrency=concurrency,
                n_requests=2 * concurrency, seed=7, verify=False,
            )
            return await run_load(
                server, key, kind=kind, concurrency=concurrency,
                n_requests=n_requests, seed=1234,
            )
        finally:
            await server.close()

    report = asyncio.run(drive())
    return {
        "kind": kind,
        "mode": mode,
        "concurrency": concurrency,
        "rps": report.rps,
        "p50_ms": report.p50_ms,
        "p95_ms": report.p95_ms,
        "p99_ms": report.p99_ms,
        "mean_coalesced": report.mean_coalesced,
        "n_requests": report.n_requests,
        "n_ok": report.n_ok,
        "n_incorrect": report.n_incorrect,
        "n_failed": report.n_failed,
    }


def measure(registry, key, sweep, n_requests, with_cg: bool) -> list[dict]:
    rows = []
    for concurrency in sweep:
        for mode in MODES:
            rows.append(run_cell(
                registry, key, mode=mode, concurrency=concurrency,
                n_requests=n_requests,
            ))
    if with_cg:
        # One coverage cell per mode: coalesced block-CG vs solo CG.
        for mode in MODES:
            rows.append(run_cell(
                registry, key, mode=mode,
                concurrency=min(4, max(sweep)),
                n_requests=max(8, n_requests // 16), kind="cg",
            ))
    return rows


def evaluate_gate(rows, host_cores: int) -> dict:
    """Coalescing-on vs off throughput at high concurrency, or an
    honest skip on hosts that cannot host concurrent clients."""
    by_key = {
        (r["kind"], r["mode"], r["concurrency"]): r for r in rows
    }
    ratios = []
    for (kind, mode, conc), r in sorted(by_key.items()):
        if kind != "spmv" or mode != "coalesce":
            continue
        if conc < GATE_CONCURRENCY:
            continue
        solo = by_key.get((kind, "solo", conc))
        if solo is not None and solo["rps"] > 0:
            ratios.append(r["rps"] / solo["rps"])
    if not ratios:
        return {"status": "skipped-no-data"}
    geomean = float(np.exp(np.mean(np.log(ratios))))
    if host_cores < GATE_MIN_CORES:
        return {
            "status": "skipped-single-core",
            "detail": (
                f"host has {host_cores} core(s); the {GATE_SPEEDUP}x "
                f"coalescing gate at concurrency >= {GATE_CONCURRENCY} "
                f"needs >= {GATE_MIN_CORES} cores for a meaningful "
                "verdict"
            ),
            "coalesce_vs_solo": geomean,
            "host_cores": host_cores,
        }
    return {
        "status": "pass" if geomean >= GATE_SPEEDUP else "fail",
        "coalesce_vs_solo": geomean,
        "target": GATE_SPEEDUP,
        "concurrency": GATE_CONCURRENCY,
        "host_cores": host_cores,
    }


def render(rows, gate) -> str:
    lines = [
        "Serving throughput/latency — coalescing on vs off "
        f"(window {WINDOW_S * 1e3:g} ms, max batch {MAX_BATCH})",
        "",
        f"{'kind':<6} {'mode':<10} {'conc':>5} {'req/s':>10} "
        f"{'p50 ms':>9} {'p95 ms':>9} {'p99 ms':>9} {'width':>6} "
        f"{'bad':>4}",
    ]
    for r in rows:
        lines.append(
            f"{r['kind']:<6} {r['mode']:<10} {r['concurrency']:>5} "
            f"{r['rps']:>10.1f} {r['p50_ms']:>9.3f} "
            f"{r['p95_ms']:>9.3f} {r['p99_ms']:>9.3f} "
            f"{r['mean_coalesced']:>6.2f} {r['n_incorrect']:>4}"
        )
    lines.append("")
    lines.append(f"gate: {json.dumps(gate)}")
    return "\n".join(lines)


def write_json(rows, gate, config) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_serving.json"
    path.write_text(json.dumps(
        {"config": config, "measured": rows, "gate": gate},
        indent=2,
    ) + "\n")
    print(f"[json written to {path}]")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="small grid, short sweep, fewer requests (CI smoke run)",
    )
    parser.add_argument(
        "--concurrency", type=int, nargs="+", default=None,
        help="concurrency sweep (default: 1 4 8 16)",
    )
    parser.add_argument("--grid", type=int, default=None,
                        help="Laplacian grid side (default 80/40 smoke)")
    parser.add_argument("--workers", type=int, default=2,
                        help="threads behind the served operator")
    parser.add_argument("--no-cg", action="store_true",
                        help="skip the CG coverage cells")
    args = parser.parse_args(argv)

    sweep = (
        tuple(args.concurrency) if args.concurrency
        else (SMOKE_SWEEP if args.smoke else CONCURRENCY_SWEEP)
    )
    if any(c < 1 for c in sweep):
        parser.error("--concurrency must be >= 1")
    grid = args.grid or (40 if args.smoke else 80)
    n_requests = SMOKE_REQUESTS if args.smoke else REQUESTS_PER_CELL
    host_cores = os.cpu_count() or 1

    registry, key = build_registry(grid, args.workers)
    try:
        rows = measure(
            registry, key, sweep, n_requests, with_cg=not args.no_cg
        )
    finally:
        registry.close()
    gate = evaluate_gate(rows, host_cores)
    config = {
        "smoke": args.smoke,
        "grid": grid,
        "workers": args.workers,
        "concurrency": list(sweep),
        "requests_per_cell": n_requests,
        "window_s": WINDOW_S,
        "max_batch": MAX_BATCH,
        "host_cores": host_cores,
    }
    write_json(rows, gate, config)
    text = render(rows, gate)
    try:
        from common import write_result

        write_result("serving", text)
    except ImportError:
        print(text)

    n_incorrect = sum(r["n_incorrect"] for r in rows)
    if n_incorrect:
        print(
            f"INCORRECT RESPONSES: {n_incorrect} — serving must be "
            "bit-identical to the serial reference", file=sys.stderr,
        )
        return 1
    return 0 if gate["status"] in (
        "pass", "skipped-single-core", "skipped-no-data",
    ) else 1


# -- pytest entry point (collected with the other wall-clock benches) --
def test_serving_smoke(tmp_path, monkeypatch):
    """Artifact shape + the zero-incorrect invariant; never the 1.5x
    gate (CI runners make no core promises)."""
    monkeypatch.setattr(sys.modules[__name__], "RESULTS_DIR", tmp_path)
    rc = main(["--smoke", "--concurrency", "2", "8"])
    payload = json.loads((tmp_path / "BENCH_serving.json").read_text())
    assert rc == 0 or payload["gate"]["status"] == "fail"
    assert payload["measured"]
    assert all(r["n_incorrect"] == 0 for r in payload["measured"])
    assert {r["mode"] for r in payload["measured"]} == set(MODES)
    assert payload["gate"]["status"] in (
        "pass", "fail", "skipped-single-core", "skipped-no-data",
    )
    assert payload["config"]["host_cores"] >= 1


if __name__ == "__main__":
    sys.exit(main())
