"""Fig. 12 — per-matrix SpM×V performance @ 16 threads, Gainestown.

Regenerates the per-matrix Gflop/s bars for CSR, CSX, SSS (indexed) and
CSX-Sym. Paper shape: CSX-Sym best on the regular (mostly structural)
matrices, while on the four high-bandwidth corner cases no symmetric
format beats CSR.
"""

from common import MATRIX_NAMES, predict, serial_csr_baseline, write_result
from repro.analysis import render_table
from repro.machine import GAINESTOWN
from repro.matrices import get_entry

CONFIGS = (
    ("csr", "csr", None),
    ("csx", "csx", None),
    ("sss-indexed", "sss", "indexed"),
    ("csx-sym", "csx-sym", "indexed"),
)


def compute_fig12():
    table = {}
    for name in MATRIX_NAMES:
        table[name] = {
            label: predict(name, fmt, GAINESTOWN, 16, red).gflops
            for label, fmt, red in CONFIGS
        }
    return table


def test_fig12_per_matrix_gflops(benchmark):
    table = benchmark.pedantic(compute_fig12, rounds=1, iterations=1)
    rows = [
        [name] + [table[name][label] for label, *_ in CONFIGS]
        for name in table
    ]
    text = render_table(
        ["matrix"] + [label for label, *_ in CONFIGS],
        rows,
        title="Fig. 12 — per-matrix Gflop/s, 16 threads, Gainestown "
              "(model)",
        floatfmt="{:.2f}",
    )
    write_result("fig12_permatrix", text)

    best_counts = 0
    for name in MATRIX_NAMES:
        perf = table[name]
        corner = get_entry(name).corner_case
        if corner:
            # No symmetric format wins on the corner cases (§V-C).
            assert perf["csr"] >= 0.9 * max(
                perf["sss-indexed"], perf["csx-sym"]
            ), name
        else:
            assert perf["csx-sym"] > perf["csr"], name
            if perf["csx-sym"] == max(perf.values()):
                best_counts += 1
    # CSX-Sym achieves the best performance on (most of) the 8 regular
    # matrices (paper: best in 8 of 12).
    assert best_counts >= 6, best_counts
