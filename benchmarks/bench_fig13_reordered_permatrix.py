"""Fig. 13 — per-matrix performance on the RCM-reordered suite
(Gainestown, 16 threads).

Paper shape: the former corner cases improve considerably though not to
the level of the regular matrices; CSX-Sym stays on top for the
majority of the suite.
"""

from common import (
    MATRIX_NAMES,
    predict,
    predict_reordered,
    write_result,
)
from repro.analysis import render_table
from repro.machine import GAINESTOWN
from repro.matrices import get_entry

CONFIGS = (
    ("csr", "csr", None),
    ("csx", "csx", None),
    ("sss-indexed", "sss", "indexed"),
    ("csx-sym", "csx-sym", "indexed"),
)


def compute_fig13():
    table = {}
    for name in MATRIX_NAMES:
        table[name] = {
            label: predict_reordered(name, fmt, GAINESTOWN, 16, red).gflops
            for label, fmt, red in CONFIGS
        }
    return table


def test_fig13_reordered_gflops(benchmark):
    table = benchmark.pedantic(compute_fig13, rounds=1, iterations=1)
    rows = [
        [name] + [table[name][label] for label, *_ in CONFIGS]
        for name in table
    ]
    text = render_table(
        ["matrix"] + [label for label, *_ in CONFIGS],
        rows,
        title="Fig. 13 — per-matrix Gflop/s on RCM-reordered matrices, "
              "16 threads, Gainestown (model)",
        floatfmt="{:.2f}",
    )
    write_result("fig13_reordered_permatrix", text)

    csx_sym_best = 0
    for name in MATRIX_NAMES:
        perf = table[name]
        entry = get_entry(name)
        if entry.corner_case:
            # Corner cases improve markedly once reordered (§V-D).
            native = predict(name, "csx-sym", GAINESTOWN, 16, "indexed")
            assert perf["csx-sym"] > 1.2 * native.gflops, name
        if perf["csx-sym"] == max(perf.values()):
            csx_sym_best += 1
    # CSX-Sym on top for the majority of the suite.
    assert csx_sym_best >= len(MATRIX_NAMES) // 2, csx_sym_best
