"""Fig. 5 — reduction-phase workload overhead vs thread count.

Regenerates the suite-average working-set overhead of the three local
vector methods relative to the serial SSS workload. Paper shape: naive
and effective ranges grow linearly with the thread count (the naive
exceeding the multiplication workload well before 24 threads); the
indexing scheme grows sub-linearly and flattens.
"""

import pytest

from common import MATRIX_NAMES, suite_matrix, write_result
from repro.analysis import (
    average_overhead,
    reduction_overhead_sweep,
    render_series,
)

THREADS = (2, 4, 8, 12, 16, 24)


def compute_fig5():
    matrices = {n: suite_matrix(n) for n in MATRIX_NAMES}
    points = reduction_overhead_sweep(matrices, THREADS)
    return average_overhead(points)


def test_fig5_overhead_curves(benchmark):
    avg = benchmark.pedantic(compute_fig5, rounds=1, iterations=1)
    text = render_series(
        "threads",
        avg,
        title="Fig. 5 — reduction working-set overhead over serial SSS "
              "(suite average, fraction)",
    )
    write_result("fig5_overhead", text)

    # Naive and effective are exactly linear in p (eqs. 3-4).
    assert avg["naive"][24] / avg["naive"][4] == pytest.approx(6.0, rel=0.02)
    eff_growth = avg["effective"][24] / avg["effective"][4]
    assert eff_growth == pytest.approx((24 - 1) / (4 - 1), rel=0.05)
    # The indexing scheme grows strictly slower and flattens (Fig. 5).
    idx_growth = avg["indexed"][24] / avg["indexed"][4]
    assert idx_growth < 0.6 * eff_growth
    late_slope = avg["indexed"][24] / avg["indexed"][16]
    early_slope = avg["indexed"][8] / avg["indexed"][4]
    assert late_slope < early_slope
    # Ordering once the effective regions are sparse enough (at p = 2
    # the index costs 16 bytes/pair against 8 bytes/slot, so indexing
    # only wins for density < 0.5 — true from ~8 threads up at this
    # scale, everywhere at the paper's scale).
    for p in (8, 12, 16, 24):
        assert avg["indexed"][p] < avg["effective"][p] < avg["naive"][p]
