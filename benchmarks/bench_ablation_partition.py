"""Ablation — row-equal vs nnz-balanced thread partitioning.

The paper assigns "an approximately equal number of non-zero elements
per partition". This ablation quantifies what that buys over a naive
equal-rows split: per-thread load imbalance and predicted time.
"""

import numpy as np

from common import MATRIX_NAMES, SCALE, suite_matrix, write_result
from repro.analysis import render_table
from repro.formats import SSSMatrix
from repro.machine import DUNNINGTON, predict_spmv
from repro.parallel import partition_nnz_balanced, partition_rows_equal

#: Matrices with skewed row densities show the effect most.
ABLATION_MATRICES = [
    n for n in ("consph", "crankseg_2", "G3_circuit", "ldoor")
    if n in MATRIX_NAMES
] or MATRIX_NAMES[:2]

P = 24


def imbalance(weights, parts):
    loads = np.array([weights[s:e].sum() for s, e in parts], dtype=float)
    mean = loads.mean()
    return float(loads.max() / mean) if mean else 1.0


def compute_partition_ablation():
    rows = []
    stats = {}
    for name in ABLATION_MATRICES:
        coo = suite_matrix(name)
        sss = SSSMatrix.from_coo(coo)
        weights = sss.expanded_row_nnz()
        for scheme, parts in (
            ("rows-equal", partition_rows_equal(coo.n_rows, P)),
            ("nnz-balanced", partition_nnz_balanced(weights, P)),
        ):
            imb = imbalance(weights, parts)
            t = predict_spmv(
                sss, parts, DUNNINGTON, reduction="indexed",
                machine_scale=SCALE,
            ).total
            rows.append([name, scheme, imb, t * 1e6])
            stats[(name, scheme)] = (imb, t)
    return rows, stats


def test_partition_ablation(benchmark):
    rows, stats = benchmark.pedantic(
        compute_partition_ablation, rounds=1, iterations=1
    )
    text = render_table(
        ["matrix", "scheme", "max/mean load", "t @24t Dunnington (us)"],
        rows,
        title="Ablation — thread partitioning scheme (SSS, indexed)",
        floatfmt="{:.3f}",
    )
    write_result("ablation_partition", text)

    for name in ABLATION_MATRICES:
        imb_rows, t_rows = stats[(name, "rows-equal")]
        imb_nnz, t_nnz = stats[(name, "nnz-balanced")]
        # nnz balancing always improves (or preserves) load balance...
        assert imb_nnz <= imb_rows + 1e-9, name
        # ...and never predicts meaningfully slower.
        assert t_nnz <= t_rows * 1.05, name
