"""Fig. 4 — density of the local vectors' effective regions.

Regenerates the suite-average effective-region density per thread
count up to 256 threads. The paper's curve falls monotonically,
reaching ~10.7% at 24 threads and ~2.6% at 256 (exact values depend on
the matrices; the shape assertion checks monotone decay and the same
order of magnitude at the two marked points).
"""

from common import MATRIX_NAMES, suite_matrix, write_result
from repro.analysis import average_density, density_sweep, render_series

THREADS = (2, 4, 8, 16, 24, 32, 64, 128, 256)


def compute_fig4():
    matrices = {n: suite_matrix(n) for n in MATRIX_NAMES}
    points = density_sweep(matrices, THREADS)
    return points, average_density(points)


def test_fig4_density_curve(benchmark):
    points, avg = benchmark.pedantic(compute_fig4, rounds=1, iterations=1)
    per_matrix = {}
    for pt in points:
        per_matrix.setdefault(pt.matrix, {})[pt.n_threads] = pt.density
    per_matrix["AVERAGE"] = avg
    text = render_series(
        "threads",
        per_matrix,
        title="Fig. 4 — effective-region density vs thread count",
    )
    write_result("fig4_density", text)

    # Monotone decay of the suite average.
    values = [avg[p] for p in THREADS]
    assert all(a >= b for a, b in zip(values, values[1:]))
    # Paper's order of magnitude: ~0.107 @ 24t, ~0.026 @ 256t. Miniature
    # partitions are denser (density rises as partitions shrink towards
    # single conflicts), so accept the same decade and a weaker decay.
    assert 0.02 < avg[24] < 0.45
    assert avg[256] < 0.75 * avg[24]
