"""§V-E — CSX(-Sym) preprocessing cost in serial CSR SpM×V units.

Paper values: 49 (Dunnington, 24 preprocessing threads) and 94
(Gainestown, 16 threads) serial CSR SpM×V equivalents on average;
59 / 115 on the RCM-reordered suite (whose serial SpM×V is faster, so
the quotient grows).
"""

import numpy as np

from common import (
    MATRIX_NAMES,
    SCALE,
    built_format,
    built_format_reordered,
    reordered_matrix,
    suite_matrix,
    timed_repeat,
    write_result,
)
from repro.analysis import preprocessing_cost, render_table
from repro.formats import CSRMatrix, SSSMatrix
from repro.machine import DUNNINGTON, GAINESTOWN
from repro.parallel import build_coloring_schedule, distance2_coloring


def compute_preproc():
    rows = []
    averages = {}
    for tag, matrix_of, built in (
        ("native", suite_matrix, built_format),
        ("rcm", reordered_matrix, built_format_reordered),
    ):
        for platform, p in ((DUNNINGTON, 24), (GAINESTOWN, 16)):
            equivalents = []
            for name in MATRIX_NAMES:
                csr = CSRMatrix.from_coo(matrix_of(name))
                csxs, _ = built(name, "csx-sym", p)
                cost = preprocessing_cost(csxs, csr, platform, p)
                equivalents.append(cost.csr_spmv_equivalents)
                rows.append(
                    [name, tag, platform.name, cost.csr_spmv_equivalents]
                )
            averages[(tag, platform.name)] = float(np.mean(equivalents))
    return rows, averages


def compute_coloring_preproc(p: int = 8):
    """Measured distance-2 coloring + schedule build, in serial CSR
    SpM×V equivalents — the same break-even currency as CSX above.

    The quotient is the number of SpM×V applications after which the
    one-off schedule build has amortized, assuming coloring then runs
    at local-vector speed (the gate ``bench_coloring_reduction.py``
    enforces at ``p >= 2``).
    """
    rows = []
    averages = {}
    rng = np.random.default_rng(17)
    for tag, matrix_of in (
        ("native", suite_matrix),
        ("rcm", reordered_matrix),
    ):
        equivalents = []
        for name in MATRIX_NAMES:
            coo = matrix_of(name)
            csr = CSRMatrix.from_coo(coo)
            sss = SSSMatrix.from_coo(coo)
            x = rng.standard_normal(coo.n_cols)
            t_spmv = timed_repeat(
                lambda: csr.spmv(x), repeats=5
            )["p50_ms"]
            t_build = timed_repeat(
                lambda: build_coloring_schedule(
                    sss, p, colors=distance2_coloring(sss)
                ),
                repeats=3,
            )["p50_ms"]
            t_color = timed_repeat(
                lambda: distance2_coloring(sss), repeats=3
            )["p50_ms"]
            units = (t_build + t_color) / max(t_spmv, 1e-9)
            equivalents.append(units)
            rows.append([name, tag, units])
        averages[tag] = float(np.mean(equivalents))
    return rows, averages


def test_preprocessing_cost(benchmark):
    rows, averages = benchmark.pedantic(
        compute_preproc, rounds=1, iterations=1
    )
    paper = {
        ("native", "Dunnington"): 49,
        ("native", "Gainestown"): 94,
        ("rcm", "Dunnington"): 59,
        ("rcm", "Gainestown"): 115,
    }
    summary = [
        [tag, plat, avg, paper[(tag, plat)]]
        for (tag, plat), avg in averages.items()
    ]
    text = render_table(
        ["suite", "platform", "avg CSR-SpMV units", "paper"],
        summary,
        title="§V-E — CSX-Sym preprocessing cost "
              "(serial CSR SpM×V equivalents)",
        floatfmt="{:.1f}",
    ) + "\n\n" + render_table(
        ["matrix", "suite", "platform", "CSR-SpMV units"],
        rows,
        floatfmt="{:.1f}",
    )
    write_result("preproc_cost", text)

    # Same order of magnitude as the paper (tens, not thousands).
    for key, avg in averages.items():
        assert 5 < avg < 600, (key, avg)
    # NUMA preprocessing costs more (paper: 94 vs 49).
    assert (
        averages[("native", "Gainestown")]
        > averages[("native", "Dunnington")]
    )
    # Reordered suite costs more in SpM×V units (faster denominator).
    assert (
        averages[("rcm", "Dunnington")]
        > 0.9 * averages[("native", "Dunnington")]
    )


def test_coloring_schedule_cost(benchmark):
    rows, averages = benchmark.pedantic(
        compute_coloring_preproc, rounds=1, iterations=1
    )
    text = render_table(
        ["suite", "avg CSR-SpMV units"],
        [[tag, avg] for tag, avg in averages.items()],
        title="coloring preprocessing cost "
              "(distance-2 coloring + schedule build, measured)",
        floatfmt="{:.1f}",
    ) + "\n\n" + render_table(
        ["matrix", "suite", "CSR-SpMV units"],
        rows,
        floatfmt="{:.1f}",
    )
    write_result("coloring_preproc_cost", text)
    # A one-off cost in the tens-to-hundreds of SpM×V range: cheaper
    # than CSX's compile-everything pass by construction, and clearly
    # amortizable inside one CG solve of a few hundred iterations.
    for tag, avg in averages.items():
        assert 0 < avg < 5000, (tag, avg)
