"""§V-E — CSX(-Sym) preprocessing cost in serial CSR SpM×V units.

Paper values: 49 (Dunnington, 24 preprocessing threads) and 94
(Gainestown, 16 threads) serial CSR SpM×V equivalents on average;
59 / 115 on the RCM-reordered suite (whose serial SpM×V is faster, so
the quotient grows).
"""

import numpy as np

from common import (
    MATRIX_NAMES,
    SCALE,
    built_format,
    built_format_reordered,
    reordered_matrix,
    suite_matrix,
    write_result,
)
from repro.analysis import preprocessing_cost, render_table
from repro.formats import CSRMatrix
from repro.machine import DUNNINGTON, GAINESTOWN


def compute_preproc():
    rows = []
    averages = {}
    for tag, matrix_of, built in (
        ("native", suite_matrix, built_format),
        ("rcm", reordered_matrix, built_format_reordered),
    ):
        for platform, p in ((DUNNINGTON, 24), (GAINESTOWN, 16)):
            equivalents = []
            for name in MATRIX_NAMES:
                csr = CSRMatrix.from_coo(matrix_of(name))
                csxs, _ = built(name, "csx-sym", p)
                cost = preprocessing_cost(csxs, csr, platform, p)
                equivalents.append(cost.csr_spmv_equivalents)
                rows.append(
                    [name, tag, platform.name, cost.csr_spmv_equivalents]
                )
            averages[(tag, platform.name)] = float(np.mean(equivalents))
    return rows, averages


def test_preprocessing_cost(benchmark):
    rows, averages = benchmark.pedantic(
        compute_preproc, rounds=1, iterations=1
    )
    paper = {
        ("native", "Dunnington"): 49,
        ("native", "Gainestown"): 94,
        ("rcm", "Dunnington"): 59,
        ("rcm", "Gainestown"): 115,
    }
    summary = [
        [tag, plat, avg, paper[(tag, plat)]]
        for (tag, plat), avg in averages.items()
    ]
    text = render_table(
        ["suite", "platform", "avg CSR-SpMV units", "paper"],
        summary,
        title="§V-E — CSX-Sym preprocessing cost "
              "(serial CSR SpM×V equivalents)",
        floatfmt="{:.1f}",
    ) + "\n\n" + render_table(
        ["matrix", "suite", "platform", "CSR-SpMV units"],
        rows,
        floatfmt="{:.1f}",
    )
    write_result("preproc_cost", text)

    # Same order of magnitude as the paper (tens, not thousands).
    for key, avg in averages.items():
        assert 5 < avg < 600, (key, avg)
    # NUMA preprocessing costs more (paper: 94 vs 49).
    assert (
        averages[("native", "Gainestown")]
        > averages[("native", "Dunnington")]
    )
    # Reordered suite costs more in SpM×V units (faster denominator).
    assert (
        averages[("rcm", "Dunnington")]
        > 0.9 * averages[("native", "Dunnington")]
    )
