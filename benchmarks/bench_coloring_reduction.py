"""Conflict-free coloring vs the local-vector reductions (RCM suite).

The coloring strategy removes the reduction phase entirely: color
classes execute class-at-a-time with direct writes into ``y``, so no
local vectors are allocated, zeroed, or reduced. What it buys and what
it costs is measured here, per RCM-reordered suite matrix, against all
three local-vector strategies:

* measured per-application wall-clock (p50/p95) through the symmetric
  driver on a thread-pool executor at ``p`` workers,
* the *measured* traffic counters from ``repro.obs`` — for coloring the
  ``reduce.rows_touched`` counter must be exactly zero (enforced
  unconditionally, any host), and ``coloring.classes`` /
  ``coloring.barrier_waits`` report the schedule shape,
* the analytic machine model's totals for the same configurations
  (DUNNINGTON, caches shrunk by ``machine_scale``), barrier term
  included.

Machine-readable output goes to ``results/BENCH_coloring.json``. The
wall-clock acceptance gate — coloring not slower than the best
local-vector strategy at ``p >= 2`` — only applies where parallel
hardware exists: hosts with fewer than ``GATE_MIN_CORES`` cores record
``gate.status = "skipped-single-core"`` honestly, exactly like
``bench_scaling.py``. The zero-reduction traffic check is never
skipped.

Runs standalone (``python benchmarks/bench_coloring_reduction.py``,
``--quick`` for the CI configuration) or under pytest.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import (  # noqa: E402
    MATRIX_NAMES,
    SCALE,
    built_format_reordered,
    timed_repeat,
    write_result,
)
from repro.machine import DUNNINGTON, predict_spmv  # noqa: E402
from repro.obs import Tracer, tracing  # noqa: E402
from repro.parallel import Executor, ParallelSymmetricSpMV  # noqa: E402

STRATEGIES = ("naive", "effective", "indexed", "coloring")
LOCAL_VECTOR = ("naive", "effective", "indexed")
FORMAT = "sss"
WORKERS = 2                 # the smallest p where reduction cost exists
REPEATS = 5
QUICK_REPEATS = 3
GATE_MIN_CORES = 2          # "not slower at p >= 2" needs >= 2 cores
GATE_TOLERANCE = 0.95       # 5% wall-clock noise allowance
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Counters every row records (absent counters default to 0).
COUNTER_KEYS = (
    "reduce.rows_touched",
    "reduce.rows_budget",
    "coloring.classes",
    "coloring.barrier_waits",
    "traffic.stream_bytes",
)


def bench_names(quick: bool) -> list[str]:
    return MATRIX_NAMES[:2] if quick else list(MATRIX_NAMES)


def measure_one(name: str, strategy: str, repeats: int) -> dict:
    """One (matrix, strategy) row: wall-clock + measured counters."""
    matrix, parts = built_format_reordered(name, FORMAT, WORKERS)
    rng = np.random.default_rng(42)
    x = rng.standard_normal(matrix.n_cols)
    serial = ParallelSymmetricSpMV(matrix, parts, strategy)(x)
    assert np.allclose(serial, matrix.spmv(x)), (
        f"{strategy} driver diverged from the serial kernel on {name}"
    )
    ex = Executor("threads", max_workers=WORKERS)
    try:
        drv = ParallelSymmetricSpMV(matrix, parts, strategy, executor=ex)
        assert np.array_equal(drv(x), serial), (
            f"{strategy} on threads not bit-identical on {name}"
        )
        tracer = Tracer(enabled=True)
        with tracing(tracer):
            drv(x)
        counters = tracer.counters()
        stats = timed_repeat(lambda: drv(x), repeats=repeats)
    finally:
        ex.close()
    pred = predict_spmv(
        matrix, parts, DUNNINGTON, reduction=strategy,
        machine_scale=SCALE,
    )
    return {
        "matrix": name,
        "strategy": strategy,
        "workers": WORKERS,
        "p50_ms": stats["p50_ms"],
        "p95_ms": stats["p95_ms"],
        "counters": {
            key: float(counters.get(key, 0.0)) for key in COUNTER_KEYS
        },
        "model": {
            "t_total": pred.total,
            "t_mult": pred.t_mult,
            "t_reduce": pred.t_reduce,
            "t_barrier": pred.t_barrier,
            "mult_bytes": pred.mult_bytes,
            "reduce_bytes": pred.reduce_bytes,
        },
    }


def check_zero_reduction(rows) -> list[str]:
    """The tentpole property: coloring rows must show *measured*
    ``reduce.*`` traffic of exactly zero and a real schedule."""
    problems = []
    for r in rows:
        if r["strategy"] != "coloring":
            continue
        c = r["counters"]
        if c["reduce.rows_touched"] != 0.0:
            problems.append(
                f"{r['matrix']}: coloring touched "
                f"{c['reduce.rows_touched']:.0f} reduction rows"
            )
        if r["model"]["reduce_bytes"] != 0.0:
            problems.append(
                f"{r['matrix']}: model charges coloring "
                f"{r['model']['reduce_bytes']:.0f} reduction bytes"
            )
        if c["coloring.classes"] < 1 or c["coloring.barrier_waits"] < 1:
            problems.append(
                f"{r['matrix']}: coloring schedule reported "
                f"{c['coloring.classes']:.0f} classes / "
                f"{c['coloring.barrier_waits']:.0f} barriers"
            )
    return problems


def evaluate_gate(rows, host_cores: int) -> dict:
    """Coloring vs best local-vector wall-clock, or an honest skip."""
    if host_cores < GATE_MIN_CORES:
        return {
            "status": "skipped-single-core",
            "detail": (
                f"host has {host_cores} core(s); the not-slower-than-"
                f"local-vectors gate needs >= {GATE_MIN_CORES} cores "
                "to be physically meaningful"
            ),
            "host_cores": host_cores,
        }
    by_matrix: dict[str, dict[str, float]] = {}
    for r in rows:
        by_matrix.setdefault(r["matrix"], {})[r["strategy"]] = r["p50_ms"]
    ratios = []
    for name, t in by_matrix.items():
        if "coloring" not in t:
            continue
        best_local = min(t[s] for s in LOCAL_VECTOR if s in t)
        ratios.append(best_local / t["coloring"])
    if not ratios:
        return {"status": "skipped-no-data"}
    geomean = float(np.exp(np.mean(np.log(ratios))))
    return {
        "status": "pass" if geomean >= GATE_TOLERANCE else "fail",
        "best_local_vs_coloring": geomean,
        "target": GATE_TOLERANCE,
        "workers": WORKERS,
        "host_cores": host_cores,
    }


def render(rows, gate) -> str:
    lines = [
        f"Coloring vs local-vector reductions — RCM suite, {FORMAT}, "
        f"p={WORKERS} threads, p50 per application",
        "",
        f"{'matrix':<16} {'strategy':<10} {'p50 ms':>8} {'p95 ms':>8} "
        f"{'red.rows':>9} {'classes':>8} {'barriers':>9} "
        f"{'model us':>9}",
    ]
    for r in rows:
        c = r["counters"]
        lines.append(
            f"{r['matrix']:<16} {r['strategy']:<10} "
            f"{r['p50_ms']:>8.3f} {r['p95_ms']:>8.3f} "
            f"{c['reduce.rows_touched']:>9.0f} "
            f"{c['coloring.classes']:>8.0f} "
            f"{c['coloring.barrier_waits']:>9.0f} "
            f"{1e6 * r['model']['t_total']:>9.1f}"
        )
    lines.append("")
    lines.append(f"gate: {json.dumps(gate)}")
    return "\n".join(lines)


def write_json(rows, gate, config) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_coloring.json"
    path.write_text(json.dumps(
        {"config": config, "measured": rows, "gate": gate},
        indent=2,
    ) + "\n")
    print(f"[json written to {path}]")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="two matrices and fewer repeats (CI configuration)",
    )
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)
    repeats = args.repeats if args.repeats is not None else (
        QUICK_REPEATS if args.quick else REPEATS
    )
    if repeats < 1:
        parser.error("--repeats must be >= 1")

    host_cores = os.cpu_count() or 1
    rows = [
        measure_one(name, strategy, repeats)
        for name in bench_names(args.quick)
        for strategy in STRATEGIES
    ]
    problems = check_zero_reduction(rows)
    gate = evaluate_gate(rows, host_cores)
    config = {
        "quick": args.quick,
        "format": FORMAT,
        "workers": WORKERS,
        "repeats": repeats,
        "scale": SCALE,
        "host_cores": host_cores,
        "matrices": bench_names(args.quick),
    }
    write_json(rows, gate, config)
    text = render(rows, gate)
    write_result("coloring", text)
    if problems:
        for p in problems:
            print(f"ZERO-REDUCTION VIOLATION: {p}", file=sys.stderr)
        return 1
    return 0 if gate["status"] in (
        "pass", "skipped-single-core",
    ) else 1


# -- pytest entry point (collected with the other wall-clock benches) --
def test_coloring_reduction_smoke(tmp_path, monkeypatch):
    """Zero-reduction counters + artifact; never the wall-clock gate
    (CI runners make no core promises)."""
    monkeypatch.setattr(sys.modules[__name__], "RESULTS_DIR", tmp_path)
    rc = main(["--quick", "--repeats", "1"])
    payload = json.loads((tmp_path / "BENCH_coloring.json").read_text())
    assert rc == 0 or payload["gate"]["status"] == "fail"
    coloring_rows = [
        r for r in payload["measured"] if r["strategy"] == "coloring"
    ]
    assert coloring_rows
    for r in coloring_rows:
        assert r["counters"]["reduce.rows_touched"] == 0.0
        assert r["counters"]["coloring.classes"] >= 1
        assert r["counters"]["coloring.barrier_waits"] >= 1
        assert r["model"]["t_reduce"] == 0.0
    assert payload["gate"]["status"] in (
        "pass", "fail", "skipped-single-core", "skipped-no-data",
    )


if __name__ == "__main__":
    raise SystemExit(main())
