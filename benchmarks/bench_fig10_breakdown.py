"""Fig. 10 — symmetric SpM×V execution-time breakdown @ 24 threads,
Dunnington.

Regenerates the per-matrix multiplication/reduction split for the three
local-vector methods. Paper shape: the reduction share is dominant for
naive, halved-ish for effective ranges, and minimal for the indexing
scheme; the indexed multiplication phase is never slower than the
others' (lower cache interference).
"""

from common import MATRIX_NAMES, SCALE, suite_matrix, write_result
from repro.analysis import (render_stacked_bars, render_table,
                            spmv_reduction_breakdown)
from repro.machine import DUNNINGTON


def compute_fig10():
    matrices = {n: suite_matrix(n) for n in MATRIX_NAMES}
    return spmv_reduction_breakdown(
        matrices, DUNNINGTON, 24, machine_scale=SCALE
    )


def test_fig10_breakdown(benchmark):
    rows = benchmark.pedantic(compute_fig10, rounds=1, iterations=1)
    table = [
        [
            r.matrix,
            r.method,
            r.t_mult * 1e6,
            r.t_reduce * 1e6,
            100 * r.reduce_fraction,
        ]
        for r in rows
    ]
    text = render_table(
        ["matrix", "method", "mult (us)", "reduce (us)", "reduce %"],
        table,
        title="Fig. 10 — symmetric SpM×V breakdown, 24 threads, "
              "Dunnington (model time)",
        floatfmt="{:.1f}",
    )
    bars = render_stacked_bars(
        [
            (f"{r.matrix}/{r.method}",
             {"mult": r.t_mult * 1e6, "reduce": r.t_reduce * 1e6})
            for r in rows
        ],
        title="Fig. 10 breakdown bars (us)",
    )
    write_result("fig10_breakdown", text + "\n\n" + bars)

    from repro.analysis import effective_region_density
    from repro.formats import SSSMatrix

    by = {(r.matrix, r.method): r for r in rows}
    for name in MATRIX_NAMES:
        naive = by[(name, "naive")]
        eff = by[(name, "effective")]
        idx = by[(name, "indexed")]
        assert eff.t_reduce < naive.t_reduce, name
        assert idx.t_reduce < naive.t_reduce, name
        # Indexing beats effective ranges wherever the effective regions
        # are actually sparse (everywhere at paper scale; the densest
        # miniature matrices can cross the d≈0.5 break-even).
        d, _ = effective_region_density(
            SSSMatrix.from_coo(suite_matrix(name)), 24
        )
        if d < 0.45:
            assert idx.t_reduce < eff.t_reduce, (name, d)
            # Indexed keeps the reduction a small share of the total.
            assert idx.reduce_fraction < 0.40, (name, idx.reduce_fraction)
        # Lower cache interference: the indexed mult phase never loses.
        assert idx.t_mult <= naive.t_mult * 1.001, name
