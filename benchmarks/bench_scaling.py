"""Cross-backend scaling benchmark: serial vs threads vs processes.

The paper's kernels are memory-bound C; this reproduction's kernels
are NumPy slices glued together with Python control flow, so the GIL
caps the ``threads`` backend at roughly serial throughput no matter
how many cores the host has. The shared-memory ``processes`` backend
exists to lift that cap: workers attach the bound operator's arenas
once at pool spin-up and per-call messages carry only task
descriptors, so the per-application cost is the kernel alone — in
separate interpreters that can actually run concurrently.

This benchmark sweeps worker counts over a bound SSS + indexed SpM×M
operator (``k = 8`` — the multi-RHS shape where per-task work is
large enough to amortize the round-trip) on every backend and reports:

* measured per-application wall-clock (p50/p95) per worker count,
* measured speedup and parallel efficiency over the serial backend,
* the analytic machine model's predicted scaling curve for the same
  matrix/partitions (GAINESTOWN, caches shrunk by ``machine_scale``)
  as the *modeled* reference — what a memory-bound C implementation of
  the same algorithm would do.

Machine-readable output goes to ``results/BENCH_scaling.json``. The
acceptance gate (processes >= 1.5x threads at the largest worker
count) only applies where it can physically hold: hosts with fewer
than ``GATE_MIN_CORES`` cores record the measurement honestly with
``gate.status = "skipped-single-core"`` instead of a fake verdict.

Runs standalone (``python benchmarks/bench_scaling.py``, ``--smoke``
for the tiny CI configuration) or under pytest; the pytest entry
asserts cross-backend bit-identity, the JSON artifact, and zero leaked
shared-memory segments — never the speedup (CI runners make no core
promises).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from common import SCALE, timed_repeat  # noqa: E402
from repro.formats import COOMatrix, SSSMatrix  # noqa: E402
from repro.machine import GAINESTOWN, predict_spmv  # noqa: E402
from repro.matrices.generators import (  # noqa: E402
    banded_random,
    grid_laplacian_2d,
)
from repro.parallel import (  # noqa: E402
    Executor,
    ParallelSymmetricSpMV,
    live_segments,
    partition_nnz_balanced,
    shared_memory_available,
)

BLOCK_K = 8
REPEATS = 5
SMOKE_REPEATS = 3
WORKER_SWEEP = (1, 2, 4)
GATE_MIN_CORES = 4          # the 1.5x gate needs real parallel hardware
GATE_SPEEDUP = 1.5          # processes vs threads, largest worker count
BACKENDS = ("serial", "threads", "processes")
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def smoke_matrices() -> dict[str, COOMatrix]:
    """Tiny generator instances for the CI smoke run (~seconds)."""
    rng = np.random.default_rng(7)
    return {
        "laplace2d_32": grid_laplacian_2d(32, 32),
        "banded_1500": banded_random(1500, 11.0, 60, rng),
    }


def full_matrices() -> dict[str, COOMatrix]:
    """Generator-suite instances at the shared benchmark scale."""
    from common import MATRIX_NAMES, suite_matrix

    names = MATRIX_NAMES[:3] if len(MATRIX_NAMES) > 3 else MATRIX_NAMES
    return {n: suite_matrix(n) for n in names}


def _bound(sss, parts, backend: str, workers: int):
    """(apply-callable, close-callable) for one backend x workers."""
    if backend == "serial":
        ex = Executor("serial")
    else:
        ex = Executor(backend, max_workers=workers)
    op = ParallelSymmetricSpMV(sss, parts, "indexed", executor=ex).bind(
        BLOCK_K
    )

    def close() -> None:
        op.close()
        ex.close()

    return op, close


def measure(matrices, workers_sweep, repeats: int) -> list[dict]:
    """One row per (matrix, backend, workers): p50/p95 per application,
    with a cross-backend bit-identity check against serial baked in."""
    rows = []
    rng = np.random.default_rng(42)
    for name, coo in matrices.items():
        sss = SSSMatrix.from_coo(coo)
        X = rng.standard_normal((coo.n_cols, BLOCK_K))
        serial_y = None
        for workers in workers_sweep:
            parts = partition_nnz_balanced(
                sss.expanded_row_nnz(), workers
            )
            for backend in BACKENDS:
                if backend == "serial" and workers != workers_sweep[0]:
                    continue  # serial has no worker axis; measure once
                if backend == "processes" and not shared_memory_available():
                    continue
                op, close = _bound(sss, parts, backend, workers)
                try:
                    y = np.array(op(X))
                    if serial_y is None:
                        serial_y = y
                    elif backend != "serial" and not np.array_equal(
                        y, serial_y
                    ):
                        # Partition layouts differ across worker counts,
                        # so only exact-layout runs are bit-comparable;
                        # all must still match numerically.
                        assert np.allclose(y, serial_y), (
                            f"{backend} x{workers} diverged on {name}"
                        )
                    stats = timed_repeat(lambda: op(X), repeats=repeats)
                finally:
                    close()
                rows.append({
                    "matrix": name,
                    "backend": backend,
                    "workers": 1 if backend == "serial" else workers,
                    "p50_ms": stats["p50_ms"],
                    "p95_ms": stats["p95_ms"],
                })
    return rows


def modeled_curve(matrices, workers_sweep) -> list[dict]:
    """The analytic model's predicted scaling for the same operator —
    GAINESTOWN with caches shrunk to the benchmark's matrix scale."""
    rows = []
    for name, coo in matrices.items():
        sss = SSSMatrix.from_coo(coo)
        base = None
        for workers in workers_sweep:
            parts = partition_nnz_balanced(
                sss.expanded_row_nnz(), workers
            )
            pred = predict_spmv(
                sss, parts, GAINESTOWN, reduction="indexed",
                machine_scale=SCALE,
            )
            if base is None:
                base = pred.total
            rows.append({
                "matrix": name,
                "workers": workers,
                "t_total_model": pred.total,
                "speedup_model": base / pred.total if pred.total else 1.0,
            })
    return rows


def attach_speedups(rows) -> None:
    """Annotate measured rows in place with speedup/efficiency over the
    serial baseline of the same matrix."""
    serial_p50 = {
        r["matrix"]: r["p50_ms"] for r in rows if r["backend"] == "serial"
    }
    for r in rows:
        base = serial_p50.get(r["matrix"])
        if base is None:
            continue
        r["speedup"] = base / r["p50_ms"] if r["p50_ms"] else 1.0
        r["efficiency"] = r["speedup"] / max(1, r["workers"])


def evaluate_gate(rows, workers_sweep, host_cores: int) -> dict:
    """The processes-vs-threads verdict, or an honest skip."""
    if not shared_memory_available():
        return {"status": "skipped-no-shared-memory"}
    if host_cores < GATE_MIN_CORES:
        return {
            "status": "skipped-single-core",
            "detail": (
                f"host has {host_cores} core(s); the {GATE_SPEEDUP}x "
                f"processes-vs-threads gate needs >= {GATE_MIN_CORES} "
                "cores to be physically meaningful"
            ),
            "host_cores": host_cores,
        }
    top = max(workers_sweep)
    ratios = []
    by_key = {
        (r["matrix"], r["backend"], r["workers"]): r for r in rows
    }
    for (matrix, backend, workers), r in by_key.items():
        if backend != "processes" or workers != top:
            continue
        t = by_key.get((matrix, "threads", top))
        if t is not None:
            ratios.append(t["p50_ms"] / r["p50_ms"])
    if not ratios:
        return {"status": "skipped-no-data"}
    geomean = float(np.exp(np.mean(np.log(ratios))))
    return {
        "status": "pass" if geomean >= GATE_SPEEDUP else "fail",
        "processes_vs_threads": geomean,
        "target": GATE_SPEEDUP,
        "workers": top,
        "host_cores": host_cores,
    }


def render(rows, model_rows, gate) -> str:
    lines = [
        f"Cross-backend scaling — bound SSS+indexed SpM×M (k={BLOCK_K}), "
        "p50 per application",
        "",
        f"{'matrix':<14} {'backend':<10} {'workers':>7} {'p50 ms':>9} "
        f"{'p95 ms':>9} {'speedup':>8} {'eff':>6}",
    ]
    for r in rows:
        lines.append(
            f"{r['matrix']:<14} {r['backend']:<10} {r['workers']:>7} "
            f"{r['p50_ms']:>9.3f} {r['p95_ms']:>9.3f} "
            f"{r.get('speedup', 1.0):>8.2f} {r.get('efficiency', 1.0):>6.2f}"
        )
    lines.append("")
    lines.append("modeled (GAINESTOWN, memory-bound reference):")
    for r in model_rows:
        lines.append(
            f"{r['matrix']:<14} {'model':<10} {r['workers']:>7} "
            f"{1e3 * r['t_total_model']:>9.3f} {'':>9} "
            f"{r['speedup_model']:>8.2f}"
        )
    lines.append("")
    lines.append(f"gate: {json.dumps(gate)}")
    return "\n".join(lines)


def write_json(rows, model_rows, gate, config) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_scaling.json"
    path.write_text(json.dumps(
        {
            "config": config,
            "measured": rows,
            "modeled": model_rows,
            "gate": gate,
        },
        indent=2,
    ) + "\n")
    print(f"[json written to {path}]")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny matrices and fewer repeats (CI smoke run)",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=None,
        help="worker counts to sweep (default: 1 2 4)",
    )
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)
    sweep = tuple(args.workers) if args.workers else WORKER_SWEEP
    if any(w < 1 for w in sweep):
        parser.error("--workers must be >= 1")
    repeats = args.repeats if args.repeats is not None else (
        SMOKE_REPEATS if args.smoke else REPEATS
    )
    if repeats < 1:
        parser.error("--repeats must be >= 1")

    matrices = smoke_matrices() if args.smoke else full_matrices()
    host_cores = os.cpu_count() or 1
    from repro.parallel import shm

    rows = measure(matrices, sweep, repeats)
    attach_speedups(rows)
    model_rows = modeled_curve(matrices, sweep)
    gate = evaluate_gate(rows, sweep, host_cores)
    config = {
        "smoke": args.smoke,
        "block_k": BLOCK_K,
        "workers": list(sweep),
        "repeats": repeats,
        "host_cores": host_cores,
        "start_method": (
            shm.start_method() if shared_memory_available() else None
        ),
        "shared_memory_available": shared_memory_available(),
    }
    write_json(rows, model_rows, gate, config)
    text = render(rows, model_rows, gate)
    try:
        from common import write_result

        write_result("scaling", text)
    except ImportError:
        print(text)
    if live_segments():
        print(f"LEAKED SEGMENTS: {live_segments()}", file=sys.stderr)
        return 1
    return 0 if gate["status"] in (
        "pass", "skipped-single-core", "skipped-no-shared-memory",
    ) else 1


# -- pytest entry point (collected with the other wall-clock benches) --
def test_scaling_smoke(tmp_path, monkeypatch):
    """Bit-identity + artifact + leak-freedom; never the 1.5x gate
    (CI runners make no core promises)."""
    monkeypatch.setattr(
        sys.modules[__name__], "RESULTS_DIR", tmp_path
    )
    rc = main(["--smoke", "--workers", "1", "2", "--repeats", "1"])
    payload = json.loads((tmp_path / "BENCH_scaling.json").read_text())
    # rc reflects the perf gate; only a leak or crash should fail here.
    assert rc == 0 or payload["gate"]["status"] == "fail"
    assert payload["measured"] and payload["modeled"]
    assert payload["gate"]["status"] in (
        "pass", "fail", "skipped-single-core", "skipped-no-shared-memory",
    )
    assert live_segments() == []


if __name__ == "__main__":
    raise SystemExit(main())
