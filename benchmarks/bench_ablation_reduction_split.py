"""Ablation — splitting policy for the parallel indexed reduction.

Section III-C parallelizes the reduction by splitting the sorted
``(vid, idx)`` stream evenly (never sharing an ``idx`` across chunks).
The alternative is the row-block split the naive/effective methods use.
This ablation measures reducer load balance under both policies.
"""

import numpy as np

from common import MATRIX_NAMES, suite_matrix, write_result
from repro.analysis import render_table
from repro.formats import SSSMatrix
from repro.parallel import IndexedReduction, partition_nnz_balanced

P = 24

ABLATION_MATRICES = [
    n for n in ("G3_circuit", "thermal2", "hood", "inline_1")
    if n in MATRIX_NAMES
] or MATRIX_NAMES[:2]


def row_block_loads(red: IndexedReduction, n_chunks: int) -> np.ndarray:
    """Pairs per reducer when the output vector is split row-wise
    (Alg. 3 lines 12-16) instead of by index position."""
    n = red.n_rows
    bounds = np.linspace(0, n, n_chunks + 1).round().astype(int)
    loads = np.zeros(n_chunks, dtype=np.int64)
    chunk_of = np.searchsorted(bounds[1:], red.index_idx, side="right")
    for c in chunk_of:
        loads[c] += 1
    return loads


def index_split_loads(red: IndexedReduction, n_chunks: int) -> np.ndarray:
    return np.array(
        [e - s for s, e in red.reduction_splits(n_chunks)], dtype=np.int64
    )


def compute_split_ablation():
    rows = []
    stats = {}
    for name in ABLATION_MATRICES:
        sss = SSSMatrix.from_coo(suite_matrix(name))
        parts = partition_nnz_balanced(sss.expanded_row_nnz(), P)
        red = IndexedReduction(sss, parts)
        if red.n_pairs == 0:
            continue
        for scheme, loads in (
            ("row-block", row_block_loads(red, P)),
            ("index-balanced", index_split_loads(red, P)),
        ):
            mean = loads.mean() if loads.mean() else 1.0
            imb = float(loads.max() / mean)
            rows.append([name, scheme, int(loads.max()), imb])
            stats[(name, scheme)] = imb
    return rows, stats


def test_reduction_split_ablation(benchmark):
    rows, stats = benchmark.pedantic(
        compute_split_ablation, rounds=1, iterations=1
    )
    text = render_table(
        ["matrix", "scheme", "max pairs/reducer", "max/mean"],
        rows,
        title="Ablation — parallel reduction splitting policy "
              f"({P} reducers)",
        floatfmt="{:.2f}",
    )
    write_result("ablation_reduction_split", text)

    for name in ABLATION_MATRICES:
        if (name, "index-balanced") not in stats:
            continue
        # The sorted-index split is near-perfectly balanced; the
        # row-block split concentrates on the conflict-heavy rows.
        assert stats[(name, "index-balanced")] < 1.5
        assert (
            stats[(name, "index-balanced")]
            <= stats[(name, "row-block")] + 1e-9
        ), name
