"""Ablation — CSX-Sym's substructure legality filter (Section IV-B).

CSX-Sym rejects substructures whose transposed writes straddle the
local/direct boundary, trading a little compression for a branch-free
kernel. This ablation measures the compression actually given up and
models the alternative: keeping the substructures but paying a
per-element routing check inside the kernel.
"""

from common import MATRIX_NAMES, SCALE, suite_matrix, write_result
from repro.analysis import render_table, thread_partitions
from repro.formats import CSRMatrix, CSXSymMatrix
from repro.machine import DEFAULT_COST_MODEL, DUNNINGTON, predict_spmv

P = 24

ABLATION_MATRICES = [
    n for n in ("bmw7st_1", "hood", "thermal2", "inline_1")
    if n in MATRIX_NAMES
] or MATRIX_NAMES[:2]

#: Modelled cost of the per-element "local or direct?" branch the
#: filter avoids (compare + unpredictable branch in the hot loop).
ROUTING_CHECK_CYCLES = 1.5


def compute_legality_ablation():
    rows = []
    stats = {}
    for name in ABLATION_MATRICES:
        coo = suite_matrix(name)
        csr = CSRMatrix.from_coo(coo)
        parts = thread_partitions(coo, P, symmetric=True)
        filtered = CSXSymMatrix(coo, partitions=parts)
        unfiltered = CSXSymMatrix(
            coo, partitions=parts, legality_filter=False
        )
        t_filtered = predict_spmv(
            filtered, parts, DUNNINGTON, reduction="indexed",
            machine_scale=SCALE,
        ).total
        checked_cost = DEFAULT_COST_MODEL.with_overrides(
            csx_sym_extra_cycles_per_elem=(
                DEFAULT_COST_MODEL.csx_sym_extra_cycles_per_elem
                + ROUTING_CHECK_CYCLES
            )
        )
        t_unfiltered = predict_spmv(
            unfiltered, parts, DUNNINGTON, reduction="indexed",
            cost=checked_cost, machine_scale=SCALE,
        ).total
        rows.append(
            [
                name,
                filtered.rejected_units,
                100 * filtered.substructure_coverage(),
                100 * unfiltered.substructure_coverage(),
                100 * filtered.compression_ratio_vs(csr),
                100 * unfiltered.compression_ratio_vs(csr),
                t_filtered * 1e6,
                t_unfiltered * 1e6,
            ]
        )
        stats[name] = (filtered, unfiltered, t_filtered, t_unfiltered)
    return rows, stats


def test_legality_filter_ablation(benchmark):
    rows, stats = benchmark.pedantic(
        compute_legality_ablation, rounds=1, iterations=1
    )
    text = render_table(
        [
            "matrix", "rejected", "cov flt %", "cov unflt %",
            "CR flt %", "CR unflt %", "t flt (us)", "t +check (us)",
        ],
        rows,
        title="Ablation — CSX-Sym legality filter vs per-element "
              "routing check (24t Dunnington)",
        floatfmt="{:.1f}",
    )
    write_result("ablation_legality", text)

    for name, (flt, unflt, t_f, t_u) in stats.items():
        # The filter gives up only a sliver of coverage...
        assert (
            unflt.substructure_coverage() - flt.substructure_coverage()
            < 0.15
        ), name
        # ...and compression.
        csr = None  # sizes already asserted via coverage; compare bytes
        assert flt.size_bytes() <= unflt.size_bytes() * 1.05, name
