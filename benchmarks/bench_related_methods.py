"""§VI — comparison against the related symmetric SpM×V methods.

The paper positions its local-vectors indexing against two published
alternatives, both implemented in this library:

* **Symmetric CSB** (Buluç et al. [27]): bounded three-buffer reduction
  plus atomic updates for far blocks — "in matrices with a relatively
  high bandwidth, this method is expected to be bound by the atomic
  operations".
* **The colorful method** (Batista et al. [7]): conflict-free coloring,
  no reduction at all — "could not achieve a performance gain over the
  typical local vectors method".

This benchmark verifies all three methods compute identical results and
that the model reproduces both related-work conclusions.
"""

import numpy as np
import pytest

from common import MATRIX_NAMES, SCALE, suite_matrix, write_result
from repro.analysis import render_table, thread_partitions
from repro.formats import CSBSymMatrix, CSRMatrix, SSSMatrix
from repro.machine import DUNNINGTON, predict_spmv
from repro.matrices import get_entry
from repro.parallel import (
    ColoredSymmetricSpMV,
    ParallelCSBSymSpMV,
    ParallelSymmetricSpMV,
    coloring_stats,
    distance2_coloring,
    predict_colored_time,
    predict_csb_sym_time,
)

P = 24

#: Coloring is O(Σ deg²); keep to the sparser half of the suite plus
#: one structural matrix.
RIVAL_MATRICES = [
    n for n in ("parabolic_fem", "thermal2", "G3_circuit", "bmw7st_1")
    if n in MATRIX_NAMES
] or MATRIX_NAMES[:2]


def compute_rivals():
    rows = []
    stats = {}
    for name in RIVAL_MATRICES:
        coo = suite_matrix(name)
        sss = SSSMatrix.from_coo(coo)
        parts = thread_partitions(coo, P, symmetric=True)
        t_indexed = predict_spmv(
            sss, parts, DUNNINGTON, reduction="indexed",
            machine_scale=SCALE,
        ).total

        csbs = CSBSymMatrix(coo)
        csb_parts = csbs.block_row_partitions(P)
        atomic = csbs.count_atomic_updates(csb_parts)
        t_csb = predict_csb_sym_time(
            csbs, csb_parts, DUNNINGTON, machine_scale=SCALE
        )

        colors = distance2_coloring(sss)
        cstats = coloring_stats(colors)
        t_colored = predict_colored_time(
            sss, colors, DUNNINGTON, P, machine_scale=SCALE
        )

        rows.append(
            [
                name,
                t_indexed * 1e6,
                t_csb * 1e6,
                t_colored * 1e6,
                atomic / max(1, csbs.stored_entries),
                cstats.n_colors,
            ]
        )
        stats[name] = (t_indexed, t_csb, t_colored, atomic, cstats)
    return rows, stats


def _verify_correctness():
    """All three methods produce the SSS serial result."""
    name = RIVAL_MATRICES[0]
    coo = suite_matrix(name)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(coo.n_cols)
    ref = CSRMatrix.from_coo(coo).spmv(x)

    sss = SSSMatrix.from_coo(coo)
    parts = thread_partitions(coo, 8, symmetric=True)
    assert np.allclose(ParallelSymmetricSpMV(sss, parts, "indexed")(x), ref)

    csbs = CSBSymMatrix(coo)
    assert np.allclose(ParallelCSBSymSpMV(csbs, n_threads=8)(x), ref)

    assert np.allclose(ColoredSymmetricSpMV(sss)(x), ref)


def test_related_methods(benchmark):
    _verify_correctness()
    rows, stats = benchmark.pedantic(compute_rivals, rounds=1, iterations=1)
    text = render_table(
        [
            "matrix", "indexed (us)", "csb-sym (us)", "colored (us)",
            "atomic frac", "colors",
        ],
        rows,
        title=f"§VI — rival symmetric methods @ {P} threads, Dunnington "
              "(model time)",
        floatfmt="{:.2f}",
    )
    write_result("related_methods", text)

    for name, (t_idx, t_csb, t_col, atomic, cstats) in stats.items():
        corner = get_entry(name).corner_case
        # The colorful method never beats local-vectors indexing.
        assert t_col > t_idx, name
        if corner:
            # High-bandwidth: CSB-Sym pays for its atomics and loses.
            assert atomic > 0, name
            assert t_csb > t_idx, name
