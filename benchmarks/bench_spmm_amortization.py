"""Multi-RHS SpM×M traffic amortization sweep.

Symmetric SpM×V is bandwidth-bound (Section II): one pass streams the
matrix bytes for a single right-hand side. The ``spmm`` fast path
streams them once for a block of ``k`` right-hand sides, so per-RHS
cost should fall toward the ``16N`` vector floor as ``k`` grows. This
benchmark sweeps ``k ∈ {1, 2, 4, 8, 16}`` over the generator suite and
reports, per format:

* wall-clock of ``k`` independent SpM×V calls vs one k-column SpM×M,
* per-RHS throughput (Mflop/s) of the SpM×M pass,
* the modeled per-RHS traffic and amortization factor
  (:mod:`repro.analysis.traffic`).

Runs standalone (``python benchmarks/bench_spmm_amortization.py``,
``--smoke`` for the tiny CI configuration) or under pytest alongside
the other wall-clock benches. Acceptance target: per-RHS wall-clock at
``k = 8`` at least 2× better than 8 independent SpM×V calls for SSS
and CSX-Sym.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.analysis import (  # noqa: E402
    spmm_amortization_factor,
    spmm_per_rhs_bytes,
)
from repro.formats import (  # noqa: E402
    COOMatrix,
    CSRMatrix,
    CSXSymMatrix,
    SSSMatrix,
)
from repro.matrices.generators import (  # noqa: E402
    banded_random,
    grid_laplacian_2d,
)
from repro.parallel import (  # noqa: E402
    ParallelSpMV,
    ParallelSymmetricSpMV,
    partition_nnz_balanced,
)

KS = (1, 2, 4, 8, 16)
SMOKE_KS = (1, 4, 8)
N_THREADS = 4
TARGET_SPEEDUP = 2.0  # per-RHS, k = 8, SSS and CSX-Sym


def smoke_matrices() -> dict[str, COOMatrix]:
    """Tiny generator instances for the CI smoke run (~seconds)."""
    rng = np.random.default_rng(7)
    return {
        "laplace2d_32": grid_laplacian_2d(32, 32),
        "banded_1500": banded_random(1500, 11.0, 60, rng),
    }


def full_matrices() -> dict[str, COOMatrix]:
    """Generator-suite instances at the shared benchmark scale."""
    from common import MATRIX_NAMES, suite_matrix

    names = MATRIX_NAMES[:4] if len(MATRIX_NAMES) > 4 else MATRIX_NAMES
    return {n: suite_matrix(n) for n in names}


def build_kernels(coo: COOMatrix, n_threads: int = N_THREADS):
    """(name, apply-callable, size_bytes) per benchmarked format."""
    sss = SSSMatrix.from_coo(coo)
    parts = partition_nnz_balanced(sss.expanded_row_nnz(), n_threads)
    csxs = CSXSymMatrix(coo, partitions=parts, check_symmetry=False)
    csr = CSRMatrix.from_coo(coo)
    return [
        ("sss", ParallelSymmetricSpMV(sss, parts, "indexed"),
         sss.size_bytes()),
        ("csx-sym", ParallelSymmetricSpMV(csxs, parts, "indexed"),
         csxs.size_bytes()),
        ("csr", ParallelSpMV(csr, parts), csr.size_bytes()),
    ]


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_sweep(matrices, ks, repeats: int = 3, n_threads: int = N_THREADS):
    """One row per (matrix, format, k): timings + modeled traffic."""
    rows = []
    rng = np.random.default_rng(42)
    for name, coo in matrices.items():
        kernels = build_kernels(coo, n_threads)
        for k in ks:
            X = rng.standard_normal((coo.n_cols, k))
            for fmt, apply_fn, size in kernels:
                # Differential check before timing: the fast path must
                # agree with k independent passes.
                Y = apply_fn(X)
                stacked = np.stack(
                    [apply_fn(X[:, j].copy()) for j in range(k)], axis=1
                )
                if not np.allclose(Y, stacked):
                    raise AssertionError(
                        f"spmm mismatch for {fmt} on {name} (k={k})"
                    )
                t_spmv = _best_of(
                    lambda: [apply_fn(X[:, j]) for j in range(k)], repeats
                )
                t_spmm = _best_of(lambda: apply_fn(X), repeats)
                flops = 2.0 * coo.nnz
                rows.append(
                    {
                        "matrix": name,
                        "format": fmt,
                        "k": k,
                        "t_spmv_k": t_spmv,
                        "t_spmm": t_spmm,
                        "per_rhs_speedup": t_spmv / t_spmm,
                        "mflops_per_rhs": flops / (t_spmm / k) / 1e6,
                        "model_per_rhs_bytes": spmm_per_rhs_bytes(
                            size, coo.n_rows, coo.n_cols, k
                        ),
                        "model_amortization": spmm_amortization_factor(
                            size, coo.n_rows, coo.n_cols, k
                        ),
                    }
                )
    return rows


def geomean_speedup(rows, fmt: str, k: int) -> float:
    vals = [
        r["per_rhs_speedup"]
        for r in rows
        if r["format"] == fmt and r["k"] == k
    ]
    return float(np.exp(np.mean(np.log(vals)))) if vals else float("nan")


def render(rows, ks) -> str:
    lines = [
        "SpM×M amortization sweep — per-RHS wall-clock of one k-column "
        "pass vs k independent SpM×V calls",
        "",
        f"{'matrix':<14} {'format':<8} {'k':>3} {'k×spmv[ms]':>11} "
        f"{'spmm[ms]':>9} {'speedup':>8} {'MF/s/rhs':>9} "
        f"{'model B/rhs':>12} {'model amort':>11}",
    ]
    for r in rows:
        lines.append(
            f"{r['matrix']:<14} {r['format']:<8} {r['k']:>3} "
            f"{r['t_spmv_k'] * 1e3:>11.3f} {r['t_spmm'] * 1e3:>9.3f} "
            f"{r['per_rhs_speedup']:>8.2f} {r['mflops_per_rhs']:>9.1f} "
            f"{r['model_per_rhs_bytes']:>12.0f} "
            f"{r['model_amortization']:>11.2f}"
        )
    lines.append("")
    formats = sorted({r["format"] for r in rows})
    for fmt in formats:
        means = "  ".join(
            f"k={k}: {geomean_speedup(rows, fmt, k):.2f}x" for k in ks
        )
        lines.append(f"geomean per-RHS speedup [{fmt}]: {means}")
    check_k = 8 if 8 in ks else max(ks)
    ok = True
    for fmt in ("sss", "csx-sym"):
        s = geomean_speedup(rows, fmt, check_k)
        passed = s >= TARGET_SPEEDUP
        ok &= passed
        lines.append(
            f"target k={check_k} {fmt}: {s:.2f}x >= {TARGET_SPEEDUP}x "
            f"-> {'PASS' if passed else 'FAIL'}"
        )
    lines.append(f"overall: {'PASS' if ok else 'FAIL'}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny matrices and k subset (CI smoke run)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--threads", type=int, default=N_THREADS)
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.threads < 1:
        parser.error("--threads must be >= 1")

    if args.smoke:
        matrices, ks = smoke_matrices(), SMOKE_KS
    else:
        matrices, ks = full_matrices(), KS
    rows = run_sweep(matrices, ks, args.repeats, args.threads)
    text = render(rows, ks)
    try:
        from common import write_result

        write_result("spmm_amortization", text)
    except ImportError:
        print(text)
    return 0 if "FAIL" not in text else 1


# -- pytest entry point (collected with the other wall-clock benches) --
def test_spmm_amortization():
    rows = run_sweep(smoke_matrices(), SMOKE_KS, repeats=3)
    for fmt in ("sss", "csx-sym"):
        assert geomean_speedup(rows, fmt, 8) >= TARGET_SPEEDUP


if __name__ == "__main__":
    raise SystemExit(main())
