"""Unit tests for the Table I suite registry."""

import numpy as np
import pytest

from repro.matrices import SUITE, build_suite, get_entry
from repro.reorder import bandwidth_stats


def test_twelve_entries_matching_table1():
    assert len(SUITE) == 12
    names = [e.name for e in SUITE]
    assert names == [
        "parabolic_fem", "offshore", "consph", "bmw7st_1", "G3_circuit",
        "thermal2", "bmwcra_1", "hood", "crankseg_2", "nd12k",
        "inline_1", "ldoor",
    ]
    # Table I orders by non-zero count.
    nnzs = [e.paper_nnz for e in SUITE]
    assert nnzs == sorted(nnzs)


def test_get_entry():
    e = get_entry("ldoor")
    assert e.paper_rows == 952_203
    with pytest.raises(KeyError):
        get_entry("nonexistent")


def test_corner_cases_flagged():
    corner = {e.name for e in SUITE if e.corner_case}
    assert corner == {"parabolic_fem", "offshore", "G3_circuit", "thermal2"}


def test_build_scales_rows():
    e = get_entry("hood")
    m = e.build(scale=0.01)
    assert abs(m.n_rows - 0.01 * e.paper_rows) < 0.01 * e.paper_rows * 0.2


def test_build_rejects_bad_scale():
    with pytest.raises(ValueError):
        get_entry("hood").build(scale=0.0)
    with pytest.raises(ValueError):
        get_entry("hood").build(scale=1.5)


def test_all_entries_build_spd_symmetric():
    for e in SUITE:
        m = e.build(scale=0.005)
        assert m.is_symmetric(), e.name
        assert np.all(m.diagonal() > 0), e.name


def test_density_tracks_paper():
    """nnz/row within a factor ~2 of Table I at small scale."""
    for e in SUITE:
        m = e.build(scale=0.01)
        ratio = (m.nnz / m.n_rows) / e.paper_nnz_per_row
        assert 0.35 < ratio < 1.6, (e.name, ratio)


def test_corner_cases_have_worst_input_vector_locality():
    """The four corner cases are the scattered, high-bandwidth patterns
    (paper §V-B): what distinguishes them physically is poor input
    vector reuse — their x-access streams miss the cache at a higher
    rate than every regular matrix."""
    from repro.formats import CSRMatrix
    from repro.machine import estimate_x_misses, reuse_window_lines

    window = reuse_window_lines(4 * 1024 * 1024)
    corner, regular = [], []
    for e in SUITE:
        m = e.build(scale=0.01)
        csr = CSRMatrix.from_coo(m)
        rate = estimate_x_misses(csr.colind, window) / csr.nnz
        (corner if e.corner_case else regular).append(rate)
    assert min(corner) > 2 * max(regular)


def test_builds_deterministic():
    e = get_entry("consph")
    a = e.build(scale=0.01)
    b = e.build(scale=0.01)
    assert np.array_equal(a.rows, b.rows)
    assert np.array_equal(a.vals, b.vals)


def test_build_suite_subset():
    mats = build_suite(scale=0.005, names=["hood", "consph"])
    assert set(mats) == {"hood", "consph"}


def test_build_suite_full():
    mats = build_suite(scale=0.004)
    assert len(mats) == 12
