"""Tracing-on must be observationally invisible: identical numerics
with a tracer active, phase spans that agree with the solver's own
instrumentation counts, counters that match the analytic models, and
per-thread timelines under the threads executor."""

import numpy as np
import pytest

from repro.analysis.breakdown import spmv_reduction_breakdown
from repro.formats import CSRMatrix, SSSMatrix
from repro.machine import DUNNINGTON
from repro.matrices.generators import grid_laplacian_2d
from repro.obs import Tracer, chrome_events, tracing
from repro.parallel import (
    Executor,
    ParallelSymmetricSpMV,
    partition_nnz_balanced,
)
from repro.solvers import (
    block_conjugate_gradient,
    conjugate_gradient,
    preconditioned_conjugate_gradient,
)
from repro.solvers.pcg import jacobi_preconditioner

from tests.conformance import (
    REDUCTIONS,
    build_symmetric,
    reference_product,
    rhs_block,
)

CASE = "random"
FORMATS = ("sss", "csx-sym")


def _span_counts(tracer):
    return {
        name: len(durs)
        for name, durs in tracer.span_durations_ns().items()
    }


def _spd_system(n_side=24):
    coo = grid_laplacian_2d(n_side, n_side)
    sss = SSSMatrix.from_coo(coo)
    parts = partition_nnz_balanced(sss.expanded_row_nnz(), 4)
    rng = np.random.default_rng(5)
    x_true = rng.standard_normal(coo.n_rows)
    b = CSRMatrix.from_coo(coo).spmv(x_true)
    return coo, sss, parts, x_true, b


# ---------------------------------------------------------------------
# Numerics are bit-identical with tracing on vs off
# ---------------------------------------------------------------------
@pytest.mark.parametrize("fmt", FORMATS)
@pytest.mark.parametrize("reduction", REDUCTIONS)
@pytest.mark.parametrize("k", (None, 3))
def test_spmv_identical_under_tracing(fmt, reduction, k):
    matrix, parts = build_symmetric(CASE, fmt, "thirds")
    driver = ParallelSymmetricSpMV(matrix, parts, reduction)
    x = rhs_block(matrix.n_cols, k)
    y_off = np.array(driver(x))
    with tracing():
        y_on = np.array(driver(x))
    np.testing.assert_array_equal(y_on, y_off)
    np.testing.assert_allclose(
        y_on, reference_product(CASE, x), rtol=1e-12, atol=1e-12
    )


@pytest.mark.parametrize("fmt", FORMATS)
def test_bound_spmv_identical_under_tracing(fmt):
    matrix, parts = build_symmetric(CASE, fmt, "thirds")
    driver = ParallelSymmetricSpMV(matrix, parts, "indexed")
    x = rhs_block(matrix.n_cols, None)
    with driver.bind() as bound:
        y_off = np.array(bound(x))
        with tracing():
            y_on = np.array(bound(x))
    np.testing.assert_array_equal(y_on, y_off)


def test_cg_identical_under_tracing():
    _, sss, parts, x_true, b = _spd_system()
    res_off = conjugate_gradient(
        ParallelSymmetricSpMV(sss, parts, "indexed"), b, tol=1e-10,
        record_history=True,
    )
    with tracing():
        res_on = conjugate_gradient(
            ParallelSymmetricSpMV(sss, parts, "indexed"), b, tol=1e-10,
            record_history=True,
        )
    np.testing.assert_array_equal(res_on.x, res_off.x)
    np.testing.assert_array_equal(
        res_on.residual_history, res_off.residual_history
    )
    assert res_on.iterations == res_off.iterations
    assert res_on.converged and np.allclose(res_on.x, x_true, atol=1e-6)


def test_pcg_identical_under_tracing():
    coo, sss, parts, _, b = _spd_system()
    diag = np.zeros(coo.n_rows)
    mask = coo.rows == coo.cols
    diag[coo.rows[mask]] = coo.vals[mask]
    precond = jacobi_preconditioner(diag)
    res_off = preconditioned_conjugate_gradient(
        ParallelSymmetricSpMV(sss, parts, "indexed"), b, precond,
        tol=1e-10,
    )
    with tracing() as t:
        res_on = preconditioned_conjugate_gradient(
            ParallelSymmetricSpMV(sss, parts, "indexed"), b, precond,
            tol=1e-10,
        )
    np.testing.assert_array_equal(res_on.x, res_off.x)
    assert res_on.iterations == res_off.iterations
    assert "cg.precond" in _span_counts(t)


def test_block_cg_identical_under_tracing():
    _, sss, parts, _, b = _spd_system()
    B = np.column_stack([b, 0.5 * b, -b])
    res_off = block_conjugate_gradient(
        ParallelSymmetricSpMV(sss, parts, "indexed"), B, tol=1e-10
    )
    with tracing() as t:
        res_on = block_conjugate_gradient(
            ParallelSymmetricSpMV(sss, parts, "indexed"), B, tol=1e-10
        )
    np.testing.assert_array_equal(res_on.X, res_off.X)
    assert res_on.iterations == res_off.iterations
    counts = _span_counts(t)
    assert counts["cg.spmm"] == res_on.n_spmm
    iter_events = [
        ev for _, ev in t.events() if ev.name == "cg.iter"
    ]
    assert len(iter_events) == res_on.iterations


# ---------------------------------------------------------------------
# Span counts agree with the solver's own instrumentation
# ---------------------------------------------------------------------
def test_cg_span_counts_match_result():
    _, sss, parts, _, b = _spd_system()
    with tracing() as t:
        res = conjugate_gradient(
            ParallelSymmetricSpMV(sss, parts, "indexed"), b, tol=1e-10
        )
    counts = _span_counts(t)
    assert counts["cg.spmv"] == res.n_spmv
    assert counts["cg.bind"] == 1
    # One mult + one reduce phase per SpM×V application.
    assert counts["spmv.mult"] == res.n_spmv
    assert counts["spmv.reduce"] == res.n_spmv
    iter_events = [ev for _, ev in t.events() if ev.name == "cg.iter"]
    assert len(iter_events) == res.iterations
    assert [ev.attrs["iteration"] for ev in iter_events] == list(
        range(1, res.iterations + 1)
    )
    # Residual telemetry is the true residual history (monotone checks
    # are the solver tests' job; here: the last event == the result).
    assert iter_events[-1].attrs["residual"] == pytest.approx(
        res.residual_norm
    )
    # Bound path counters: one workspace zeroing per application.
    assert t.counters()["bound.calls"] == res.n_spmv


def test_per_call_driver_records_spmv_counters():
    matrix, parts = build_symmetric(CASE, "sss", "thirds")
    driver = ParallelSymmetricSpMV(matrix, parts, "indexed")
    x = rhs_block(matrix.n_cols, None)
    with tracing() as t:
        driver(x)
        driver(x)
    c = t.counters()
    assert c["spmv.calls"] == 2
    assert c["traffic.matrix_bytes"] == 2 * matrix.size_bytes()
    assert c["traffic.stream_bytes"] > c["traffic.matrix_bytes"]
    assert 0 < c["reduce.rows_touched"] <= c["reduce.rows_budget"]


# ---------------------------------------------------------------------
# Phase shares are consistent with the analytic breakdown
# ---------------------------------------------------------------------
def test_reduce_share_ordering_matches_model():
    """The model (Fig. 10) says the mult phase dominates the reduce
    phase for the indexed method on a banded matrix; the measured
    span totals must have the same ordering."""
    coo = grid_laplacian_2d(28, 28)
    [bd] = spmv_reduction_breakdown(
        {"lap": coo}, DUNNINGTON, 4, methods=("indexed",),
        machine_scale=0.01,
    )
    assert bd.t_mult > bd.t_reduce  # the model's phase ordering
    sss = SSSMatrix.from_coo(coo)
    parts = partition_nnz_balanced(sss.expanded_row_nnz(), 4)
    driver = ParallelSymmetricSpMV(sss, parts, "indexed")
    x = np.random.default_rng(1).standard_normal(coo.n_cols)
    with tracing() as t:
        for _ in range(20):
            driver(x)
    durs = t.span_durations_ns()
    assert sum(durs["spmv.mult"]) > sum(durs["spmv.reduce"])


# ---------------------------------------------------------------------
# Thread timelines under the threads executor
# ---------------------------------------------------------------------
def test_threads_executor_produces_per_thread_timeline():
    matrix, parts = build_symmetric(CASE, "sss", "thirds")
    with Executor("threads", max_workers=len(parts)) as ex:
        driver = ParallelSymmetricSpMV(matrix, parts, "indexed", executor=ex)
        x = rhs_block(matrix.n_cols, None)
        y_serial = np.array(ParallelSymmetricSpMV(matrix, parts, "indexed")(x))
        with tracing() as t:
            y = np.array(driver(x))
    np.testing.assert_allclose(y, y_serial, rtol=1e-12, atol=1e-12)
    counts = _span_counts(t)
    assert counts["spmv.mult.task"] == len(parts)
    # Tasks record on their executing threads; with a pool of
    # len(parts) workers more than one thread must appear.
    assert t.n_threads_seen() > 1
    evs = chrome_events(t)
    tids = {e["tid"] for e in evs if e["ph"] == "X"}
    assert len(tids) > 1
    assert {e["tid"] for e in evs if e["ph"] == "M"} >= tids
