"""Tests for the machine_scale mechanism of the performance model.

``machine_scale`` shrinks the modelled caches in step with the
miniature benchmark matrices (DESIGN.md); these tests pin down its
semantics: bandwidth/compute rates untouched, capacity effects scaled.
"""

import numpy as np
import pytest

from repro.analysis import build_format
from repro.formats import CSRMatrix
from repro.machine import DUNNINGTON, GAINESTOWN, predict_spmv
from repro.matrices import banded_random, permute_random


@pytest.fixture(scope="module")
def scattered():
    rng = np.random.default_rng(0)
    base = banded_random(20_000, nnz_per_row=12.0, band=60, rng=rng)
    return permute_random(base, rng)


@pytest.fixture(scope="module")
def banded():
    rng = np.random.default_rng(1)
    return banded_random(20_000, nnz_per_row=12.0, band=60, rng=rng)


def test_invalid_scale_rejected(banded):
    csr, parts = build_format(banded, "csr", 4)
    with pytest.raises(ValueError):
        predict_spmv(csr, parts, DUNNINGTON, machine_scale=0.0)
    with pytest.raises(ValueError):
        predict_spmv(csr, parts, DUNNINGTON, machine_scale=-1.0)


def test_smaller_cache_never_faster(scattered):
    csr, parts = build_format(scattered, "csr", 8)
    t_full = predict_spmv(csr, parts, GAINESTOWN, machine_scale=1.0)
    t_small = predict_spmv(csr, parts, GAINESTOWN, machine_scale=0.01)
    assert t_small.mult_bytes >= t_full.mult_bytes
    assert t_small.total >= t_full.total


def test_scale_hits_scattered_harder_than_banded(scattered, banded):
    """Shrinking the cache must penalize poor-locality patterns more —
    the mechanism that recreates the corner cases at miniature scale."""
    def slowdown(coo):
        csr, parts = build_format(coo, "csr", 8)
        t1 = predict_spmv(csr, parts, GAINESTOWN, machine_scale=1.0).total
        t2 = predict_spmv(csr, parts, GAINESTOWN, machine_scale=0.005).total
        return t2 / t1

    assert slowdown(scattered) > slowdown(banded)


def test_compute_ceiling_unaffected(banded):
    csr, parts = build_format(banded, "csr", 4)
    a = predict_spmv(csr, parts, DUNNINGTON, machine_scale=1.0)
    b = predict_spmv(csr, parts, DUNNINGTON, machine_scale=0.05)
    assert a.t_mult_compute == pytest.approx(b.t_mult_compute)
    assert a.flops == b.flops


def test_serial_baseline_accepts_scale(banded):
    from repro.machine import predict_serial_csr

    csr = CSRMatrix.from_coo(banded)
    t = predict_serial_csr(csr, DUNNINGTON, machine_scale=0.02)
    assert t.total > 0
