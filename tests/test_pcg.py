"""Unit tests for the Jacobi-preconditioned CG extension."""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSRMatrix
from repro.solvers import (
    OpCounter,
    conjugate_gradient,
    jacobi_preconditioner,
    preconditioned_conjugate_gradient,
)


def _ill_conditioned_spd(n: int, seed: int = 0):
    """Diagonally dominant SPD with a wildly varying diagonal — the
    case where Jacobi shines."""
    rng = np.random.default_rng(seed)
    dense = np.zeros((n, n))
    upper = np.triu(
        (rng.random((n, n)) < 0.05) * rng.uniform(0.1, 1.0, (n, n)), k=1
    )
    dense = upper + upper.T
    scale = 10.0 ** rng.uniform(0, 4, n)
    np.fill_diagonal(dense, scale + np.abs(dense).sum(axis=1))
    return dense


def test_jacobi_rejects_zero_diagonal():
    with pytest.raises(ValueError):
        jacobi_preconditioner(np.array([1.0, 0.0, 2.0]))


def test_jacobi_application():
    m = jacobi_preconditioner(np.array([2.0, 4.0]))
    assert np.allclose(m(np.array([2.0, 8.0])), [1.0, 2.0])


def test_pcg_converges(sym_dense_medium, rng):
    coo = COOMatrix.from_dense(sym_dense_medium)
    csr = CSRMatrix.from_coo(coo)
    x_true = rng.standard_normal(coo.n_rows)
    b = csr.spmv(x_true)
    precond = jacobi_preconditioner(coo.diagonal())
    res = preconditioned_conjugate_gradient(
        csr.spmv, b, precond, tol=1e-12
    )
    assert res.converged
    assert np.allclose(res.x, x_true, atol=1e-6)


def test_pcg_beats_cg_on_ill_conditioned():
    dense = _ill_conditioned_spd(400)
    coo = COOMatrix.from_dense(dense)
    csr = CSRMatrix.from_coo(coo)
    rng = np.random.default_rng(1)
    b = csr.spmv(rng.standard_normal(400))
    plain = conjugate_gradient(csr.spmv, b, tol=1e-10, max_iter=5000)
    pre = preconditioned_conjugate_gradient(
        csr.spmv, b, jacobi_preconditioner(coo.diagonal()),
        tol=1e-10, max_iter=5000,
    )
    assert pre.converged
    assert pre.iterations < plain.iterations


def test_pcg_same_solution_as_cg(sym_dense_medium, rng):
    coo = COOMatrix.from_dense(sym_dense_medium)
    csr = CSRMatrix.from_coo(coo)
    b = csr.spmv(rng.standard_normal(coo.n_rows))
    plain = conjugate_gradient(csr.spmv, b, tol=1e-12)
    pre = preconditioned_conjugate_gradient(
        csr.spmv, b, jacobi_preconditioner(coo.diagonal()), tol=1e-12
    )
    assert np.allclose(plain.x, pre.x, atol=1e-7)


def test_pcg_nonzero_initial_guess(sym_dense_medium, rng):
    coo = COOMatrix.from_dense(sym_dense_medium)
    csr = CSRMatrix.from_coo(coo)
    x_true = rng.standard_normal(coo.n_rows)
    b = csr.spmv(x_true)
    res = preconditioned_conjugate_gradient(
        csr.spmv, b, jacobi_preconditioner(coo.diagonal()),
        x0=x_true * 0.9, tol=1e-12,
    )
    assert res.converged
    assert res.n_spmv == res.iterations + 1


def test_pcg_counter(sym_dense_medium, rng):
    coo = COOMatrix.from_dense(sym_dense_medium)
    csr = CSRMatrix.from_coo(coo)
    b = csr.spmv(rng.standard_normal(coo.n_rows))
    counter = OpCounter()
    res = preconditioned_conjugate_gradient(
        csr.spmv, b, jacobi_preconditioner(coo.diagonal()),
        tol=1e-10, counter=counter,
    )
    assert counter.flops == res.vector_flops > 0


def test_pcg_max_iter_cap(sym_dense_medium, rng):
    coo = COOMatrix.from_dense(sym_dense_medium)
    csr = CSRMatrix.from_coo(coo)
    b = csr.spmv(rng.standard_normal(coo.n_rows))
    res = preconditioned_conjugate_gradient(
        csr.spmv, b, jacobi_preconditioner(coo.diagonal()),
        tol=1e-300, max_iter=4,
    )
    assert not res.converged and res.iterations == 4


# ----------------------------------------------------------------------
# Breakdown guards: same contract as the plain CG.
# ----------------------------------------------------------------------
def _faulty_after(spmv, n_clean):
    calls = {"n": 0}

    def apply(x):
        calls["n"] += 1
        y = np.asarray(spmv(x))
        return np.full_like(y, np.nan) if calls["n"] > n_clean else y

    return apply


def test_pcg_nan_operator_breaks_down(sym_dense_medium, rng):
    csr = CSRMatrix.from_dense(sym_dense_medium)
    b = rng.standard_normal(sym_dense_medium.shape[0])
    precond = jacobi_preconditioner(np.diag(sym_dense_medium))
    res = preconditioned_conjugate_gradient(
        _faulty_after(csr.spmv, 2), b, precond, tol=1e-12, max_iter=500
    )
    assert not res.converged
    assert res.breakdown is not None
    assert res.breakdown.kind == "nonfinite"
    assert res.iterations <= 5  # within two iterations of the fault


def test_pcg_nan_preconditioner_breaks_down(sym_dense_medium, rng):
    csr = CSRMatrix.from_dense(sym_dense_medium)
    b = rng.standard_normal(sym_dense_medium.shape[0])

    def bad_precond(r):
        return np.full_like(r, np.nan)

    res = preconditioned_conjugate_gradient(
        csr.spmv, b, bad_precond, tol=1e-12, max_iter=500
    )
    assert not res.converged
    assert res.breakdown is not None
    assert res.breakdown.kind == "nonfinite"
    assert res.iterations == 0  # caught at the initial rᵀz


def test_pcg_indefinite_breakdown(rng):
    dense = np.diag([1.0, -1.0, 2.0])
    csr = CSRMatrix.from_dense(dense)
    precond = jacobi_preconditioner(np.array([1.0, 1.0, 2.0]))
    res = preconditioned_conjugate_gradient(
        csr.spmv, np.array([0.0, 1.0, 0.0]), precond, max_iter=100
    )
    assert not res.converged
    assert res.breakdown is not None
    assert res.breakdown.kind == "indefinite"
    assert res.iterations <= 2


def test_pcg_restart_recovers_transient_fault(sym_dense_medium, rng):
    csr = CSRMatrix.from_dense(sym_dense_medium)
    x_true = rng.standard_normal(sym_dense_medium.shape[0])
    b = sym_dense_medium @ x_true
    precond = jacobi_preconditioner(np.diag(sym_dense_medium))
    calls = {"n": 0}

    def transient(x):
        calls["n"] += 1
        y = csr.spmv(x)
        return np.full_like(y, np.nan) if calls["n"] == 3 else y

    res = preconditioned_conjugate_gradient(
        transient, b, precond, tol=1e-10, restart=True
    )
    assert res.converged
    assert res.breakdown is None
    assert np.allclose(res.x, x_true, atol=1e-5)
