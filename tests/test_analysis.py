"""Unit tests for the analysis layer (density, traffic, breakdowns,
preprocessing cost, report rendering)."""

import numpy as np
import pytest

from repro.analysis import (
    average_density,
    average_overhead,
    build_format,
    cg_breakdown,
    density_sweep,
    effective_region_density,
    preprocessing_cost,
    reduction_overhead_sweep,
    render_series,
    render_table,
    spmv_reduction_breakdown,
    ws_effective,
    ws_indexed,
    ws_naive,
)
from repro.formats import COOMatrix, CSRMatrix, SSSMatrix
from repro.machine import DUNNINGTON, GAINESTOWN
from repro.matrices import banded_random


@pytest.fixture(scope="module")
def mats():
    rng = np.random.default_rng(1)
    return {
        "banded": banded_random(3000, 8.0, 60, rng),
        "wide": banded_random(3000, 8.0, 1500, rng),
    }


def test_ws_equations():
    assert ws_naive(4, 100) == 3200
    assert ws_effective(4, 100) == 1200
    assert ws_indexed(4, 100, 0.1) == pytest.approx(240)


def test_density_decreases_with_threads(mats):
    sss = SSSMatrix.from_coo(mats["banded"])
    d4, _ = effective_region_density(sss, 4)
    d32, _ = effective_region_density(sss, 32)
    assert 0 < d32 < d4 <= 1.0


def test_density_sweep_and_average(mats):
    pts = density_sweep(mats, [2, 8, 32])
    assert len(pts) == 6
    avg = average_density(pts)
    assert set(avg) == {2, 8, 32}
    assert avg[32] < avg[2]


def test_density_sweep_skips_single_thread(mats):
    pts = density_sweep(mats, [1, 4])
    assert all(p.n_threads == 4 for p in pts)


def test_overhead_sweep_shapes(mats):
    pts = reduction_overhead_sweep(mats, [2, 8, 24])
    avg = average_overhead(pts)
    # Naive and effective grow linearly; indexed flattens (Fig. 5).
    naive_growth = avg["naive"][24] / avg["naive"][8]
    idx_growth = avg["indexed"][24] / avg["indexed"][8]
    assert naive_growth == pytest.approx(3.0, rel=0.01)
    assert idx_growth < naive_growth
    for p in (2, 8, 24):
        assert avg["indexed"][p] < avg["naive"][p]


def test_spmv_breakdown_reduce_ordering(mats):
    rows = spmv_reduction_breakdown(mats, DUNNINGTON, 16)
    by = {(r.matrix, r.method): r for r in rows}
    for name in mats:
        assert (
            by[(name, "indexed")].t_reduce
            < by[(name, "effective")].t_reduce
            < by[(name, "naive")].t_reduce
        )
        assert by[(name, "indexed")].reduce_fraction < 0.5


def test_cg_breakdown_components(mats):
    rows = cg_breakdown(
        {"banded": mats["banded"]}, DUNNINGTON, 8, iterations=128
    )
    assert {r.config for r in rows} == {"csr", "csx", "sss", "csx-sym"}
    for r in rows:
        assert r.total > 0
        if r.config in ("csr", "csx"):
            assert r.t_spmv_reduce == 0.0
        if r.config in ("csx", "csx-sym"):
            assert r.t_preproc > 0.0
        else:
            assert r.t_preproc == 0.0
        assert r.t_vector > 0


def test_preprocessing_cost_in_paper_range(mats):
    """§V-E: tens to ~hundred serial CSR SpM×V equivalents."""
    coo = mats["banded"]
    csr = CSRMatrix.from_coo(coo)
    csx, _ = build_format(coo, "csx", n_threads=16)
    cost_d = preprocessing_cost(csx, csr, DUNNINGTON, 24)
    cost_g = preprocessing_cost(csx, csr, GAINESTOWN, 16)
    assert 5 < cost_d.csr_spmv_equivalents < 500
    # NUMA preprocessing is more expensive (paper: 49 vs 94).
    assert cost_g.csr_spmv_equivalents > cost_d.csr_spmv_equivalents


def test_build_format_all_names(mats):
    coo = mats["banded"]
    for name in ("csr", "csx", "sss", "csx-sym"):
        m, parts = build_format(coo, name, n_threads=4)
        assert m.format_name == name
        assert len(parts) == 4
    with pytest.raises(ValueError):
        build_format(coo, "bsr")


def test_render_table_alignment():
    out = render_table(
        ["name", "value"], [["a", 1.5], ["bb", 2.25]], title="T"
    )
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert "1.500" in out and "2.250" in out


def test_render_series_grid():
    out = render_series(
        "p",
        {"a": {1: 0.5, 2: 1.0}, "b": {2: 2.0}},
    )
    assert "nan" in out  # missing (1, "b") cell
    assert out.splitlines()[0].startswith("p")
