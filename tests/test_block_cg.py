"""Tests for the multi-RHS (block) CG driver on the SpM×M fast path."""

import numpy as np
import pytest

from repro.formats import COOMatrix, SSSMatrix
from repro.parallel import ParallelSymmetricSpMV, partition_rows_equal
from repro.solvers import block_conjugate_gradient, conjugate_gradient
from repro.solvers.vecops import OpCounter

from tests.conftest import random_symmetric_dense


@pytest.fixture(scope="module")
def spd_setup():
    dense = random_symmetric_dense(80, density=0.06, seed=7, with_runs=True)
    sss = SSSMatrix.from_coo(COOMatrix.from_dense(dense))
    rng = np.random.default_rng(21)
    B = rng.standard_normal((80, 4))
    return dense, sss, B


def test_solves_multiple_rhs(spd_setup):
    dense, sss, B = spd_setup
    res = block_conjugate_gradient(sss.spmm, B, tol=1e-10)
    assert res.all_converged
    assert np.allclose(res.X, np.linalg.solve(dense, B), atol=1e-6)
    assert res.residual_norms.shape == (4,)
    assert np.all(res.residual_norms <= 1e-10 * np.linalg.norm(B, axis=0))


def test_matches_single_rhs_cg_columnwise(spd_setup):
    """Each column's iterate is the classic CG iterate: with a shared
    iteration budget the block solve reproduces k independent solves."""
    dense, sss, B = spd_setup
    block = block_conjugate_gradient(sss.spmm, B, tol=1e-12)
    for j in range(B.shape[1]):
        single = conjugate_gradient(sss.spmv, B[:, j], tol=1e-12)
        assert single.converged
        assert np.allclose(block.X[:, j], single.x, atol=1e-8)


def test_one_spmm_per_iteration(spd_setup):
    _, sss, B = spd_setup
    res = block_conjugate_gradient(sss.spmm, B, tol=1e-10)
    # Zero initial guess: no residual-seeding pass, then one per iter.
    assert res.n_spmm == res.iterations


def test_parallel_driver_as_operator(spd_setup):
    dense, sss, B = spd_setup
    parts = partition_rows_equal(sss.n_rows, 4)
    kernel = ParallelSymmetricSpMV(sss, parts, "indexed")
    res = block_conjugate_gradient(kernel, B, tol=1e-10)
    assert res.all_converged
    assert np.allclose(res.X, np.linalg.solve(dense, B), atol=1e-6)


def test_nonzero_initial_guess(spd_setup):
    dense, sss, B = spd_setup
    X_exact = np.linalg.solve(dense, B)
    X0 = X_exact + 1e-3
    res = block_conjugate_gradient(sss.spmm, B, X0=X0, tol=1e-10)
    assert res.all_converged
    assert np.allclose(res.X, X_exact, atol=1e-6)


def test_residual_history_shape(spd_setup):
    _, sss, B = spd_setup
    res = block_conjugate_gradient(
        sss.spmm, B, tol=1e-10, record_history=True
    )
    assert res.residual_history.shape == (res.iterations + 1, B.shape[1])
    # Final history row is the reported residual.
    assert np.allclose(res.residual_history[-1], res.residual_norms)


def test_zero_column_converges_immediately(spd_setup):
    _, sss, B = spd_setup
    B2 = B.copy()
    B2[:, 1] = 0.0
    res = block_conjugate_gradient(sss.spmm, B2, tol=1e-10)
    assert res.all_converged
    assert np.allclose(res.X[:, 1], 0.0)


def test_instrumentation_accumulates(spd_setup):
    _, sss, B = spd_setup
    counter = OpCounter()
    res = block_conjugate_gradient(sss.spmm, B, tol=1e-10, counter=counter)
    assert res.vector_flops > 0
    assert res.vector_bytes > 0
    assert counter.flops == res.vector_flops


def test_rejects_1d_rhs(spd_setup):
    _, sss, B = spd_setup
    with pytest.raises(ValueError):
        block_conjugate_gradient(sss.spmm, B[:, 0])
    with pytest.raises(ValueError):
        block_conjugate_gradient(sss.spmm, B, X0=B[:, :2])


def test_iteration_cap_reported():
    dense = random_symmetric_dense(60, density=0.1, seed=9)
    sss = SSSMatrix.from_coo(COOMatrix.from_dense(dense))
    B = np.random.default_rng(1).standard_normal((60, 3))
    res = block_conjugate_gradient(sss.spmm, B, tol=1e-14, max_iter=2)
    assert res.iterations == 2
    assert not res.all_converged


# ----------------------------------------------------------------------
# Per-column breakdown guards: a faulted column stalls with a typed
# diagnosis while healthy columns keep converging.
# ----------------------------------------------------------------------
def test_nan_column_stalls_others_converge(spd_setup):
    dense, sss, B = spd_setup
    bad = B.copy()
    bad[:, 1] = np.nan  # contaminate one right-hand side
    res = block_conjugate_gradient(sss.spmm, bad, tol=1e-10)
    assert not res.converged[1]
    assert res.breakdowns is not None
    assert res.breakdowns[1] is not None
    assert res.breakdowns[1].kind == "nonfinite"
    assert res.any_breakdown
    # The clean columns are untouched by the neighbour's fault.
    clean = [j for j in range(B.shape[1]) if j != 1]
    assert np.all(res.converged[clean])
    expected = np.linalg.solve(dense, B[:, clean])
    assert np.allclose(res.X[:, clean], expected, atol=1e-6)
    assert all(res.breakdowns[j] is None for j in clean)


def test_nan_column_does_not_burn_max_iter(spd_setup):
    # Regression: a NaN pᵀAp column used to be neither converged nor
    # stalled, so the shared loop ran to max_iter even when every other
    # column had finished.
    dense, sss, _ = spd_setup
    bad = np.full((dense.shape[0], 1), np.nan)
    res = block_conjugate_gradient(sss.spmm, bad, tol=1e-10, max_iter=800)
    assert not res.converged[0]
    assert res.breakdowns[0] is not None
    assert res.iterations <= 2


def test_indefinite_column_diagnosed():
    dense = np.diag([2.0, -1.0, 3.0])
    sss = SSSMatrix.from_coo(COOMatrix.from_dense(dense))
    B = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    res = block_conjugate_gradient(sss.spmm, B, tol=1e-12, max_iter=100)
    # Column 1 drives energy into the negative eigendirection.
    assert not res.converged[1]
    assert res.breakdowns[1] is not None
    assert res.breakdowns[1].kind == "indefinite"
    assert "column 1" in res.breakdowns[1].detail


def test_clean_solve_reports_no_breakdowns(spd_setup):
    dense, sss, B = spd_setup
    res = block_conjugate_gradient(sss.spmm, B, tol=1e-10)
    assert res.all_converged
    assert not res.any_breakdown
    assert all(bd is None for bd in res.breakdowns)
