"""Out-of-core sharded SpMV/CG: ingest, budget, chaos, checkpoints.

Covers the durability tentpole end to end: streaming ingest writes
checksummed shards whose fingerprint ties to the in-memory matrix; the
sharded operator matches the in-core drivers bit-for-bit under a
memory budget; injected disk faults are absorbed (retry, re-ingest) or
escalate typed; checkpointed CG survives corruption of its newest
generation and a SIGKILL mid-solve, resuming bit-identically.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.formats import COOMatrix, SSSMatrix
from repro.matrices.mmio import iter_coordinates, read_matrix_market
from repro.obs.tracer import Tracer, tracing
from repro.ooc import (
    CheckpointStore,
    ManifestError,
    MemoryBudgetError,
    ShardedOperator,
    ShardIOError,
    ShardStore,
    checkpointed_cg,
    crc32c,
    ingest_matrix_market,
    parse_memory_budget,
)
from repro.ooc.checkpoint import CheckpointStore as _CheckpointStore
from repro.ooc.errors import ShardChecksumError
from repro.parallel import (
    Executor,
    ParallelSymmetricSpMV,
    partition_rows_equal,
)
from repro.resilience import ChaosPlan
from repro.serve.registry import matrix_fingerprint
from repro.solvers.cg import CGState, conjugate_gradient
from repro.solvers.pcg import (
    jacobi_preconditioner,
    preconditioned_conjugate_gradient,
)

from .conftest import random_symmetric_dense


def write_mm(path: Path, dense: np.ndarray) -> Path:
    """Lower-triangle symmetric MatrixMarket file for ``dense``."""
    n = dense.shape[0]
    coords = [
        (i, j, float(dense[i, j]))
        for i in range(n)
        for j in range(i + 1)
        if dense[i, j] != 0.0
    ]
    lines = [
        "%%MatrixMarket matrix coordinate real symmetric",
        f"{n} {n} {len(coords)}",
    ]
    lines.extend(f"{i + 1} {j + 1} {v!r}" for i, j, v in coords)
    path.write_text("\n".join(lines) + "\n")
    return path


@pytest.fixture(scope="module")
def dense64():
    return random_symmetric_dense(64, density=0.08, seed=11)


@pytest.fixture()
def mm64(tmp_path, dense64):
    return write_mm(tmp_path / "A.mtx", dense64)


@pytest.fixture()
def store64(tmp_path, mm64):
    return ingest_matrix_market(mm64, tmp_path / "shards", n_shards=4)


# ----------------------------------------------------------------------
# CRC32C
# ----------------------------------------------------------------------
class TestCRC32C:
    def test_known_vectors(self):
        # RFC 3720 appendix B.4 test vectors (Castagnoli).
        assert crc32c(b"") == 0
        assert crc32c(b"123456789") == 0xE3069283
        assert crc32c(bytes(32)) == 0x8A9136AA
        assert crc32c(bytes([0xFF] * 32)) == 0x62A8AB43

    def test_streaming_composition(self):
        data = bytes(range(256)) * 7 + b"tail"
        whole = crc32c(data)
        for split in (0, 1, 8, 100, len(data)):
            assert crc32c(data[split:], crc32c(data[:split])) == whole


# ----------------------------------------------------------------------
# Streaming MatrixMarket iteration
# ----------------------------------------------------------------------
class TestIterCoordinates:
    def test_chunks_concatenate_to_full_read(self, mm64):
        ref = read_matrix_market(mm64)
        header, chunks = iter_coordinates(mm64, chunk_nnz=17)
        assert header.symmetric
        assert (header.n_rows, header.n_cols) == ref.shape
        rows, cols, vals = [], [], []
        for r, c, v in chunks:
            assert r.size <= 17
            rows.append(r)
            cols.append(c)
            vals.append(v)
        got = COOMatrix(
            ref.shape, np.concatenate(rows), np.concatenate(cols),
            np.concatenate(vals),
        )
        # Chunks keep the lower triangle unmirrored; expanding by
        # symmetry must reproduce the eagerly-read matrix.
        dense = got.to_dense()
        dense = (
            np.tril(dense) + np.tril(dense, -1).T
        )
        assert np.array_equal(dense, ref.to_dense())

    def test_count_mismatch_detected(self, tmp_path):
        from repro.matrices.mmio import ParseError

        short = tmp_path / "short.mtx"
        short.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 4\n1 1 1.0\n2 2 1.0\n"
        )
        _, chunks = iter_coordinates(short, chunk_nnz=8)
        with pytest.raises(ParseError, match="found 2"):
            list(chunks)
        extra = tmp_path / "extra.mtx"
        extra.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 1\n1 1 1.0\n2 2 1.0\n"
        )
        _, chunks = iter_coordinates(extra, chunk_nnz=8)
        with pytest.raises(ParseError, match="more than 1"):
            list(chunks)


# ----------------------------------------------------------------------
# Ingest + manifest
# ----------------------------------------------------------------------
class TestIngest:
    def test_round_trip_dense(self, store64, dense64):
        got = np.zeros_like(dense64)
        for data in store64.iter_shards():
            s = data.row_start
            for li in range(data.row_end - s):
                r = s + li
                got[r, r] = data.dvalues[li]
                for k in range(data.rowptr[li], data.rowptr[li + 1]):
                    c = int(data.colind[k])
                    got[r, c] = got[c, r] = data.values[k]
        assert np.array_equal(got, dense64)

    def test_fingerprint_ties_to_registry_scheme(
        self, store64, dense64
    ):
        coo = COOMatrix.from_dense(dense64)
        assert store64.fingerprint == matrix_fingerprint(
            coo.lower_triangle()
        )

    def test_fingerprint_invariant_to_chunking_and_sharding(
        self, tmp_path, mm64, store64
    ):
        other = ingest_matrix_market(
            mm64, tmp_path / "shards2", n_shards=7, chunk_nnz=13
        )
        assert other.fingerprint == store64.fingerprint

    def test_shards_tile_rows(self, store64):
        assert store64.shards[0].row_start == 0
        for a, b in zip(store64.shards, store64.shards[1:]):
            assert a.row_end == b.row_start
        assert store64.shards[-1].row_end == store64.n_rows

    def test_general_qualifier_rejected(self, tmp_path):
        bad = tmp_path / "general.mtx"
        bad.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n1 1 1.0\n"
        )
        with pytest.raises(ManifestError, match="symmetric"):
            ingest_matrix_market(bad, tmp_path / "out")

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ManifestError, match="no shard manifest"):
            ShardStore(tmp_path)

    def test_tampered_manifest_schema(self, tmp_path, store64):
        path = store64.directory / "manifest.json"
        doc = json.loads(path.read_text())
        doc["schema"] = "bogus-v9"
        path.write_text(json.dumps(doc))
        with pytest.raises(ManifestError, match="schema"):
            ShardStore(store64.directory)


# ----------------------------------------------------------------------
# Fault containment on the read path
# ----------------------------------------------------------------------
class TestShardFaults:
    def test_transient_faults_absorbed(self, store64):
        plan = ChaosPlan(3, io_faults={
            (0, 0): "read_error",
            (1, 0): "torn_write",
            (2, 0): "checksum_flip",
        })
        chaotic = ShardStore(
            store64.directory, chaos=plan, max_retries=2
        )
        clean = [store64.load(i).values for i in range(3)]
        for i in range(3):
            assert np.array_equal(chaotic.load(i).values, clean[i])

    def test_durable_corruption_reingested(self, store64):
        info = store64.shards[1]
        path = store64.directory / info.file
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 3] ^= 0xFF
        path.write_bytes(bytes(raw))
        data = store64.load(1)
        assert data.row_start == info.row_start
        # The file was rewritten with the manifest bytes.
        assert crc32c(path.read_bytes()) == info.crc32c

    def test_exhaustion_raises_typed(self, store64):
        plan = ChaosPlan(5, p_io=1.0)
        chaotic = ShardStore(
            store64.directory, chaos=plan, max_retries=1
        )
        with pytest.raises(ShardIOError) as err:
            chaotic.load(0)
        assert err.value.index == 0
        assert err.value.attempts == 3  # 2 reads + post-reingest read
        assert isinstance(err.value, RuntimeError)

    def test_source_drift_detected(self, tmp_path, store64, dense64):
        # Re-ingest must refuse a source that no longer matches.
        changed = dense64.copy()
        changed[0, 0] += 1.0
        write_mm(Path(store64.source["path"]), changed)
        with pytest.raises(ManifestError, match="changed since ingest"):
            store64.reingest(0)

    def test_errors_pickle(self):
        for exc in (
            ShardChecksumError(3, "boom"),
            ShardIOError(1, 4, OSError("x")),
        ):
            back = pickle.loads(pickle.dumps(exc))
            assert type(back) is type(exc)
            assert back.index == exc.index


# ----------------------------------------------------------------------
# ShardedOperator
# ----------------------------------------------------------------------
class TestShardedOperator:
    def test_matches_incore_driver(self, store64, dense64):
        coo = COOMatrix.from_dense(dense64)
        incore = ParallelSymmetricSpMV(
            SSSMatrix.from_coo(coo),
            partition_rows_equal(coo.n_rows, 2), "indexed",
        )
        op = ShardedOperator(store64, n_threads=2)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(coo.n_cols)
        assert np.allclose(op(x), incore(x), rtol=1e-13, atol=1e-12)
        X = rng.standard_normal((coo.n_cols, 3))
        assert np.allclose(op(X), incore(X), rtol=1e-13, atol=1e-12)

    def test_repeat_apply_bit_identical_across_evictions(
        self, store64
    ):
        budget = max(i.n_bytes for i in store64.shards) + 1
        op = ShardedOperator(store64, memory_budget=budget)
        x = np.random.default_rng(1).standard_normal(store64.n_cols)
        assert np.array_equal(op(x), op(x))

    def test_budget_enforced_and_counted(self, store64):
        sizes = [i.n_bytes for i in store64.shards]
        budget = max(sizes) * 2
        tracer = Tracer()
        with tracing(tracer):
            op = ShardedOperator(store64, memory_budget=budget)
            op(np.ones(store64.n_cols))
            op(np.ones(store64.n_cols))
        assert op.peak_resident_bytes <= budget
        counters = tracer.counters()
        assert counters["ooc.shards_loaded"] > store64.n_shards
        assert counters["ooc.shard_evictions"] > 0
        assert counters["ooc.applies"] == 2

    def test_unbounded_caches_all_shards(self, store64):
        tracer = Tracer()
        with tracing(tracer):
            op = ShardedOperator(store64)
            op(np.ones(store64.n_cols))
            op(np.ones(store64.n_cols))
        counters = tracer.counters()
        assert counters["ooc.shards_loaded"] == store64.n_shards
        assert counters["ooc.shard_hits"] == store64.n_shards

    def test_impossible_budget_rejected(self, store64):
        largest = max(i.n_bytes for i in store64.shards)
        with pytest.raises(MemoryBudgetError, match="largest shard"):
            ShardedOperator(store64, memory_budget=largest - 1)
        with pytest.raises(ValueError):
            ShardedOperator(store64, memory_budget="0")

    def test_threads_backend_matches_serial(self, store64):
        x = np.random.default_rng(2).standard_normal(store64.n_cols)
        serial = ShardedOperator(store64, n_threads=3)(x)
        ex = Executor("threads", max_workers=3)
        try:
            threaded = ShardedOperator(
                store64, n_threads=3, executor=ex
            )(x)
        finally:
            ex.close()
        assert np.array_equal(serial, threaded)

    def test_parse_memory_budget(self):
        assert parse_memory_budget("64K") == 64 * 1024
        assert parse_memory_budget("8m") == 8 << 20
        assert parse_memory_budget("123") == 123
        assert parse_memory_budget(None) is None
        with pytest.raises(ValueError):
            parse_memory_budget("eight")


# ----------------------------------------------------------------------
# Checkpoint durability
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def _state(self, seed: int) -> dict:
        rng = np.random.default_rng(seed)
        return {
            "solver": "cg", "iteration": seed, "rs": rng.random(),
            "res_norm": rng.random(), "best_residual": rng.random(),
            "iters_since_improvement": 0,
            "x": rng.standard_normal(10),
            "r": rng.standard_normal(10),
            "p": rng.standard_normal(10),
        }

    def test_round_trip(self, tmp_path):
        ck = CheckpointStore(tmp_path)
        state = self._state(3)
        ck.save(3, state)
        got = ck.load(3)
        for key, value in state.items():
            if isinstance(value, np.ndarray):
                assert np.array_equal(got[key], value)
            else:
                assert got[key] == value
        # Loaded arrays must be writable (solvers mutate them).
        got["x"][0] = 42.0

    def test_prunes_to_keep(self, tmp_path):
        ck = CheckpointStore(tmp_path, keep=2)
        for gen in (1, 2, 3, 4):
            ck.save(gen, self._state(gen))
        assert ck.generations() == [3, 4]

    def test_corrupt_newest_falls_back(self, tmp_path):
        ck = CheckpointStore(tmp_path, keep=3)
        for gen in (5, 10):
            ck.save(gen, self._state(gen))
        path = ck._path(10)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x10
        path.write_bytes(bytes(raw))
        generation, state = ck.latest()
        assert generation == 5
        assert state["iteration"] == 5

    def test_truncated_newest_falls_back(self, tmp_path):
        ck = CheckpointStore(tmp_path, keep=3)
        ck.save(1, self._state(1))
        ck.save(2, self._state(2))
        path = ck._path(2)
        path.write_bytes(path.read_bytes()[:10])
        generation, _ = ck.latest()
        assert generation == 1

    def test_all_corrupt_returns_none(self, tmp_path):
        ck = CheckpointStore(tmp_path)
        ck.save(1, self._state(1))
        ck._path(1).write_bytes(b"garbage")
        assert ck.latest() is None
        assert CheckpointStore(tmp_path / "empty").latest() is None

    def test_chaos_torn_save_recovers_previous(self, tmp_path):
        plan = ChaosPlan(1, io_faults={(2, 0): "torn_write"})
        ck = _CheckpointStore(tmp_path, chaos=plan, keep=3)
        ck.save(1, self._state(1))
        ck.save(2, self._state(2))  # made durable torn
        generation, _ = ck.latest()
        assert generation == 1


# ----------------------------------------------------------------------
# Resume bit-identity (solver level)
# ----------------------------------------------------------------------
class TestSolverResume:
    def _system(self, n=80, seed=4):
        rng = np.random.default_rng(seed)
        M = rng.normal(size=(n, n))
        A = M @ M.T + n * np.eye(n)
        return A, rng.normal(size=n)

    def test_cg_resume_bit_identical(self):
        A, b = self._system()
        spmv = lambda v: A @ v  # noqa: E731
        full = conjugate_gradient(spmv, b, tol=1e-10)
        states = []
        conjugate_gradient(
            spmv, b, tol=1e-10,
            checkpoint=lambda s: states.append(
                CGState.from_dict(s.to_dict())
            ),
            checkpoint_every=3,
        )
        for state in states[:-1]:
            res = conjugate_gradient(
                spmv, b, tol=1e-10, resume_from=state
            )
            assert np.array_equal(res.x, full.x)
            assert res.iterations == full.iterations
            assert res.converged

    def test_pcg_resume_bit_identical(self):
        A, b = self._system(seed=5)
        spmv = lambda v: A @ v  # noqa: E731
        pre = jacobi_preconditioner(np.diag(A))
        full = preconditioned_conjugate_gradient(
            spmv, b, pre, tol=1e-10
        )
        states = []
        preconditioned_conjugate_gradient(
            spmv, b, pre, tol=1e-10,
            checkpoint=lambda s: states.append(
                CGState.from_dict(s.to_dict())
            ),
            checkpoint_every=2,
        )
        res = preconditioned_conjugate_gradient(
            spmv, b, pre, tol=1e-10, resume_from=states[0]
        )
        assert np.array_equal(res.x, full.x)
        assert res.iterations == full.iterations

    def test_cross_solver_state_rejected(self):
        A, b = self._system(seed=6)
        spmv = lambda v: A @ v  # noqa: E731
        states = []
        conjugate_gradient(
            spmv, b, tol=1e-8,
            checkpoint=lambda s: states.append(s.to_dict()),
            checkpoint_every=1,
        )
        state = CGState.from_dict(states[0])
        with pytest.raises(ValueError, match="cannot resume"):
            preconditioned_conjugate_gradient(
                spmv, b, jacobi_preconditioner(np.diag(A)),
                resume_from=state,
            )

    def test_resumed_state_already_converged(self):
        A, b = self._system(seed=7)
        spmv = lambda v: A @ v  # noqa: E731
        states = []
        full = conjugate_gradient(
            spmv, b, tol=1e-6,
            checkpoint=lambda s: states.append(
                CGState.from_dict(s.to_dict())
            ),
            checkpoint_every=1,
        )
        # Resuming with a looser tolerance than the state's residual
        # ends immediately at the checkpointed iteration.
        res = conjugate_gradient(
            spmv, b, tol=1e-1, resume_from=states[-1]
        )
        assert res.converged
        assert res.iterations == states[-1].iteration
        assert full.converged


# ----------------------------------------------------------------------
# Checkpointed out-of-core CG, end to end
# ----------------------------------------------------------------------
class TestCheckpointedCG:
    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_interrupt_and_resume_bit_identical(
        self, tmp_path, store64, backend
    ):
        executor = (
            Executor("threads", max_workers=2)
            if backend == "threads" else None
        )
        try:
            op = ShardedOperator(
                store64, n_threads=2, executor=executor
            )
            b = np.random.default_rng(9).standard_normal(
                store64.n_rows
            )
            full = checkpointed_cg(op, b, tol=1e-10)
            assert full.result.converged
            ck = CheckpointStore(tmp_path / backend)
            cut = max(2, full.result.iterations // 2)
            checkpointed_cg(
                op, b, tol=1e-10, max_iter=cut,
                store=ck, checkpoint_every=2,
            )
            resumed = checkpointed_cg(
                op, b, tol=1e-10, store=ck, checkpoint_every=2,
                resume=True,
            )
            assert resumed.resumed_from is not None
            assert np.array_equal(resumed.result.x, full.result.x)
            assert resumed.result.iterations == full.result.iterations
        finally:
            if executor is not None:
                executor.close()

    def test_corrupt_newest_generation_still_resumes(
        self, tmp_path, store64
    ):
        op = ShardedOperator(store64, n_threads=2)
        b = np.random.default_rng(9).standard_normal(store64.n_rows)
        full = checkpointed_cg(op, b, tol=1e-10)
        ck = CheckpointStore(tmp_path / "ck")
        checkpointed_cg(
            op, b, tol=1e-10,
            max_iter=max(3, full.result.iterations // 2),
            store=ck, checkpoint_every=1,
        )
        gens = ck.generations()
        newest = ck._path(gens[-1])
        newest.write_bytes(newest.read_bytes()[:7])
        resumed = checkpointed_cg(
            op, b, tol=1e-10, store=ck, checkpoint_every=1,
            resume=True,
        )
        assert resumed.resumed_from == gens[-2]
        assert np.array_equal(resumed.result.x, full.result.x)

    def test_empty_store_resume_is_fresh_start(
        self, tmp_path, store64
    ):
        op = ShardedOperator(store64, n_threads=2)
        b = np.random.default_rng(9).standard_normal(store64.n_rows)
        full = checkpointed_cg(op, b, tol=1e-10)
        fresh = checkpointed_cg(
            op, b, tol=1e-10,
            store=CheckpointStore(tmp_path / "empty"), resume=True,
        )
        assert fresh.resumed_from is None
        assert np.array_equal(fresh.result.x, full.result.x)

    def test_jacobi_path(self, tmp_path, store64):
        op = ShardedOperator(store64, n_threads=2)
        b = np.random.default_rng(10).standard_normal(store64.n_rows)
        full = checkpointed_cg(op, b, tol=1e-10, precond="jacobi")
        ck = CheckpointStore(tmp_path / "pck")
        checkpointed_cg(
            op, b, tol=1e-10, precond="jacobi", max_iter=3,
            store=ck, checkpoint_every=1,
        )
        resumed = checkpointed_cg(
            op, b, tol=1e-10, precond="jacobi", store=ck,
            checkpoint_every=1, resume=True,
        )
        assert np.array_equal(resumed.result.x, full.result.x)

    def test_compute_chaos_interrupt_contained_then_resumes(
        self, tmp_path, store64
    ):
        """An injected io fault storm aborts the solve typed; dialing
        chaos off and resuming completes bit-identically."""
        op = ShardedOperator(store64, n_threads=2)
        b = np.random.default_rng(9).standard_normal(store64.n_rows)
        full = checkpointed_cg(op, b, tol=1e-10)
        ck = CheckpointStore(tmp_path / "chaos")
        # Faults kick in from attempt-keyed chaos after a few clean
        # iterations' worth of loads: run a capped prefix cleanly...
        checkpointed_cg(
            op, b, tol=1e-10, max_iter=4, store=ck,
            checkpoint_every=2,
        )
        # ... then hit a fatal io storm mid-solve.
        storm = ShardStore(
            store64.directory, chaos=ChaosPlan(5, p_io=1.0),
            max_retries=1,
        )
        with pytest.raises(ShardIOError):
            checkpointed_cg(
                ShardedOperator(storm, n_threads=2), b, tol=1e-10,
                store=ck, checkpoint_every=2, resume=True,
            )
        # Recovery: same store, chaos cleared, resume.
        resumed = checkpointed_cg(
            op, b, tol=1e-10, store=ck, checkpoint_every=2,
            resume=True,
        )
        assert resumed.resumed_from is not None
        assert np.array_equal(resumed.result.x, full.result.x)
        assert resumed.result.iterations == full.result.iterations


# ----------------------------------------------------------------------
# CLI + SIGKILL crash safety
# ----------------------------------------------------------------------
def _laplacian_mm(path: Path, n: int) -> Path:
    # Shifted 1D Laplacian: the shift keeps CG's residual decreasing
    # steadily (the unshifted operator plateaus past the stagnation
    # guard's window) while still needing a few hundred iterations.
    lines = [
        "%%MatrixMarket matrix coordinate real symmetric",
        f"{n} {n} {2 * n - 1}",
    ]
    for i in range(1, n + 1):
        lines.append(f"{i} {i} 2.01")
        if i > 1:
            lines.append(f"{i} {i - 1} -1.0")
    path.write_text("\n".join(lines) + "\n")
    return path


class TestCLI:
    def test_ingest_spmv_cg(self, tmp_path, mm64, capsys):
        out = tmp_path / "sh"
        assert main(["ooc", "ingest", str(mm64), str(out),
                     "--n-shards", "3"]) == 0
        assert "3 shard(s)" in capsys.readouterr().out
        assert main(["ooc", "spmv", str(out), "--memory-budget", "1M",
                     "--json", str(tmp_path / "s.json")]) == 0
        doc = json.loads((tmp_path / "s.json").read_text())
        assert doc["peak_resident_bytes"] <= doc["memory_budget"]
        assert main(["ooc", "cg", str(out), "--tol", "1e-8",
                     "--json", str(tmp_path / "c.json")]) == 0
        doc = json.loads((tmp_path / "c.json").read_text())
        assert doc["converged"] and doc["resumed_from"] is None

    def test_validation_errors_exit_2(self, tmp_path, mm64, capsys):
        out = tmp_path / "sh"
        main(["ooc", "ingest", str(mm64), str(out), "--n-shards", "2"])
        assert main(["ooc", "spmv", str(out),
                     "--memory-budget", "1"]) == 2
        assert main(["ooc", "spmv", str(tmp_path / "nowhere")]) == 2
        capsys.readouterr()

    def test_io_fault_storm_exits_1(self, tmp_path, mm64, capsys):
        out = tmp_path / "sh"
        main(["ooc", "ingest", str(mm64), str(out), "--n-shards", "2"])
        assert main(["ooc", "spmv", str(out),
                     "--chaos-io", "1.0"]) == 1
        assert "unreadable" in capsys.readouterr().err

    def test_sigkill_resume_bit_identical(self, tmp_path):
        """Kill -9 mid-solve; --resume completes bit-identically."""
        mm = _laplacian_mm(tmp_path / "lap.mtx", 600)
        shards = tmp_path / "shards"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[1] / "src"
        )
        run = [sys.executable, "-m", "repro.cli", "ooc"]
        subprocess.run(
            run + ["ingest", str(mm), str(shards), "--n-shards", "4"],
            env=env, check=True, capture_output=True,
        )
        solve = run + [
            "cg", str(shards), "--tol", "1e-10",
            "--memory-budget", "64K",
            "--checkpoint-dir", str(tmp_path / "ck"),
            "--checkpoint-every", "5", "--seed", "7",
        ]
        # Reference: uninterrupted solve.
        ref = subprocess.run(
            solve + ["--json", str(tmp_path / "full.json")],
            env=env, check=True, capture_output=True,
        )
        full = json.loads((tmp_path / "full.json").read_text())
        assert full["converged"]
        for stale in Path(tmp_path / "ck").glob("ckpt_*.bin"):
            stale.unlink()

        # Victim: same solve, SIGKILLed once a checkpoint is durable.
        victim = subprocess.Popen(
            solve, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + 60
        try:
            while time.monotonic() < deadline:
                if list((tmp_path / "ck").glob("ckpt_*.bin")):
                    break
                if victim.poll() is not None:
                    break
                time.sleep(0.002)
            if victim.poll() is None:
                victim.send_signal(signal.SIGKILL)
        finally:
            victim.wait(timeout=30)
        assert list((tmp_path / "ck").glob("ckpt_*.bin"))

        resumed = subprocess.run(
            solve + ["--resume", "--json", str(tmp_path / "res.json")],
            env=env, check=True, capture_output=True,
        )
        res = json.loads((tmp_path / "res.json").read_text())
        assert res["converged"]
        assert res["resumed_from"] is not None
        assert res["x_sha256"] == full["x_sha256"]
        assert res["iterations"] == full["iterations"]
