"""Additional analysis-layer tests: breakdown dataclasses, platform
cache accounting, configuration consistency."""

import numpy as np
import pytest

from repro.analysis import build_format, thread_partitions
from repro.analysis.breakdown import CGBreakdown, SpmvBreakdown
from repro.machine import DUNNINGTON, GAINESTOWN
from repro.matrices import banded_random
from repro.parallel import validate_partitions


def test_spmv_breakdown_properties():
    b = SpmvBreakdown("m", "indexed", t_mult=3.0, t_reduce=1.0)
    assert b.total == 4.0
    assert b.reduce_fraction == pytest.approx(0.25)
    zero = SpmvBreakdown("m", "indexed", 0.0, 0.0)
    assert zero.reduce_fraction == 0.0


def test_cg_breakdown_total():
    b = CGBreakdown(
        "m", "csx-sym", iterations=10,
        t_spmv_mult=1.0, t_spmv_reduce=0.5, t_vector=2.0, t_preproc=0.25,
    )
    assert b.total == pytest.approx(3.75)


def test_cache_bytes_per_thread_includes_l2():
    # Dunnington: 64 MiB LLC / 24 + 3 MiB L2 per 2 cores.
    per_thread = DUNNINGTON.cache_bytes_per_thread(24)
    llc_share = DUNNINGTON.llc_bytes_available(24) / 24
    l2_share = 3 * 1024 * 1024 / 2
    assert per_thread == pytest.approx(llc_share + l2_share)


def test_cache_bytes_gainestown_private_l2():
    per_thread = GAINESTOWN.cache_bytes_per_thread(8)
    assert per_thread == pytest.approx(
        GAINESTOWN.llc_bytes_available(8) / 8 + 256 * 1024
    )


def test_thread_partitions_cover(rng):
    coo = banded_random(500, 8.0, 40, rng)
    for p in (1, 3, 7, 16):
        parts = thread_partitions(coo, p, symmetric=True)
        validate_partitions(parts, coo.n_rows)
        parts_u = thread_partitions(coo, p, symmetric=False)
        validate_partitions(parts_u, coo.n_rows)


def test_build_format_partitions_match_matrix(rng):
    """CSX formats bake partitions in; build_format must return the
    exact ones the matrix was preprocessed for."""
    coo = banded_random(400, 8.0, 30, rng)
    csx, parts = build_format(coo, "csx", 5)
    assert [(p.row_start, p.row_end) for p in csx.partitions] == parts
    csxs, parts_s = build_format(coo, "csx-sym", 5)
    assert csxs.partition_bounds == parts_s


def test_build_format_single_thread_default(rng):
    coo = banded_random(300, 6.0, 20, rng)
    matrix, parts = build_format(coo, "sss")
    assert parts == [(0, coo.n_rows)]
