"""Cross-format conformance suite (see ``tests/conformance.py``).

Every storage format and every parallel-driver combination runs the
same seeded battery of edge-case matrices against the dense reference:

* serial SpM×V and multi-RHS SpM×M (k ∈ {1, 4}) for all formats;
* the two-phase symmetric driver for every (format × reduction ×
  partition layout), 1-D and 2-D;
* the unsymmetric driver (CSR / CSX) across the same layouts.
"""

import numpy as np
import pytest

from repro.parallel import ParallelSpMV, ParallelSymmetricSpMV, live_segments

from tests.conformance import (
    CASES,
    EXECUTOR_BACKENDS,
    PARTITION_LAYOUTS,
    REDUCTIONS,
    SERIAL_FORMATS,
    SYMMETRIC_FORMATS,
    UNSYMMETRIC_DRIVER_FORMATS,
    build_format,
    build_symmetric,
    build_unsymmetric,
    chaos_benign_executor,
    make_backend_executor,
    reference_product,
    rhs_block,
    skip_unless_supported,
)

CASE_NAMES = sorted(CASES)
KS = (1, 4)


@pytest.mark.parametrize("fmt", SERIAL_FORMATS)
@pytest.mark.parametrize("case", CASE_NAMES)
def test_serial_spmv_matches_dense(case, fmt):
    m = build_format(case, fmt)
    x = rhs_block(m.n_cols, None)
    assert np.allclose(m.spmv(x), reference_product(case, x))


@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("fmt", SERIAL_FORMATS)
@pytest.mark.parametrize("case", CASE_NAMES)
def test_serial_spmm_matches_dense(case, fmt, k):
    m = build_format(case, fmt)
    X = rhs_block(m.n_cols, k)
    Y = m.spmm(X)
    assert Y.shape == (m.n_rows, k)
    assert np.allclose(Y, reference_product(case, X))
    # Second call exercises the cached-scatter path.
    assert np.allclose(m.spmm(X), reference_product(case, X))


@pytest.mark.parametrize("fmt", SERIAL_FORMATS)
@pytest.mark.parametrize("case", CASE_NAMES)
def test_roundtrip_to_dense(case, fmt):
    m = build_format(case, fmt)
    assert np.allclose(m.to_dense(), CASES[case].dense)


@pytest.mark.parametrize("layout", PARTITION_LAYOUTS)
@pytest.mark.parametrize("method", REDUCTIONS)
@pytest.mark.parametrize("fmt", SYMMETRIC_FORMATS)
@pytest.mark.parametrize("case", CASE_NAMES)
def test_symmetric_driver_spmv(case, fmt, method, layout):
    skip_unless_supported(fmt, method)
    matrix, parts = build_symmetric(case, fmt, layout)
    kernel = ParallelSymmetricSpMV(matrix, parts, method)
    x = rhs_block(matrix.n_cols, None)
    assert np.allclose(kernel(x), reference_product(case, x))


@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("layout", ["thirds", "per_row"])
@pytest.mark.parametrize("method", REDUCTIONS)
@pytest.mark.parametrize("fmt", SYMMETRIC_FORMATS)
@pytest.mark.parametrize("case", CASE_NAMES)
def test_symmetric_driver_spmm(case, fmt, method, layout, k):
    skip_unless_supported(fmt, method)
    matrix, parts = build_symmetric(case, fmt, layout)
    kernel = ParallelSymmetricSpMV(matrix, parts, method)
    X = rhs_block(matrix.n_cols, k)
    expected = reference_product(case, X)
    assert np.allclose(kernel(X), expected)
    # The 2-D block path and k column-by-column passes must agree.
    stacked = np.stack(
        [kernel(X[:, j].copy()) for j in range(k)], axis=1
    )
    assert np.allclose(stacked, expected)


@pytest.mark.parametrize("layout", PARTITION_LAYOUTS)
@pytest.mark.parametrize("fmt", UNSYMMETRIC_DRIVER_FORMATS)
@pytest.mark.parametrize("case", CASE_NAMES)
def test_unsymmetric_driver_spmv(case, fmt, layout):
    matrix, parts = build_unsymmetric(case, fmt, layout)
    kernel = ParallelSpMV(matrix, parts)
    x = rhs_block(matrix.n_cols, None)
    assert np.allclose(kernel(x), reference_product(case, x))


@pytest.mark.parametrize("k", KS)
@pytest.mark.parametrize("fmt", UNSYMMETRIC_DRIVER_FORMATS)
@pytest.mark.parametrize("case", CASE_NAMES)
def test_unsymmetric_driver_spmm(case, fmt, k):
    matrix, parts = build_unsymmetric(case, fmt, "thirds")
    kernel = ParallelSpMV(matrix, parts)
    X = rhs_block(matrix.n_cols, k)
    assert np.allclose(kernel(X), reference_product(case, X))


def _plan_seed(*labels: str) -> int:
    """Deterministic plan seed per parametrization (hash() is
    randomized per process, so it would not reproduce across runs)."""
    return sum(ord(c) for c in "/".join(labels))


# ----------------------------------------------------------------------
# Chaos-mode sweep: when the injected faults are delays and reordered
# completions only, the two-phase algorithm is data-race-free by
# construction (disjoint writes + caller-thread reduction), so every
# driver must produce output *bit-identical* to its serial execution.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k", [None, 3])
@pytest.mark.parametrize("method", REDUCTIONS)
@pytest.mark.parametrize("fmt", SYMMETRIC_FORMATS)
@pytest.mark.parametrize("case", CASE_NAMES)
def test_symmetric_driver_chaos_bit_identical(case, fmt, method, k):
    skip_unless_supported(fmt, method)
    matrix, parts = build_symmetric(case, fmt, "thirds")
    x = rhs_block(matrix.n_cols, k)
    serial = ParallelSymmetricSpMV(matrix, parts, method)(x)
    ex = chaos_benign_executor(seed=_plan_seed(case, fmt, method))
    try:
        chaotic = ParallelSymmetricSpMV(
            matrix, parts, method, executor=ex
        )(x)
    finally:
        ex.close()
    assert np.array_equal(serial, chaotic)


@pytest.mark.parametrize("k", [None, 3])
@pytest.mark.parametrize("fmt", UNSYMMETRIC_DRIVER_FORMATS)
@pytest.mark.parametrize("case", CASE_NAMES)
def test_unsymmetric_driver_chaos_bit_identical(case, fmt, k):
    matrix, parts = build_unsymmetric(case, fmt, "thirds")
    x = rhs_block(matrix.n_cols, k)
    serial = ParallelSpMV(matrix, parts)(x)
    ex = chaos_benign_executor(seed=_plan_seed(case, fmt))
    try:
        chaotic = ParallelSpMV(matrix, parts, executor=ex)(x)
    finally:
        ex.close()
    assert np.array_equal(serial, chaotic)


@pytest.mark.parametrize("fmt", SYMMETRIC_FORMATS)
def test_bound_operator_chaos_bit_identical(fmt):
    matrix, parts = build_symmetric("random", fmt, "thirds")
    x = rhs_block(matrix.n_cols, None)
    serial = ParallelSymmetricSpMV(matrix, parts, "indexed")(x)
    ex = chaos_benign_executor(seed=7)
    op = ParallelSymmetricSpMV(
        matrix, parts, "indexed", executor=ex
    ).bind()
    try:
        assert np.array_equal(op(x), serial)
        assert np.array_equal(op(x), serial)  # workspace reuse
    finally:
        op.close()
        ex.close()


@pytest.mark.parametrize("fmt", SYMMETRIC_FORMATS)
def test_driver_output_block_reuse(fmt):
    """A caller-provided (n, k) output block is cleared and filled."""
    matrix, parts = build_symmetric("random", fmt, "thirds")
    kernel = ParallelSymmetricSpMV(matrix, parts, "indexed")
    X = rhs_block(matrix.n_cols, 3)
    Y = np.full((matrix.n_rows, 3), -7.5)
    out = kernel(X, Y)
    assert out is Y
    assert np.allclose(Y, reference_product("random", X))


# ----------------------------------------------------------------------
# Cross-backend sweep: the same bound operator on every executor
# backend must be *bit-identical* to serial — same kernels, same shared
# workspaces layout, same summation order. ``processes`` additionally
# must leave zero shared-memory segments behind (skipped gracefully
# where the platform has no working shared memory).
# ----------------------------------------------------------------------
def _run_bound(driver, x):
    op = driver.bind(None if x.ndim == 1 else x.shape[1])
    try:
        return np.array(op(x))
    finally:
        op.close()


@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
@pytest.mark.parametrize("method", REDUCTIONS)
@pytest.mark.parametrize("fmt", SYMMETRIC_FORMATS)
@pytest.mark.parametrize("case", CASE_NAMES)
def test_symmetric_backend_bit_identical(case, fmt, method, backend):
    skip_unless_supported(fmt, method)
    matrix, parts = build_symmetric(case, fmt, "thirds")
    x = rhs_block(matrix.n_cols, None)
    serial = np.array(ParallelSymmetricSpMV(matrix, parts, method)(x))
    ex = make_backend_executor(backend)
    try:
        got = _run_bound(
            ParallelSymmetricSpMV(matrix, parts, method, executor=ex), x
        )
    finally:
        ex.close()
    assert np.array_equal(got, serial)
    if backend == "processes":
        assert not live_segments()


@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
@pytest.mark.parametrize("fmt", UNSYMMETRIC_DRIVER_FORMATS)
@pytest.mark.parametrize("case", CASE_NAMES)
def test_unsymmetric_backend_bit_identical(case, fmt, backend):
    matrix, parts = build_unsymmetric(case, fmt, "thirds")
    x = rhs_block(matrix.n_cols, None)
    serial = np.array(ParallelSpMV(matrix, parts)(x))
    ex = make_backend_executor(backend)
    try:
        got = _run_bound(ParallelSpMV(matrix, parts, executor=ex), x)
    finally:
        ex.close()
    assert np.array_equal(got, serial)
    if backend == "processes":
        assert not live_segments()


@pytest.mark.parametrize("backend", EXECUTOR_BACKENDS)
@pytest.mark.parametrize("method", ["indexed", "coloring"])
@pytest.mark.parametrize("fmt", SYMMETRIC_FORMATS)
def test_symmetric_backend_spmm_bit_identical(fmt, method, backend):
    skip_unless_supported(fmt, method)
    matrix, parts = build_symmetric("random", fmt, "thirds")
    X = rhs_block(matrix.n_cols, 4)
    serial = np.array(ParallelSymmetricSpMV(matrix, parts, method)(X))
    ex = make_backend_executor(backend)
    try:
        got = _run_bound(
            ParallelSymmetricSpMV(matrix, parts, method, executor=ex), X
        )
    finally:
        ex.close()
    assert np.array_equal(got, serial)
    if backend == "processes":
        assert not live_segments()
