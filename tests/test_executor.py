"""Unit tests for the thread-task executor backends."""

import threading
import time

import pytest

from repro.parallel import Executor


def test_serial_runs_in_order():
    order = []
    tasks = [lambda i=i: order.append(i) for i in range(5)]
    Executor("serial").run_batch(tasks)
    assert order == [0, 1, 2, 3, 4]


def test_serial_empty_batch():
    Executor("serial").run_batch([])


def test_threads_runs_all_tasks():
    done = set()
    lock = threading.Lock()

    def make(i):
        def task():
            with lock:
                done.add(i)

        return task

    with Executor("threads", max_workers=3) as ex:
        ex.run_batch([make(i) for i in range(10)])
    assert done == set(range(10))


def test_threads_propagates_exceptions():
    def boom():
        raise RuntimeError("kaput")

    with Executor("threads") as ex:
        with pytest.raises(RuntimeError, match="kaput"):
            ex.run_batch([boom])


def test_serial_propagates_exceptions():
    def boom():
        raise ValueError("nope")

    with pytest.raises(ValueError, match="nope"):
        Executor("serial").run_batch([boom])


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        Executor("fibers")


def test_pool_reused_across_batches():
    with Executor("threads", max_workers=2) as ex:
        ex.run_batch([lambda: None])
        pool = ex._pool
        ex.run_batch([lambda: None])
        assert ex._pool is pool


def test_close_idempotent():
    ex = Executor("threads")
    ex.run_batch([lambda: None])
    ex.close()
    ex.close()


def test_invalid_max_workers_rejected():
    with pytest.raises(ValueError):
        Executor("threads", max_workers=0)


def test_pool_grows_for_larger_batches():
    # Regression: without max_workers the pool used to be sized by the
    # first batch forever, silently serializing any later larger batch.
    # A barrier only releases if all 8 tasks truly run concurrently.
    with Executor("threads") as ex:
        ex.run_batch([lambda: None])  # sizes the pool at 1
        barrier = threading.Barrier(8)
        timed_out = []

        def make():
            def task():
                try:
                    barrier.wait(timeout=5.0)
                except threading.BrokenBarrierError:
                    timed_out.append(True)

            return task

        ex.run_batch([make() for _ in range(8)])
        assert not timed_out
        assert ex._pool_size >= 8


def test_explicit_max_workers_pool_stable():
    with Executor("threads", max_workers=2) as ex:
        ex.run_batch([lambda: None])
        pool = ex._pool
        ex.run_batch([lambda: None for _ in range(6)])
        assert ex._pool is pool  # capped pools never regrow


def test_failure_waits_for_slow_sibling():
    # Regression: run_batch used to re-raise on the first failed future
    # while sibling tasks were still running — the caller could observe
    # (and re-zero) buffers a live task then kept writing. Now the
    # error only propagates once every sibling has finished.
    writes = []
    started = threading.Event()

    def boom():
        # Only fail once the sibling is provably in flight (started and
        # uncancellable), so the test exercises the await path, not the
        # cancellation path.
        assert started.wait(timeout=5.0)
        raise RuntimeError("failure with sibling in flight")

    def slow_writer():
        started.set()
        time.sleep(0.1)
        writes.append("late write")

    with Executor("threads", max_workers=2) as ex:
        with pytest.raises(RuntimeError):
            ex.run_batch([boom, slow_writer])
        # Containment: by the time the error propagates, the slow
        # sibling has completed — no in-flight writer survives.
        assert writes == ["late write"]


def test_pool_growth_retires_old_workers():
    # Regression: growing the pool replaced it without an explicit
    # wait=True shutdown; old workers could outlive the swap. Record
    # the first pool's threads and check none survives the growth.
    first_pool_threads = []
    lock = threading.Lock()

    def record():
        with lock:
            first_pool_threads.append(threading.current_thread())

    with Executor("threads") as ex:
        ex.run_batch([record, record])  # sizes the pool at 2
        ex.run_batch([lambda: None for _ in range(6)])  # forces growth
        assert ex._pool_size >= 6
        assert first_pool_threads
        assert not any(t.is_alive() for t in first_pool_threads)


# ----------------------------------------------------------------------
# Fail-fast construction of the processes backend
# ----------------------------------------------------------------------
def test_unknown_mode_error_lists_backends():
    with pytest.raises(ValueError) as exc_info:
        Executor("fibers")
    msg = str(exc_info.value)
    for mode in ("serial", "threads", "processes", "chaos"):
        assert mode in msg


def test_processes_rejected_without_shared_memory(monkeypatch):
    monkeypatch.setattr(
        "repro.parallel.executor._shm_available", lambda: False
    )
    with pytest.raises(ValueError) as exc_info:
        Executor("processes")
    assert "shared_memory" in str(exc_info.value)


def test_processes_accepts_chaos_plan():
    from repro.resilience import ChaosPlan

    plan = ChaosPlan(0, p_raise=0.0, p_delay=0.3, max_delay_ms=0.1)
    ex = Executor("processes", max_workers=2, plan=plan)
    assert ex.plan is plan
    ex.close()


def test_chaos_mode_defaults_plan_processes_does_not():
    chaos = Executor("chaos")
    assert chaos.plan is not None
    procs = Executor("processes")
    assert procs.plan is None
    chaos.close()
    procs.close()
