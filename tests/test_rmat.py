"""Unit tests for the R-MAT (Kronecker) generator."""

import numpy as np
import pytest

from repro.formats import CSRMatrix, SSSMatrix
from repro.matrices import rmat
from repro.parallel import ParallelSymmetricSpMV, partition_nnz_balanced


def test_dimensions_and_symmetry(rng):
    m = rmat(8, 6.0, rng)
    assert m.n_rows == 256
    assert m.is_symmetric()
    assert np.all(m.diagonal() > 0)  # SPD-ified


def test_power_law_degrees(rng):
    """R-MAT's hub rows: max degree far above the mean."""
    m = rmat(11, 8.0, rng)
    counts = m.row_counts()
    assert counts.max() > 8 * counts.mean()


def test_uniform_quadrants_give_flat_degrees(rng):
    m = rmat(10, 8.0, rng, a=0.25, b=0.25, c=0.25)
    counts = m.row_counts()
    assert counts.max() < 5 * counts.mean()


def test_deterministic():
    a = rmat(8, 4.0, np.random.default_rng(3))
    b = rmat(8, 4.0, np.random.default_rng(3))
    assert np.array_equal(a.to_dense(), b.to_dense())


def test_invalid_parameters(rng):
    with pytest.raises(ValueError):
        rmat(0, 4.0, rng)
    with pytest.raises(ValueError):
        rmat(30, 4.0, rng)
    with pytest.raises(ValueError):
        rmat(8, 4.0, rng, a=0.6, b=0.3, c=0.3)  # d < 0


def test_spmv_pipeline_on_rmat(rng):
    """The full symmetric pipeline survives scale-free imbalance."""
    m = rmat(9, 8.0, rng)
    sss = SSSMatrix.from_coo(m)
    parts = partition_nnz_balanced(sss.expanded_row_nnz(), 8)
    kernel = ParallelSymmetricSpMV(sss, parts, "indexed")
    x = rng.standard_normal(m.n_cols)
    assert np.allclose(kernel(x), CSRMatrix.from_coo(m).spmv(x))


def test_nnz_balanced_helps_on_rmat(rng):
    """Power-law rows are why nnz balancing exists."""
    from repro.parallel import partition_rows_equal

    m = rmat(11, 8.0, rng)
    weights = m.row_counts().astype(float)
    eq = partition_rows_equal(m.n_rows, 8)
    bal = partition_nnz_balanced(weights, 8)
    load = lambda parts: max(weights[s:e].sum() for s, e in parts)
    assert load(bal) <= load(eq)
