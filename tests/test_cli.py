"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_suite_command(capsys):
    rc = main(["suite", "--scale", "0.004"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "parabolic_fem" in out and "ldoor" in out
    assert "corner" in out


def test_spmv_command(capsys):
    rc = main(
        [
            "spmv", "--matrix", "consph", "--format", "sss",
            "--threads", "4", "--scale", "0.005",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "correct=True" in out
    assert "Gflop/s" in out


def test_spmv_csx_sym(capsys):
    rc = main(
        [
            "spmv", "--matrix", "bmw7st_1", "--format", "csx-sym",
            "--threads", "2", "--scale", "0.005",
            "--platform", "gainestown",
        ]
    )
    assert rc == 0
    assert "Gainestown" in capsys.readouterr().out


def test_spmv_coloring_reduction(capsys):
    rc = main(
        [
            "spmv", "--matrix", "consph", "--format", "sss",
            "--threads", "4", "--scale", "0.005",
            "--reduction", "coloring",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "correct=True" in out
    assert "barrier" in out  # model total includes the rendezvous term


def test_spmv_coloring_rejected_for_unsymmetric(capsys):
    rc = main(
        [
            "spmv", "--matrix", "consph", "--format", "csr",
            "--threads", "2", "--scale", "0.005",
            "--reduction", "coloring",
        ]
    )
    assert rc == 2
    err = capsys.readouterr().err
    assert "requires a symmetric driver" in err
    assert "csx-sym" in err


def test_spmv_unsymmetric_format(capsys):
    rc = main(
        [
            "spmv", "--matrix", "consph", "--format", "csr",
            "--threads", "2", "--scale", "0.005",
        ]
    )
    assert rc == 0


def test_sweep_command(capsys):
    rc = main(
        [
            "sweep", "--matrix", "consph", "--scale", "0.005",
            "--platform", "gainestown",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "threads" in out and "csx-sym" in out


def test_cg_command(capsys):
    rc = main(
        [
            "cg", "--matrix", "consph", "--format", "sss",
            "--threads", "2", "--scale", "0.005",
        ]
    )
    assert rc == 0
    assert "converged" in capsys.readouterr().out


def test_stats_command(capsys):
    rc = main(["stats", "--matrix", "consph", "--scale", "0.005"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "native" in out and "SSS CR %" in out


def test_stats_with_rcm(capsys):
    rc = main(
        ["stats", "--matrix", "thermal2", "--scale", "0.004", "--rcm"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "rcm" in out


def test_unknown_matrix_rejected():
    with pytest.raises(SystemExit):
        main(["spmv", "--matrix", "not_a_matrix"])


def test_unknown_format_rejected():
    with pytest.raises(SystemExit):
        main(["spmv", "--format", "ellpack"])


def test_cg_trace_writes_valid_document(tmp_path, capsys):
    from repro.obs import load_trace, validate_trace

    path = tmp_path / "trace.json"
    rc = main(
        [
            "cg", "--matrix", "consph", "--scale", "0.005",
            "--threads", "2", "--trace", str(path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "trace written" in out and "spmv.mult" in out
    doc = load_trace(path)
    assert validate_trace(doc) == []
    assert doc["meta"]["command"] == "cg"
    assert doc["summary"]["spans"]["cg.spmv"]["count"] >= 1


def test_spmv_trace_with_threads_executor(tmp_path):
    from repro.obs import load_trace, validate_trace

    path = tmp_path / "trace.json"
    rc = main(
        [
            "spmv", "--matrix", "consph", "--scale", "0.005",
            "--threads", "4", "--trace", str(path),
            "--executor", "threads",
        ]
    )
    assert rc == 0
    doc = load_trace(path)
    assert validate_trace(doc) == []
    tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert len(tids) > 1  # a real per-thread timeline


def test_trace_subcommand_round_trip(tmp_path, capsys):
    path = tmp_path / "trace.json"
    assert main(
        [
            "cg", "--matrix", "consph", "--scale", "0.005",
            "--threads", "2", "--trace", str(path),
        ]
    ) == 0
    capsys.readouterr()
    rc = main(["trace", str(path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "cg.spmv" in out and "counters" in out


def test_trace_subcommand_rejects_invalid(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "bogus"}')
    assert main(["trace", str(bad)]) == 1
    assert "INVALID" in capsys.readouterr().err
    missing = tmp_path / "missing.json"
    assert main(["trace", str(missing)]) == 1


def test_untraced_commands_leave_no_trace_flag_behind(capsys):
    # --trace defaults to None: no tracer stays active afterwards.
    from repro.obs import NULL_TRACER, active

    rc = main(
        [
            "cg", "--matrix", "consph", "--scale", "0.005",
            "--threads", "2",
        ]
    )
    assert rc == 0
    assert active() is NULL_TRACER


# ---------------------------------------------------------------------
# repro metrics
# ---------------------------------------------------------------------
METRICS_BASE = [
    "metrics", "--matrix", "hood", "--scale", "0.01",
    "--threads", "3", "--applications", "4",
]


def test_metrics_table_output(capsys):
    assert main(METRICS_BASE) == 0
    out = capsys.readouterr().out
    assert "op.apply_ns" in out
    assert "op.traffic_bytes" in out
    assert "batch.latency_ns" in out
    assert "reduction=indexed" in out


def test_metrics_openmetrics_to_file(tmp_path, capsys):
    path = tmp_path / "m" / "metrics.prom"
    rc = main(METRICS_BASE + [
        "--format", "openmetrics", "--output", str(path),
    ])
    assert rc == 0
    text = path.read_text()
    assert text.endswith("# EOF\n")
    assert "repro_op_apply_ns_bucket" in text
    assert "reduction=\"indexed\"" in text
    assert str(path) in capsys.readouterr().out


def test_metrics_json_with_attribution(capsys):
    import json as _json

    rc = main(METRICS_BASE + [
        "--format", "json", "--attribution", "--rcm",
    ])
    assert rc == 0
    doc = _json.loads(capsys.readouterr().out)
    assert doc["meta"]["matrix"] == "hood" and doc["meta"]["rcm"]
    names = {h["name"] for h in doc["metrics"]["histograms"]}
    assert {"op.apply_ns", "op.traffic_bytes"} <= names
    att = doc["attribution"]
    assert att["label"] == "hood/sss/rcm"
    phases = {p["phase"] for p in att["phases"]}
    assert "mult" in phases and "reduce" in phases
    assert att["max_share_divergence"] == att["max_share_divergence"]


def test_metrics_attribution_table_and_healthy_slo(capsys):
    rc = main(METRICS_BASE + ["--attribution", "--slo-ms", "60000"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "SLO op.apply" in out and "OK" in out
    assert "attribution: hood/sss" in out
    assert "share divergence" in out


def test_metrics_slo_violation_exit_code(capsys):
    # 1 ns threshold: every application violates -> budget exhausted.
    rc = main(METRICS_BASE + ["--slo-ms", "0.000001"])
    assert rc == 3
    assert "VIOLATED" in capsys.readouterr().out


def test_metrics_rejects_bad_combination(capsys):
    # coloring needs a symmetric format with a lower triple; csr is
    # an unsymmetric driver -> typed rc 2, not a traceback.
    rc = main([
        "metrics", "--matrix", "hood", "--scale", "0.01",
        "--storage", "csr", "--reduction", "coloring",
    ])
    assert rc == 2
    assert "repro metrics:" in capsys.readouterr().err
