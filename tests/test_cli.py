"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_suite_command(capsys):
    rc = main(["suite", "--scale", "0.004"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "parabolic_fem" in out and "ldoor" in out
    assert "corner" in out


def test_spmv_command(capsys):
    rc = main(
        [
            "spmv", "--matrix", "consph", "--format", "sss",
            "--threads", "4", "--scale", "0.005",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "correct=True" in out
    assert "Gflop/s" in out


def test_spmv_csx_sym(capsys):
    rc = main(
        [
            "spmv", "--matrix", "bmw7st_1", "--format", "csx-sym",
            "--threads", "2", "--scale", "0.005",
            "--platform", "gainestown",
        ]
    )
    assert rc == 0
    assert "Gainestown" in capsys.readouterr().out


def test_spmv_unsymmetric_format(capsys):
    rc = main(
        [
            "spmv", "--matrix", "consph", "--format", "csr",
            "--threads", "2", "--scale", "0.005",
        ]
    )
    assert rc == 0


def test_sweep_command(capsys):
    rc = main(
        [
            "sweep", "--matrix", "consph", "--scale", "0.005",
            "--platform", "gainestown",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "threads" in out and "csx-sym" in out


def test_cg_command(capsys):
    rc = main(
        [
            "cg", "--matrix", "consph", "--format", "sss",
            "--threads", "2", "--scale", "0.005",
        ]
    )
    assert rc == 0
    assert "converged" in capsys.readouterr().out


def test_stats_command(capsys):
    rc = main(["stats", "--matrix", "consph", "--scale", "0.005"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "native" in out and "SSS CR %" in out


def test_stats_with_rcm(capsys):
    rc = main(
        ["stats", "--matrix", "thermal2", "--scale", "0.004", "--rcm"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "rcm" in out


def test_unknown_matrix_rejected():
    with pytest.raises(SystemExit):
        main(["spmv", "--matrix", "not_a_matrix"])


def test_unknown_format_rejected():
    with pytest.raises(SystemExit):
        main(["spmv", "--format", "ellpack"])
