"""Unit tests for the CSR baseline format (paper eq. 1)."""

import numpy as np
import pytest

from repro.formats import COOMatrix, CSRMatrix
from repro.formats.csr import csr_row_segment_sums


def test_from_coo_matches_dense(sym_dense_small):
    csr = CSRMatrix.from_dense(sym_dense_small)
    assert np.array_equal(csr.to_dense(), sym_dense_small)


def test_spmv_matches_dense(sym_dense_medium, rng):
    csr = CSRMatrix.from_dense(sym_dense_medium)
    x = rng.standard_normal(csr.n_cols)
    assert np.allclose(csr.spmv(x), sym_dense_medium @ x)


def test_spmv_into_provided_output(sym_dense_small, rng):
    csr = CSRMatrix.from_dense(sym_dense_small)
    x = rng.standard_normal(csr.n_cols)
    y = np.full(csr.n_rows, 99.0)
    out = csr.spmv(x, y)
    assert out is y
    assert np.allclose(y, sym_dense_small @ x)


def test_size_bytes_equation_1(sym_coo_small):
    """S_CSR = 12*NNZ + 4*(N+1)."""
    csr = CSRMatrix.from_coo(sym_coo_small)
    assert csr.size_bytes() == 12 * csr.nnz + 4 * (csr.n_rows + 1)


def test_empty_rows_handled(rng):
    dense = np.zeros((6, 6))
    dense[0, 3] = 2.0
    dense[5, 1] = 3.0  # rows 1-4 empty
    csr = CSRMatrix.from_dense(dense)
    x = rng.standard_normal(6)
    assert np.allclose(csr.spmv(x), dense @ x)


def test_all_empty_matrix():
    csr = CSRMatrix.from_coo(COOMatrix.empty((4, 4)))
    assert np.array_equal(csr.spmv(np.ones(4)), np.zeros(4))


def test_spmv_rows_partition(sym_dense_medium, rng):
    csr = CSRMatrix.from_dense(sym_dense_medium)
    x = rng.standard_normal(csr.n_cols)
    y = np.zeros(csr.n_rows)
    for start, end in [(0, 100), (100, 207), (207, 300)]:
        csr.spmv_rows(x, y, start, end)
    assert np.allclose(y, sym_dense_medium @ x)


def test_spmv_rows_trailing_empty(rng):
    dense = np.zeros((5, 5))
    dense[0, 0] = 1.0
    csr = CSRMatrix.from_dense(dense)
    x = rng.standard_normal(5)
    y = np.zeros(5)
    csr.spmv_rows(x, y, 3, 5)  # all-empty partition
    assert np.array_equal(y, np.zeros(5))


def test_invalid_rowptr_rejected():
    with pytest.raises(ValueError):
        CSRMatrix((2, 2), [0, 1], [0], [1.0])  # rowptr too short
    with pytest.raises(ValueError):
        CSRMatrix((2, 2), [1, 1, 1], [0], [1.0])  # doesn't start at 0
    with pytest.raises(ValueError):
        CSRMatrix((2, 2), [0, 2, 1], [0], [1.0])  # decreasing / bad end


def test_column_out_of_bounds_rejected():
    with pytest.raises(ValueError):
        CSRMatrix((2, 2), [0, 1, 1], [5], [1.0])


def test_row_access(sym_dense_small):
    csr = CSRMatrix.from_dense(sym_dense_small)
    cols, vals = csr.row(3)
    expected_cols = np.nonzero(sym_dense_small[3])[0]
    assert np.array_equal(cols, expected_cols)
    assert np.array_equal(vals, sym_dense_small[3][expected_cols])


def test_row_nnz(sym_dense_small):
    csr = CSRMatrix.from_dense(sym_dense_small)
    assert np.array_equal(csr.row_nnz(), (sym_dense_small != 0).sum(axis=1))


def test_to_coo_roundtrip(sym_coo_medium):
    csr = CSRMatrix.from_coo(sym_coo_medium)
    back = csr.to_coo()
    assert np.array_equal(back.to_dense(), sym_coo_medium.to_dense())


def test_segment_sums_empty_rows():
    rowptr = np.array([0, 2, 2, 3], dtype=np.int32)
    products = np.array([1.0, 2.0, 5.0])
    sums = csr_row_segment_sums(products, rowptr, 0, 3)
    assert np.array_equal(sums, [3.0, 0.0, 5.0])


def test_segment_sums_empty_products():
    rowptr = np.array([0, 0, 0], dtype=np.int32)
    sums = csr_row_segment_sums(np.zeros(0), rowptr, 0, 2)
    assert np.array_equal(sums, [0.0, 0.0])


def test_spmv_against_scipy(sym_coo_medium, rng):
    csr = CSRMatrix.from_coo(sym_coo_medium)
    sp = sym_coo_medium.to_scipy()
    x = rng.standard_normal(csr.n_cols)
    assert np.allclose(csr.spmv(x), sp @ x)
