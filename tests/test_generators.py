"""Unit tests for the synthetic matrix generators."""

import numpy as np
import pytest

from repro.formats import COOMatrix
from repro.matrices import (
    banded_random,
    block_structural,
    circuit_like,
    dense_clustered,
    grid_laplacian_2d,
    grid_laplacian_3d,
    make_spd,
    permute_random,
)
from repro.reorder import bandwidth_stats


def assert_spd_symmetric(coo: COOMatrix):
    assert coo.is_symmetric()
    dense = coo.to_dense()
    diag = np.diag(dense)
    off = np.abs(dense).sum(axis=1) - np.abs(diag)
    assert np.all(diag > off - 1e-9)  # diagonally dominant
    assert np.all(diag > 0)


def test_grid_laplacian_2d_5pt():
    m = grid_laplacian_2d(8, 6, stencil=5)
    assert m.shape == (48, 48)
    assert_spd_symmetric(m)
    # Interior rows have exactly 5 entries.
    counts = m.row_counts()
    assert counts.max() == 5
    assert bandwidth_stats(m).bandwidth == 8


def test_grid_laplacian_2d_9pt():
    m = grid_laplacian_2d(8, 8, stencil=9)
    assert m.row_counts().max() == 9
    assert_spd_symmetric(m)


def test_grid_laplacian_bad_stencil():
    with pytest.raises(ValueError):
        grid_laplacian_2d(4, 4, stencil=7)


def test_grid_laplacian_3d():
    m = grid_laplacian_3d(5, 5, 5)
    assert m.shape == (125, 125)
    assert m.row_counts().max() == 7
    assert_spd_symmetric(m)


def test_banded_random(rng):
    m = banded_random(500, nnz_per_row=10.0, band=30, rng=rng)
    assert_spd_symmetric(m)
    assert bandwidth_stats(m).bandwidth <= 30
    assert 6 <= m.nnz / m.n_rows <= 11  # duplicates shave a little


def test_block_structural_density(rng):
    m = block_structural(
        200, dof=3, nnz_per_row=52.0, band_nodes=25, rng=rng
    )
    assert m.n_rows == 600
    assert_spd_symmetric(m)
    assert 35 <= m.nnz / m.n_rows <= 56


def test_block_structural_has_dense_blocks(rng):
    m = block_structural(60, dof=3, nnz_per_row=30.0, band_nodes=10, rng=rng)
    dense = (m.to_dense() != 0)
    # Find at least one fully dense off-diagonal 3x3 block.
    found = False
    for bi in range(60):
        for bj in range(bi):
            if dense[3 * bi : 3 * bi + 3, 3 * bj : 3 * bj + 3].all():
                found = True
                break
        if found:
            break
    assert found


def test_block_structural_rejects_bad_dof(rng):
    with pytest.raises(ValueError):
        block_structural(10, dof=0, nnz_per_row=10.0, band_nodes=3, rng=rng)


def test_dense_clustered_has_runs(rng):
    m = dense_clustered(300, nnz_per_row=40.0, band=80, run_len=8, rng=rng)
    assert_spd_symmetric(m)
    lower = m.lower_triangle(strict=True)
    # Count unit-stride horizontal adjacencies: must dominate.
    same_row = lower.rows[1:] == lower.rows[:-1]
    unit = (lower.cols[1:] - lower.cols[:-1]) == 1
    assert (same_row & unit).sum() > 0.5 * lower.nnz


def test_circuit_like_sparse_and_wide(rng):
    m = circuit_like(2000, nnz_per_row=4.8, long_range_fraction=0.4, rng=rng)
    assert_spd_symmetric(m)
    assert m.nnz / m.n_rows < 6.5
    # Long-range fraction gives a large bandwidth.
    assert bandwidth_stats(m).normalized_bandwidth > 0.3


def test_permute_random_preserves_spectrum(rng):
    m = grid_laplacian_2d(6, 6)
    permuted = permute_random(m, rng)
    assert permuted.is_symmetric()
    ev_a = np.sort(np.linalg.eigvalsh(m.to_dense()))
    ev_b = np.sort(np.linalg.eigvalsh(permuted.to_dense()))
    assert np.allclose(ev_a, ev_b)


def test_permute_random_raises_bandwidth(rng):
    m = banded_random(800, nnz_per_row=8.0, band=20, rng=rng)
    permuted = permute_random(m, rng)
    assert (
        bandwidth_stats(permuted).avg_distance
        > 3 * bandwidth_stats(m).avg_distance
    )


def test_make_spd_idempotent_diagonal(rng):
    base = banded_random(100, nnz_per_row=6.0, band=10, rng=rng)
    again = make_spd(base)
    assert np.allclose(again.to_dense(), base.to_dense())


def test_generators_deterministic():
    a = banded_random(200, 8.0, 20, np.random.default_rng(7))
    b = banded_random(200, 8.0, 20, np.random.default_rng(7))
    assert np.array_equal(a.to_dense(), b.to_dense())
