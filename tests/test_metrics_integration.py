"""Cross-backend identity of the streaming metrics and counters.

The tentpole guarantee of the metrics subsystem: a ``processes`` run
reports the *same* metric names and the *same* (bit-identical) kernel
counter totals as a serial run. Counters are recorded deep inside the
format kernels — under the process backend those execute in worker
processes, whose tracer deltas come back in each batch reply and are
folded into the parent; losing that fold silently drops every
worker-side ``tracer.count`` (the historical failure mode this file
pins down).

Also covered here: the per-layer recorders (executor batch/task
latency, bound-operator apply/traffic, solver per-iteration metrics)
produce the histograms and gauges the exporters and the ``repro
metrics`` CLI rely on.
"""

import numpy as np
import pytest

from tests.conformance import (
    EXECUTOR_BACKENDS,
    build_symmetric,
    make_backend_executor,
    rhs_block,
)
from repro.obs import Tracer, tracing
from repro.parallel import ParallelSymmetricSpMV
from repro.solvers import (
    block_conjugate_gradient,
    conjugate_gradient,
    preconditioned_conjugate_gradient,
    jacobi_preconditioner,
)

N_APPLIES = 4

#: Histogram names every instrumented operator run must stream,
#: regardless of backend.
EXPECTED_HISTOGRAMS = [
    "batch.latency_ns", "op.apply_ns", "op.traffic_bytes",
    "task.latency_ns",
]


def _instrumented_run(case, fmt, reduction, backend, k=None):
    """Bind outside the tracing context (bind-time compilation counters
    would otherwise skew the comparison), apply under a fresh tracer,
    return (tracer, snapshot)."""
    matrix, parts = build_symmetric(case, fmt, "thirds")
    ex = make_backend_executor(backend)
    driver = ParallelSymmetricSpMV(matrix, parts, reduction, executor=ex)
    op = driver.bind(k)
    x = rhs_block(matrix.n_cols, k)
    tracer = Tracer()
    try:
        with tracing(tracer):
            for _ in range(N_APPLIES):
                op(x)
    finally:
        op.close()
        ex.close()
    return tracer, tracer.metrics.snapshot()


@pytest.mark.parametrize("reduction", ["indexed", "coloring"])
@pytest.mark.parametrize("fmt", ["sss", "csx-sym"])
def test_metric_names_and_counters_identical_across_backends(
    fmt, reduction
):
    runs = {
        backend: _instrumented_run("random", fmt, reduction, backend)
        for backend in EXECUTOR_BACKENDS
    }
    serial_tracer, serial_snap = runs["serial"]
    serial_names = serial_tracer.metrics.metric_names()
    assert sorted(EXPECTED_HISTOGRAMS) == serial_names
    serial_counters = serial_tracer.counters()
    assert serial_counters, "kernel counters must be recorded"
    for backend, (tracer, snap) in runs.items():
        if backend == "serial":
            continue
        assert tracer.metrics.metric_names() == serial_names, backend
        # Kernel counter totals are bit-identical: same work, same
        # counts, whether recorded inline, from pool threads, or folded
        # back from worker-process deltas.
        assert tracer.counters() == serial_counters, backend
        # The modeled traffic stream is deterministic too.
        for entry, ref in zip(
            snap["histograms"], serial_snap["histograms"]
        ):
            assert entry["name"] == ref["name"]
            if entry["name"] == "op.traffic_bytes":
                assert entry["summary"]["sum"] == ref["summary"]["sum"]


def test_worker_counter_deltas_fold_into_parent():
    """Under the process backend the kernels run in worker processes;
    their ``tracer.count`` calls must still land in the parent tracer
    (satellite: the historical vanishing-counters bug)."""
    serial_tracer, _ = _instrumented_run("banded", "sss", "indexed",
                                         "serial")
    proc_tracer, _ = _instrumented_run("banded", "sss", "indexed",
                                       "processes")
    assert proc_tracer.counters() == serial_tracer.counters()


def test_histogram_labels_carry_backend_and_reduction():
    tracer, snap = _instrumented_run("random", "sss", "indexed",
                                     "serial", k=3)
    by_name = {}
    for entry in snap["histograms"]:
        by_name.setdefault(entry["name"], []).append(entry["labels"])
    apply_labels = by_name["op.apply_ns"][0]
    assert apply_labels == {
        "format": "sss", "reduction": "indexed", "backend": "serial",
    }
    assert by_name["batch.latency_ns"][0]["backend"] == "serial"
    assert by_name["task.latency_ns"][0]["label"] == "spmv.mult.task"
    # Every apply recorded once; every task latency = applies × threads.
    apply_entry = next(
        e for e in snap["histograms"] if e["name"] == "op.apply_ns"
    )
    assert apply_entry["summary"]["count"] == N_APPLIES


def _spd_system(n=40, seed=3):
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    a = m @ m.T + n * np.eye(n)
    return a, rng.standard_normal(n)


def test_solver_iteration_metrics_cg():
    a, b = _spd_system()
    tracer = Tracer()
    with tracing(tracer):
        res = conjugate_gradient(lambda x: a @ x, b, tol=1e-10)
    assert res.converged
    m = tracer.metrics
    assert m.counter_value("solver.iterations", solver="cg") == (
        res.iterations
    )
    hist = m.merged_histogram("solver.iter_ns", solver="cg")
    assert hist is not None and hist.count == res.iterations
    residual = m.gauge_value("solver.residual", solver="cg")
    assert residual == residual and residual <= 1e-10 * np.linalg.norm(b)


def test_solver_iteration_metrics_pcg_and_block_cg():
    a, b = _spd_system()
    tracer = Tracer()
    with tracing(tracer):
        res_p = preconditioned_conjugate_gradient(
            lambda x: a @ x, b, jacobi_preconditioner(np.diag(a)),
            tol=1e-10,
        )
        res_b = block_conjugate_gradient(
            lambda X: a @ X, np.stack([b, 2 * b], axis=1), tol=1e-10
        )
    assert res_p.converged and res_b.all_converged
    m = tracer.metrics
    assert m.counter_value("solver.iterations", solver="pcg") == (
        res_p.iterations
    )
    assert m.counter_value("solver.iterations", solver="block_cg") == (
        res_b.iterations
    )
    assert m.merged_histogram(
        "solver.iter_ns", solver="block_cg"
    ).count == res_b.iterations


def test_disabled_tracer_records_nothing():
    matrix, parts = build_symmetric("random", "sss", "thirds")
    driver = ParallelSymmetricSpMV(matrix, parts, "indexed")
    op = driver.bind()
    x = rhs_block(matrix.n_cols, None)
    tracer = Tracer(enabled=False)
    try:
        with tracing(tracer):
            op(x)
    finally:
        op.close()
    assert tracer.metrics.metric_names() == []
    assert tracer.counters() == {}
