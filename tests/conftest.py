"""Shared fixtures: deterministic random symmetric SPD matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats import COOMatrix


def random_symmetric_dense(
    n: int,
    density: float = 0.05,
    seed: int = 0,
    band: int | None = None,
    with_runs: bool = False,
) -> np.ndarray:
    """Random symmetric positive-definite dense matrix.

    ``band`` restricts entries near the diagonal; ``with_runs`` plants
    contiguous diagonals so CSX has substructures to find.
    """
    rng = np.random.default_rng(seed)
    dense = np.zeros((n, n))
    mask = np.triu(rng.random((n, n)) < density, k=1)
    if band is not None:
        rows, cols = np.indices((n, n))
        mask &= np.abs(rows - cols) <= band
    dense[mask] = rng.uniform(0.1, 1.0, int(mask.sum()))
    if with_runs:
        for off in (1, 2, 3):
            idx = np.arange(n - off)
            dense[idx, idx + off] = rng.uniform(0.1, 1.0, n - off)
    dense = np.triu(dense)
    dense = dense + dense.T
    np.fill_diagonal(dense, 1.0 + np.abs(dense).sum(axis=1))
    return dense


@pytest.fixture(scope="session")
def sym_dense_small() -> np.ndarray:
    """64×64 symmetric SPD with runs (fast unit-test workhorse)."""
    return random_symmetric_dense(64, density=0.08, seed=1, with_runs=True)


@pytest.fixture(scope="session")
def sym_dense_medium() -> np.ndarray:
    """300×300 symmetric SPD with banded + scattered structure."""
    return random_symmetric_dense(300, density=0.02, seed=2, with_runs=True)


@pytest.fixture(scope="session")
def sym_coo_small(sym_dense_small) -> COOMatrix:
    return COOMatrix.from_dense(sym_dense_small)


@pytest.fixture(scope="session")
def sym_coo_medium(sym_dense_medium) -> COOMatrix:
    return COOMatrix.from_dense(sym_dense_medium)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
